//! Instance generators: the deterministic families and seeded random models
//! used by tests, examples, and the Table 1 / Figure 1 harnesses.
//!
//! All generators assign contiguous identifiers `1..=n` unless stated
//! otherwise; use [`crate::Graph::relabel`] or the `*_with_ids`
//! constructors for custom identifier patterns (the §5.3 construction needs
//! them).

use crate::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::RngExt;

/// The path `P_n` on `n ≥ 1` nodes.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n >= 1, "path needs at least 1 node");
    Graph::path_with_ids((1..=n as u64).map(NodeId)).expect("contiguous ids are unique")
}

/// The cycle `C_n` on `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    Graph::cycle_with_ids((1..=n as u64).map(NodeId)).expect("contiguous ids are unique")
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::with_contiguous_ids(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v).expect("distinct indices");
        }
    }
    g
}

/// The complete bipartite graph `K_{a,b}`; the first `a` indices form one
/// side.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::with_contiguous_ids(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            g.add_edge(u, v).expect("distinct indices");
        }
    }
    g
}

/// The star `K_{1,n}`; index 0 is the centre.
pub fn star(leaves: usize) -> Graph {
    let mut g = Graph::with_contiguous_ids(leaves + 1);
    for v in 1..=leaves {
        g.add_edge(0, v).expect("distinct indices");
    }
    g
}

/// The `rows × cols` grid graph; node `(r, c)` has index `r * cols + c`.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1, "grid needs positive dimensions");
    let mut g = Graph::with_contiguous_ids(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let u = r * cols + c;
            if c + 1 < cols {
                g.add_edge(u, u + 1).expect("distinct indices");
            }
            if r + 1 < rows {
                g.add_edge(u, u + cols).expect("distinct indices");
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)`: every pair becomes an edge independently with
/// probability `p`.
pub fn gnp(n: usize, p: f64, rng: &mut StdRng) -> Graph {
    let mut g = Graph::with_contiguous_ids(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v).expect("distinct indices");
            }
        }
    }
    g
}

/// Uniform random tree on `n ≥ 1` nodes (random attachment: node `i` picks
/// a uniformly random earlier parent, then indices are shuffled by
/// relabelling positions).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: usize, rng: &mut StdRng) -> Graph {
    assert!(n >= 1, "tree needs at least 1 node");
    // Random permutation of positions so the root is not biased to index 0.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut g = Graph::with_contiguous_ids(n);
    for i in 1..n {
        let parent_pos = rng.random_range(0..i);
        g.add_edge(order[i], order[parent_pos])
            .expect("tree edges are fresh");
    }
    g
}

/// Connected random graph: a random tree plus `extra` random chords
/// (silently fewer if the graph saturates).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_connected(n: usize, extra: usize, rng: &mut StdRng) -> Graph {
    let mut g = random_tree(n, rng);
    let max_extra = n * (n - 1) / 2 - (n - 1);
    let want = extra.min(max_extra);
    let mut added = 0;
    while added < want {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v).expect("checked non-edge");
            added += 1;
        }
    }
    g
}

/// Random bipartite graph: sides of `a` and `b` nodes, each cross pair an
/// edge with probability `p`. The first `a` indices form one side.
pub fn random_bipartite(a: usize, b: usize, p: f64, rng: &mut StdRng) -> Graph {
    let mut g = Graph::with_contiguous_ids(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            if rng.random_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v).expect("distinct indices");
            }
        }
    }
    g
}

/// Random *connected* bipartite graph: a random tree that alternates sides
/// (so it is bipartite by construction) plus random cross chords.
///
/// Returns the graph and its side assignment (`0`/`1` per node).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn random_connected_bipartite(n: usize, extra: usize, rng: &mut StdRng) -> (Graph, Vec<u8>) {
    assert!(n >= 2, "connected bipartite graph needs at least 2 nodes");
    let g = random_tree(n, rng);
    let side = crate::traversal::bipartition(&g).expect("trees are bipartite");
    let mut g = g;
    let mut added = 0;
    let mut attempts = 0;
    while added < extra && attempts < 50 * (extra + 1) {
        attempts += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v && side[u] != side[v] && !g.has_edge(u, v) {
            g.add_edge(u, v).expect("checked non-edge");
            added += 1;
        }
    }
    (g, side)
}

/// The complete binary tree with `depth` levels of internal nodes
/// (`2^depth - 1` nodes total, root at index 0).
///
/// # Panics
///
/// Panics if `depth == 0`.
pub fn complete_binary_tree(depth: u32) -> Graph {
    assert!(depth >= 1, "binary tree needs depth >= 1");
    let n = (1usize << depth) - 1;
    let mut g = Graph::with_contiguous_ids(n);
    for u in 1..n {
        g.add_edge(u, (u - 1) / 2).expect("tree edges are fresh");
    }
    g
}

/// Two cliques of size `k` joined by a single bridge edge — a classic
/// "barbell" stress instance for connectivity schemes.
///
/// # Panics
///
/// Panics if `k < 1`.
pub fn barbell(k: usize) -> Graph {
    assert!(k >= 1, "barbell needs positive clique size");
    let mut g = Graph::with_contiguous_ids(2 * k);
    for u in 0..k {
        for v in (u + 1)..k {
            g.add_edge(u, v).expect("distinct");
            g.add_edge(k + u, k + v).expect("distinct");
        }
    }
    g.add_edge(k - 1, k).expect("bridge endpoints distinct");
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{is_bipartite, is_connected};
    use rand::SeedableRng;

    #[test]
    fn path_and_cycle_shapes() {
        let p = path(5);
        assert_eq!((p.n(), p.m()), (5, 4));
        let c = cycle(5);
        assert_eq!((c.n(), c.m()), (5, 5));
        assert!(c.nodes().all(|u| c.degree(u) == 2));
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(6);
        assert_eq!(g.m(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.m(), 12);
        assert!(is_bipartite(&g));
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.degree(0), 7);
        assert!((1..=7).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // vertical + horizontal
        assert!(is_connected(&g));
        assert!(is_bipartite(&g));
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(gnp(10, 0.0, &mut rng).m(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).m(), 45);
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1, 2, 3, 10, 40] {
            let t = random_tree(n, &mut rng);
            assert_eq!(t.m(), n - 1);
            assert!(is_connected(&t));
        }
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = random_connected(20, 15, &mut rng);
        assert!(is_connected(&g));
        assert_eq!(g.m(), 19 + 15);
    }

    #[test]
    fn random_connected_saturates_gracefully() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_connected(4, 100, &mut rng);
        assert_eq!(g.m(), 6); // K4
    }

    #[test]
    fn random_bipartite_is_bipartite() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = random_bipartite(6, 5, 0.7, &mut rng);
        assert!(is_bipartite(&g));
    }

    #[test]
    fn random_connected_bipartite_properties() {
        let mut rng = StdRng::seed_from_u64(13);
        let (g, side) = random_connected_bipartite(15, 10, &mut rng);
        assert!(is_connected(&g));
        assert!(is_bipartite(&g));
        for (u, v) in g.edges() {
            assert_ne!(side[u], side[v]);
        }
    }

    #[test]
    fn binary_tree_shape() {
        let g = complete_binary_tree(4);
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 14);
        assert!(is_connected(&g));
    }

    #[test]
    fn barbell_has_bridge() {
        let g = barbell(4);
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 2 * 6 + 1);
        assert!(is_connected(&g));
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let g1 = gnp(12, 0.4, &mut StdRng::seed_from_u64(5));
        let g2 = gnp(12, 0.4, &mut StdRng::seed_from_u64(5));
        assert_eq!(g1, g2);
    }
}
