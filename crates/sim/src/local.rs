//! Synchronous full-information message passing.
//!
//! The simulator runs the standard LOCAL-model folklore algorithm: in each
//! of `r` rounds every node sends everything it knows to every neighbour.
//! After `r` rounds a node knows the record of every node within distance
//! `r`, reconstructs its view `(G[v,r], P[v,r], v)` from those records,
//! and runs the verifier on it.
//!
//! The reconstruction step is where the paper's definition bites: a node
//! may incidentally *hear more* than its induced radius-`r` subgraph (it
//! learns of edges leaving the ball through records of boundary nodes),
//! and the simulator deliberately discards that surplus so the verifier's
//! input is exactly the paper's `G[v,r]`.

use lcp_core::{EdgeMap, Instance, Proof, Scheme, Verdict, View};
use lcp_graph::NodeId;
use std::collections::BTreeMap;

/// Cost accounting for one distributed run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Communication rounds executed (= the scheme's radius).
    pub rounds: usize,
    /// Point-to-point messages sent (2·m per round).
    pub messages: u64,
    /// Total node records carried by all messages (the "bandwidth").
    pub records_shipped: u64,
}

/// One node's knowledge record: everything other nodes may learn about it.
#[derive(Clone, Debug)]
struct Record<N> {
    id: NodeId,
    label: N,
    proof: lcp_core::BitString,
    /// Identifiers of this node's neighbours (its port map).
    neighbor_ids: Vec<NodeId>,
}

/// Runs `scheme`'s verifier as an `r`-round synchronous distributed
/// algorithm and returns the global verdict plus cost statistics.
///
/// Equivalent by construction to `lcp_core::evaluate` — the workspace
/// property tests assert verdict equality on random instances.
///
/// # Panics
///
/// Panics if `proof.n()` mismatches the instance.
pub fn run_distributed<S: Scheme>(
    scheme: &S,
    inst: &Instance<S::Node, S::Edge>,
    proof: &Proof,
) -> (Verdict, SimStats) {
    let g = inst.graph();
    assert_eq!(proof.n(), g.n(), "proof must label every node");
    let r = scheme.radius();
    let mut stats = SimStats {
        rounds: r,
        ..SimStats::default()
    };

    // Knowledge state: per node, records keyed by identifier.
    let mut state: Vec<BTreeMap<NodeId, Record<S::Node>>> = g
        .nodes()
        .map(|v| {
            let rec = Record {
                id: g.id(v),
                label: inst.node_label(v).clone(),
                proof: proof.get(v).to_bitstring(),
                neighbor_ids: g.neighbors(v).iter().map(|&u| g.id(u)).collect(),
            };
            BTreeMap::from([(rec.id, rec)])
        })
        .collect();

    for _ in 0..r {
        // Everyone sends its current state to every neighbour,
        // synchronously: compute all inboxes from the old state first.
        let mut inbox: Vec<Vec<(NodeId, Record<S::Node>)>> = vec![Vec::new(); g.n()];
        for v in g.nodes() {
            for &u in g.neighbors(v) {
                stats.messages += 1;
                stats.records_shipped += state[v].len() as u64;
                for rec in state[v].values() {
                    inbox[u].push((rec.id, rec.clone()));
                }
            }
        }
        for (v, received) in inbox.into_iter().enumerate() {
            state[v].extend(received);
        }
    }

    // Edge labels travel with the lower-identifier endpoint's record in a
    // real deployment; here we read them from the instance when
    // reconstructing, restricted to reconstructed (in-ball) edges only.
    let outputs: Vec<bool> = g
        .nodes()
        .map(|v| {
            let view = reconstruct_view(inst, v, r, &state[v]);
            scheme.verify(&view)
        })
        .collect();
    (Verdict::from_outputs(outputs), stats)
}

/// Builds `G[v,r]` from the records `v` gathered.
fn reconstruct_view<'v, N: Clone, E: Clone>(
    inst: &Instance<N, E>,
    v: usize,
    r: usize,
    known: &BTreeMap<NodeId, Record<N>>,
) -> View<'v, N, E> {
    let g = inst.graph();
    let my_id = g.id(v);
    // BFS over the knowledge graph starting at v, traversing only nodes
    // with records, out to distance r. This prunes the surplus knowledge
    // (records do not extend past r, but the *edges mentioned in* boundary
    // records do).
    let mut dist: BTreeMap<NodeId, usize> = BTreeMap::from([(my_id, 0)]);
    let mut frontier = vec![my_id];
    let mut order = vec![my_id];
    let mut d = 0;
    while d < r && !frontier.is_empty() {
        d += 1;
        let mut next = Vec::new();
        for id in frontier {
            let rec = &known[&id];
            for &nb in &rec.neighbor_ids {
                if known.contains_key(&nb) && !dist.contains_key(&nb) {
                    dist.insert(nb, d);
                    order.push(nb);
                    next.push(nb);
                }
            }
        }
        frontier = next;
    }
    // Deterministic view indexing: sort members by identifier, as
    // `View::extract` sorts by original index; indices differ but the view
    // content (ids, adjacency, labels) is identical up to relabeling.
    // To match `View::extract` *exactly*, sort by the original graph
    // index, which every node can recover because identifiers are unique.
    let mut members: Vec<NodeId> = order;
    members.sort_by_key(|id| g.index_of(*id).expect("known ids exist in g"));
    let index_of: BTreeMap<NodeId, usize> =
        members.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); members.len()];
    let mut edge_data: EdgeMap<E> = EdgeMap::new();
    for (i, &id) in members.iter().enumerate() {
        let rec = &known[&id];
        for &nb in &rec.neighbor_ids {
            if let Some(&j) = index_of.get(&nb) {
                adj[i].push(j);
                if i < j {
                    let gu = g.index_of(id).expect("known");
                    let gw = g.index_of(nb).expect("known");
                    if let Some(l) = inst.edge_label(gu, gw) {
                        edge_data.insert((i, j), l.clone());
                    }
                }
            }
        }
        adj[i].sort_unstable();
    }
    let ids: Vec<NodeId> = members.clone();
    let dists: Vec<usize> = members.iter().map(|id| dist[id]).collect();
    let labels: Vec<N> = members.iter().map(|id| known[id].label.clone()).collect();
    let proofs: Vec<lcp_core::BitString> =
        members.iter().map(|id| known[id].proof.clone()).collect();
    let center = index_of[&my_id];
    View::from_parts(center, r, ids, adj, dists, labels, edge_data, proofs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::{evaluate, BitString};
    use lcp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Radius-2 scheme that records the whole view fingerprint: strong
    /// enough to catch any reconstruction discrepancy.
    struct ViewFingerprint;
    impl Scheme for ViewFingerprint {
        type Node = ();
        type Edge = ();
        fn name(&self) -> String {
            "view-fingerprint".into()
        }
        fn radius(&self) -> usize {
            2
        }
        fn holds(&self, _: &Instance) -> bool {
            true
        }
        fn prove(&self, inst: &Instance) -> Option<Proof> {
            Some(Proof::empty(inst.n()))
        }
        fn verify(&self, view: &View) -> bool {
            // Accept iff the view has an even fingerprint; arbitrary but
            // deterministic, so centralized and distributed runs must agree.
            let mut h: u64 = view.n() as u64;
            for u in view.nodes() {
                h = h
                    .wrapping_mul(31)
                    .wrapping_add(view.id(u).0)
                    .wrapping_add(view.dist(u) as u64 * 7);
                for &w in view.neighbors(u) {
                    h = h.wrapping_mul(17).wrapping_add(view.id(w).0);
                }
            }
            h.is_multiple_of(2)
        }
    }

    #[test]
    fn distributed_matches_centralized_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..15 {
            let g = generators::random_connected(12, 8, &mut rng);
            let inst = Instance::unlabeled(g);
            let proof = Proof::empty(inst.n());
            let central = evaluate(&ViewFingerprint, &inst, &proof);
            let (dist, stats) = run_distributed(&ViewFingerprint, &inst, &proof);
            assert_eq!(central, dist);
            assert_eq!(stats.rounds, 2);
            assert_eq!(stats.messages, 2 * 2 * inst.graph().m() as u64);
        }
    }

    #[test]
    fn proofs_reach_the_right_nodes() {
        /// Checks every in-view proof equals the node's identifier γ-coded.
        struct ProofEcho;
        impl Scheme for ProofEcho {
            type Node = ();
            type Edge = ();
            fn name(&self) -> String {
                "proof-echo".into()
            }
            fn radius(&self) -> usize {
                1
            }
            fn holds(&self, _: &Instance) -> bool {
                true
            }
            fn prove(&self, inst: &Instance) -> Option<Proof> {
                let g = inst.graph();
                Some(Proof::from_fn(inst.n(), |v| {
                    let mut w = lcp_core::BitWriter::new();
                    w.write_gamma(g.id(v).0);
                    w.finish()
                }))
            }
            fn verify(&self, view: &View) -> bool {
                view.nodes().all(|u| {
                    let mut r = lcp_core::BitReader::new(view.proof(u));
                    r.read_gamma() == Ok(view.id(u).0)
                })
            }
        }
        let inst = Instance::unlabeled(generators::grid(3, 4));
        let proof = ProofEcho.prove(&inst).unwrap();
        let (verdict, _) = run_distributed(&ProofEcho, &inst, &proof);
        assert!(verdict.accepted());
    }

    #[test]
    fn corrupted_proof_detected_distributively() {
        struct AllZero;
        impl Scheme for AllZero {
            type Node = ();
            type Edge = ();
            fn name(&self) -> String {
                "all-zero".into()
            }
            fn radius(&self) -> usize {
                1
            }
            fn holds(&self, _: &Instance) -> bool {
                true
            }
            fn prove(&self, inst: &Instance) -> Option<Proof> {
                Some(Proof::from_fn(inst.n(), |_| BitString::from_bits([false])))
            }
            fn verify(&self, view: &View) -> bool {
                view.nodes().all(|u| view.proof(u).first() == Some(false))
            }
        }
        let inst = Instance::unlabeled(generators::cycle(8));
        let mut proof = AllZero.prove(&inst).unwrap();
        proof.set(3, BitString::from_bits([true]));
        let (verdict, _) = run_distributed(&AllZero, &inst, &proof);
        assert_eq!(verdict.rejecting(), vec![2, 3, 4]);
    }

    #[test]
    fn zero_round_scheme_sends_nothing() {
        struct Lonely;
        impl Scheme for Lonely {
            type Node = ();
            type Edge = ();
            fn name(&self) -> String {
                "lonely".into()
            }
            fn radius(&self) -> usize {
                0
            }
            fn holds(&self, _: &Instance) -> bool {
                true
            }
            fn prove(&self, inst: &Instance) -> Option<Proof> {
                Some(Proof::empty(inst.n()))
            }
            fn verify(&self, view: &View) -> bool {
                view.n() == 1
            }
        }
        let inst = Instance::unlabeled(generators::complete(5));
        let (verdict, stats) = run_distributed(&Lonely, &inst, &Proof::empty(5));
        assert!(verdict.accepted());
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn edge_labels_are_visible_in_reconstruction() {
        /// Accepts iff the centre is covered by a labelled (matching) edge
        /// or has no labelled edge in sight.
        struct SeesMatching;
        impl Scheme for SeesMatching {
            type Node = ();
            type Edge = ();
            fn name(&self) -> String {
                "sees-matching".into()
            }
            fn radius(&self) -> usize {
                1
            }
            fn holds(&self, _: &Instance) -> bool {
                true
            }
            fn prove(&self, inst: &Instance) -> Option<Proof> {
                Some(Proof::empty(inst.n()))
            }
            fn verify(&self, view: &View) -> bool {
                let c = view.center();
                let covered = view
                    .neighbors(c)
                    .iter()
                    .filter(|&&u| view.edge_label(c, u).is_some())
                    .count();
                covered <= 1
            }
        }
        let inst = Instance::unlabeled(generators::path(4)).with_edge_set([(1, 2)]);
        let proof = Proof::empty(4);
        let (verdict, _) = run_distributed(&SeesMatching, &inst, &proof);
        assert!(verdict.accepted());
        let central = evaluate(&SeesMatching, &inst, &proof);
        assert_eq!(central, verdict);
    }
}
