//! The cached-view verification engine: skeletons once, proof bits per
//! candidate.
//!
//! # Why
//!
//! Every `∀` quantifier of the model becomes a loop in [`crate::harness`],
//! and the innermost operation — extracting a node's radius-`r` view —
//! depends only on `(instance, radius)`, never on the proof. The naive
//! executor ([`crate::evaluate`]) nevertheless re-runs a BFS, rebuilds
//! adjacency, and re-copies labels for **every candidate proof**;
//! exhaustive soundness checks multiply that waste by up to `10^8` proofs
//! and adversarial searches by thousands of restarts.
//!
//! # The skeleton / binding split
//!
//! A [`PreparedInstance`] precomputes, once per `(instance, radius)`, a
//! [`FrozenCore`]:
//!
//! * every node's view **skeleton** — the radius-`r` ball in CSR form
//!   (flat adjacency + offsets), distance arrays, identifiers, labels,
//!   and sorted edge-label slices — packed into one contiguous word
//!   image;
//! * the flat **membership table** (`members`): which global nodes appear
//!   in each ball, in view-local order;
//! * the inverted **dependency table** (`dependents`): for each global
//!   node `v`, the views that contain `v` and `v`'s local index in each —
//!   exactly the verifiers whose output can change when `v`'s bits
//!   change.
//!
//! Binding a proof ([`PreparedInstance::bind`] /
//! [`PreparedInstance::bind_all`]) is then **free**: a bound view borrows
//! slices of the proof's word-packed [`crate::ProofArena`] through the
//! membership table — no graph traversal, no bit copies, no allocation.
//! Incremental workloads (the odometer of
//! [`crate::harness::check_soundness_exhaustive`], the single-bit flips
//! of [`crate::harness::adversarial_proof_search`]) mutate one
//! preallocated arena in place between candidates and re-run just the
//! `O(|ball|)` verifiers listed in [`PreparedInstance::dependents`] —
//! zero heap allocations per candidate proof (pinned by the
//! `alloc_probe` test).
//!
//! # Core provenance
//!
//! The frozen core is origin-agnostic: a `PreparedInstance` binds views
//! identically whether its core was **built** in process, adopted from a
//! [`SkeletonCache`] hit, or **mapped** from an on-disk artifact file by
//! [`crate::artifact::ArtifactStore`] (the `docs/FORMAT.md` format). The
//! mutable sibling is [`SkeletonStore`], a thin wrapper over
//! [`CoreBuilder`] whose
//! [`SkeletonStore::freeze`] / [`SkeletonStore::from_frozen`] round-trip
//! makes dynamic churn and frozen artifacts share one invariant surface.
//!
//! # Parallelism
//!
//! With the `parallel` feature, [`PreparedInstance::new`],
//! [`PreparedInstance::evaluate`], and the sweep helper
//! [`prepare_sweep`] fan out across cores (rayon) once the instance is
//! large enough to amortize thread startup; the sequential semantics are
//! unchanged (outputs stay in node order).
//!
//! ```
//! use lcp_core::engine::PreparedInstance;
//! use lcp_core::{evaluate, Instance, Proof, Scheme, View};
//! use lcp_graph::generators;
//!
//! struct EvenDegrees;
//! impl Scheme for EvenDegrees {
//!     type Node = ();
//!     type Edge = ();
//!     fn name(&self) -> String { "even-degrees".into() }
//!     fn radius(&self) -> usize { 1 }
//!     fn holds(&self, inst: &Instance) -> bool {
//!         lcp_graph::euler::all_degrees_even(inst.graph())
//!     }
//!     fn prove(&self, inst: &Instance) -> Option<Proof> {
//!         self.holds(inst).then(|| Proof::empty(inst.n()))
//!     }
//!     fn verify(&self, view: &View) -> bool {
//!         view.degree(view.center()) % 2 == 0
//!     }
//! }
//!
//! let inst = Instance::unlabeled(generators::cycle(6));
//! let prep = PreparedInstance::new(&inst, EvenDegrees.radius());
//! let proof = Proof::empty(6);
//! // Same verdict as the naive executor, without re-extracting views.
//! assert_eq!(prep.evaluate(&EvenDegrees, &proof), evaluate(&EvenDegrees, &inst, &proof));
//! assert_eq!(prep.evaluate_until_reject(&EvenDegrees, &proof), None);
//! ```

use crate::arena::BatchArena;
use crate::batch::BatchView;
use crate::deadline::{Deadline, DeadlineExpired};
use crate::frozen::{build_all, CoreBuilder, FrozenCore};
use crate::instance::Instance;
use crate::metrics;
use crate::proof::Proof;
use crate::scheme::{Scheme, Verdict};
use crate::view::{SkelView, View};
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Below this node count, parallel paths fall back to sequential code:
/// spawning workers costs more than the whole sweep.
#[cfg(feature = "parallel")]
const PAR_THRESHOLD: usize = 256;

/// An instance with every node's radius-`r` view skeleton precomputed,
/// ready to bind candidate proofs cheaply.
///
/// Borrows the instance (skeletons reference nothing mutable, but keeping
/// the borrow makes it impossible to evaluate against a stale graph); the
/// skeletons themselves live in a shared [`FrozenCore`], so cloning is
/// cheap and a [`SkeletonCache`] or an artifact store can hand the same
/// core to many cells.
#[derive(Clone, Debug)]
pub struct PreparedInstance<'i, N = (), E = ()> {
    inst: &'i Instance<N, E>,
    core: Arc<FrozenCore<N, E>>,
}

impl<'i, N: Clone, E: Clone> PreparedInstance<'i, N, E> {
    /// Precomputes every node's radius-`radius` view skeleton.
    ///
    /// Cost: one bounded BFS per node (`O(Σ|ball|)` total work), done
    /// exactly once; every subsequent proof binding reuses the result.
    /// With the `parallel` feature the per-node BFS fans out across
    /// cores for large instances.
    pub fn new(inst: &'i Instance<N, E>, radius: usize) -> Self
    where
        N: Send + Sync,
        E: Send + Sync,
    {
        let started = std::time::Instant::now();
        let core = Arc::new(FrozenCore::from_built(radius, build_all(inst, radius)));
        metrics::PREPARES.inc();
        metrics::PREPARE_NS.observe(started.elapsed().as_nanos() as u64);
        PreparedInstance { inst, core }
    }

    /// Pairs `inst` with an already-materialized core (a cache hit or a
    /// mapped artifact). The caller is responsible for the pairing being
    /// right — the cache compares full instance content, the artifact
    /// store checks the embedded fingerprint.
    pub(crate) fn from_core(inst: &'i Instance<N, E>, core: Arc<FrozenCore<N, E>>) -> Self {
        PreparedInstance { inst, core }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &'i Instance<N, E> {
        self.inst
    }

    /// The shared core, for callers that outlive this borrow.
    pub(crate) fn core(&self) -> &Arc<FrozenCore<N, E>> {
        &self.core
    }

    /// The preparation radius `r`.
    pub fn radius(&self) -> usize {
        self.core.radius()
    }

    /// Number of nodes (`n(G)`).
    pub fn n(&self) -> usize {
        self.core.n()
    }

    /// Global indices of node `v`'s ball members, in view-local order.
    ///
    /// Crate-visible: the harness's exhaustive memo keys verifier
    /// outputs on the member string indices.
    pub(crate) fn members_of(&self, v: usize) -> &[u32] {
        self.core.members_of(v)
    }

    /// The global indices of the nodes in `v`'s radius-`r` ball — the
    /// nodes whose proof bits, labels, and incident visible edges `v`'s
    /// verifier reads — in view-local (sorted, ascending) order.
    ///
    /// This is the forward direction of the engine's locality tables;
    /// [`Self::dependents`] is the inverse. Together they let callers
    /// reason about *impact*: after changing anything at node `u`, the
    /// verifiers to re-run are exactly `dependents(u)`, and each such
    /// view reads exactly `members(w)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn members(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.members_of(v).iter().map(|&m| m as usize)
    }

    /// The nodes whose verifier output can change when `v`'s proof bits
    /// (or label, or incident edges) change — the centres whose balls
    /// contain `v`, in ascending order.
    ///
    /// Inverse of [`Self::members`]: `w ∈ dependents(v)` iff
    /// `v ∈ members(w)` (pinned by the `members_and_dependents_are_
    /// inverse_tables` test). On an undirected graph both relations are
    /// the radius-`r` ball, but callers should not rely on that symmetry
    /// — it is an artefact of distance being symmetric, not part of the
    /// contract.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn dependents(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.core.dependents_of(v).map(|(owner, _)| owner as usize)
    }

    /// Binds `proof` to node `v`'s cached skeleton, producing its view.
    ///
    /// Free: the view borrows both the cached skeleton and the proof's
    /// arena (through the membership table) — no traversal, no bit
    /// copies, no allocation, no refcount traffic. Because the binding
    /// borrows, a bound view always reads the arena's *current* bits:
    /// mutate the proof in place, re-bind, and only the affected
    /// verifiers ([`Self::dependents`]) need re-running.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `proof.n()` mismatches.
    #[inline]
    pub fn bind<'s>(&'s self, v: usize, proof: &'s Proof) -> View<'s, N, E> {
        assert_eq!(proof.n(), self.n(), "proof must label every node");
        View::bind_arena(self.core.skel_view(v), proof.arena(), self.members_of(v))
    }

    /// Binds `proof` to every node's skeleton at once.
    pub fn bind_all<'s>(&'s self, proof: &'s Proof) -> Vec<View<'s, N, E>> {
        (0..self.n()).map(|v| self.bind(v, proof)).collect()
    }

    /// Node `v`'s cached skeleton as a flat borrow — the batch layer
    /// binds it against a transposed arena instead of a single proof.
    pub(crate) fn skel_view_of(&self, v: usize) -> SkelView<'_, N, E> {
        self.core.skel_view(v)
    }

    /// Binds a transposed candidate [`BatchArena`] to node `v`'s cached
    /// skeleton: the 64-lane analogue of [`Self::bind`], consumed by
    /// [`Scheme::verify_batch`] kernels.
    ///
    /// Free in the same sense as [`Self::bind`]: the view borrows the
    /// cached skeleton and the arena's lane words through the membership
    /// table — no traversal, no bit copies, no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `arena.n()` mismatches.
    #[inline]
    pub fn bind_batch<'s>(&'s self, v: usize, arena: &'s BatchArena) -> BatchView<'s, N, E> {
        assert_eq!(arena.n(), self.n(), "arena must cover every node");
        BatchView::bind(self.core.skel_view(v), arena, self.members_of(v))
    }

    /// Runs `scheme`'s batched verifier at every node against up to 64
    /// candidate proofs at once, returning the mask of candidates **all**
    /// nodes accept (restricted to [`BatchArena::active`] lanes).
    ///
    /// The 64-lane analogue of [`Self::evaluate`]'s accept bit: bit `i`
    /// of the result is `evaluate(scheme, lane i).accepted()`. Sweeps
    /// stop as soon as every lane has a rejecting node.
    ///
    /// # Panics
    ///
    /// Panics if `arena.n()` mismatches, or if `scheme` has no batch
    /// kernel ([`Scheme::supports_batch`] is `false` — probe it first).
    pub fn evaluate_batch<S>(&self, scheme: &S, arena: &BatchArena) -> u64
    where
        S: Scheme<Node = N, Edge = E>,
    {
        assert!(
            scheme.supports_batch(),
            "scheme '{}' has no batch kernel",
            scheme.name()
        );
        let mut acc = arena.active();
        for v in 0..self.n() {
            if acc == 0 {
                break;
            }
            acc &= scheme.verify_batch(&self.bind_batch(v, arena));
        }
        acc
    }

    /// Always-sequential verifier sweep — used directly by contexts that
    /// are already parallel at a coarser grain (e.g. the per-instance
    /// completeness sweep), where nesting a second thread fan-out per
    /// evaluation would only add spawn overhead.
    pub(crate) fn evaluate_seq<S>(&self, scheme: &S, proof: &Proof) -> Verdict
    where
        S: Scheme<Node = N, Edge = E>,
    {
        let started = std::time::Instant::now();
        let verdict = Verdict::from_outputs(
            (0..self.n())
                .map(|v| scheme.verify(&self.bind(v, proof)))
                .collect(),
        );
        metrics::EVALUATE_SWEEPS.inc();
        metrics::EVALUATE_NS.observe(started.elapsed().as_nanos() as u64);
        metrics::BINDS.add(self.n() as u64);
        verdict
    }

    /// Runs `scheme`'s verifier at every node against cached skeletons.
    ///
    /// Semantically identical to [`crate::evaluate`] (property-tested in
    /// `tests/engine_equivalence.rs`), but per-proof cost drops from
    /// `O(n · BFS · alloc)` to `O(Σ|ball|)` bit copies.
    #[cfg(not(feature = "parallel"))]
    pub fn evaluate<S>(&self, scheme: &S, proof: &Proof) -> Verdict
    where
        S: Scheme<Node = N, Edge = E>,
    {
        self.evaluate_seq(scheme, proof)
    }

    /// Runs `scheme`'s verifier at every node against cached skeletons,
    /// fanning node verification out across cores for large instances.
    #[cfg(feature = "parallel")]
    pub fn evaluate<S>(&self, scheme: &S, proof: &Proof) -> Verdict
    where
        S: Scheme<Node = N, Edge = E> + Sync,
        N: Send + Sync,
        E: Send + Sync,
    {
        if self.n() >= PAR_THRESHOLD {
            let started = std::time::Instant::now();
            let verdict = Verdict::from_outputs(
                (0..self.n())
                    .into_par_iter()
                    .map(|v| scheme.verify(&self.bind(v, proof)))
                    .collect(),
            );
            metrics::EVALUATE_SWEEPS.inc();
            metrics::EVALUATE_NS.observe(started.elapsed().as_nanos() as u64);
            metrics::BINDS.add(self.n() as u64);
            verdict
        } else {
            self.evaluate_seq(scheme, proof)
        }
    }

    /// Runs the verifier node by node and stops at the first rejection,
    /// returning the rejecting node — or `None` when every node accepts.
    ///
    /// The accept/reject decision (`∃` rejecting node) does not need the
    /// remaining outputs, and on no-instances most candidate proofs are
    /// rejected early, so this is the right primitive for soundness
    /// search loops.
    pub fn evaluate_until_reject<S>(&self, scheme: &S, proof: &Proof) -> Option<usize>
    where
        S: Scheme<Node = N, Edge = E>,
    {
        (0..self.n()).find(|&v| !scheme.verify(&self.bind(v, proof)))
    }

    /// Deadline-aware verifier sweep: sequential, polling `deadline`
    /// between nodes (a single verifier may still overrun — cooperative
    /// budgets cannot preempt scheme code). Identical outputs to
    /// [`Self::evaluate`] when the budget holds.
    ///
    /// # Errors
    ///
    /// [`DeadlineExpired`] when the budget runs out before the sweep
    /// finishes.
    pub fn evaluate_within<S>(
        &self,
        scheme: &S,
        proof: &Proof,
        deadline: &Deadline,
    ) -> Result<Verdict, DeadlineExpired>
    where
        S: Scheme<Node = N, Edge = E>,
    {
        let mut outputs = Vec::with_capacity(self.n());
        for v in 0..self.n() {
            if deadline.expired() {
                return Err(DeadlineExpired);
            }
            outputs.push(scheme.verify(&self.bind(v, proof)));
        }
        Ok(Verdict::from_outputs(outputs))
    }

    /// Deadline-aware [`Self::evaluate_until_reject`]: polls `deadline`
    /// between nodes.
    ///
    /// # Errors
    ///
    /// [`DeadlineExpired`] when the budget runs out before a verdict.
    pub fn evaluate_until_reject_within<S>(
        &self,
        scheme: &S,
        proof: &Proof,
        deadline: &Deadline,
    ) -> Result<Option<usize>, DeadlineExpired>
    where
        S: Scheme<Node = N, Edge = E>,
    {
        for v in 0..self.n() {
            if deadline.expired() {
                return Err(DeadlineExpired);
            }
            if !scheme.verify(&self.bind(v, proof)) {
                return Ok(Some(v));
            }
        }
        Ok(None)
    }
}

/// One cached `(instance, radius)` preparation: the instance copy is the
/// collision-proof identity (hash keys only shortlist candidates), the
/// core is what gets shared.
struct CachedPrep<N, E> {
    inst: Instance<N, E>,
    radius: usize,
    core: Arc<FrozenCore<N, E>>,
}

/// A cross-instance skeleton cache: one CSR build per distinct
/// `(instance content, radius)`, shared by every caller that prepares an
/// equal instance.
///
/// # Why
///
/// The conformance campaign sweeps ~30 schemes over the *same* generated
/// graphs: every scheme asked about `(cycle, n = 32)` re-BFSes the same
/// 32 balls. Graph preparation dominates cell cost on the full profile,
/// so the campaign threads one `SkeletonCache` through all its cells
/// ([`crate::dynamic::DynScheme::with_cache`]) and each distinct graph is
/// prepared exactly once. [`crate::artifact::ArtifactStore`] extends the
/// same sharing across *processes*: it wraps this cache and backfills
/// misses from mapped artifact files before falling back to a build.
///
/// # Correctness
///
/// A hit requires **full structural equality** of the instance (graph,
/// node labels, edge labels) and an equal radius — the content hash only
/// shortlists candidates, so a hash collision can cost a linear compare,
/// never a wrong share. Cached cores are immutable; a
/// [`PreparedInstance`] built from the cache is indistinguishable from a
/// freshly built one (pinned by the cache-equivalence tests).
///
/// The cache is `Send + Sync`; lookups take one short mutex hold while
/// skeleton construction itself runs outside the lock, so parallel
/// campaign cells never serialize behind each other's BFS.
#[derive(Default)]
pub struct SkeletonCache {
    entries: Mutex<HashMap<(TypeId, u64), Vec<Arc<dyn Any + Send + Sync>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl std::fmt::Debug for SkeletonCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkeletonCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

/// Structural content hash of `(inst, radius)`: radius, node ids,
/// adjacency, and edge-label keys, FNV-folded. Node/edge label *values*
/// are deliberately left out (they carry no trait bounds here); the
/// equality check on lookup covers them.
pub(crate) fn content_key<N, E>(inst: &Instance<N, E>, radius: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |x: u64| {
        h = (h ^ x).wrapping_mul(0x0000_0100_0000_01b3);
    };
    let g = inst.graph();
    mix(radius as u64);
    mix(g.n() as u64);
    mix(g.m() as u64);
    for v in g.nodes() {
        mix(g.id(v).0);
        mix(g.degree(v) as u64);
        for &u in g.neighbors(v) {
            mix(u as u64);
        }
    }
    for (u, v) in g.edges() {
        let labelled = u64::from(inst.edge_label(u, v).is_some());
        mix(((u as u64) << 32) | (v as u64) | (labelled << 63));
    }
    h
}

impl SkeletonCache {
    /// An empty cache.
    pub fn new() -> Self {
        SkeletonCache::default()
    }

    /// Prepares `inst` at `radius`, reusing a cached core when an equal
    /// instance was prepared before (at the same radius), else building
    /// one and caching it.
    ///
    /// The returned [`PreparedInstance`] behaves exactly like
    /// [`PreparedInstance::new`]'s.
    pub fn prepare<'i, N, E>(
        &self,
        inst: &'i Instance<N, E>,
        radius: usize,
    ) -> PreparedInstance<'i, N, E>
    where
        N: Clone + PartialEq + Send + Sync + 'static,
        E: Clone + PartialEq + Send + Sync + 'static,
    {
        if let Some(core) = self.find_core::<N, E>(inst, radius) {
            self.record_hit();
            return PreparedInstance { inst, core };
        }
        // Build outside the lock: concurrent preparations of *different*
        // graphs must not serialize. A racing twin may finish first; the
        // insert below then adopts its copy so later hits share one
        // allocation.
        let started = std::time::Instant::now();
        let core = Arc::new(FrozenCore::from_built(radius, build_all(inst, radius)));
        metrics::PREPARES.inc();
        metrics::PREPARE_NS.observe(started.elapsed().as_nanos() as u64);
        self.record_miss();
        let core = self.insert_core(inst, radius, core);
        PreparedInstance { inst, core }
    }

    /// Looks up the cached core of exactly `(inst, radius)` — no counter
    /// side effects, so composite stores can wrap the lookup in their
    /// own hit/miss accounting.
    pub(crate) fn find_core<N, E>(
        &self,
        inst: &Instance<N, E>,
        radius: usize,
    ) -> Option<Arc<FrozenCore<N, E>>>
    where
        N: PartialEq + Send + Sync + 'static,
        E: PartialEq + Send + Sync + 'static,
    {
        let key = (TypeId::of::<CachedPrep<N, E>>(), content_key(inst, radius));
        let entries = self.entries.lock().expect("cache lock");
        let bucket = entries.get(&key)?;
        bucket.iter().find_map(|e| {
            e.downcast_ref::<CachedPrep<N, E>>()
                .filter(|c| c.radius == radius && c.inst == *inst)
                .map(|c| Arc::clone(&c.core))
        })
    }

    /// Inserts `core` for `(inst, radius)`, adopting a racing twin's
    /// copy if one won the insert — the returned `Arc` is the one every
    /// later hit will share.
    pub(crate) fn insert_core<N, E>(
        &self,
        inst: &Instance<N, E>,
        radius: usize,
        core: Arc<FrozenCore<N, E>>,
    ) -> Arc<FrozenCore<N, E>>
    where
        N: Clone + PartialEq + Send + Sync + 'static,
        E: Clone + PartialEq + Send + Sync + 'static,
    {
        let key = (TypeId::of::<CachedPrep<N, E>>(), content_key(inst, radius));
        let mut entries = self.entries.lock().expect("cache lock");
        let bucket = entries.entry(key).or_default();
        for e in bucket.iter() {
            if let Some(c) = e.downcast_ref::<CachedPrep<N, E>>() {
                if c.radius == radius && c.inst == *inst {
                    return Arc::clone(&c.core);
                }
            }
        }
        bucket.push(Arc::new(CachedPrep {
            inst: inst.clone(),
            radius,
            core: Arc::clone(&core),
        }));
        core
    }

    /// Counts one lookup served from memory.
    pub(crate) fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        metrics::SKELETON_CACHE_HITS.inc();
    }

    /// Counts one lookup that missed memory (whatever satisfied it).
    pub(crate) fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        metrics::SKELETON_CACHE_MISSES.inc();
    }

    /// Cached preparations (across all instance types).
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("cache lock")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build a fresh core so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops every cached preparation (counters keep running).
    pub fn clear(&self) {
        self.entries.lock().expect("cache lock").clear();
    }

    /// Drops the cached core of exactly `(inst, radius)`, if present, and
    /// reports whether anything was removed.
    ///
    /// This is the eviction hook of resident services (`lcp-serve`): when
    /// an instance table drops a cell, its skeleton core must leave the
    /// process-wide cache too, or evicted cells would pin their BFS
    /// results forever. Removal uses the same key and full structural
    /// equality as [`Self::prepare`], so it never evicts a different
    /// instance that merely collides on the content hash. Cores still
    /// borrowed by live [`PreparedInstance`]s stay valid — the `Arc` only
    /// drops once the last user does.
    pub fn remove<N, E>(&self, inst: &Instance<N, E>, radius: usize) -> bool
    where
        N: PartialEq + Send + Sync + 'static,
        E: PartialEq + Send + Sync + 'static,
    {
        let key = (TypeId::of::<CachedPrep<N, E>>(), content_key(inst, radius));
        let mut entries = self.entries.lock().expect("cache lock");
        let Some(bucket) = entries.get_mut(&key) else {
            return false;
        };
        let before = bucket.len();
        bucket.retain(|e| {
            e.downcast_ref::<CachedPrep<N, E>>()
                .is_none_or(|c| c.radius != radius || c.inst != *inst)
        });
        let removed = bucket.len() != before;
        if bucket.is_empty() {
            entries.remove(&key);
        }
        removed
    }
}

/// An owned, *repairable* skeleton cache — the engine substrate of
/// dynamic-graph workloads.
///
/// [`PreparedInstance`] borrows its instance and is immutable: perfect
/// for sweeping many proofs over one frozen graph, useless once the
/// graph itself churns. A `SkeletonStore` owns the same per-node data
/// (skeletons, membership table, inverted dependency table) but keeps
/// them in per-node buckets instead of frozen CSR arrays, so after a
/// topology mutation the affected balls can be **rebuilt in place**
/// ([`Self::rebuild`]) — `O(Σ|changed ball|)` work — while every other
/// node's cached skeleton survives untouched. Label changes are cheaper
/// still: [`Self::set_node_label`] patches the stored label through the
/// dependency table without any BFS.
///
/// The store deliberately knows nothing about *what* changed in the
/// instance — callers (e.g. `lcp-dynamic`'s `DynamicInstance`) apply the
/// mutation to their owned [`Instance`] first, compute the mutation's
/// scope with [`Self::edge_scope`], and hand the scope to
/// [`Self::rebuild`]. `rebuild` reports which views *structurally*
/// changed, which is what makes exact dirty-set tracking possible.
///
/// Since the builder/frozen split, the store is a thin shell over
/// [`CoreBuilder`]: repair runs on the
/// builder, and [`Self::freeze`] / [`Self::from_frozen`] round-trip the
/// builder through the immutable artifact representation. A store
/// repaired after churn and refrozen renders the same word image as a
/// fresh preparation of the mutated instance — dynamic churn and frozen
/// artifacts share one invariant surface (pinned by the refreeze tests).
pub struct SkeletonStore<N = (), E = ()> {
    inner: CoreBuilder<N, E>,
}

impl<N, E> std::fmt::Debug for SkeletonStore<N, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkeletonStore")
            .field("n", &self.inner.n())
            .field("radius", &self.inner.radius())
            .finish_non_exhaustive()
    }
}

impl<N: Clone, E: Clone> SkeletonStore<N, E> {
    /// Builds the store for `inst` at `radius` — same cost as
    /// [`PreparedInstance::new`] (one bounded BFS per node), paid once;
    /// every later mutation repairs only its scope.
    pub fn new(inst: &Instance<N, E>, radius: usize) -> Self {
        SkeletonStore {
            inner: CoreBuilder::build(inst, radius),
        }
    }

    /// Reconstructs a repairable store from a frozen core (typically one
    /// mapped from an artifact file) — the dynamic layer's cold-start
    /// path: no BFS, just unpacking the flat sections into per-node
    /// buckets.
    pub fn from_frozen(core: &FrozenCore<N, E>) -> Self {
        SkeletonStore {
            inner: CoreBuilder::thaw(core),
        }
    }

    /// Renders the store's current state as an immutable [`FrozenCore`]
    /// — byte-identical to freshly preparing the mutated instance, so a
    /// churned cell can be persisted as an artifact.
    pub fn freeze(&self) -> FrozenCore<N, E> {
        self.inner.freeze()
    }

    /// Number of nodes (`n(G)` at construction; mutations preserve it).
    pub fn n(&self) -> usize {
        self.inner.n()
    }

    /// The cache radius `r`.
    pub fn radius(&self) -> usize {
        self.inner.radius()
    }

    /// Global indices of node `v`'s ball members, in view-local order
    /// (mirrors [`PreparedInstance::members`]).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn members(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.inner.members_of(v).iter().map(|&m| m as usize)
    }

    /// The centres whose views contain global node `v`, ascending
    /// (mirrors [`PreparedInstance::dependents`]).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn dependents(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.inner
            .dependents_of(v)
            .iter()
            .map(|&(owner, _)| owner as usize)
    }

    /// Binds `proof` to node `v`'s cached skeleton — the same zero-copy
    /// arena binding as [`PreparedInstance::bind`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `proof.n()` mismatches.
    #[inline]
    pub fn bind<'s>(&'s self, v: usize, proof: &'s Proof) -> View<'s, N, E> {
        assert_eq!(proof.n(), self.n(), "proof must label every node");
        View::bind_arena(
            self.inner.skel_view(v),
            proof.arena(),
            self.inner.members_of(v),
        )
    }

    /// The scope of an edge mutation on `{u, v}`: the sorted union
    /// `ball(u, r) ∪ ball(v, r)` in `inst`'s **current** graph — every
    /// node whose view can differ between the graph with and without the
    /// edge.
    ///
    /// Call it on the graph that *contains* the edge: after applying an
    /// insertion, before applying a deletion. One multi-source BFS,
    /// `O(Σ|ball|)` — no `O(n)` scans.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn edge_scope(&mut self, inst: &Instance<N, E>, u: usize, v: usize) -> Vec<usize> {
        self.inner.edge_scope(inst, u, v)
    }

    /// Rebuilds the cached skeletons of `nodes` against the instance's
    /// current topology and returns the subset whose views **changed
    /// structurally** (membership, adjacency, or distances) — the exact
    /// centres whose verifier output can differ, assuming unchanged
    /// labels and proof bits.
    ///
    /// Cost: one bounded BFS per listed node plus `O(|ball|)` dependency
    /// relinking — independent of `n`. Listing an unaffected node is
    /// harmless (its rebuild is a no-op and it is not reported changed);
    /// duplicates are tolerated.
    ///
    /// # Panics
    ///
    /// Panics if a node index is out of range.
    pub fn rebuild(&mut self, inst: &Instance<N, E>, nodes: &[usize]) -> Vec<usize> {
        self.inner.rebuild(inst, nodes)
    }

    /// Patches node `v`'s label through the dependency table: every view
    /// containing `v` gets the new label at `v`'s view-local slot. No
    /// BFS, no membership change — `O(|dependents(v)| · |patch|)`.
    ///
    /// Returns the views that were patched (the centres whose verifier
    /// output can change), ascending.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn set_node_label(&mut self, v: usize, label: &N) -> Vec<usize> {
        self.inner.set_node_label(v, label)
    }

    /// Fault-injection hook: structurally corrupts node `v`'s cached
    /// skeleton in place — bumps its farthest cached distance and, when
    /// the ball has at least two adjacency entries, reverses the CSR
    /// neighbour array — without touching the instance. Returns a short
    /// description of the damage.
    ///
    /// The corruption is exactly the kind of damage [`Self::rebuild`]
    /// exists to repair: a rebuild over any scope containing `v` compares
    /// against a freshly built skeleton and replaces the corrupted one.
    /// Exposed (hidden) for `lcp-faults` and tests only — never called by
    /// the engine itself.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[doc(hidden)]
    pub fn corrupt_skeleton_for_tests(&mut self, v: usize) -> &'static str {
        self.inner.corrupt_skeleton_for_tests(v)
    }

    /// Runs `scheme`'s verifier at every node against the cached
    /// skeletons — the full-sweep counterpart of [`Self::bind`], used to
    /// seed output caches and as the post-repair reference.
    pub fn evaluate<S>(&self, scheme: &S, proof: &Proof) -> Verdict
    where
        S: Scheme<Node = N, Edge = E>,
    {
        Verdict::from_outputs(
            (0..self.n())
                .map(|v| scheme.verify(&self.bind(v, proof)))
                .collect(),
        )
    }
}

/// Prepares an instance at `scheme`'s radius — the common entry point.
///
/// The `Send + Sync` bounds are required in *both* feature
/// configurations on purpose: Cargo features must be additive, so
/// enabling `parallel` is not allowed to newly reject schemes that the
/// sequential build accepted. Every scheme type in this workspace is
/// trivially thread-safe.
pub fn prepare<'i, S: Scheme>(
    scheme: &S,
    inst: &'i Instance<S::Node, S::Edge>,
) -> PreparedInstance<'i, S::Node, S::Edge>
where
    S::Node: Send + Sync,
    S::Edge: Send + Sync,
{
    PreparedInstance::new(inst, scheme.radius())
}

/// Prepares a whole instance sweep (completeness checks, size
/// measurements, Table 1 rows), in parallel under the `parallel` feature.
#[cfg(not(feature = "parallel"))]
pub fn prepare_sweep<'i, S: Scheme>(
    scheme: &S,
    instances: &'i [Instance<S::Node, S::Edge>],
) -> Vec<PreparedInstance<'i, S::Node, S::Edge>>
where
    S::Node: Send + Sync,
    S::Edge: Send + Sync,
{
    instances
        .iter()
        .map(|inst| PreparedInstance::new(inst, scheme.radius()))
        .collect()
}

/// Prepares a whole instance sweep (completeness checks, size
/// measurements, Table 1 rows), in parallel under the `parallel` feature.
#[cfg(feature = "parallel")]
pub fn prepare_sweep<'i, S: Scheme>(
    scheme: &S,
    instances: &'i [Instance<S::Node, S::Edge>],
) -> Vec<PreparedInstance<'i, S::Node, S::Edge>>
where
    S::Node: Send + Sync,
    S::Edge: Send + Sync,
{
    let radius = scheme.radius();
    if instances.len() > 1 {
        instances
            .par_iter()
            .map(|inst| PreparedInstance::new(inst, radius))
            .collect()
    } else {
        instances
            .iter()
            .map(|inst| PreparedInstance::new(inst, radius))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitString;
    use crate::scheme::evaluate;
    use lcp_graph::generators;

    /// Radius-1 scheme exercising topology, labels, and proofs together.
    struct Fingerprint;
    impl Scheme for Fingerprint {
        type Node = ();
        type Edge = ();
        fn name(&self) -> String {
            "fingerprint".into()
        }
        fn radius(&self) -> usize {
            2
        }
        fn holds(&self, _: &Instance) -> bool {
            true
        }
        fn prove(&self, inst: &Instance) -> Option<Proof> {
            Some(Proof::empty(inst.n()))
        }
        fn verify(&self, view: &View) -> bool {
            let mut h: u64 = 0;
            for u in view.nodes() {
                h = h.wrapping_mul(1_000_003).wrapping_add(view.id(u).0);
                h = h.wrapping_mul(31).wrapping_add(view.dist(u) as u64);
                for b in view.proof(u).iter() {
                    h = h.wrapping_mul(2).wrapping_add(b as u64);
                }
                for &w in view.neighbors(u) {
                    h = h.wrapping_mul(131).wrapping_add(view.id(w).0);
                }
            }
            !h.is_multiple_of(3)
        }
    }

    #[test]
    fn bound_views_match_extracted_views() {
        let inst = Instance::unlabeled(generators::grid(3, 4));
        let prep = PreparedInstance::new(&inst, 2);
        let proof = Proof::from_fn(inst.n(), |v| {
            BitString::from_bits((0..v % 4).map(|i| i % 2 == 0))
        });
        for v in 0..inst.n() {
            assert_eq!(
                prep.bind(v, &proof),
                View::extract(&inst, &proof, v, 2),
                "node {v}"
            );
        }
    }

    #[test]
    fn evaluate_matches_naive_executor() {
        let inst = Instance::unlabeled(generators::cycle(9));
        let prep = PreparedInstance::new(&inst, Fingerprint.radius());
        for seed in 0..8u64 {
            let proof = Proof::from_fn(inst.n(), |v| {
                BitString::from_bits((0..3).map(|i| (seed >> i) & 1 == 1 && v % 2 == 0))
            });
            assert_eq!(
                prep.evaluate(&Fingerprint, &proof),
                evaluate(&Fingerprint, &inst, &proof)
            );
        }
    }

    #[test]
    fn until_reject_agrees_with_full_verdict() {
        let inst = Instance::unlabeled(generators::barbell(4));
        let prep = PreparedInstance::new(&inst, Fingerprint.radius());
        let proof = Proof::empty(inst.n());
        let verdict = prep.evaluate(&Fingerprint, &proof);
        let first = prep.evaluate_until_reject(&Fingerprint, &proof);
        assert_eq!(first, verdict.rejecting().first().copied());
    }

    #[test]
    fn arena_mutation_is_visible_through_bindings() {
        let inst = Instance::unlabeled(generators::path(7));
        let prep = PreparedInstance::new(&inst, 1);
        let mut proof = Proof::with_capacity(7, 2);
        proof.set(3, BitString::from_bits([true, false]));
        let touched: Vec<usize> = prep.dependents(3).collect();
        assert_eq!(touched, vec![2, 3, 4], "radius-1 ball of node 3 on a path");
        // Bound views read the arena's current bits: they agree with a
        // naive extraction of the mutated proof, with zero re-binding.
        for v in 0..7 {
            assert_eq!(
                prep.bind(v, &proof),
                View::extract(&inst, &proof, v, 1),
                "view {v}"
            );
        }
        // Mutating again is immediately visible through fresh bindings.
        proof.flip(3, 0);
        assert_eq!(
            prep.bind(2, &proof)
                .proof(prep.bind(2, &proof).n() - 1)
                .first(),
            Some(false),
            "flip visible through the borrowed binding"
        );
    }

    #[test]
    fn members_and_dependents_are_inverse_tables() {
        let inst = Instance::unlabeled(generators::grid(3, 4));
        let prep = PreparedInstance::new(&inst, 2);
        for v in 0..inst.n() {
            // members(v) is the sorted radius-r ball around v.
            let ms: Vec<usize> = prep.members(v).collect();
            assert_eq!(ms, lcp_graph::traversal::ball(inst.graph(), v, 2));
            // Exact inversion: w ∈ dependents(v) ⇔ v ∈ members(w).
            for w in 0..inst.n() {
                assert_eq!(
                    prep.dependents(v).any(|o| o == w),
                    prep.members(w).any(|m| m == v),
                    "inversion broken at (v={v}, w={w})"
                );
            }
        }
    }

    #[test]
    fn skeleton_store_matches_prepared_instance_when_static() {
        let inst = Instance::unlabeled(generators::grid(3, 4));
        let prep = PreparedInstance::new(&inst, 2);
        let store = SkeletonStore::new(&inst, 2);
        let proof = Proof::from_fn(inst.n(), |v| {
            BitString::from_bits((0..v % 3).map(|i| i % 2 == 0))
        });
        for v in 0..inst.n() {
            assert_eq!(store.bind(v, &proof), prep.bind(v, &proof), "view {v}");
            assert_eq!(
                store.members(v).collect::<Vec<_>>(),
                prep.members(v).collect::<Vec<_>>()
            );
            assert_eq!(
                store.dependents(v).collect::<Vec<_>>(),
                prep.dependents(v).collect::<Vec<_>>()
            );
        }
        assert_eq!(
            store.evaluate(&Fingerprint, &proof),
            prep.evaluate(&Fingerprint, &proof)
        );
    }

    #[test]
    fn rebuild_repairs_exactly_the_changed_views() {
        let mut inst = Instance::unlabeled(generators::cycle(10));
        let mut store = SkeletonStore::new(&inst, 2);
        let proof = Proof::empty(10);

        // Insert a chord, rebuild its scope, and check against a fresh
        // full preparation of the mutated instance.
        inst.insert_edge(0, 5).unwrap();
        let scope = store.edge_scope(&inst, 0, 5);
        let expected_scope: Vec<usize> = {
            let mut s = lcp_graph::traversal::ball(inst.graph(), 0, 2);
            s.extend(lcp_graph::traversal::ball(inst.graph(), 5, 2));
            s.sort_unstable();
            s.dedup();
            s
        };
        assert_eq!(scope, expected_scope);
        let changed = store.rebuild(&inst, &scope);
        assert!(!changed.is_empty());
        assert!(changed.iter().all(|c| scope.contains(c)));
        let fresh = SkeletonStore::new(&inst, 2);
        for v in 0..10 {
            assert_eq!(store.bind(v, &proof), fresh.bind(v, &proof), "view {v}");
            assert_eq!(
                store.dependents(v).collect::<Vec<_>>(),
                fresh.dependents(v).collect::<Vec<_>>(),
                "dependents of {v}"
            );
        }

        // A repaired store refreezes to the same word image as a fresh
        // preparation of the mutated instance — churn and artifacts
        // share one invariant surface.
        assert_eq!(
            store.freeze().words(),
            fresh.freeze().words(),
            "refreeze after rebuild is byte-identical to a fresh freeze"
        );

        // Rebuilding an unaffected scope is a no-op and reports nothing.
        assert_eq!(store.rebuild(&inst, &scope), Vec::<usize>::new());

        // Deleting the chord again: scope computed while the edge exists.
        let scope = store.edge_scope(&inst, 0, 5);
        inst.remove_edge(0, 5).unwrap();
        let changed = store.rebuild(&inst, &scope);
        assert!(!changed.is_empty());
        let fresh = SkeletonStore::new(&inst, 2);
        for v in 0..10 {
            assert_eq!(store.bind(v, &proof), fresh.bind(v, &proof), "view {v}");
        }
    }

    #[test]
    fn injected_skeleton_corruption_is_repaired_by_rebuild() {
        let inst = Instance::unlabeled(generators::grid(3, 4));
        let mut store = SkeletonStore::new(&inst, 2);
        let proof = Proof::empty(inst.n());
        let fresh = SkeletonStore::new(&inst, 2);
        let damage = store.corrupt_skeleton_for_tests(5);
        assert_ne!(damage, "empty skeleton: nothing to corrupt");
        // The corrupted view diverges from the truth...
        assert_ne!(store.bind(5, &proof), fresh.bind(5, &proof));
        // ...and a rebuild over a scope containing it repairs exactly it.
        let changed = store.rebuild(&inst, &[4, 5, 6]);
        assert_eq!(changed, vec![5]);
        for v in 0..inst.n() {
            assert_eq!(store.bind(v, &proof), fresh.bind(v, &proof), "view {v}");
        }
    }

    #[test]
    fn store_round_trips_through_a_frozen_core() {
        let inst = Instance::unlabeled(generators::grid(3, 4));
        let store = SkeletonStore::<(), ()>::new(&inst, 2);
        let frozen = store.freeze();
        let thawed = SkeletonStore::from_frozen(&frozen);
        let proof = Proof::empty(inst.n());
        for v in 0..inst.n() {
            assert_eq!(thawed.bind(v, &proof), store.bind(v, &proof), "view {v}");
            assert_eq!(
                thawed.dependents(v).collect::<Vec<_>>(),
                store.dependents(v).collect::<Vec<_>>()
            );
        }
        assert_eq!(thawed.freeze().words(), frozen.words());
    }

    #[test]
    fn prepared_instance_from_core_matches_new() {
        let inst = Instance::unlabeled(generators::grid(3, 4));
        let prep = PreparedInstance::new(&inst, 2);
        let adopted = PreparedInstance::from_core(&inst, Arc::clone(prep.core()));
        let proof = Proof::empty(inst.n());
        for v in 0..inst.n() {
            assert_eq!(adopted.bind(v, &proof), prep.bind(v, &proof), "view {v}");
        }
        assert_eq!(
            adopted.evaluate(&Fingerprint, &proof),
            prep.evaluate(&Fingerprint, &proof)
        );
    }

    #[test]
    fn deadline_aware_sweeps_match_their_unbounded_twins() {
        let inst = Instance::unlabeled(generators::cycle(9));
        let prep = PreparedInstance::new(&inst, Fingerprint.radius());
        let proof = Proof::empty(inst.n());
        let unbounded = Deadline::none();
        assert_eq!(
            prep.evaluate_within(&Fingerprint, &proof, &unbounded),
            Ok(prep.evaluate(&Fingerprint, &proof))
        );
        assert_eq!(
            prep.evaluate_until_reject_within(&Fingerprint, &proof, &unbounded),
            Ok(prep.evaluate_until_reject(&Fingerprint, &proof))
        );
        let expired = Deadline::after(std::time::Duration::ZERO);
        assert_eq!(
            prep.evaluate_within(&Fingerprint, &proof, &expired),
            Err(DeadlineExpired)
        );
        assert_eq!(
            prep.evaluate_until_reject_within(&Fingerprint, &proof, &expired),
            Err(DeadlineExpired)
        );
    }

    #[test]
    fn label_patches_flow_through_dependents() {
        let g = generators::path(6);
        let mut inst: Instance<u8> = Instance::with_node_data(g, vec![0u8; 6]);
        let mut store = SkeletonStore::new(&inst, 1);
        inst.set_node_label(3, 9);
        let touched = store.set_node_label(3, &9);
        assert_eq!(touched, vec![2, 3, 4], "radius-1 dependents on a path");
        let proof = Proof::empty(6);
        let fresh = SkeletonStore::new(&inst, 1);
        for v in 0..6 {
            assert_eq!(store.bind(v, &proof), fresh.bind(v, &proof), "view {v}");
        }
    }

    #[test]
    fn dependents_are_the_ball_inverses() {
        let inst = Instance::unlabeled(generators::cycle(8));
        let prep = PreparedInstance::new(&inst, 2);
        for v in 0..8 {
            let mut deps: Vec<usize> = prep.dependents(v).collect();
            deps.sort_unstable();
            let expected = lcp_graph::traversal::ball(inst.graph(), v, 2);
            assert_eq!(deps, expected, "ball symmetry on a cycle");
        }
    }

    #[test]
    fn prepare_sweep_prepares_every_instance() {
        let instances: Vec<Instance> = (3..7)
            .map(|n| Instance::unlabeled(generators::cycle(n)))
            .collect();
        let prepared = prepare_sweep(&Fingerprint, &instances);
        assert_eq!(prepared.len(), 4);
        for (p, inst) in prepared.iter().zip(&instances) {
            assert_eq!(p.n(), inst.n());
            assert_eq!(p.radius(), Fingerprint.radius());
        }
    }

    #[test]
    fn labelled_instances_bind_labels() {
        let g = generators::path(4);
        let inst: Instance<u8> = Instance::with_node_data(g, vec![9u8, 8, 7, 6]);
        struct LabelSum;
        impl Scheme for LabelSum {
            type Node = u8;
            type Edge = ();
            fn name(&self) -> String {
                "label-sum".into()
            }
            fn radius(&self) -> usize {
                1
            }
            fn holds(&self, _: &Instance<u8>) -> bool {
                true
            }
            fn prove(&self, inst: &Instance<u8>) -> Option<Proof> {
                Some(Proof::empty(inst.n()))
            }
            fn verify(&self, view: &View<u8>) -> bool {
                view.nodes()
                    .map(|u| *view.node_label(u) as usize)
                    .sum::<usize>()
                    % 2
                    == 1
            }
        }
        let prep = PreparedInstance::new(&inst, 1);
        let proof = Proof::empty(4);
        assert_eq!(
            prep.evaluate(&LabelSum, &proof),
            evaluate(&LabelSum, &inst, &proof)
        );
    }
}
