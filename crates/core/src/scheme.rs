//! The [`Scheme`] trait (prover + verifier + ground truth) and the
//! acceptance semantics of the model.

use crate::batch::BatchView;
use crate::instance::Instance;
use crate::proof::Proof;
use crate::view::View;

/// A proof labelling scheme `(f, A)` for one graph property or problem
/// (§2.2): a prover that labels yes-instances, a constant-radius local
/// verifier, and — for the conformance harness — the centralized ground
/// truth.
///
/// Contract (checked empirically by [`crate::harness`]):
///
/// * **Completeness**: if `holds(G)` then `prove(G)` returns a proof that
///   every node accepts.
/// * **Soundness**: if `!holds(G)` then *every* proof is rejected by at
///   least one node (and `prove` is expected to return `None`).
/// * **Locality**: `verify` sees only the extracted radius-[`Scheme::radius`]
///   view.
///
/// Schemes may rely on a *family promise* (§2.2's `F`): e.g. the cycle
/// schemes assume the input is a cycle. The harness only feeds instances
/// from the scheme's family.
pub trait Scheme {
    /// Per-node input labels (`()` for pure graph properties).
    type Node: Clone;
    /// Per-edge input labels (`()` when presence alone matters).
    type Edge: Clone;

    /// Human-readable name, used in harness and bench reports.
    fn name(&self) -> String;

    /// The verifier's local horizon `r` (a constant per scheme).
    fn radius(&self) -> usize;

    /// Centralized ground truth: does the instance have the property /
    /// is the labelled solution correct?
    fn holds(&self, inst: &Instance<Self::Node, Self::Edge>) -> bool;

    /// The prover `f`: a proof for a yes-instance, `None` when the
    /// instance cannot be certified (in particular on no-instances).
    fn prove(&self, inst: &Instance<Self::Node, Self::Edge>) -> Option<Proof>;

    /// The verifier `A` at one node, given its extracted local view.
    fn verify(&self, view: &View<Self::Node, Self::Edge>) -> bool;

    /// Capability probe for the batched evaluation layer: whether this
    /// verifier has a bit-sliced kernel ([`Self::verify_batch`]).
    ///
    /// The batched search loops (`lcp_core::batch`) only call
    /// [`Self::verify_batch`] on schemes that return `true` here; every
    /// other scheme is routed to the scalar [`Self::verify`] path, so
    /// the default `false` is always safe.
    fn supports_batch(&self) -> bool {
        false
    }

    /// The verifier `A` at one node, evaluated against up to 64
    /// candidate proofs at once: bit `i` of the returned word is the
    /// verifier's output on lane `i` of the [`BatchView`].
    ///
    /// Implementations must be *lane-exact*: bit `i` must equal what
    /// [`Self::verify`] would return on lane `i`'s proof (the
    /// `batch_equivalence` property tests pin this). Bits of inactive
    /// lanes (outside [`BatchView::active`]) may be anything — callers
    /// mask them.
    ///
    /// The default panics; it is only reachable when
    /// [`Self::supports_batch`] is overridden without this method.
    fn verify_batch(&self, view: &BatchView<'_, Self::Node, Self::Edge>) -> u64 {
        let _ = view;
        unreachable!(
            "scheme '{}' advertises supports_batch() but has no verify_batch kernel",
            self.name()
        )
    }
}

/// The outcome of running a verifier at every node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Verdict {
    outputs: Vec<bool>,
}

impl Verdict {
    /// Builds a verdict from per-node outputs (index order).
    ///
    /// Exists for alternative executors — notably the message-passing
    /// simulator in `lcp-sim`, which must report through the same type as
    /// [`evaluate`].
    pub fn from_outputs(outputs: Vec<bool>) -> Self {
        Verdict { outputs }
    }

    /// Whether all nodes accepted — the paper's global accept condition.
    ///
    /// An empty graph is vacuously accepted.
    pub fn accepted(&self) -> bool {
        self.outputs.iter().all(|&b| b)
    }

    /// Indices of rejecting nodes (the "alarm raisers").
    pub fn rejecting(&self) -> Vec<usize> {
        self.outputs
            .iter()
            .enumerate()
            .filter_map(|(v, &b)| (!b).then_some(v))
            .collect()
    }

    /// Per-node outputs in index order.
    pub fn outputs(&self) -> &[bool] {
        &self.outputs
    }
}

/// Runs the verifier of `scheme` at every node of `inst` with `proof`.
///
/// This is the centralized **reference** executor: it re-extracts every
/// view from scratch on each call. `lcp-sim` provides the message-passing
/// executor, and [`crate::engine::PreparedInstance::evaluate`] the cached
/// fast path; all three must agree (property-tested in `lcp-sim` and
/// `tests/engine_equivalence.rs`). Prefer the engine when the same
/// instance is evaluated against more than one proof.
///
/// # Panics
///
/// Panics if `proof.n()` does not match the instance.
pub fn evaluate<S: Scheme>(
    scheme: &S,
    inst: &Instance<S::Node, S::Edge>,
    proof: &Proof,
) -> Verdict {
    let r = scheme.radius();
    let outputs = inst
        .graph()
        .nodes()
        .map(|v| scheme.verify(&View::extract(inst, proof, v, r)))
        .collect();
    Verdict { outputs }
}

/// Runs the verifier node by node and stops at the first rejection,
/// returning the rejecting node — or `None` when every node accepts.
///
/// Callers that only need the global accept/reject bit (the `∃` rejecting
/// node quantifier) should use this instead of [`evaluate`]: it skips the
/// remaining extractions as soon as an alarm is raised. The cached
/// counterpart is
/// [`crate::engine::PreparedInstance::evaluate_until_reject`].
///
/// # Panics
///
/// Panics if `proof.n()` does not match the instance.
pub fn evaluate_until_reject<S: Scheme>(
    scheme: &S,
    inst: &Instance<S::Node, S::Edge>,
    proof: &Proof,
) -> Option<usize> {
    let r = scheme.radius();
    inst.graph()
        .nodes()
        .find(|&v| !scheme.verify(&View::extract(inst, proof, v, r)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitString;
    use lcp_graph::generators;

    /// Toy scheme: "every node has even degree", radius 0, no proof.
    struct EvenDegrees;

    impl Scheme for EvenDegrees {
        type Node = ();
        type Edge = ();
        fn name(&self) -> String {
            "even-degrees".into()
        }
        fn radius(&self) -> usize {
            1 // need to see incident edges
        }
        fn holds(&self, inst: &Instance) -> bool {
            lcp_graph::euler::all_degrees_even(inst.graph())
        }
        fn prove(&self, inst: &Instance) -> Option<Proof> {
            self.holds(inst).then(|| Proof::empty(inst.n()))
        }
        fn verify(&self, view: &View) -> bool {
            view.degree(view.center()).is_multiple_of(2)
        }
    }

    #[test]
    fn evaluate_accepts_yes_instance() {
        let inst = Instance::unlabeled(generators::cycle(5));
        let proof = EvenDegrees.prove(&inst).unwrap();
        let verdict = evaluate(&EvenDegrees, &inst, &proof);
        assert!(verdict.accepted());
        assert!(verdict.rejecting().is_empty());
        assert_eq!(verdict.outputs().len(), 5);
    }

    #[test]
    fn evaluate_pinpoints_rejecting_nodes() {
        let inst = Instance::unlabeled(generators::path(4));
        let verdict = evaluate(&EvenDegrees, &inst, &Proof::empty(4));
        assert!(!verdict.accepted());
        // The two endpoints have odd degree.
        assert_eq!(verdict.rejecting(), vec![0, 3]);
    }

    #[test]
    fn empty_graph_is_vacuously_accepted() {
        let inst = Instance::unlabeled(lcp_graph::Graph::new());
        let verdict = evaluate(&EvenDegrees, &inst, &Proof::empty(0));
        assert!(verdict.accepted());
    }

    #[test]
    fn proofs_are_visible_to_verifier() {
        /// Radius-1 scheme whose verifier insists every node holds bit 1.
        struct AllOnes;
        impl Scheme for AllOnes {
            type Node = ();
            type Edge = ();
            fn name(&self) -> String {
                "all-ones".into()
            }
            fn radius(&self) -> usize {
                1
            }
            fn holds(&self, _: &Instance) -> bool {
                true
            }
            fn prove(&self, inst: &Instance) -> Option<Proof> {
                Some(Proof::from_fn(inst.n(), |_| BitString::from_bits([true])))
            }
            fn verify(&self, view: &View) -> bool {
                view.nodes().all(|u| view.proof(u).first() == Some(true))
            }
        }
        let inst = Instance::unlabeled(generators::cycle(4));
        let good = AllOnes.prove(&inst).unwrap();
        assert!(evaluate(&AllOnes, &inst, &good).accepted());
        let mut bad = good.clone();
        bad.set(2, BitString::from_bits([false]));
        let verdict = evaluate(&AllOnes, &inst, &bad);
        // Node 2 and both its neighbours see the bad bit.
        assert_eq!(verdict.rejecting(), vec![1, 2, 3]);
    }
}
