//! The artifact tier's public contract, end to end: a core that went
//! through `save` → disk → `mmap` `open` is observationally identical
//! to the core built in process — same members, same dependents, same
//! verdicts from a label-sensitive verifier — and every way a file can
//! be wrong (corrupted, truncated, version-skewed, mistyped) is a
//! diagnosable rejection naming the file and byte offset, never UB and
//! never a silently different answer.

use lcp_core::{
    ArtifactSource, ArtifactStore, CoreProvenance, EdgeMap, FrozenCore, Instance, Proof, Scheme,
    View,
};
use lcp_graph::generators;
use std::path::PathBuf;

const RADIUS: usize = 2;

/// A verifier whose output depends on everything an artifact persists:
/// topology, identifiers, distances, proof bits, and both label types.
struct LabelFingerprint;

impl Scheme for LabelFingerprint {
    type Node = bool;
    type Edge = u8;
    fn name(&self) -> String {
        "label-fingerprint".into()
    }
    fn radius(&self) -> usize {
        RADIUS
    }
    fn holds(&self, _: &Instance<bool, u8>) -> bool {
        true
    }
    fn prove(&self, inst: &Instance<bool, u8>) -> Option<Proof> {
        Some(Proof::empty(inst.n()))
    }
    fn verify(&self, view: &View<bool, u8>) -> bool {
        let mut h: u64 = view.center() as u64;
        for u in view.nodes() {
            h = h.wrapping_mul(1_000_003).wrapping_add(view.id(u).0);
            h = h.wrapping_mul(31).wrapping_add(view.dist(u) as u64);
            h = h.wrapping_mul(3).wrapping_add(*view.node_label(u) as u64);
            for &w in view.neighbors(u) {
                h = h.wrapping_mul(131).wrapping_add(view.id(w).0);
                if let Some(&e) = view.edge_label(u, w) {
                    h = h.wrapping_mul(257).wrapping_add(e as u64);
                }
            }
        }
        !h.is_multiple_of(7)
    }
}

/// A deterministic labelled instance: grid topology, alternating node
/// marks, edge labels derived from the endpoint ids.
fn labelled_instance() -> Instance<bool, u8> {
    let g = generators::grid(4, 5);
    let nodes = (0..g.n()).map(|v| v % 3 == 0).collect();
    let mut edges = EdgeMap::new();
    for v in 0..g.n() {
        for &w in g.neighbors(v) {
            if v < w {
                edges.insert((v, w), ((v * 7 + w) % 251) as u8);
            }
        }
    }
    Instance::with_data(g, nodes, edges)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lcp-artifact-rt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The one `.lcpc` file in `dir`.
fn artifact_file(dir: &std::path::Path) -> PathBuf {
    std::fs::read_dir(dir)
        .expect("list artifact dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "lcpc"))
        .expect("one persisted artifact")
}

#[test]
fn mapped_cores_are_observationally_identical_to_built_cores() {
    let dir = temp_dir("equiv");
    let inst = labelled_instance();
    let scheme = LabelFingerprint;
    let proof = scheme.prove(&inst).expect("honest proof");

    // Ground truth: a from-scratch in-process preparation.
    let (fresh, prov) = ArtifactSource::BuildFresh.prepare(&inst, RADIUS);
    assert_eq!(prov, CoreProvenance::Built);
    let baseline = fresh.evaluate(&scheme, &proof);

    // First process: builds, and persists the frozen core on the way.
    {
        let store = ArtifactStore::open(&dir).expect("open artifact dir");
        let (prep, prov) = store.prepare(&inst, RADIUS);
        assert_eq!(prov, CoreProvenance::Built);
        assert_eq!((store.writes(), store.loads()), (1, 0));
        assert_eq!(prep.evaluate(&scheme, &proof), baseline);
    }

    // "Restarted process": a fresh store over the same directory maps
    // the artifact instead of rebuilding, and nothing observable moves.
    let store = ArtifactStore::open(&dir).expect("reopen artifact dir");
    let (mapped, prov) = store.prepare(&inst, RADIUS);
    assert_eq!(prov, CoreProvenance::ArtifactLoaded);
    assert_eq!((store.loads(), store.builds()), (1, 0));
    assert_eq!(mapped.evaluate(&scheme, &proof), baseline);
    for v in 0..inst.n() {
        assert_eq!(
            mapped.members(v).collect::<Vec<_>>(),
            fresh.members(v).collect::<Vec<_>>(),
            "ball membership of {v} drifted through the disk round-trip"
        );
        assert_eq!(
            mapped.dependents(v).collect::<Vec<_>>(),
            fresh.dependents(v).collect::<Vec<_>>(),
            "dependent set of {v} drifted through the disk round-trip"
        );
    }

    // Within one store, the second prepare is an in-process cache hit.
    let (_, prov) = store.prepare(&inst, RADIUS);
    assert_eq!(prov, CoreProvenance::CacheHit);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_artifacts_are_rejected_rebuilt_and_replaced() {
    let dir = temp_dir("corrupt");
    let inst = labelled_instance();

    ArtifactStore::open(&dir)
        .expect("open artifact dir")
        .prepare(&inst, RADIUS);
    let path = artifact_file(&dir);

    // Flip one payload byte; the store must notice, rebuild, and leave
    // a good file behind — corruption costs time, never correctness.
    let mut bytes = std::fs::read(&path).expect("read artifact");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).expect("corrupt artifact");

    let store = ArtifactStore::open(&dir).expect("reopen artifact dir");
    let (_, prov) = store.prepare(&inst, RADIUS);
    assert_eq!(prov, CoreProvenance::Built, "corrupt file must not serve");
    assert_eq!((store.rejects(), store.writes()), (1, 1));

    // The rewritten file serves the next process from disk again.
    let healed = ArtifactStore::open(&dir).expect("reopen after heal");
    let (_, prov) = healed.prepare(&inst, RADIUS);
    assert_eq!(prov, CoreProvenance::ArtifactLoaded);
    assert_eq!(healed.rejects(), 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejections_name_the_file_and_byte_offset() {
    let dir = temp_dir("reject");
    std::fs::create_dir_all(&dir).expect("create dir");

    // Not an artifact at all: rejected at the magic word, byte 0.
    let bogus = dir.join("bogus.lcpc");
    std::fs::write(&bogus, [0u8; 16 * 8]).expect("write bogus file");
    let err = FrozenCore::<(), ()>::open(&bogus, None).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("bogus.lcpc"), "no file name in: {msg}");
    assert!(msg.contains("byte 0"), "no offset in: {msg}");
    assert!(msg.contains("magic"), "no diagnosis in: {msg}");

    // A real artifact truncated mid-section is caught by the header's
    // total-word count before any section is trusted.
    let store_dir = dir.join("store");
    let inst = Instance::unlabeled(generators::cycle(32));
    ArtifactStore::open(&store_dir)
        .expect("open artifact dir")
        .prepare(&inst, RADIUS);
    let path = artifact_file(&store_dir);
    let bytes = std::fs::read(&path).expect("read artifact");
    let cut = dir.join("cut.lcpc");
    std::fs::write(&cut, &bytes[..bytes.len() / 2]).expect("truncate");
    let msg = FrozenCore::<(), ()>::open(&cut, None)
        .unwrap_err()
        .to_string();
    assert!(msg.contains("cut.lcpc"), "no file name in: {msg}");
    assert!(msg.contains("byte"), "no offset in: {msg}");

    // Opening a unit-labelled core as a differently-typed one is a tag
    // mismatch at header word 8 (byte 64) — type confusion cannot map.
    let msg = FrozenCore::<bool, ()>::open(&path, None)
        .unwrap_err()
        .to_string();
    assert!(msg.contains("byte 64"), "no tag offset in: {msg}");
    assert!(msg.contains("tag"), "no diagnosis in: {msg}");

    std::fs::remove_dir_all(&dir).ok();
}
