//! Flat, word-packed proof storage: one allocation for all nodes' bits.
//!
//! The LCP hot paths — the exhaustive proof odometer, adversarial
//! bit-flip search, tamper probing — walk through millions of candidate
//! proofs that differ from their predecessor at a single node. Storing a
//! proof as `Vec<BitString>` (one heap allocation per node) makes every
//! candidate pay allocator traffic; a [`ProofArena`] instead packs every
//! node's bits into one shared `Vec<u64>` with per-node `(offset, len,
//! capacity)` slots, so
//!
//! * reading node `v`'s bits is a bounds-checked slice
//!   ([`ProofArena::get`] returns a borrowed [`ProofRef`], no copy);
//! * overwriting node `v` within its reserved capacity is a word-level
//!   copy ([`ProofArena::set`], zero allocations);
//! * flipping a single bit is one XOR ([`ProofArena::flip`]).
//!
//! Slots are word-aligned (offsets are in whole `u64`s), so every write
//! is a straight word copy; a slot whose new value outgrows its
//! capacity is relocated to the end of the arena, leaving its old words
//! as dead slack (bounded by the total volume of over-capacity writes;
//! rebuild via [`ProofArena::from_refs`] to reclaim it). Search loops
//! preallocate capacity ([`ProofArena::with_capacity`]) and therefore
//! never allocate per candidate — the property the engine's
//! allocation-probe test pins.
#![deny(missing_docs)]

use crate::bits::{words_for, AsBits, BitString, ProofRef};
use std::fmt;

/// Per-node slot: where in the word pool the node's bits live.
#[derive(Clone, Copy, Debug)]
struct Slot {
    /// Word offset into [`ProofArena::words`].
    off: u32,
    /// Logical length in bits.
    len: u32,
    /// Reserved capacity in whole words.
    cap_words: u32,
}

/// Word-packed storage for one proof: every node's bit string in a
/// single `Vec<u64>`, addressed through per-node slots.
///
/// This is the representation behind [`crate::Proof`]; the harness's
/// search loops mutate one preallocated arena in place instead of
/// cloning per-node [`BitString`]s.
///
/// ```
/// use lcp_core::{AsBits, BitString, ProofArena};
///
/// let mut a = ProofArena::with_capacity(3, 70);
/// a.set(1, BitString::from_bits((0..70).map(|i| i % 3 == 0)).as_bits());
/// assert_eq!(a.get(1).len(), 70);
/// assert_eq!(a.get(1).get(69), Some(true));
/// assert!(a.get(0).is_empty());
/// a.flip(1, 69);
/// assert_eq!(a.get(1).get(69), Some(false));
/// ```
#[derive(Clone, Default)]
pub struct ProofArena {
    words: Vec<u64>,
    slots: Vec<Slot>,
}

impl ProofArena {
    /// An arena for `n` nodes, each holding the empty string `ε` with no
    /// reserved capacity.
    pub fn empty(n: usize) -> Self {
        ProofArena {
            words: Vec::new(),
            slots: vec![
                Slot {
                    off: 0,
                    len: 0,
                    cap_words: 0,
                };
                n
            ],
        }
    }

    /// An arena for `n` nodes, each starting at `ε` with room for
    /// `bits_per_node` bits — the search-loop constructor: any later
    /// [`Self::set`] within the budget is allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the total reserved pool exceeds `u32::MAX` words (the
    /// slot-offset width).
    pub fn with_capacity(n: usize, bits_per_node: usize) -> Self {
        let cap_words = u32::try_from(words_for(bits_per_node)).expect("capacity fits u32");
        let total = n
            .checked_mul(cap_words as usize)
            .filter(|&t| u32::try_from(t).is_ok())
            .expect("arena within u32 words");
        let slots = (0..n)
            .map(|v| Slot {
                off: (v * cap_words as usize) as u32,
                len: 0,
                cap_words,
            })
            .collect();
        ProofArena {
            words: vec![0u64; total],
            slots,
        }
    }

    /// Packs explicit per-node strings (capacity = exact fit).
    pub fn from_strings(strings: &[BitString]) -> Self {
        Self::from_refs(strings.iter().map(BitString::as_bits))
    }

    /// Packs borrowed bit slices in order (capacity = exact fit).
    pub fn from_refs<'a>(refs: impl IntoIterator<Item = ProofRef<'a>>) -> Self {
        let mut arena = ProofArena::default();
        for r in refs {
            arena.push(r);
        }
        arena
    }

    /// Appends one more node slot holding a copy of `bits`; returns its
    /// index.
    pub fn push(&mut self, bits: ProofRef<'_>) -> usize {
        let off = self.words.len();
        let nw = words_for(bits.len());
        self.words.extend_from_slice(&bits.words()[..nw]);
        self.slots.push(Slot {
            off: u32::try_from(off).expect("arena within u32 words"),
            len: u32::try_from(bits.len()).expect("slot within u32 bits"),
            cap_words: nw as u32,
        });
        self.slots.len() - 1
    }

    /// Number of node slots.
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// Whether the arena has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Borrows node `v`'s bits. No copy: the returned [`ProofRef`] reads
    /// straight from the shared word pool.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline(always)]
    pub fn get(&self, v: usize) -> ProofRef<'_> {
        let slot = self.slots[v];
        let off = slot.off as usize;
        ProofRef::raw(
            &self.words[off..off + words_for(slot.len as usize)],
            slot.len as usize,
        )
    }

    /// Length in bits of node `v`'s string.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn len_of(&self, v: usize) -> usize {
        self.slots[v].len as usize
    }

    /// Overwrites node `v`'s bits with `bits` — a word-level copy.
    ///
    /// Within the slot's reserved capacity this is allocation-free (the
    /// odometer/bit-flip fast path); a larger value relocates the slot
    /// to freshly reserved words at the end of the arena.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn set(&mut self, v: usize, bits: ProofRef<'_>) {
        let nw = words_for(bits.len());
        if nw > self.slots[v].cap_words as usize {
            let off = self.words.len();
            self.words.extend_from_slice(&bits.words()[..nw]);
            self.slots[v] = Slot {
                off: u32::try_from(off).expect("arena within u32 words"),
                len: bits.len() as u32,
                cap_words: nw as u32,
            };
        } else {
            let off = self.slots[v].off as usize;
            self.words[off..off + nw].copy_from_slice(&bits.words()[..nw]);
            self.slots[v].len = bits.len() as u32;
        }
    }

    /// Truncates node `v` back to the empty string (capacity is kept).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn clear(&mut self, v: usize) {
        self.slots[v].len = 0;
    }

    /// Rewrites node `v` from a bit iterator, reusing the slot's words.
    ///
    /// Allocation-free while the bits fit the reserved capacity; on
    /// overflow the slot is relocated with doubled reserve.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn write_bits(&mut self, v: usize, bits: impl IntoIterator<Item = bool>) {
        self.clear(v);
        for b in bits {
            self.push_bit(v, b);
        }
    }

    /// Appends one bit to node `v`'s string.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn push_bit(&mut self, v: usize, bit: bool) {
        let slot = self.slots[v];
        let len = slot.len as usize;
        if words_for(len + 1) > slot.cap_words as usize {
            // Relocate with at least one spare word (doubling growth).
            let new_cap = (slot.cap_words as usize * 2).max(1);
            let off = self.words.len();
            let old = slot.off as usize;
            self.words
                .extend_from_within(old..old + slot.cap_words as usize);
            self.words.resize(off + new_cap, 0);
            self.slots[v].off = u32::try_from(off).expect("arena within u32 words");
            self.slots[v].cap_words = new_cap as u32;
        }
        let slot = self.slots[v];
        let pos = slot.off as usize * 64 + len;
        let mask = 1u64 << (pos & 63);
        if bit {
            self.words[pos >> 6] |= mask;
        } else {
            self.words[pos >> 6] &= !mask;
        }
        self.slots[v].len += 1;
    }

    /// Flips bit `index` of node `v` — one XOR, the adversarial mutator.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `index` is out of range.
    pub fn flip(&mut self, v: usize, index: usize) {
        let slot = self.slots[v];
        assert!(
            index < slot.len as usize,
            "bit index {index} out of range for slot of {} bits",
            slot.len
        );
        let pos = slot.off as usize * 64 + index;
        self.words[pos >> 6] ^= 1 << (pos & 63);
    }

    /// The proof size `|P|`: maximum bits at any node (0 when empty).
    pub fn size(&self) -> usize {
        self.slots.iter().map(|s| s.len as usize).max().unwrap_or(0)
    }

    /// Total bits across all nodes.
    pub fn total_bits(&self) -> usize {
        self.slots.iter().map(|s| s.len as usize).sum()
    }

    /// Iterates over the per-node bit slices in index order.
    pub fn iter(&self) -> impl Iterator<Item = ProofRef<'_>> {
        (0..self.n()).map(|v| self.get(v))
    }
}

impl PartialEq for ProofArena {
    /// Content equality: same node count, same bits per node. Layout
    /// (slot order in the pool, capacities, slack) is not observable.
    fn eq(&self, other: &Self) -> bool {
        self.n() == other.n() && (0..self.n()).all(|v| self.get(v) == other.get(v))
    }
}

impl Eq for ProofArena {}

impl fmt::Debug for ProofArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(pattern: &str) -> BitString {
        BitString::from_bits(pattern.chars().map(|c| c == '1'))
    }

    #[test]
    fn empty_arena_slots_are_epsilon() {
        let a = ProofArena::empty(4);
        assert_eq!(a.n(), 4);
        assert_eq!(a.size(), 0);
        assert!(a.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn set_and_get_roundtrip_across_word_boundaries() {
        let mut a = ProofArena::with_capacity(3, 130);
        for len in [0usize, 1, 63, 64, 65, 127, 128, 129, 130] {
            let s = BitString::from_bits((0..len).map(|i| i % 5 == 0 || i % 3 == 1));
            a.set(1, s.as_bits());
            assert_eq!(a.get(1).to_bitstring(), s, "len {len}");
            // Neighbouring slots stay untouched.
            assert!(a.get(0).is_empty());
            assert!(a.get(2).is_empty());
        }
    }

    #[test]
    fn shrinking_then_reading_masks_stale_bits() {
        let mut a = ProofArena::with_capacity(1, 8);
        a.set(0, bs("11111111").as_bits());
        a.set(0, bs("001").as_bits());
        assert_eq!(a.get(0).to_bitstring(), bs("001"));
        assert_eq!(a.get(0).iter().filter(|&b| b).count(), 1);
        // Equality masks the stale tail too.
        assert_eq!(a.get(0), bs("001").as_bits());
        assert_ne!(a.get(0), bs("0011").as_bits());
    }

    #[test]
    fn overflowing_set_relocates() {
        let mut a = ProofArena::with_capacity(2, 4);
        let long = BitString::from_bits((0..200).map(|i| i % 7 == 0));
        a.set(0, long.as_bits());
        assert_eq!(a.get(0).to_bitstring(), long);
        // The other slot still reads its own words.
        a.set(1, bs("1010").as_bits());
        assert_eq!(a.get(1).to_bitstring(), bs("1010"));
        assert_eq!(a.get(0).to_bitstring(), long);
    }

    #[test]
    fn write_bits_and_push_bit_grow_from_zero_capacity() {
        let mut a = ProofArena::empty(2);
        a.write_bits(0, (0..70).map(|i| i % 2 == 0));
        assert_eq!(a.len_of(0), 70);
        assert_eq!(a.get(0).get(68), Some(true));
        assert_eq!(a.get(0).get(69), Some(false));
        a.push_bit(1, true);
        assert_eq!(a.get(1).to_bitstring(), bs("1"));
    }

    #[test]
    fn flip_is_an_involution() {
        let mut a = ProofArena::from_strings(&[bs("0110"), bs("")]);
        a.flip(0, 0);
        assert_eq!(a.get(0).to_bitstring(), bs("1110"));
        a.flip(0, 0);
        assert_eq!(a.get(0).to_bitstring(), bs("0110"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_past_len_panics() {
        let mut a = ProofArena::from_strings(&[bs("01")]);
        a.flip(0, 2);
    }

    #[test]
    fn content_equality_ignores_layout() {
        let tight = ProofArena::from_strings(&[bs("10"), bs("")]);
        let mut roomy = ProofArena::with_capacity(2, 64);
        roomy.set(0, bs("11").as_bits());
        roomy.set(0, bs("10").as_bits());
        assert_eq!(tight, roomy);
        roomy.set(1, bs("0").as_bits());
        assert_ne!(tight, roomy);
    }

    #[test]
    fn sizes_and_totals() {
        let a = ProofArena::from_strings(&[bs("1"), bs("10101"), bs("")]);
        assert_eq!(a.size(), 5);
        assert_eq!(a.total_bits(), 6);
        assert_eq!(format!("{a:?}"), r#"[bits"1", bits"10101", bits""]"#);
    }
}
