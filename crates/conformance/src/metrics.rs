//! The campaign-level metric catalog plus the `--metrics-out` sidecar
//! (see `docs/OBSERVABILITY.md`).
//!
//! Same write-only discipline as `lcp_core::metrics`: counters are
//! bumped at cell boundaries (never inside a search loop) and nothing
//! here is ever read back by the runner, so metrics cannot perturb
//! verdicts, reports, checkpoints, or RNG streams. The sidecar is a
//! separate artifact — `report.json` and checkpoint files never embed
//! it.

use crate::churn::ChurnReport;
use crate::{json_str, CellStatus, Report};
use lcp_obs::{Counter, Histogram, Registry, SpanId};
use std::fmt::Write as _;
use std::sync::OnceLock;

/// Cells actually executed by this process (resumed cells excluded).
pub static CELLS_RUN: Counter = Counter::new();
/// Cells recovered from a `--resume` checkpoint instead of being run.
pub static CELLS_RESUMED: Counter = Counter::new();
/// Cells whose both attempts panicked (the `crashed` verdict).
pub static CELLS_CRASHED: Counter = Counter::new();
/// Cells that expired their `--cell-budget-ms` wall budget.
pub static CELLS_TIMED_OUT: Counter = Counter::new();
/// First attempts that panicked but whose same-seed retry succeeded.
pub static FLAKE_RETRIES: Counter = Counter::new();
/// Wall time per executed cell, milliseconds (both campaign modes; a
/// churn cell observes its incremental + from-scratch total).
pub static CELL_WALL_MS: Histogram = Histogram::new();

/// Registers the campaign catalog into `reg` (idempotent).
pub fn register(reg: &Registry) {
    reg.counter(
        "lcp_campaign_cells_run_total",
        "",
        "matrix cells executed (resumed cells excluded)",
        &CELLS_RUN,
    );
    reg.counter(
        "lcp_campaign_cells_resumed_total",
        "",
        "matrix cells recovered from a --resume checkpoint",
        &CELLS_RESUMED,
    );
    reg.counter(
        "lcp_campaign_cells_crashed_total",
        "",
        "cells whose both attempts panicked",
        &CELLS_CRASHED,
    );
    reg.counter(
        "lcp_campaign_cells_timed_out_total",
        "",
        "cells that expired their wall budget",
        &CELLS_TIMED_OUT,
    );
    reg.counter(
        "lcp_campaign_flake_retries_total",
        "",
        "panicking first attempts recovered by a same-seed retry",
        &FLAKE_RETRIES,
    );
    reg.histogram(
        "lcp_campaign_cell_wall_ms",
        "",
        "wall time per executed cell in milliseconds",
        &CELL_WALL_MS,
    );
}

/// Records one freshly executed cell (either campaign mode).
pub(crate) fn record_cell(status: CellStatus, wall_ms: u128) {
    CELLS_RUN.inc();
    CELL_WALL_MS.observe(wall_ms.min(u64::MAX as u128) as u64);
    match status {
        CellStatus::Crashed => CELLS_CRASHED.inc(),
        CellStatus::TimedOut => CELLS_TIMED_OUT.inc(),
        _ => {}
    }
}

/// The campaign span: wall time of each whole campaign run (static or
/// churn), the root of the span hierarchy.
pub(crate) fn campaign_span() -> SpanId {
    static ID: OnceLock<SpanId> = OnceLock::new();
    *ID.get_or_init(|| lcp_obs::register_span("lcp_span_campaign", None))
}

/// Per-cell child span of [`campaign_span`]: wall time of each freshly
/// executed static cell (isolation, retries, and checkpoint append
/// included).
pub(crate) fn cell_span() -> SpanId {
    static ID: OnceLock<SpanId> = OnceLock::new();
    *ID.get_or_init(|| lcp_obs::register_span("lcp_span_campaign_cell", Some(campaign_span())))
}

/// Per-cell child span of [`campaign_span`] for churn-campaign cells.
pub(crate) fn churn_cell_span() -> SpanId {
    static ID: OnceLock<SpanId> = OnceLock::new();
    *ID.get_or_init(|| lcp_obs::register_span("lcp_span_churn_cell", Some(campaign_span())))
}

/// The process-wide registry with every catalog the campaign touches
/// registered: engine/harness/batch/deadline (`lcp_core::metrics`),
/// the dynamic layer (`lcp_dynamic::metrics`), and this module.
pub fn global_registry() -> &'static Registry {
    let reg = lcp_obs::global();
    lcp_core::metrics::register(reg);
    lcp_dynamic::metrics::register(reg);
    register(reg);
    reg
}

/// Shared sidecar head: identity fields tying the metrics artifact to
/// the campaign that produced it.
fn sidecar_head(w: &mut String, mode: &str, seed: u64, profile: &str, wall_ms: u128) {
    w.push_str("{\n");
    let _ = writeln!(w, "  \"metrics\": 1,");
    let _ = writeln!(w, "  \"mode\": {},", json_str(mode));
    let _ = writeln!(w, "  \"seed\": {seed},");
    let _ = writeln!(w, "  \"profile\": {},", json_str(profile));
    let _ = writeln!(w, "  \"wall_ms\": {wall_ms},");
}

/// Shared sidecar tail: the full registry export, embedded verbatim
/// (re-indented) so one artifact carries both the per-cell phase
/// breakdown and every process-wide counter/histogram.
fn sidecar_tail(w: &mut String) {
    let registry = global_registry().to_json();
    let _ = write!(
        w,
        "  \"registry\": {}\n}}\n",
        registry.trim_end().replace('\n', "\n  ")
    );
}

/// The `--metrics-out` sidecar for a static campaign: per-cell phase
/// (`check`) and wall time — timed-out cells also carry their
/// deadline-poll count — plus the full registry export. Always timed;
/// this artifact is never diffed for determinism.
pub fn static_sidecar(report: &Report) -> String {
    let mut w = String::with_capacity(1 << 14);
    sidecar_head(
        &mut w,
        "static",
        report.seed,
        report.profile,
        report.wall_ms,
    );
    w.push_str("  \"per_cell\": [\n");
    let cells: Vec<_> = report.schemes.iter().flat_map(|s| &s.cells).collect();
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            w,
            "    {{ \"coord\": {}, \"scheme\": {}, \"family\": {}, \"n\": {}, \
             \"polarity\": {}, \"phase\": {}, \"status\": {}, \"wall_ms\": {}, \
             \"deadline_polls\": {} }}",
            c.coord,
            json_str(c.scheme),
            json_str(c.family.name()),
            c.n,
            json_str(c.polarity.name()),
            json_str(c.check),
            json_str(c.status.name()),
            c.wall_ms,
            c.timeout
                .map_or_else(|| "null".into(), |(_, polls)| polls.to_string()),
        );
        w.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    w.push_str("  ],\n");
    sidecar_tail(&mut w);
    w
}

/// The `--metrics-out` sidecar for a churn campaign; every cell is one
/// `churn` phase with its incremental-vs-full wall split.
pub fn churn_sidecar(report: &ChurnReport) -> String {
    let mut w = String::with_capacity(1 << 14);
    sidecar_head(&mut w, "churn", report.seed, report.profile, report.wall_ms);
    w.push_str("  \"per_cell\": [\n");
    for (i, c) in report.cells.iter().enumerate() {
        let _ = write!(
            w,
            "    {{ \"coord\": {}, \"scheme\": {}, \"family\": {}, \"n\": {}, \
             \"polarity\": {}, \"phase\": \"churn\", \"status\": {}, \"steps\": {}, \
             \"checks\": {}, \"incremental_ms\": {}, \"full_ms\": {}, \
             \"deadline_polls\": {} }}",
            c.coord,
            json_str(c.scheme),
            json_str(c.family.name()),
            c.n,
            json_str(c.polarity.name()),
            json_str(c.status.name()),
            c.steps,
            c.checks,
            c.incremental_ms,
            c.full_ms,
            c.timeout
                .map_or_else(|| "null".into(), |(_, polls)| polls.to_string()),
        );
        w.push_str(if i + 1 < report.cells.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    w.push_str("  ],\n");
    sidecar_tail(&mut w);
    w
}
