//! Eulerian graphs: the paper's first `LCP(0)` example (§1.1).

use lcp_core::{Instance, Proof, Scheme, View};

/// The `LCP(0)` scheme for Eulerian graphs on the connected family: no
/// proof at all; each node accepts iff its degree is even.
///
/// ```
/// use lcp_core::{evaluate, Instance, Scheme};
/// use lcp_graph::generators;
/// use lcp_schemes::eulerian::Eulerian;
///
/// let inst = Instance::unlabeled(generators::cycle(5));
/// let proof = Eulerian.prove(&inst).unwrap();
/// assert_eq!(proof.size(), 0);
/// assert!(evaluate(&Eulerian, &inst, &proof).accepted());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Eulerian;

impl Scheme for Eulerian {
    type Node = ();
    type Edge = ();

    fn name(&self) -> String {
        "eulerian".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance) -> bool {
        // Family promise: connected graphs; the local part is the degrees.
        lcp_graph::euler::all_degrees_even(inst.graph())
    }

    fn prove(&self, inst: &Instance) -> Option<Proof> {
        self.holds(inst).then(|| Proof::empty(inst.n()))
    }

    fn verify(&self, view: &View) -> bool {
        view.degree(view.center()).is_multiple_of(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::evaluate;
    use lcp_core::harness::{check_completeness, check_soundness_exhaustive, Soundness};
    use lcp_graph::generators;

    #[test]
    fn completeness_on_eulerian_families() {
        let instances: Vec<Instance> = vec![
            Instance::unlabeled(generators::cycle(3)),
            Instance::unlabeled(generators::cycle(10)),
            Instance::unlabeled(generators::complete(5)),
            Instance::unlabeled(generators::complete(7)),
        ];
        let sizes = check_completeness(
            &Eulerian,
            &lcp_core::engine::prepare_sweep(&Eulerian, &instances),
        )
        .unwrap();
        assert!(sizes.iter().all(|&s| s == 0), "LCP(0): empty proofs");
    }

    #[test]
    fn odd_degree_node_rejects() {
        let inst = Instance::unlabeled(generators::path(4));
        let verdict = evaluate(&Eulerian, &inst, &Proof::empty(4));
        assert_eq!(verdict.rejecting(), vec![0, 3]);
    }

    #[test]
    fn no_proof_can_help_a_non_eulerian_graph() {
        let inst = Instance::unlabeled(generators::star(3));
        match check_soundness_exhaustive(&Eulerian, &lcp_core::engine::prepare(&Eulerian, &inst), 1)
            .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("Eulerian scheme ignores proofs, got {p:?}"),
        }
    }
}
