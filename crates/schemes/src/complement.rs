//! The §7.3 complement adapter: `coLCP(0) ⊆ LogLCP` on connected graphs.
//!
//! Given *any* proof-less (`LCP(0)`) scheme, the adapter certifies the
//! **complement** property with `O(log n)` bits: root a spanning tree at
//! a node where the inner verifier rejects the empty proof, and let the
//! root re-run the inner verifier locally.

use lcp_core::components::TreeCert;
use lcp_core::{evaluate, BitReader, BitWriter, Instance, Proof, Scheme, View};
use lcp_graph::traversal;

/// Wraps an `LCP(0)` scheme `S` and decides its complement on connected
/// graphs with `O(log n)`-bit proofs (§7.3).
///
/// Proof: a [`TreeCert`] rooted at a rejecting node `a`. Every node
/// checks the tree; the root additionally simulates the inner verifier on
/// its own radius-`r` view *with the empty proof* and demands rejection.
///
/// * Completeness: `G ∉ P` ⟹ some node rejects the empty proof ⟹ root
///   the tree there.
/// * Soundness: `G ∈ P` ⟹ the inner verifier accepts everywhere, so
///   whatever root the forged tree selects, the root's simulation
///   accepts and the root's check fails.
///
/// The inner scheme must genuinely be `LCP(0)` — its verifier may not
/// read proofs. This is enforced at *construction time* by checking the
/// prover emits empty proofs, and at *verification time* by handing the
/// inner verifier a proof-stripped view.
pub struct Complement<S> {
    inner: S,
}

impl<S> Complement<S>
where
    S: Scheme,
{
    /// Wraps an inner `LCP(0)` scheme.
    pub fn new(inner: S) -> Self {
        Complement { inner }
    }

    /// The wrapped scheme.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S> Scheme for Complement<S>
where
    S: Scheme,
    S::Node: Clone,
    S::Edge: Clone,
{
    type Node = S::Node;
    type Edge = S::Edge;

    fn name(&self) -> String {
        format!("co[{}]", self.inner.name())
    }

    fn radius(&self) -> usize {
        self.inner.radius().max(1)
    }

    fn holds(&self, inst: &Instance<S::Node, S::Edge>) -> bool {
        traversal::is_connected(inst.graph()) && inst.n() > 0 && !self.inner.holds(inst)
    }

    fn prove(&self, inst: &Instance<S::Node, S::Edge>) -> Option<Proof> {
        if !traversal::is_connected(inst.graph()) || inst.n() == 0 {
            return None;
        }
        // Find a node rejecting the empty proof.
        let verdict = evaluate(&self.inner, inst, &Proof::empty(inst.n()));
        let root = *verdict.rejecting().first()?;
        let tree = lcp_graph::spanning::bfs_spanning_tree(inst.graph(), root);
        let certs = TreeCert::prove(inst.graph(), &tree);
        Some(Proof::from_fn(inst.n(), |v| {
            let mut w = BitWriter::new();
            certs[v].encode(&mut w);
            w.finish()
        }))
    }

    fn verify(&self, view: &View<S::Node, S::Edge>) -> bool {
        let certs = |u: usize| {
            let mut r = BitReader::new(view.proof(u));
            let c = TreeCert::decode(&mut r).ok()?;
            r.is_exhausted().then_some(c)
        };
        if !TreeCert::verify_at_center(view, certs) {
            return false;
        }
        let c = view.center();
        let mine = certs(c).expect("decoded by the tree check");
        if mine.dist != 0 {
            return true;
        }
        // I am the root: simulate the inner verifier on my inner-radius
        // view with the empty proof — it must REJECT.
        let restricted = view.restrict(self.inner.radius().min(view.radius()));
        let inner_view = restricted.with_proofs_cleared();
        !self.inner.verify(&inner_view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eulerian::Eulerian;
    use crate::line_graph::LineGraph;
    use lcp_core::harness::{
        adversarial_proof_search, check_completeness, classify_growth, measure_sizes, GrowthClass,
    };
    use lcp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn non_eulerian_graphs_certified() {
        let scheme = Complement::new(Eulerian);
        let instances: Vec<Instance> = vec![
            Instance::unlabeled(generators::path(5)),
            Instance::unlabeled(generators::star(3)),
            Instance::unlabeled(generators::complete(4)),
            Instance::unlabeled(generators::grid(2, 4)),
        ];
        check_completeness(
            &scheme,
            &lcp_core::engine::prepare_sweep(&scheme, &instances),
        )
        .unwrap();
    }

    #[test]
    fn eulerian_graphs_resist_complement_forgery() {
        let scheme = Complement::new(Eulerian);
        let inst = Instance::unlabeled(generators::cycle(8));
        assert!(!scheme.holds(&inst));
        assert!(scheme.prove(&inst).is_none());
        let mut rng = StdRng::seed_from_u64(41);
        assert!(adversarial_proof_search(
            &scheme,
            &lcp_core::engine::prepare(&scheme, &inst),
            10,
            700,
            &mut rng
        )
        .is_none());
    }

    #[test]
    fn non_line_graphs_certified() {
        let scheme = Complement::new(LineGraph);
        let instances: Vec<Instance> = vec![
            Instance::unlabeled(lcp_graph::line_graph::claw()),
            Instance::unlabeled(generators::complete_bipartite(2, 3)),
            Instance::unlabeled(generators::star(5)),
        ];
        check_completeness(
            &scheme,
            &lcp_core::engine::prepare_sweep(&scheme, &instances),
        )
        .unwrap();
    }

    #[test]
    fn proof_size_logarithmic() {
        let scheme = Complement::new(Eulerian);
        let instances: Vec<Instance> = [8usize, 16, 32, 64, 128, 256]
            .iter()
            .map(|&n| Instance::unlabeled(generators::path(n)))
            .collect();
        let points = measure_sizes(
            &scheme,
            &lcp_core::engine::prepare_sweep(&scheme, &instances),
        );
        assert_eq!(classify_growth(&points), GrowthClass::Logarithmic);
    }

    #[test]
    fn root_must_be_a_rejecting_node() {
        // Rooting the tree at an accepting node must fail at the root.
        let scheme = Complement::new(Eulerian);
        let inst = Instance::unlabeled(generators::path(4)); // endpoints reject
                                                             // Root at node 1 (degree 2: inner verifier accepts there).
        let tree = lcp_graph::spanning::bfs_spanning_tree(inst.graph(), 1);
        let certs = TreeCert::prove(inst.graph(), &tree);
        let proof = Proof::from_fn(4, |v| {
            let mut w = BitWriter::new();
            certs[v].encode(&mut w);
            w.finish()
        });
        let verdict = evaluate(&scheme, &inst, &proof);
        assert!(!verdict.accepted());
        assert!(verdict.rejecting().contains(&1), "the root itself rejects");
    }
}
