//! Cold-start economics of frozen skeleton artifacts: what does
//! `mmap`-loading a prepared core (`docs/FORMAT.md`) buy over rebuilding
//! it from scratch?
//!
//! Workload: unlabeled cycles at n ≈ 10⁴ and 10⁵ (and 10⁶ with
//! `--full`), radius 2 — the standard skeleton shape every campaign
//! cell pays on first touch. Two timings per size:
//!
//! * `prepare` — a from-scratch [`ArtifactSource::BuildFresh`]
//!   preparation: one bounded BFS per node, CSR assembly, freeze.
//! * `load` — [`FrozenCore::open`] on the persisted artifact file:
//!   `mmap`, header/checksum/structure validation, zero
//!   deserialization. The same bytes a restarted daemon or a warmed
//!   campaign shard starts from.
//!
//! The committed reference is `BENCH_coldstart.json` (README
//! § Benchmarks); the acceptance target is load ≥ 10× faster than
//! prepare at n ≈ 10⁵. Keys are flat per size (`prepare_seconds_1e5`,
//! `load_seconds_1e5`, `speedup_1e5`, …) so `bench_diff --keys
//! prepare_seconds_1e5,load_seconds_1e5` gates the ratio in CI.
//! Snapshot policy matches the other bench binaries: casual runs write
//! to `target/`, `LCP_BENCH_SNAPSHOT=1` refreshes the committed file,
//! `--smoke` shrinks the workload to milliseconds and never writes.

use lcp_core::{ArtifactSource, ArtifactStore, CoreProvenance, FrozenCore, Instance};
use lcp_graph::generators;
use std::fmt::Write as _;
use std::time::Instant;

const RADIUS: usize = 2;

/// Median of the collected seconds (samples are few; sort is fine).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

struct SizeResult {
    n: usize,
    prepare_s: f64,
    load_s: f64,
}

fn measure(n: usize, samples: usize, dir: &std::path::Path) -> SizeResult {
    let inst: Instance<(), ()> = Instance::unlabeled(generators::cycle(n));

    // From-scratch preparations: the price every process pays without
    // an artifact directory.
    let mut prepare = Vec::new();
    for _ in 0..samples {
        let t = Instant::now();
        let (prep, prov) = ArtifactSource::BuildFresh.prepare(&inst, RADIUS);
        prepare.push(t.elapsed().as_secs_f64());
        assert_eq!(prov, CoreProvenance::Built);
        assert_eq!(prep.n(), n);
    }

    // Persist once (untimed), then time cold loads of the file itself:
    // every sample re-opens, re-maps, and re-validates from scratch,
    // exactly what a fresh process pays per core.
    let store = ArtifactStore::open(dir).expect("open artifact dir");
    store.prepare(&inst, RADIUS);
    assert_eq!(store.writes(), 1, "core persisted exactly once");
    let path = std::fs::read_dir(dir)
        .expect("list artifact dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "lcpc"))
        .expect("the persisted artifact file");
    let mut load = Vec::new();
    for _ in 0..samples {
        let t = Instant::now();
        let core = FrozenCore::<(), ()>::open(&path, None).expect("open artifact");
        load.push(t.elapsed().as_secs_f64());
        assert_eq!(core.n(), n);
    }
    std::fs::remove_file(&path).expect("clear for the next size");

    SizeResult {
        n,
        prepare_s: median(&mut prepare),
        load_s: median(&mut load),
    }
}

/// `12_000` → `"1e4"`: the flat-key suffix for a size's series.
fn magnitude(n: usize) -> String {
    format!("1e{}", (n as f64).log10().round() as u32)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let full = std::env::args().any(|a| a == "--full");
    let (sizes, samples): (&[usize], usize) = if smoke {
        (&[1_000], 2)
    } else if full {
        (&[10_000, 100_000, 1_000_000], 5)
    } else {
        (&[10_000, 100_000], 5)
    };

    let dir = std::env::temp_dir().join(format!("lcp-coldstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut results = Vec::new();
    for &n in sizes {
        let r = measure(n, samples, &dir);
        println!(
            "coldstart on cycle (n = {n}, r = {RADIUS}): prepare {:.4}s, \
             mmap load {:.5}s ({:.0}x)",
            r.prepare_s,
            r.load_s,
            r.prepare_s / r.load_s
        );
        results.push(r);
    }
    let _ = std::fs::remove_dir_all(&dir);

    if !smoke {
        let r = results
            .iter()
            .find(|r| r.n == 100_000)
            .expect("1e5 is in every non-smoke run");
        let speedup = r.prepare_s / r.load_s;
        assert!(
            speedup >= 10.0,
            "acceptance: mmap load must be >= 10x faster than prepare at \
             n = 1e5 (got {speedup:.1}x)"
        );
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"artifact-coldstart\",\n");
    let _ = writeln!(json, "  \"family\": \"cycle\",");
    let _ = writeln!(json, "  \"radius\": {RADIUS},");
    for (i, r) in results.iter().enumerate() {
        let m = magnitude(r.n);
        let _ = writeln!(json, "  \"n_{m}\": {},", r.n);
        let _ = writeln!(json, "  \"prepare_seconds_{m}\": {:.5},", r.prepare_s);
        let _ = writeln!(json, "  \"load_seconds_{m}\": {:.6},", r.load_s);
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "  \"speedup_{m}\": {:.1}{comma}",
            r.prepare_s / r.load_s
        );
    }
    json.push_str("}\n");

    if smoke {
        return;
    }
    let path = if std::env::var_os("LCP_BENCH_SNAPSHOT").is_some_and(|v| v == "1") {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_coldstart.json")
    } else {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_coldstart.json"
        )
    };
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("snapshot written to {path}");
    }
}
