//! Bipartiteness: the paper's introductory 1-bit scheme (§1.2).

use lcp_core::{BitString, Instance, Proof, Scheme, View};
use lcp_graph::traversal;

/// The 1-bit scheme for bipartite graphs: the proof is a 2-colouring and
/// each node checks that all neighbours differ from it.
///
/// Every node must actually *carry* a colour bit — an empty string at any
/// node is rejected, which is what puts bipartiteness in `LCP(1)` but not
/// `LCP(0)` (§1.2 shows the property is not locally checkable without
/// proofs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Bipartite;

impl Scheme for Bipartite {
    type Node = ();
    type Edge = ();

    fn name(&self) -> String {
        "bipartite".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance) -> bool {
        traversal::is_bipartite(inst.graph())
    }

    fn prove(&self, inst: &Instance) -> Option<Proof> {
        let colors = traversal::bipartition(inst.graph())?;
        Some(Proof::from_fn(inst.n(), |v| {
            BitString::from_bits([colors[v] == 1])
        }))
    }

    fn verify(&self, view: &View) -> bool {
        let c = view.center();
        let Some(mine) = view.proof(c).first() else {
            return false;
        };
        view.neighbors(c)
            .iter()
            .all(|&u| view.proof(u).first().is_some_and(|b| b != mine))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::evaluate;
    use lcp_core::harness::{
        adversarial_proof_search, check_completeness, check_soundness_exhaustive, classify_growth,
        measure_sizes, GrowthClass, Soundness,
    };
    use lcp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn completeness_and_constant_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut instances: Vec<Instance> = (2..8)
            .map(|k| Instance::unlabeled(generators::cycle(2 * k)))
            .collect();
        instances.push(Instance::unlabeled(generators::grid(4, 5)));
        instances.push(Instance::unlabeled(generators::random_bipartite(
            8, 9, 0.4, &mut rng,
        )));
        check_completeness(
            &Bipartite,
            &lcp_core::engine::prepare_sweep(&Bipartite, &instances),
        )
        .unwrap();
        let points = measure_sizes(
            &Bipartite,
            &lcp_core::engine::prepare_sweep(&Bipartite, &instances),
        );
        assert_eq!(classify_growth(&points), GrowthClass::Constant);
        assert!(points.iter().all(|p| p.bits == 1));
    }

    #[test]
    fn odd_cycle_soundness_exhaustive() {
        for n in [3usize, 5] {
            let inst = Instance::unlabeled(generators::cycle(n));
            match check_soundness_exhaustive(
                &Bipartite,
                &lcp_core::engine::prepare(&Bipartite, &inst),
                1,
            )
            .unwrap()
            {
                Soundness::Holds(tried) => assert_eq!(tried, 3u64.pow(n as u32)),
                Soundness::Violated(p) => panic!("C{n} certified bipartite by {p:?}"),
            }
        }
    }

    #[test]
    fn odd_cycle_resists_adversarial_search() {
        let inst = Instance::unlabeled(generators::cycle(9));
        let mut rng = StdRng::seed_from_u64(2);
        assert!(adversarial_proof_search(
            &Bipartite,
            &lcp_core::engine::prepare(&Bipartite, &inst),
            3,
            1000,
            &mut rng
        )
        .is_none());
    }

    #[test]
    fn missing_bit_rejected() {
        let inst = Instance::unlabeled(generators::cycle(4));
        let mut proof = Bipartite.prove(&inst).unwrap();
        proof.set(1, BitString::new());
        let verdict = evaluate(&Bipartite, &inst, &proof);
        assert!(verdict.rejecting().contains(&1));
    }

    #[test]
    fn verifier_works_distributively() {
        let inst = Instance::unlabeled(generators::complete_bipartite(3, 4));
        let proof = Bipartite.prove(&inst).unwrap();
        let (verdict, stats) = lcp_sim::run_distributed(&Bipartite, &inst, &proof);
        assert!(verdict.accepted());
        assert_eq!(stats.rounds, 1);
    }
}
