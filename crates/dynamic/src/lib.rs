//! # `lcp-dynamic` — incremental verification for dynamic graphs
//!
//! The whole point of a locally checkable proof (Göös & Suomela, PODC
//! 2011) is that a node's verdict depends only on its radius-`r` ball —
//! so when an edge appears, a label changes, or a proof string is
//! rewritten, only the nodes within distance `r` of the change can flip
//! their output. Everything farther away keeps its cached verdict, by
//! *locality*, not by optimism. This crate makes that observation
//! executable:
//!
//! * a [`DynamicInstance`] wraps a mutable `(instance, proof)` pair
//!   behind the engine's repairable skeleton cache
//!   ([`lcp_core::SkeletonStore`] via [`lcp_core::MutableCell`]),
//!   applies [`Mutation`]s from a **mutation log**, and tracks the
//!   **dirty set** — the exact view centres whose output can have
//!   changed since the last verification;
//! * [`DynamicInstance::reverify`] re-runs the verifier on dirty nodes
//!   only, reusing cached verdicts for the rest, and returns the same
//!   accept/reject decision — including the first rejecting node as
//!   witness — as re-preparing and fully evaluating from scratch
//!   (property-tested in `tests/equivalence.rs`);
//! * the [`churn`] module generates seeded, replayable mutation
//!   workloads and drives incremental-vs-full equivalence runs — the
//!   engine behind `lcp-campaign --churn`.
//!
//! ## The dirty-ball invariant
//!
//! Every mutator returns (and marks dirty) its *impact set*:
//!
//! * **edge insert/delete on `{u, v}`** — the centres in
//!   `ball(u, r) ∪ ball(v, r)` of the graph *containing* the edge whose
//!   cached skeleton actually changed structurally (membership,
//!   adjacency, or distances); the engine rebuilds exactly those balls;
//! * **proof rewrite / label change at `v`** — the centres whose balls
//!   contain `v` (the engine's `dependents(v)` table).
//!
//! A node outside the impact set has a byte-identical view before and
//! after the mutation, so its cached output is still correct — the
//! invariant the equivalence suite pins.
//!
//! ```
//! use lcp_dynamic::DynamicInstance;
//! use lcp_core::{Instance, Proof, Scheme, View};
//! use lcp_graph::generators;
//!
//! struct EvenDegrees;
//! impl Scheme for EvenDegrees {
//!     type Node = ();
//!     type Edge = ();
//!     fn name(&self) -> String { "even-degrees".into() }
//!     fn radius(&self) -> usize { 1 }
//!     fn holds(&self, inst: &Instance) -> bool {
//!         lcp_graph::euler::all_degrees_even(inst.graph())
//!     }
//!     fn prove(&self, inst: &Instance) -> Option<Proof> {
//!         self.holds(inst).then(|| Proof::empty(inst.n()))
//!     }
//!     fn verify(&self, view: &View) -> bool {
//!         view.degree(view.center()) % 2 == 0
//!     }
//! }
//!
//! let mut dynamic = DynamicInstance::seal(EvenDegrees, Instance::unlabeled(generators::cycle(8)));
//! assert!(dynamic.reverify().accepted);
//! // A chord gives two nodes odd degree; only its radius-1 scope is re-run.
//! dynamic.insert_edge(0, 4).unwrap();
//! let outcome = dynamic.reverify();
//! assert!(!outcome.accepted);
//! assert_eq!(outcome.witness, Some(0));
//! assert!(outcome.reverified < 8, "incremental, not a full sweep");
//! ```
#![deny(missing_docs)]

pub mod churn;
pub mod metrics;

use lcp_core::{
    seal_mutable, BitString, CellMutationError, Instance, MutableCell, Proof, Scheme, Verdict,
};
use lcp_graph::Graph;
use std::any::Any;
use std::collections::BTreeSet;

/// One mutation event, as recorded in the [`DynamicInstance`] log.
///
/// The log stores *what happened*, replayably for edge and proof events;
/// a [`Mutation::NodeLabelChange`] records only the node (the label value
/// itself is typed and lives in the instance). Edge pairs are stored as
/// applied (unnormalized).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Edge `{u, v}` was inserted.
    EdgeInsert(usize, usize),
    /// Edge `{u, v}` was deleted (with its label, if any).
    EdgeDelete(usize, usize),
    /// Node `v`'s input label was replaced.
    NodeLabelChange(usize),
    /// Node `v`'s proof string was replaced with the recorded bits.
    ProofRewrite(usize, BitString),
}

impl Mutation {
    /// Stable lowercase kind name (report keys).
    pub fn kind(&self) -> &'static str {
        match self {
            Mutation::EdgeInsert(..) => "edge-insert",
            Mutation::EdgeDelete(..) => "edge-delete",
            Mutation::NodeLabelChange(..) => "node-label-change",
            Mutation::ProofRewrite(..) => "proof-rewrite",
        }
    }
}

/// Outcome of one [`DynamicInstance::reverify`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reverified {
    /// Whether every node currently accepts (the global verdict).
    pub accepted: bool,
    /// The first rejecting node in index order — the same witness a
    /// from-scratch `evaluate` would report — or `None` when accepted.
    pub witness: Option<usize>,
    /// How many verifiers actually ran (the dirty-set size).
    pub reverified: usize,
}

/// Outcome of one [`DynamicInstance::apply_verified`] round-trip: the
/// mutation's exact impact set plus the incremental verdict reached
/// immediately after applying it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Applied {
    /// The view centres this mutation dirtied, ascending.
    pub impact: Vec<usize>,
    /// The incremental re-verification outcome after the mutation.
    pub outcome: Reverified,
}

/// A mutable instance + proof under incremental verification.
///
/// Built over an [`MutableCell`] (a typed scheme sealed behind an
/// object-safe handle), a `DynamicInstance` maintains three things the
/// cell does not: the **mutation log**, the **dirty set** of view
/// centres awaiting re-verification, and the **cached outputs** of every
/// verifier from the last verification. See the crate docs for the
/// dirty-ball invariant that keeps the cache sound.
pub struct DynamicInstance {
    cell: Box<dyn MutableCell>,
    /// Cached verifier outputs; trustworthy except at dirty nodes.
    outputs: Vec<bool>,
    /// Sorted rejecting nodes per the cached outputs (witness = first).
    rejecting: BTreeSet<usize>,
    /// Dirty membership flags (parallel to `dirty_list`).
    dirty: Vec<bool>,
    /// Dirty nodes in insertion order (deduplicated via `dirty`).
    dirty_list: Vec<usize>,
    log: Vec<Mutation>,
}

impl std::fmt::Debug for DynamicInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicInstance")
            .field("scheme", &self.cell.name())
            .field("n", &self.n())
            .field("dirty", &self.dirty_list.len())
            .field("log", &self.log.len())
            .finish_non_exhaustive()
    }
}

impl DynamicInstance {
    /// Wraps an already-sealed cell (e.g. from
    /// [`lcp_core::DynScheme::dynamic_cell`]). Every node starts dirty,
    /// so the first [`Self::reverify`] is a full sweep that seeds the
    /// output cache.
    pub fn from_cell(cell: Box<dyn MutableCell>) -> Self {
        let n = cell.n();
        DynamicInstance {
            cell,
            outputs: vec![false; n],
            rejecting: BTreeSet::new(),
            dirty: vec![true; n],
            dirty_list: (0..n).collect(),
            log: Vec::new(),
        }
    }

    /// Seals `scheme` and `inst` into a dynamic instance, starting from
    /// the honest proof when the prover certifies `inst`, else from the
    /// empty proof.
    pub fn seal<S>(scheme: S, inst: Instance<S::Node, S::Edge>) -> Self
    where
        S: Scheme + Send + Sync + 'static,
        S::Node: Clone + Send + Sync + 'static,
        S::Edge: Clone + Send + Sync + 'static,
    {
        Self::from_cell(seal_mutable(scheme, inst, None))
    }

    /// Seals `scheme` and `inst` starting from an explicit proof.
    ///
    /// # Panics
    ///
    /// Panics if `proof.n() != inst.n()`.
    pub fn seal_with_proof<S>(scheme: S, inst: Instance<S::Node, S::Edge>, proof: Proof) -> Self
    where
        S: Scheme + Send + Sync + 'static,
        S::Node: Clone + Send + Sync + 'static,
        S::Edge: Clone + Send + Sync + 'static,
    {
        Self::from_cell(seal_mutable(scheme, inst, Some(proof)))
    }

    /// Number of nodes (fixed: the mutation model churns edges, labels,
    /// and proofs, not the node set).
    pub fn n(&self) -> usize {
        self.outputs.len()
    }

    /// The sealed scheme's verification radius.
    pub fn radius(&self) -> usize {
        self.cell.radius()
    }

    /// The sealed scheme's name.
    pub fn scheme_name(&self) -> String {
        self.cell.name()
    }

    /// The current topology.
    pub fn graph(&self) -> &Graph {
        self.cell.graph()
    }

    /// The current proof.
    pub fn proof(&self) -> &Proof {
        self.cell.proof()
    }

    /// Ground truth of the current instance (recomputed on demand).
    pub fn holds_now(&self) -> bool {
        self.cell.holds_now()
    }

    /// Runs the sealed prover against the current instance — e.g. to
    /// re-certify after churn flipped the instance back to a
    /// yes-instance.
    pub fn prove_now(&self) -> Option<Proof> {
        self.cell.prove_now()
    }

    /// The mutation log since construction (or the last
    /// [`Self::clear_log`]).
    pub fn log(&self) -> &[Mutation] {
        &self.log
    }

    /// Empties the mutation log, returning the drained entries.
    pub fn clear_log(&mut self) -> Vec<Mutation> {
        std::mem::take(&mut self.log)
    }

    /// Number of nodes awaiting re-verification.
    pub fn dirty_len(&self) -> usize {
        self.dirty_list.len()
    }

    /// The dirty view centres, ascending.
    pub fn dirty_nodes(&self) -> Vec<usize> {
        let mut nodes = self.dirty_list.clone();
        nodes.sort_unstable();
        nodes
    }

    fn mark_dirty(&mut self, nodes: &[usize]) {
        for &v in nodes {
            if !self.dirty[v] {
                self.dirty[v] = true;
                self.dirty_list.push(v);
            }
        }
    }

    /// Inserts edge `{u, v}`, repairing the affected cached balls and
    /// dirtying exactly the views that structurally changed. Returns the
    /// impact set.
    ///
    /// # Errors
    ///
    /// Out-of-range indices, self-loops, and duplicate edges are refused;
    /// nothing is logged or dirtied on error.
    pub fn insert_edge(&mut self, u: usize, v: usize) -> Result<Vec<usize>, CellMutationError> {
        let impact = self.cell.insert_edge(u, v)?;
        self.mark_dirty(&impact);
        self.log.push(Mutation::EdgeInsert(u, v));
        metrics::MUTATIONS_EDGE_INSERT.inc();
        Ok(impact)
    }

    /// Deletes edge `{u, v}` (dropping any edge label), repairing the
    /// affected cached balls and dirtying exactly the views that
    /// structurally changed. Returns the impact set.
    ///
    /// # Errors
    ///
    /// Out-of-range indices and absent edges are refused; nothing is
    /// logged or dirtied on error.
    pub fn delete_edge(&mut self, u: usize, v: usize) -> Result<Vec<usize>, CellMutationError> {
        let impact = self.cell.remove_edge(u, v)?;
        self.mark_dirty(&impact);
        self.log.push(Mutation::EdgeDelete(u, v));
        metrics::MUTATIONS_EDGE_DELETE.inc();
        Ok(impact)
    }

    /// Replaces node `v`'s proof string, dirtying the views whose balls
    /// contain `v` (none when the bits are unchanged). Returns the
    /// impact set.
    ///
    /// # Errors
    ///
    /// Refuses out-of-range nodes.
    pub fn rewrite_proof(
        &mut self,
        v: usize,
        bits: &BitString,
    ) -> Result<Vec<usize>, CellMutationError> {
        let impact = self.cell.rewrite_proof(v, bits)?;
        if !impact.is_empty() {
            self.mark_dirty(&impact);
            self.log.push(Mutation::ProofRewrite(v, bits.clone()));
            metrics::MUTATIONS_PROOF_REWRITE.inc();
        }
        Ok(impact)
    }

    /// Replaces node `v`'s input label (typed — `L` must match the
    /// sealed scheme's `Node` type), dirtying the views whose balls
    /// contain `v`. Returns the impact set.
    ///
    /// # Errors
    ///
    /// Refuses out-of-range nodes and mismatched label types.
    pub fn set_node_label<L: Any>(
        &mut self,
        v: usize,
        label: L,
    ) -> Result<Vec<usize>, CellMutationError> {
        let impact = self.cell.set_node_label(v, Box::new(label))?;
        self.mark_dirty(&impact);
        self.log.push(Mutation::NodeLabelChange(v));
        metrics::MUTATIONS_NODE_LABEL.inc();
        Ok(impact)
    }

    /// Applies a data-carrying [`Mutation`] — the churn-stream entry
    /// point. Returns the impact set.
    ///
    /// # Errors
    ///
    /// Propagates the underlying mutator's error;
    /// [`Mutation::NodeLabelChange`] is refused here (label values are
    /// typed — use [`Self::set_node_label`]).
    pub fn apply(&mut self, m: &Mutation) -> Result<Vec<usize>, CellMutationError> {
        match m {
            Mutation::EdgeInsert(u, v) => self.insert_edge(*u, *v),
            Mutation::EdgeDelete(u, v) => self.delete_edge(*u, *v),
            Mutation::ProofRewrite(v, bits) => self.rewrite_proof(*v, bits),
            Mutation::NodeLabelChange(_) => Err(CellMutationError::LabelType),
        }
    }

    /// Applies `m` and immediately re-verifies, atomically from the
    /// caller's point of view — the mutation-per-request entry point of
    /// session layers (`lcp-serve`). The client streams one mutation and
    /// gets back the exact impact set together with the post-mutation
    /// verdict; the instance is never observable in a
    /// mutated-but-unverified state between the two.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::apply`]'s errors; on error the instance is
    /// untouched — nothing applied, dirtied, or logged, and any cached
    /// verdict stays valid.
    pub fn apply_verified(&mut self, m: &Mutation) -> Result<Applied, CellMutationError> {
        let mut impact = self.apply(m)?;
        impact.sort_unstable();
        let outcome = self.reverify();
        Ok(Applied { impact, outcome })
    }

    /// Re-verifies exactly the dirty nodes, updating the cached outputs,
    /// and reports the global verdict with the same first-rejector
    /// witness a from-scratch `evaluate` would produce.
    ///
    /// Cost: `O(Σ|dirty ball|)` verifier work plus `O(dirty · log n)`
    /// bookkeeping — independent of `n` for local mutations.
    pub fn reverify(&mut self) -> Reverified {
        let started = std::time::Instant::now();
        let mut nodes = std::mem::take(&mut self.dirty_list);
        nodes.sort_unstable();
        for &v in &nodes {
            self.dirty[v] = false;
            let out = self.cell.verify(v);
            if out != self.outputs[v] {
                self.outputs[v] = out;
                if out {
                    self.rejecting.remove(&v);
                } else {
                    self.rejecting.insert(v);
                }
            } else if !out {
                // First sweep: outputs started false without being
                // registered as rejecting.
                self.rejecting.insert(v);
            }
        }
        metrics::REVERIFIES.inc();
        metrics::DIRTY_SET_SIZE.observe(nodes.len() as u64);
        metrics::REVERIFIED_NODES.add(nodes.len() as u64);
        metrics::REVERIFY_NS.observe(started.elapsed().as_nanos() as u64);
        Reverified {
            accepted: self.rejecting.is_empty(),
            witness: self.rejecting.first().copied(),
            reverified: nodes.len(),
        }
    }

    /// The cached per-node outputs as a [`Verdict`], or `None` while
    /// mutations are pending re-verification.
    pub fn cached_verdict(&self) -> Option<Verdict> {
        self.dirty_list
            .is_empty()
            .then(|| Verdict::from_outputs(self.outputs.clone()))
    }

    /// From-scratch reference: re-prepares the current instance and
    /// evaluates every node — what [`Self::reverify`] must agree with
    /// (and the baseline the churn bench compares against).
    pub fn full_check(&self) -> Verdict {
        self.cell.evaluate_full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::View;
    use lcp_graph::generators;

    /// The 1-bit bipartiteness scheme — rigid proofs, radius 1.
    struct Bipartite;
    impl Scheme for Bipartite {
        type Node = ();
        type Edge = ();
        fn name(&self) -> String {
            "bipartite".into()
        }
        fn radius(&self) -> usize {
            1
        }
        fn holds(&self, inst: &Instance) -> bool {
            lcp_graph::traversal::is_bipartite(inst.graph())
        }
        fn prove(&self, inst: &Instance) -> Option<Proof> {
            let colors = lcp_graph::traversal::bipartition(inst.graph())?;
            Some(Proof::from_fn(inst.n(), |v| {
                BitString::from_bits([colors[v] == 1])
            }))
        }
        fn verify(&self, view: &View) -> bool {
            let c = view.center();
            let mine = view.proof(c).first();
            mine.is_some()
                && view
                    .neighbors(c)
                    .iter()
                    .all(|&u| view.proof(u).first().is_some_and(|b| Some(b) != mine))
        }
    }

    #[test]
    fn first_reverify_is_a_full_sweep() {
        let mut d = DynamicInstance::seal(Bipartite, Instance::unlabeled(generators::cycle(6)));
        assert_eq!(d.dirty_len(), 6);
        let outcome = d.reverify();
        assert_eq!(
            outcome,
            Reverified {
                accepted: true,
                witness: None,
                reverified: 6
            }
        );
        assert_eq!(d.dirty_len(), 0);
        assert!(d.cached_verdict().unwrap().accepted());
    }

    #[test]
    fn incremental_verdicts_track_mutations() {
        let mut d = DynamicInstance::seal(Bipartite, Instance::unlabeled(generators::cycle(8)));
        d.reverify();

        // Chord {0, 2} closes a triangle: not bipartite, and the stale
        // 2-colouring is caught locally by the chord's endpoints.
        d.insert_edge(0, 2).unwrap();
        assert!(d.dirty_len() > 0);
        assert!(d.cached_verdict().is_none(), "dirty ⇒ no cached verdict");
        let outcome = d.reverify();
        assert!(!outcome.accepted);
        let full = d.full_check();
        assert_eq!(outcome.witness, full.rejecting().first().copied());
        assert_eq!(d.cached_verdict().unwrap(), full);

        // Deleting the chord heals the instance.
        d.delete_edge(0, 2).unwrap();
        let outcome = d.reverify();
        assert!(outcome.accepted);
        assert_eq!(outcome.witness, None);
        assert_eq!(
            d.log(),
            &[Mutation::EdgeInsert(0, 2), Mutation::EdgeDelete(0, 2)]
        );
    }

    #[test]
    fn proof_rewrites_dirty_only_the_ball() {
        let mut d = DynamicInstance::seal(Bipartite, Instance::unlabeled(generators::cycle(8)));
        d.reverify();
        let flipped = BitString::from_bits([d.proof().get(4).first() == Some(false)]);
        let impact = d.rewrite_proof(4, &flipped).unwrap();
        assert_eq!(impact, vec![3, 4, 5]);
        assert_eq!(d.dirty_nodes(), vec![3, 4, 5]);
        let outcome = d.reverify();
        assert_eq!(outcome.reverified, 3);
        assert!(!outcome.accepted);
        assert_eq!(outcome.witness, Some(3));
        assert_eq!(d.cached_verdict().unwrap(), d.full_check());
        // No-op rewrite: nothing dirtied, nothing logged.
        let noop = d.rewrite_proof(4, &flipped).unwrap();
        assert!(noop.is_empty());
        assert_eq!(d.log().len(), 1);
    }

    #[test]
    fn batched_mutations_reverify_once() {
        let mut d = DynamicInstance::seal(Bipartite, Instance::unlabeled(generators::cycle(12)));
        d.reverify();
        d.insert_edge(0, 6).unwrap();
        d.insert_edge(2, 8).unwrap();
        d.delete_edge(4, 5).unwrap();
        let dirty = d.dirty_len();
        assert!(dirty < 12, "local mutations must not dirty everything");
        let outcome = d.reverify();
        assert_eq!(outcome.reverified, dirty);
        assert_eq!(d.cached_verdict().unwrap(), d.full_check());
        assert_eq!(d.log().len(), 3);
    }

    #[test]
    fn failed_mutations_change_nothing() {
        let mut d = DynamicInstance::seal(Bipartite, Instance::unlabeled(generators::path(4)));
        d.reverify();
        assert!(d.insert_edge(0, 0).is_err());
        assert!(d.insert_edge(0, 1).is_err());
        assert!(d.delete_edge(0, 2).is_err());
        assert!(d.rewrite_proof(7, &BitString::new()).is_err());
        assert!(d.apply(&Mutation::NodeLabelChange(1)).is_err());
        assert_eq!(d.dirty_len(), 0);
        assert!(d.log().is_empty());
    }

    #[test]
    fn apply_verified_is_apply_plus_reverify() {
        let mut a = DynamicInstance::seal(Bipartite, Instance::unlabeled(generators::cycle(8)));
        a.reverify();
        let mut b = DynamicInstance::seal(Bipartite, Instance::unlabeled(generators::cycle(8)));
        b.reverify();

        // Same verdicts as the two-step path, with the impact attached.
        let applied = a.apply_verified(&Mutation::EdgeInsert(0, 2)).unwrap();
        let impact = b.apply(&Mutation::EdgeInsert(0, 2)).unwrap();
        assert_eq!(applied.impact, impact);
        assert_eq!(applied.outcome, b.reverify());
        assert!(!applied.outcome.accepted);
        assert!(a.cached_verdict().is_some(), "never left dirty");

        // Errors leave the instance untouched, verdict intact.
        let before = a.cached_verdict();
        assert!(a.apply_verified(&Mutation::EdgeInsert(0, 2)).is_err());
        assert!(a.apply_verified(&Mutation::NodeLabelChange(1)).is_err());
        assert_eq!(a.cached_verdict(), before);
        assert_eq!(a.log().len(), 1);
    }

    #[test]
    fn apply_replays_a_recorded_log() {
        let mut a = DynamicInstance::seal(Bipartite, Instance::unlabeled(generators::cycle(10)));
        a.reverify();
        a.insert_edge(1, 5).unwrap();
        a.rewrite_proof(7, &BitString::from_bits([true, false]))
            .unwrap();
        a.delete_edge(2, 3).unwrap();
        a.reverify();
        let log = a.clear_log();

        let mut b = DynamicInstance::seal(Bipartite, Instance::unlabeled(generators::cycle(10)));
        b.reverify();
        for m in &log {
            b.apply(m).unwrap();
        }
        b.reverify();
        assert_eq!(a.cached_verdict(), b.cached_verdict());
        assert_eq!(a.graph().m(), b.graph().m());
        assert_eq!(a.proof(), b.proof());
    }
}
