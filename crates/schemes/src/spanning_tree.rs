//! Spanning-tree verification and acyclicity (§5.1).

use lcp_core::components::TreeCert;
use lcp_core::{BitReader, BitWriter, Instance, Proof, Scheme, View};
use lcp_graph::spanning;
use lcp_graph::traversal;

/// Spanning-tree verification (Table 1(b), `Θ(log n)`): edges labelled
/// `1` must form a spanning tree of the connected input graph.
///
/// Certificate: a [`TreeCert`] rooted anywhere in the *given* tree, with
/// parent pointers following labelled edges. The verifier additionally
/// pins the labelled edge set to the parent-pointer set: each labelled
/// incident edge must be the tree edge to my parent or to one of my
/// children. (Strong scheme: works for any spanning tree the adversary
/// supplies.)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanningTree;

impl Scheme for SpanningTree {
    type Node = ();
    type Edge = ();

    fn name(&self) -> String {
        "spanning-tree".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance) -> bool {
        traversal::is_connected(inst.graph())
            && inst.n() > 0
            && spanning::is_spanning_tree(inst.graph(), &inst.labelled_edges()).unwrap_or(false)
    }

    fn prove(&self, inst: &Instance) -> Option<Proof> {
        if !self.holds(inst) {
            return None;
        }
        let g = inst.graph();
        // Root the *given* tree at the node with the smallest identifier.
        let root = g
            .nodes()
            .min_by_key(|&v| g.id(v))
            .expect("nonempty by holds()");
        let tree = spanning::root_edge_subset(g, &inst.labelled_edges(), root)?;
        let certs = TreeCert::prove(g, &tree);
        Some(Proof::from_fn(g.n(), |v| {
            let mut w = BitWriter::new();
            certs[v].encode(&mut w);
            w.finish()
        }))
    }

    fn verify(&self, view: &View) -> bool {
        let certs = |u: usize| {
            let mut r = BitReader::new(view.proof(u));
            let c = TreeCert::decode(&mut r).ok()?;
            r.is_exhausted().then_some(c)
        };
        if !TreeCert::verify_at_center(view, certs) {
            return false;
        }
        let c = view.center();
        let mine = certs(c).expect("decoded");
        let my_id = view.id(c).0;
        for &u in view.neighbors(c) {
            let Some(cu) = certs(u) else {
                return false;
            };
            let labelled = view.edge_label(c, u).is_some();
            let u_is_my_parent =
                mine.dist > 0 && view.id(u).0 == mine.parent_id && cu.dist + 1 == mine.dist;
            let i_am_us_parent = cu.dist > 0 && cu.parent_id == my_id && mine.dist + 1 == cu.dist;
            // Labelled edges are exactly the parent/child tree edges.
            if labelled != (u_is_my_parent || i_am_us_parent) {
                return false;
            }
        }
        true
    }
}

/// Acyclicity ("the graph is a forest"): every component certifies a
/// rooted tree over **all** of its edges (§5.1: spanning trees prove a
/// graph is acyclic by showing each component is a tree).
///
/// Per node: `(root_id, dist)`. Local checks: neighbours agree on
/// `root_id`; every incident edge changes `dist` by exactly ±1; exactly
/// one neighbour is one step closer to the root (the parent) unless
/// `dist = 0`; `dist = 0` iff the node carries `root_id`. Any cycle
/// would force an equal-`dist` edge or a second parent somewhere.
///
/// Works on the *general* family (no connectivity promise needed): the
/// certificate is per-component by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Acyclic;

#[derive(Clone, Copy, Debug)]
struct AcyclicCert {
    root_id: u64,
    dist: u64,
}

impl Scheme for Acyclic {
    type Node = ();
    type Edge = ();

    fn name(&self) -> String {
        "acyclic".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance) -> bool {
        lcp_graph::tree::is_forest(inst.graph())
    }

    fn prove(&self, inst: &Instance) -> Option<Proof> {
        if !self.holds(inst) {
            return None;
        }
        let g = inst.graph();
        let comp = traversal::connected_components(g);
        // Root each component at its lowest-index node.
        let mut root_of_comp: Vec<Option<usize>> = vec![None; g.n()];
        for v in g.nodes() {
            if root_of_comp[comp[v]].is_none() {
                root_of_comp[comp[v]] = Some(v);
            }
        }
        let mut cert: Vec<AcyclicCert> = vec![
            AcyclicCert {
                root_id: 0,
                dist: 0
            };
            g.n()
        ];
        for v in g.nodes() {
            let root = root_of_comp[comp[v]].expect("every component has a root");
            let dist = traversal::bfs_distances(g, root)[v].expect("same component");
            cert[v] = AcyclicCert {
                root_id: g.id(root).0,
                dist: dist as u64,
            };
        }
        Some(Proof::from_fn(g.n(), |v| {
            let mut w = BitWriter::new();
            w.write_gamma(cert[v].root_id);
            w.write_gamma(cert[v].dist);
            w.finish()
        }))
    }

    fn verify(&self, view: &View) -> bool {
        let certs = |u: usize| -> Option<AcyclicCert> {
            let mut r = BitReader::new(view.proof(u));
            let root_id = r.read_gamma().ok()?;
            let dist = r.read_gamma().ok()?;
            r.is_exhausted().then_some(AcyclicCert { root_id, dist })
        };
        let c = view.center();
        let Some(mine) = certs(c) else {
            return false;
        };
        let my_id = view.id(c).0;
        if (mine.dist == 0) != (my_id == mine.root_id) {
            return false;
        }
        let mut parents = 0;
        for &u in view.neighbors(c) {
            let Some(cu) = certs(u) else {
                return false;
            };
            if cu.root_id != mine.root_id {
                return false;
            }
            if cu.dist + 1 == mine.dist {
                parents += 1;
            } else if cu.dist != mine.dist + 1 {
                return false; // equal or far-apart dist across an edge
            }
        }
        (mine.dist == 0 && parents == 0) || (mine.dist > 0 && parents == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::evaluate;
    use lcp_core::harness::{
        adversarial_proof_search, check_completeness, check_soundness_exhaustive, classify_growth,
        measure_sizes, GrowthClass, Soundness,
    };
    use lcp_graph::{generators, ops};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spanning_tree_instance(g: lcp_graph::Graph, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = lcp_graph::spanning::random_spanning_tree(&g, 0, &mut rng);
        let edges = tree.edges();
        Instance::unlabeled(g).with_edge_set(edges.iter().map(|&(c, p)| (c, p)))
    }

    #[test]
    fn random_spanning_trees_certified() {
        let mut rng = StdRng::seed_from_u64(20);
        let mut instances = Vec::new();
        for seed in 0..8 {
            let g = generators::random_connected(12, 8, &mut rng);
            instances.push(spanning_tree_instance(g, seed));
        }
        check_completeness(
            &SpanningTree,
            &lcp_core::engine::prepare_sweep(&SpanningTree, &instances),
        )
        .unwrap();
    }

    #[test]
    fn proof_size_logarithmic() {
        let instances: Vec<Instance> = [8usize, 16, 32, 64, 128]
            .iter()
            .map(|&n| spanning_tree_instance(generators::complete(n.min(64)), n as u64))
            .collect();
        let points = measure_sizes(
            &SpanningTree,
            &lcp_core::engine::prepare_sweep(&SpanningTree, &instances),
        );
        // Sizes grow with log of id-range; on these sweeps that reads as
        // logarithmic or constant-ish — it must NOT be linear.
        assert_ne!(classify_growth(&points), GrowthClass::Linear);
        assert_ne!(classify_growth(&points), GrowthClass::Quadratic);
    }

    #[test]
    fn forest_solution_rejected() {
        // C4 with two non-adjacent labelled edges: a forest, not a tree.
        let g = generators::cycle(4);
        let inst = Instance::unlabeled(g).with_edge_set([(0, 1), (2, 3)]);
        assert!(!SpanningTree.holds(&inst));
        match check_soundness_exhaustive(
            &SpanningTree,
            &lcp_core::engine::prepare(&SpanningTree, &inst),
            2,
        )
        .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("forest certified as tree by {p:?}"),
        }
    }

    #[test]
    fn cycle_solution_rejected() {
        // All edges of C5 labelled: contains a cycle.
        let g = generators::cycle(5);
        let all: Vec<(usize, usize)> = g.edges().collect();
        let inst = Instance::unlabeled(g).with_edge_set(all);
        assert!(!SpanningTree.holds(&inst));
        let mut rng = StdRng::seed_from_u64(21);
        assert!(adversarial_proof_search(
            &SpanningTree,
            &lcp_core::engine::prepare(&SpanningTree, &inst),
            8,
            600,
            &mut rng
        )
        .is_none());
    }

    #[test]
    fn unlabeled_tree_edge_detected() {
        // Honest proof, then un-label one tree edge: its endpoints notice.
        let inst = spanning_tree_instance(generators::grid(3, 3), 3);
        let proof = SpanningTree.prove(&inst).unwrap();
        assert!(evaluate(&SpanningTree, &inst, &proof).accepted());
        let mut edges = inst.labelled_edges();
        edges.pop();
        let tampered = Instance::unlabeled(inst.graph().clone()).with_edge_set(edges);
        assert!(!evaluate(&SpanningTree, &tampered, &proof).accepted());
    }

    #[test]
    fn forests_certified_acyclic() {
        let mut instances: Vec<Instance> = vec![
            Instance::unlabeled(generators::path(7)),
            Instance::unlabeled(generators::star(5)),
            Instance::unlabeled(generators::complete_binary_tree(4)),
        ];
        // A genuine forest with two components.
        instances.push(Instance::unlabeled(
            ops::disjoint_union(
                &generators::path(4),
                &ops::shift_ids(&generators::star(3), 10),
            )
            .unwrap(),
        ));
        check_completeness(
            &Acyclic,
            &lcp_core::engine::prepare_sweep(&Acyclic, &instances),
        )
        .unwrap();
    }

    #[test]
    fn cycles_rejected_exhaustively() {
        let inst = Instance::unlabeled(generators::cycle(3));
        match check_soundness_exhaustive(&Acyclic, &lcp_core::engine::prepare(&Acyclic, &inst), 2)
            .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("triangle certified acyclic by {p:?}"),
        }
    }

    #[test]
    fn larger_cycles_resist_adversarial_search() {
        let inst = Instance::unlabeled(generators::cycle(7));
        let mut rng = StdRng::seed_from_u64(22);
        assert!(adversarial_proof_search(
            &Acyclic,
            &lcp_core::engine::prepare(&Acyclic, &inst),
            8,
            800,
            &mut rng
        )
        .is_none());
    }
}
