//! Reusable certificate components.
//!
//! §5.1: "a locally checkable, rooted spanning tree is a versatile tool".
//! [`TreeCert`] is that tool — root identity + parent pointer + distance,
//! optionally extended with subtree counters so every node can be
//! convinced of `n(G)` (the paper's node-counter trick). Schemes embed it
//! at the front of their per-node proof strings and verify it through
//! [`TreeCert::verify_at_center`].

use crate::bits::{BitReader, BitWriter, CodecError};
use crate::view::View;
use lcp_graph::spanning::RootedTree;
use lcp_graph::Graph;

/// One node's share of a rooted-spanning-tree certificate (§5.1).
///
/// The plain certificate (`root_id`, `parent_id`, `dist`) proves that the
/// graph is connected and that exactly one node — the root — is special:
/// every node's parent pointer decreases `dist` by one, so all paths lead
/// to the unique node with `dist = 0`, which must carry `root_id`.
///
/// With [`CountingTreeCert`] the certificate additionally carries subtree
/// sizes and a global node-count claim, letting the *root* verify
/// `n(G) = n_claim` while every node checks one local counting equation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeCert {
    /// Identifier of the root, agreed by all nodes.
    pub root_id: u64,
    /// Identifier of the tree parent; the root points at itself.
    pub parent_id: u64,
    /// Distance to the root along the tree.
    pub dist: u64,
}

impl TreeCert {
    /// Builds the per-node certificates for a rooted spanning tree.
    ///
    /// # Panics
    ///
    /// Panics if the tree does not cover all of `g`.
    pub fn prove(g: &Graph, tree: &RootedTree) -> Vec<TreeCert> {
        assert_eq!(tree.size(), g.n(), "tree must span the graph");
        let root_id = g.id(tree.root()).0;
        g.nodes()
            .map(|v| TreeCert {
                root_id,
                parent_id: tree.parent(v).map_or(root_id, |p| g.id(p).0),
                dist: tree.depth(v).expect("tree spans g") as u64,
            })
            .collect()
    }

    /// Appends this certificate to a proof string (γ-coded fields).
    pub fn encode(&self, w: &mut BitWriter) {
        w.write_gamma(self.root_id);
        w.write_gamma(self.parent_id);
        w.write_gamma(self.dist);
    }

    /// Reads a certificate from a proof string.
    ///
    /// # Errors
    ///
    /// Propagates codec errors; verifiers treat them as rejection.
    pub fn decode(r: &mut BitReader<'_>) -> Result<TreeCert, CodecError> {
        Ok(TreeCert {
            root_id: r.read_gamma()?,
            parent_id: r.read_gamma()?,
            dist: r.read_gamma()?,
        })
    }

    /// The §5.1 local check at the view's centre. `certs(u)` must decode
    /// node `u`'s certificate (returning `None` rejects — malformed proofs
    /// are invalid proofs).
    ///
    /// Requires view radius ≥ 1. Accepting at *every* node implies that
    /// **each connected component** carries a consistent rooted spanning
    /// tree: within a component all nodes agree on `root_id`, the unique
    /// `dist = 0` node carries that identifier, and every other node has a
    /// tree edge to a parent at `dist − 1`. Under the connectedness family
    /// promise (the `F` of the paper's `conn.` rows) the tree therefore
    /// spans the whole graph — but note that *without* that promise a
    /// disconnected graph can certify one tree per component, which is
    /// exactly why "connected graph" on the general family is unclassified
    /// ("—") in Table 1(a).
    pub fn verify_at_center<N, E, F>(view: &View<N, E>, certs: F) -> bool
    where
        F: Fn(usize) -> Option<TreeCert>,
    {
        let c = view.center();
        let Some(mine) = certs(c) else {
            return false;
        };
        let my_id = view.id(c).0;
        // Root self-consistency.
        if mine.dist == 0 {
            if my_id != mine.root_id || mine.parent_id != my_id {
                return false;
            }
        } else {
            // Parent must be a *neighbour* with dist − 1 and the claimed id.
            let parent_ok = view.neighbors(c).iter().any(|&u| {
                view.id(u).0 == mine.parent_id
                    && certs(u).is_some_and(|cu| cu.dist + 1 == mine.dist)
            });
            if !parent_ok {
                return false;
            }
            if my_id == mine.root_id {
                return false; // non-root node impersonating the root id
            }
        }
        // Neighbour agreement on the root identity.
        view.neighbors(c)
            .iter()
            .all(|&u| certs(u).is_some_and(|cu| cu.root_id == mine.root_id))
    }
}

/// A [`TreeCert`] extended with the §5.1 node counters: `subtree` is the
/// number of nodes in the sender's subtree, and `n_claim` is the global
/// node count every node asserts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CountingTreeCert {
    /// The underlying spanning-tree certificate.
    pub tree: TreeCert,
    /// Nodes in this node's subtree (inclusive).
    pub subtree: u64,
    /// Claimed `n(G)`, agreed by all nodes and checked by the root.
    pub n_claim: u64,
}

impl CountingTreeCert {
    /// Builds counting certificates for a rooted spanning tree.
    ///
    /// # Panics
    ///
    /// Panics if the tree does not cover all of `g`.
    pub fn prove(g: &Graph, tree: &RootedTree) -> Vec<CountingTreeCert> {
        let base = TreeCert::prove(g, tree);
        let sizes = tree.subtree_sizes();
        let n = g.n() as u64;
        base.into_iter()
            .enumerate()
            .map(|(v, t)| CountingTreeCert {
                tree: t,
                subtree: sizes[v] as u64,
                n_claim: n,
            })
            .collect()
    }

    /// Appends this certificate to a proof string.
    pub fn encode(&self, w: &mut BitWriter) {
        self.tree.encode(w);
        w.write_gamma(self.subtree);
        w.write_gamma(self.n_claim);
    }

    /// Reads a certificate from a proof string.
    ///
    /// # Errors
    ///
    /// Propagates codec errors; verifiers treat them as rejection.
    pub fn decode(r: &mut BitReader<'_>) -> Result<CountingTreeCert, CodecError> {
        Ok(CountingTreeCert {
            tree: TreeCert::decode(r)?,
            subtree: r.read_gamma()?,
            n_claim: r.read_gamma()?,
        })
    }

    /// The counting extension of the §5.1 check. On top of
    /// [`TreeCert::verify_at_center`], the centre checks its counting
    /// equation (`subtree = 1 + Σ children`), neighbour agreement on
    /// `n_claim`, and — at the root — `subtree = n_claim`.
    ///
    /// All nodes accepting implies every node's `n_claim` equals the size
    /// of its *component* (the counters telescope up the certified tree);
    /// under the connectedness promise that is the true `n(G)` — the
    /// paper's "every node can be convinced of the value of n(G)".
    pub fn verify_at_center<N, E, F>(view: &View<N, E>, certs: F) -> bool
    where
        F: Fn(usize) -> Option<CountingTreeCert>,
    {
        if !TreeCert::verify_at_center(view, |u| certs(u).map(|c| c.tree)) {
            return false;
        }
        let c = view.center();
        let mine = certs(c).expect("checked by tree verification");
        let my_id = view.id(c).0;
        // Children: neighbours whose parent pointer names me, one level down.
        let mut child_sum = 0u64;
        for &u in view.neighbors(c) {
            let Some(cu) = certs(u) else {
                return false;
            };
            if cu.n_claim != mine.n_claim {
                return false;
            }
            if cu.tree.parent_id == my_id && cu.tree.dist == mine.tree.dist + 1 {
                child_sum += cu.subtree;
            }
        }
        if mine.subtree != 1 + child_sum {
            return false;
        }
        if mine.tree.dist == 0 && mine.subtree != mine.n_claim {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::proof::Proof;
    use crate::scheme::{evaluate, Scheme};
    use lcp_graph::spanning::bfs_spanning_tree;
    use lcp_graph::{generators, NodeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Minimal scheme wrapping the plain tree certificate (≈ the §5
    /// leader-election certificate without the leader labels).
    struct TreeCertScheme;
    impl Scheme for TreeCertScheme {
        type Node = ();
        type Edge = ();
        fn name(&self) -> String {
            "tree-cert".into()
        }
        fn radius(&self) -> usize {
            1
        }
        fn holds(&self, inst: &Instance) -> bool {
            inst.n() > 0 && lcp_graph::traversal::is_connected(inst.graph())
        }
        fn prove(&self, inst: &Instance) -> Option<Proof> {
            self.holds(inst).then(|| {
                let tree = bfs_spanning_tree(inst.graph(), 0);
                let certs = TreeCert::prove(inst.graph(), &tree);
                Proof::from_fn(inst.n(), |v| {
                    let mut w = BitWriter::new();
                    certs[v].encode(&mut w);
                    w.finish()
                })
            })
        }
        fn verify(&self, view: &View) -> bool {
            TreeCert::verify_at_center(view, |u| {
                TreeCert::decode(&mut BitReader::new(view.proof(u))).ok()
            })
        }
    }

    /// Counting variant.
    struct CountScheme;
    impl Scheme for CountScheme {
        type Node = ();
        type Edge = ();
        fn name(&self) -> String {
            "counting-tree-cert".into()
        }
        fn radius(&self) -> usize {
            1
        }
        fn holds(&self, inst: &Instance) -> bool {
            inst.n() > 0 && lcp_graph::traversal::is_connected(inst.graph())
        }
        fn prove(&self, inst: &Instance) -> Option<Proof> {
            self.holds(inst).then(|| {
                let tree = bfs_spanning_tree(inst.graph(), inst.n() / 2);
                let certs = CountingTreeCert::prove(inst.graph(), &tree);
                Proof::from_fn(inst.n(), |v| {
                    let mut w = BitWriter::new();
                    certs[v].encode(&mut w);
                    w.finish()
                })
            })
        }
        fn verify(&self, view: &View) -> bool {
            CountingTreeCert::verify_at_center(view, |u| {
                CountingTreeCert::decode(&mut BitReader::new(view.proof(u))).ok()
            })
        }
    }

    #[test]
    fn honest_tree_certificates_are_accepted() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let g = generators::random_connected(15, 10, &mut rng);
            let inst = Instance::unlabeled(g);
            let proof = TreeCertScheme.prove(&inst).unwrap();
            assert!(evaluate(&TreeCertScheme, &inst, &proof).accepted());
        }
    }

    #[test]
    fn corrupted_certificate_rejected() {
        let conn = Instance::unlabeled(generators::cycle(6));
        let mut proof = TreeCertScheme.prove(&conn).unwrap();
        let mut w = BitWriter::new();
        TreeCert {
            root_id: 99,
            parent_id: 99,
            dist: 0,
        }
        .encode(&mut w);
        proof.set(2, w.finish());
        assert!(!evaluate(&TreeCertScheme, &conn, &proof).accepted());
    }

    #[test]
    fn per_component_trees_fool_the_certificate_without_the_promise() {
        // The caveat documented on `verify_at_center`: a disconnected
        // graph certifies one tree per component, so the bare certificate
        // does NOT prove global connectivity — Table 1(a) leaves
        // "connected graph / general" unclassified for exactly this reason.
        let g = lcp_graph::ops::disjoint_union(
            &generators::cycle(3),
            &lcp_graph::ops::shift_ids(&generators::cycle(3), 8),
        )
        .unwrap();
        let inst = Instance::unlabeled(g.clone());
        // Build per-component certificates by hand.
        let t1 = bfs_spanning_tree(&g, 0); // covers component A only
        let t2 = bfs_spanning_tree(&g, 3); // covers component B only
        let proof = Proof::from_fn(6, |v| {
            let t = if v < 3 { &t1 } else { &t2 };
            let cert = TreeCert {
                root_id: g.id(t.root()).0,
                parent_id: t.parent(v).map_or(g.id(t.root()).0, |p| g.id(p).0),
                dist: t.depth(v).unwrap() as u64,
            };
            let mut w = BitWriter::new();
            cert.encode(&mut w);
            w.finish()
        });
        let verdict = evaluate(&TreeCertScheme, &inst, &proof);
        assert!(
            verdict.accepted(),
            "per-component trees must pass the local checks"
        );
    }

    #[test]
    fn second_root_is_detected() {
        let g = generators::path(5);
        let inst = Instance::unlabeled(g);
        let proof = TreeCertScheme.prove(&inst).unwrap();
        // Forge node 4 claiming to be a root of its own.
        let mut forged = proof.clone();
        let mut w = BitWriter::new();
        TreeCert {
            root_id: 5,
            parent_id: 5,
            dist: 0,
        }
        .encode(&mut w);
        forged.set(4, w.finish());
        assert!(!evaluate(&TreeCertScheme, &inst, &forged).accepted());
    }

    #[test]
    fn counting_certificates_count() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let g = generators::random_connected(12, 4, &mut rng);
            let inst = Instance::unlabeled(g);
            let proof = CountScheme.prove(&inst).unwrap();
            assert!(evaluate(&CountScheme, &inst, &proof).accepted());
        }
    }

    #[test]
    fn inflated_count_rejected() {
        let g = generators::cycle(5);
        let inst = Instance::unlabeled(g);
        let tree = bfs_spanning_tree(inst.graph(), 0);
        let mut certs = CountingTreeCert::prove(inst.graph(), &tree);
        for c in &mut certs {
            c.n_claim += 1; // everyone lies consistently about n
        }
        let proof = Proof::from_fn(inst.n(), |v| {
            let mut w = BitWriter::new();
            certs[v].encode(&mut w);
            w.finish()
        });
        // The root's subtree count cannot match the inflated claim.
        assert!(!evaluate(&CountScheme, &inst, &proof).accepted());
    }

    #[test]
    fn truncated_certificates_rejected() {
        let g = generators::cycle(4);
        let inst = Instance::unlabeled(g);
        let mut proof = TreeCertScheme.prove(&inst).unwrap();
        proof.set(1, crate::bits::BitString::from_bits([true]));
        assert!(!evaluate(&TreeCertScheme, &inst, &proof).accepted());
    }

    #[test]
    fn exhaustive_soundness_on_tiny_disconnected_instance() {
        // K2 + K1: no proof of ≤ 2 bits/node convinces the tree scheme.
        let mut g = Graph::from_ids([NodeId(1), NodeId(2), NodeId(7)]).unwrap();
        g.add_edge(0, 1).unwrap();
        let inst = Instance::unlabeled(g);
        let prep = crate::engine::prepare(&TreeCertScheme, &inst);
        match crate::harness::check_soundness_exhaustive(&TreeCertScheme, &prep, 2).unwrap() {
            crate::harness::Soundness::Holds(tried) => assert_eq!(tried, 7u64.pow(3)),
            crate::harness::Soundness::Violated(p) => panic!("fooled by {p:?}"),
        }
    }

    use lcp_graph::Graph;

    /// Ablation (DESIGN.md §7): counting *requires* the parent pointers.
    /// A parentless variant that sums every deeper neighbour's counter
    /// double-counts diamonds, so its honest proofs are rejected — the
    /// parent binding is load-bearing, not decorative.
    #[test]
    fn ablation_counting_needs_parent_pointers() {
        // Diamond: root 0; 1, 2 at depth 1; 3 at depth 2 adjacent to both.
        let mut g = Graph::with_contiguous_ids(4);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            g.add_edge(u, v).unwrap();
        }
        let inst = Instance::unlabeled(g);
        let tree = bfs_spanning_tree(inst.graph(), 0);
        let certs = CountingTreeCert::prove(inst.graph(), &tree);
        let proof = Proof::from_fn(4, |v| {
            let mut w = BitWriter::new();
            certs[v].encode(&mut w);
            w.finish()
        });
        // The real rule (children = deeper neighbours whose parent
        // pointer names me) accepts the honest proof...
        assert!(evaluate(&CountScheme, &inst, &proof).accepted());
        // ...while the parentless rule (children = all deeper neighbours)
        // rejects it: node 3's counter reaches the root through both arms.
        let parentless_ok = inst.graph().nodes().all(|v| {
            let view = crate::view::View::extract(&inst, &proof, v, 1);
            let certs =
                |u: usize| CountingTreeCert::decode(&mut BitReader::new(view.proof(u))).ok();
            let c = view.center();
            let Some(mine) = certs(c) else { return false };
            let mut child_sum = 0;
            for &u in view.neighbors(c) {
                let cu = certs(u).expect("honest proof decodes");
                if cu.tree.dist == mine.tree.dist + 1 {
                    child_sum += cu.subtree; // no parent check: the bug
                }
            }
            mine.subtree == 1 + child_sum && (mine.tree.dist != 0 || mine.subtree == mine.n_claim)
        });
        assert!(
            !parentless_ok,
            "the parentless counting rule must fail on diamonds"
        );
    }

    /// Ablation (DESIGN.md §7): detection power of exhaustive vs
    /// randomized soundness search on the same broken scheme.
    #[test]
    fn ablation_exhaustive_vs_randomized_soundness() {
        use crate::harness::{adversarial_proof_search, check_soundness_exhaustive, Soundness};
        /// Accepts iff every node holds the bit pattern `10`.
        struct Pattern;
        impl Scheme for Pattern {
            type Node = ();
            type Edge = ();
            fn name(&self) -> String {
                "pattern".into()
            }
            fn radius(&self) -> usize {
                0
            }
            fn holds(&self, _: &Instance) -> bool {
                false
            }
            fn prove(&self, _: &Instance) -> Option<Proof> {
                None
            }
            fn verify(&self, view: &crate::view::View) -> bool {
                let p = view.proof(view.center());
                p.len() == 2 && p.get(0) == Some(true) && p.get(1) == Some(false)
            }
        }
        let inst = Instance::unlabeled(generators::cycle(5));
        let prep = crate::engine::prepare(&Pattern, &inst);
        // Exhaustive search finds the violation with certainty.
        let Ok(Soundness::Violated(_)) = check_soundness_exhaustive(&Pattern, &prep, 2) else {
            panic!("exhaustive search must find the magic pattern");
        };
        // Randomized hill-climbing also finds it (the score gradient
        // leads straight there), with a fraction of the evaluations.
        let mut rng = StdRng::seed_from_u64(1);
        assert!(adversarial_proof_search(&Pattern, &prep, 2, 2000, &mut rng).is_some());
    }

    #[test]
    fn certificate_encoding_roundtrips() {
        let c = CountingTreeCert {
            tree: TreeCert {
                root_id: 123,
                parent_id: 45,
                dist: 6,
            },
            subtree: 7,
            n_claim: 89,
        };
        let mut w = BitWriter::new();
        c.encode(&mut w);
        let s = w.finish();
        let mut r = BitReader::new(&s);
        assert_eq!(CountingTreeCert::decode(&mut r).unwrap(), c);
        assert!(r.is_exhausted());
    }
}
