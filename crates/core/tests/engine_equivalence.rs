//! Property tests: the cached engine is observationally identical to the
//! naive `View::extract`-based executor.
//!
//! For random graphs, radii 0–3, and random proofs, a verifier that
//! fingerprints *everything* it can see (topology, identifiers,
//! distances, neighbour order, proof bits) must produce the same
//! node-for-node outputs whether its views are freshly extracted or bound
//! from a [`PreparedInstance`]'s cached skeletons — including across
//! incremental single-node re-bindings.

use lcp_core::engine::PreparedInstance;
use lcp_core::harness::random_proof;
use lcp_core::{evaluate, evaluate_until_reject, Instance, Proof, Scheme, View};
use lcp_graph::generators;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A verifier whose output depends on every observable part of the view,
/// with a configurable radius.
struct Fingerprint {
    radius: usize,
}

impl Scheme for Fingerprint {
    type Node = ();
    type Edge = ();
    fn name(&self) -> String {
        format!("fingerprint-r{}", self.radius)
    }
    fn radius(&self) -> usize {
        self.radius
    }
    fn holds(&self, _: &Instance) -> bool {
        true
    }
    fn prove(&self, inst: &Instance) -> Option<Proof> {
        Some(Proof::empty(inst.n()))
    }
    fn verify(&self, view: &View) -> bool {
        let mut h: u64 = view.center() as u64 ^ (view.radius() as u64) << 8;
        for u in view.nodes() {
            h = h.wrapping_mul(1_000_003).wrapping_add(view.id(u).0);
            h = h.wrapping_mul(31).wrapping_add(view.dist(u) as u64);
            for b in view.proof(u).iter() {
                h = h.wrapping_mul(2).wrapping_add(b as u64);
            }
            for &w in view.neighbors(u) {
                h = h.wrapping_mul(131).wrapping_add(view.id(w).0);
            }
        }
        !h.is_multiple_of(5)
    }
}

/// Strategy: a connected random graph plus a seed for proof bits.
fn instance_radius_seed() -> impl Strategy<Value = (Instance, usize, u64)> {
    (3usize..14, 0usize..10, 0usize..4, any::<u64>()).prop_map(|(n, extra, radius, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_connected(n, extra, &mut rng);
        (Instance::unlabeled(g), radius, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn cached_verdict_equals_naive_node_for_node((inst, radius, seed) in instance_radius_seed()) {
        let scheme = Fingerprint { radius };
        let prep = PreparedInstance::new(&inst, radius);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        for bits in 0..4 {
            let proof = random_proof(inst.n(), bits, &mut rng);
            let naive = evaluate(&scheme, &inst, &proof);
            let cached = prep.evaluate(&scheme, &proof);
            prop_assert_eq!(naive.outputs(), cached.outputs(), "outputs diverged at radius {}", radius);
        }
    }

    #[test]
    fn bound_views_equal_extracted_views((inst, radius, seed) in instance_radius_seed()) {
        let prep = PreparedInstance::new(&inst, radius);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        let proof = random_proof(inst.n(), 3, &mut rng);
        for v in 0..inst.n() {
            prop_assert_eq!(
                prep.bind(v, &proof),
                View::extract(&inst, &proof, v, radius),
                "view mismatch at node {}", v
            );
        }
    }

    #[test]
    fn until_reject_equals_first_rejecting((inst, radius, seed) in instance_radius_seed()) {
        let scheme = Fingerprint { radius };
        let prep = PreparedInstance::new(&inst, radius);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let proof = random_proof(inst.n(), 2, &mut rng);
        let first = prep.evaluate_until_reject(&scheme, &proof);
        let naive_first = evaluate_until_reject(&scheme, &inst, &proof);
        let full = evaluate(&scheme, &inst, &proof);
        prop_assert_eq!(first, full.rejecting().first().copied());
        prop_assert_eq!(first, naive_first);
    }

    #[test]
    fn in_place_arena_mutations_track_the_naive_executor((inst, radius, seed) in instance_radius_seed()) {
        // The arena-vs-BitString equivalence case: one proof is mutated
        // in place inside its word-packed arena (the search-loop path),
        // a shadow proof is rebuilt from owned BitStrings after every
        // step (the legacy representation) — the cached engine on the
        // former must match the naive executor on the latter
        // node-for-node, including after shrinking writes that leave
        // stale bits in the arena words.
        let scheme = Fingerprint { radius };
        let prep = PreparedInstance::new(&inst, radius);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let mut proof = random_proof(inst.n(), 2, &mut rng);
        let mut shadow: Vec<lcp_core::BitString> =
            proof.iter().map(|r| r.to_bitstring()).collect();
        for _ in 0..12 {
            let v = rng.random_range(0..inst.n());
            let bits = lcp_core::BitString::from_bits(
                (0..rng.random_range(0..4usize)).map(|_| rng.random_bool(0.5)),
            );
            proof.set(v, &bits);
            shadow[v] = bits;
            let rebuilt = Proof::from_strings(shadow.clone());
            prop_assert_eq!(&proof, &rebuilt, "arena content drifted at node {}", v);
            let cached = prep.evaluate(&scheme, &proof);
            let naive = evaluate(&scheme, &inst, &rebuilt);
            prop_assert_eq!(cached.outputs(), naive.outputs(), "outputs diverged at node {}", v);
        }
        // Bound views of the mutated arena equal fresh extractions.
        for v in 0..inst.n() {
            prop_assert_eq!(
                prep.bind(v, &proof),
                View::extract(&inst, &proof, v, radius),
                "view mismatch at node {}", v
            );
        }
    }

    #[test]
    fn dependents_are_exactly_the_containing_balls((inst, radius, _seed) in instance_radius_seed()) {
        let prep = PreparedInstance::new(&inst, radius);
        for v in 0..inst.n() {
            let mut deps: Vec<usize> = prep.dependents(v).collect();
            deps.sort_unstable();
            // Balls are symmetric in an undirected graph: u ∈ ball(w, r)
            // iff w ∈ ball(u, r), so dependents(v) must equal ball(v, r).
            let expected = lcp_graph::traversal::ball(inst.graph(), v, radius);
            prop_assert_eq!(deps, expected, "dependency table wrong at node {}", v);
        }
    }
}
