//! Graph colouring: greedy bounds, exact chromatic number, and
//! k-colourability witnesses.
//!
//! The colouring schemes of Table 1(a) ("chromatic number ≤ k" with
//! `O(log k)` bits) need an actual proper colouring as the proof, and the
//! §6.3 gadget validation needs an exact 3-colourability decision — both
//! live here.

use crate::Graph;

/// A proper colouring with colours `0..k` in greedy (first-fit) order.
///
/// Uses at most `max_degree + 1` colours.
pub fn greedy_coloring(g: &Graph) -> Vec<usize> {
    let mut color = vec![usize::MAX; g.n()];
    for u in g.nodes() {
        let mut used: Vec<bool> = vec![false; g.degree(u) + 1];
        for &v in g.neighbors(u) {
            if color[v] != usize::MAX && color[v] < used.len() {
                used[color[v]] = true;
            }
        }
        color[u] = used
            .iter()
            .position(|&b| !b)
            .expect("first-fit colour exists");
    }
    color
}

/// Whether `coloring` is a proper colouring of `g` (no monochromatic edge).
pub fn is_proper_coloring(g: &Graph, coloring: &[usize]) -> bool {
    coloring.len() == g.n() && g.edges().all(|(u, v)| coloring[u] != coloring[v])
}

/// A proper colouring with at most `k` colours, or `None` if `g` is not
/// k-colourable.
///
/// Exact backtracking with DSATUR-style most-saturated-first ordering;
/// exponential in the worst case, intended for the instance sizes of the
/// experiments (hundreds of nodes for sparse/gadget graphs, small `n`
/// otherwise).
pub fn k_coloring(g: &Graph, k: usize) -> Option<Vec<usize>> {
    if g.n() == 0 {
        return Some(Vec::new());
    }
    if k == 0 {
        return None;
    }
    let n = g.n();
    let mut color = vec![usize::MAX; n];
    // neighbour_colors[u] tracks which colours touch u (bitmask, k ≤ 64).
    assert!(k <= 64, "k_coloring supports at most 64 colours");
    let mut nbr_mask = vec![0u64; n];
    fn pick_next(g: &Graph, color: &[usize], nbr_mask: &[u64]) -> Option<usize> {
        // Most saturated uncoloured node, ties broken by degree.
        g.nodes()
            .filter(|&u| color[u] == usize::MAX)
            .max_by_key(|&u| (nbr_mask[u].count_ones(), g.degree(u)))
    }
    fn rec(g: &Graph, k: usize, color: &mut [usize], nbr_mask: &mut [u64]) -> bool {
        let Some(u) = pick_next(g, color, nbr_mask) else {
            return true;
        };
        for c in 0..k {
            if nbr_mask[u] >> c & 1 == 1 {
                continue;
            }
            color[u] = c;
            let mut touched = Vec::new();
            for &v in g.neighbors(u) {
                if color[v] == usize::MAX && nbr_mask[v] >> c & 1 == 0 {
                    nbr_mask[v] |= 1 << c;
                    touched.push(v);
                }
            }
            if rec(g, k, color, nbr_mask) {
                return true;
            }
            for v in touched {
                nbr_mask[v] &= !(1 << c);
            }
            color[u] = usize::MAX;
        }
        false
    }
    rec(g, k, &mut color, &mut nbr_mask).then_some(color)
}

/// Whether `g` is k-colourable.
pub fn is_k_colorable(g: &Graph, k: usize) -> bool {
    k_coloring(g, k).is_some()
}

/// The chromatic number `χ(g)` (0 for the empty graph), by incremental
/// exact search.
///
/// Exponential in the worst case; intended for small instances.
pub fn chromatic_number(g: &Graph) -> usize {
    if g.n() == 0 {
        return 0;
    }
    if g.m() == 0 {
        return 1;
    }
    // Lower bound 2 (there is an edge); upper bound from greedy.
    let upper = greedy_coloring(g).iter().max().expect("nonempty") + 1;
    for k in 2..upper {
        if is_k_colorable(g, k) {
            return k;
        }
    }
    upper
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn greedy_is_proper() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = generators::gnp(15, 0.3, &mut rng);
            let c = greedy_coloring(&g);
            assert!(is_proper_coloring(&g, &c));
            assert!(c.iter().max().map_or(0, |&m| m + 1) <= g.max_degree() + 1);
        }
    }

    #[test]
    fn chromatic_numbers_of_known_graphs() {
        assert_eq!(chromatic_number(&generators::complete(5)), 5);
        assert_eq!(chromatic_number(&generators::cycle(6)), 2);
        assert_eq!(chromatic_number(&generators::cycle(7)), 3);
        assert_eq!(chromatic_number(&generators::path(4)), 2);
        assert_eq!(chromatic_number(&generators::star(5)), 2);
        assert_eq!(chromatic_number(&generators::complete_bipartite(3, 4)), 2);
        assert_eq!(chromatic_number(&Graph::with_contiguous_ids(3)), 1);
        assert_eq!(chromatic_number(&Graph::new()), 0);
    }

    #[test]
    fn petersen_graph_is_3_chromatic() {
        // Petersen graph: outer C5 (0..4), inner pentagram (5..9), spokes.
        let mut g = Graph::with_contiguous_ids(10);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5).unwrap();
            g.add_edge(5 + i, 5 + (i + 2) % 5).unwrap();
            g.add_edge(i, 5 + i).unwrap();
        }
        assert!(!is_k_colorable(&g, 2));
        let c = k_coloring(&g, 3).unwrap();
        assert!(is_proper_coloring(&g, &c));
        assert!(c.iter().all(|&x| x < 3));
        assert_eq!(chromatic_number(&g), 3);
    }

    #[test]
    fn k_coloring_rejects_infeasible() {
        assert_eq!(k_coloring(&generators::complete(4), 3), None);
        assert_eq!(k_coloring(&generators::cycle(5), 2), None);
        assert_eq!(k_coloring(&generators::cycle(5), 0), None);
    }

    #[test]
    fn empty_graph_cases() {
        assert_eq!(k_coloring(&Graph::new(), 0), Some(vec![]));
        assert!(is_k_colorable(&Graph::with_contiguous_ids(3), 1));
    }

    #[test]
    fn proper_coloring_predicate() {
        let g = generators::path(3);
        assert!(is_proper_coloring(&g, &[0, 1, 0]));
        assert!(!is_proper_coloring(&g, &[0, 0, 1]));
        assert!(!is_proper_coloring(&g, &[0, 1])); // wrong length
    }

    #[test]
    fn exact_matches_greedy_upper_bound_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..5 {
            let g = generators::gnp(10, 0.4, &mut rng);
            let chi = chromatic_number(&g);
            let greedy = greedy_coloring(&g).iter().max().map_or(0, |&m| m + 1);
            assert!(chi <= greedy);
            assert!(is_proper_coloring(&g, &k_coloring(&g, chi).unwrap()));
            if chi > 1 {
                assert!(!is_k_colorable(&g, chi - 1));
            }
        }
    }
}
