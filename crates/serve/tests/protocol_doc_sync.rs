//! Keeps `docs/PROTOCOL.md` honest: the documented request set must be
//! exactly the dispatch table, and every typed error kind must appear.

use lcp_serve::protocol::{
    ERR_BAD_REQUEST, ERR_BUSY, ERR_DEADLINE, ERR_INAPPLICABLE, ERR_LABEL_TYPE, ERR_MUTATION,
    ERR_NO_SESSION, ERR_SESSION_ACTIVE, ERR_UNKNOWN_FAMILY, ERR_UNKNOWN_OP, ERR_UNKNOWN_SCHEME,
};
use lcp_serve::REQUEST_NAMES;

fn protocol_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/PROTOCOL.md");
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("docs/PROTOCOL.md must exist (tried {path}): {e}"))
}

/// Every `` ### `name` `` heading in the requests section, in document
/// order. Prose headings (no backticks) are not request docs.
fn documented_requests(doc: &str) -> Vec<&str> {
    doc.lines()
        .filter_map(|line| line.strip_prefix("### `")?.strip_suffix('`'))
        .collect()
}

#[test]
fn documented_requests_match_the_dispatch_table() {
    let doc = protocol_doc();
    let documented = documented_requests(&doc);
    assert_eq!(
        documented, REQUEST_NAMES,
        "docs/PROTOCOL.md request sections and lcp_serve::REQUEST_NAMES \
         must list the same ops in the same order"
    );
}

#[test]
fn every_error_kind_is_documented() {
    let doc = protocol_doc();
    let kinds = [
        ERR_BAD_REQUEST,
        ERR_UNKNOWN_OP,
        ERR_UNKNOWN_SCHEME,
        ERR_UNKNOWN_FAMILY,
        ERR_INAPPLICABLE,
        ERR_BUSY,
        ERR_DEADLINE,
        ERR_NO_SESSION,
        ERR_SESSION_ACTIVE,
        ERR_MUTATION,
        ERR_LABEL_TYPE,
    ];
    for kind in kinds {
        assert!(
            doc.contains(&format!("`{kind}`")),
            "error kind {kind:?} is missing from docs/PROTOCOL.md"
        );
    }
}
