//! # `lcp-sim` — the LOCAL-model substrate
//!
//! §2.1 of the paper identifies local verifiers with constant-time
//! distributed algorithms in Peleg's LOCAL model: "a local verifier with
//! horizon `r` can be implemented as a distributed algorithm that
//! completes in `r` synchronous communication rounds". This crate
//! implements that other side of the equivalence:
//!
//! * [`local`] — a synchronous full-information message-passing
//!   simulator. Each node floods its knowledge for `r` rounds and then
//!   reconstructs its radius-`r` view from what it heard; running a
//!   scheme's verifier on the reconstructed views must produce exactly
//!   the verdict of the centralized executor `lcp_core::evaluate`
//!   (property-tested in this crate and in the workspace tests).
//! * [`port`] — the §7.1 model `M2` (anonymous port numbering + leader)
//!   and the DFS-interval identifier machinery that translates proof
//!   labelling schemes between `M2` and the unique-identifier model `M1`
//!   with `O(log n)` overhead.

//! * [`translate`] — the §7.1 scheme combinators themselves: wrap an
//!   anonymous (`M2`) scheme into an identifier (`M1`) scheme and vice
//!   versa, with the `O(log n)` overhead the paper proves sufficient.

pub mod local;
pub mod port;
pub mod translate;

pub use local::{run_distributed, SimStats};
pub use port::{dfs_interval_labels, verify_dfs_intervals, PortNumbering, PortView};
pub use translate::{
    evaluate_anonymous, AnonymousFromIdentified, AnonymousScheme, IdentifiedFromAnonymous,
};
