//! Checkpoint/resume for campaign shards (`--checkpoint` / `--resume`).
//!
//! A checkpoint file is JSON-lines: one header line carrying the full
//! campaign identity (mode, seed, profile, budgets, filters, shard),
//! then one line per *completed* cell, appended and flushed as cells
//! finish. A shard killed mid-run therefore loses at most the line it
//! was writing; `--resume` tolerates exactly that — a torn final line —
//! and refuses anything else.
//!
//! Resume splices the recovered cells back into the matrix enumeration
//! by their global coordinate and recomputes every aggregate from the
//! union, so a resumed run's report is **byte-identical** to an
//! uninterrupted run of the same configuration (the standing policy
//! `tests/fault_tolerance.rs` pins and the CI kill-and-resume job
//! re-checks). `campaign_merge` accepts resumed shards unchanged — they
//! are ordinary shard reports.
//!
//! Cell lines reuse the exact serializers of the reports
//! (`cell_fields` / `churn_cell_fields`, with timings) and the merge
//! parsers on the way back in, so the checkpoint format can never
//! drift from the report format.

use crate::churn::{churn_cell_fields, run_churn_campaign_inner, ChurnCellResult, ChurnReport};
use crate::merge::{churn_cell, static_cell};
use crate::{
    cell_fields, filtered_entries, json_str, run_campaign_inner, split_timeout_detail,
    CampaignConfig, CellResult, CellStatus, Report,
};
use lcp_core::json::Json;
use lcp_schemes::registry::SchemeEntry;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::Mutex;

/// Why a checkpoint file refused to load (or be created).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointError(pub String);

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CheckpointError {}

/// The header line: every knob that affects cell results or the matrix
/// enumeration. Two runs may share checkpoints iff their headers are
/// byte-equal.
fn header_line(config: &CampaignConfig, mode: &str, steps: Option<usize>) -> String {
    let mut w = String::with_capacity(256);
    let _ = write!(
        w,
        "{{ \"checkpoint\": 1, \"mode\": {}, \"seed\": {}, \"profile\": {}, \"parallel\": {}, \
         \"shard\": {}, \"sizes\": [{}], \"tamper_trials\": {}, \"adversarial_iterations\": {}, \
         \"exhaustive_limit\": {}, \"cell_budget_ms\": {}, \"scheme\": {}, \"family\": {}",
        json_str(mode),
        config.seed,
        json_str(config.profile.name()),
        cfg!(feature = "parallel"),
        config
            .shard
            .map_or_else(|| "null".into(), |s| json_str(&s.to_string())),
        config
            .sizes
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        config.tamper_trials,
        config.adversarial_iterations,
        config.exhaustive_limit,
        config
            .cell_budget_ms
            .map_or_else(|| "null".into(), |ms| ms.to_string()),
        config
            .scheme_filter
            .as_deref()
            .map_or_else(|| "null".into(), json_str),
        config
            .family_filter
            .map_or_else(|| "null".into(), |f| json_str(f.name())),
    );
    if let Some(steps) = steps {
        let _ = write!(w, ", \"steps\": {steps}");
    }
    w.push_str(" }");
    w
}

/// One static cell as a checkpoint line: the report's own cell fields
/// (with timing) plus the scheme id resume needs to re-home the cell.
pub(crate) fn static_cell_line(c: &CellResult) -> String {
    format!(
        "{{ \"scheme\": {}, {} }}",
        json_str(c.scheme),
        cell_fields(c, true)
    )
}

/// Append-and-flush writer shared across worker threads. Write failures
/// degrade to warnings: a broken checkpoint must never take down the
/// campaign it exists to protect.
pub struct CheckpointWriter {
    path: String,
    file: Mutex<std::fs::File>,
}

impl CheckpointWriter {
    /// Creates (truncating) `path` with the header and any cells already
    /// recovered by resume, so the file is self-contained from the first
    /// byte: killing the process at any later point loses at most one
    /// torn trailing line.
    fn create(
        path: &str,
        header: &str,
        initial: &[String],
    ) -> Result<CheckpointWriter, CheckpointError> {
        let mut file = std::fs::File::create(path)
            .map_err(|e| CheckpointError(format!("cannot create checkpoint {path}: {e}")))?;
        let mut text = String::with_capacity(header.len() + 1);
        text.push_str(header);
        text.push('\n');
        for line in initial {
            text.push_str(line);
            text.push('\n');
        }
        file.write_all(text.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| CheckpointError(format!("cannot write checkpoint {path}: {e}")))?;
        Ok(CheckpointWriter {
            path: path.to_string(),
            file: Mutex::new(file),
        })
    }

    /// Appends one completed-cell line and flushes it to the OS.
    pub(crate) fn append(&self, line: &str) {
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Err(e) = writeln!(file, "{line}").and_then(|()| file.flush()) {
            eprintln!("warning: checkpoint {}: {e}", self.path);
        }
    }
}

/// Reads a checkpoint's lines, validating the header. `Ok(None)` when
/// the file does not exist (a fresh `--resume` is a fresh run).
fn read_cell_lines(
    path: &str,
    header: &str,
) -> Result<Option<Vec<(usize, String)>>, CheckpointError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(CheckpointError(format!(
                "cannot read checkpoint {path}: {e}"
            )))
        }
    };
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    match lines.next() {
        Some((_, first)) if first == header => {}
        Some(_) => {
            return Err(CheckpointError(format!(
                "checkpoint {path} was written by a different campaign configuration \
                 (header mismatch); refusing to resume"
            )))
        }
        None => return Ok(Some(Vec::new())),
    }
    Ok(Some(lines.map(|(i, l)| (i + 1, l.to_string())).collect()))
}

/// Parses checkpoint cell lines through `parse`, tolerating a torn
/// (unparseable) **final** line — the signature a SIGKILL mid-append
/// leaves behind. Any earlier damage refuses the resume.
fn collect_cells<T>(
    path: &str,
    lines: &[(usize, String)],
    mut parse: impl FnMut(&str, &Json) -> Result<(usize, T), CheckpointError>,
) -> Result<HashMap<usize, T>, CheckpointError> {
    let mut cells = HashMap::new();
    for (pos, (line_no, line)) in lines.iter().enumerate() {
        let name = format!("{path}:{}", line_no + 1);
        let parsed = Json::parse(line)
            .map_err(|e| CheckpointError(format!("{name}: {e}")))
            .and_then(|doc| parse(&name, &doc));
        match parsed {
            Ok((coord, cell)) => {
                // Duplicate coords (an interrupted rewrite) resolve to
                // the latest line, matching append order.
                cells.insert(coord, cell);
            }
            Err(e) if pos + 1 == lines.len() => {
                eprintln!("note: dropping torn final checkpoint line ({e})");
            }
            Err(e) => return Err(e),
        }
    }
    Ok(cells)
}

/// Resolves a checkpoint line's scheme id against the run's entries.
fn scheme_id<'e>(
    name: &str,
    doc: &Json,
    entries: &'e [SchemeEntry],
) -> Result<&'e SchemeEntry, CheckpointError> {
    let id = doc
        .get("scheme")
        .and_then(Json::as_str)
        .ok_or_else(|| CheckpointError(format!("{name}: missing \"scheme\" id")))?;
    entries
        .iter()
        .find(|e| e.id == id)
        .ok_or_else(|| CheckpointError(format!("{name}: unknown scheme id \"{id}\"")))
}

/// Checkpoint lines are written in the timed form, so a timed-out
/// cell's detail carries the timeout enrichment. Splitting it back into
/// the structured `timeout` field restores the in-memory shape an
/// uninterrupted run would have produced — the resumed `--no-timing`
/// report stays byte-identical, and a timed re-serialization renders
/// the enrichment (rather than doubling it).
fn restore_timeout(
    detail: &mut String,
    timeout: &mut Option<(&'static str, u64)>,
    status: CellStatus,
) {
    if status == CellStatus::TimedOut {
        if let Some((base, phase, polls)) = split_timeout_detail(detail) {
            *detail = base;
            *timeout = Some((phase, polls));
        }
    }
}

fn load_static_resume(
    path: &str,
    header: &str,
    entries: &[SchemeEntry],
) -> Result<HashMap<usize, CellResult>, CheckpointError> {
    let Some(lines) = read_cell_lines(path, header)? else {
        return Ok(HashMap::new());
    };
    collect_cells(path, &lines, |name, doc| {
        let entry = scheme_id(name, doc, entries)?;
        let mut cell =
            static_cell(name, doc, entry.id).map_err(|e| CheckpointError(e.to_string()))?;
        cell.wall_ms = doc.get("wall_ms").and_then(Json::as_u128).unwrap_or(0);
        restore_timeout(&mut cell.detail, &mut cell.timeout, cell.status);
        Ok((cell.coord, cell))
    })
}

fn load_churn_resume(
    path: &str,
    header: &str,
    entries: &[SchemeEntry],
) -> Result<HashMap<usize, ChurnCellResult>, CheckpointError> {
    let Some(lines) = read_cell_lines(path, header)? else {
        return Ok(HashMap::new());
    };
    collect_cells(path, &lines, |name, doc| {
        let entry = scheme_id(name, doc, entries)?;
        let mut cell =
            churn_cell(name, doc, entry.id).map_err(|e| CheckpointError(e.to_string()))?;
        cell.incremental_ms = doc
            .get("incremental_ms")
            .and_then(Json::as_u128)
            .unwrap_or(0);
        cell.full_ms = doc.get("full_ms").and_then(Json::as_u128).unwrap_or(0);
        restore_timeout(&mut cell.detail, &mut cell.timeout, cell.status);
        Ok((cell.coord, cell))
    })
}

/// Opens the checkpoint writer, seeding it with the resumed cells so
/// the file stays self-contained (and any torn line is compacted away).
fn open_writer<T>(
    checkpoint: Option<&str>,
    header: &str,
    resumed: &HashMap<usize, T>,
    line: impl Fn(&T) -> String,
) -> Result<Option<CheckpointWriter>, CheckpointError> {
    let Some(path) = checkpoint else {
        return Ok(None);
    };
    let mut keyed: Vec<(usize, String)> =
        resumed.iter().map(|(&coord, c)| (coord, line(c))).collect();
    keyed.sort_by_key(|(coord, _)| *coord);
    let lines: Vec<String> = keyed.into_iter().map(|(_, l)| l).collect();
    CheckpointWriter::create(path, header, &lines).map(Some)
}

/// [`crate::run_campaign`] with checkpoint/resume: `resume` recovers
/// completed cells from a prior (possibly killed) run of the **same**
/// configuration, `checkpoint` records this run's progress. The two may
/// name the same file — the usual `--checkpoint X --resume X` loop.
/// Returns the report plus how many cells were resumed rather than run.
pub fn run_campaign_checkpointed(
    config: &CampaignConfig,
    checkpoint: Option<&str>,
    resume: Option<&str>,
) -> Result<(Report, usize), CheckpointError> {
    let header = header_line(config, "static", None);
    let entries = filtered_entries(config);
    let resumed = match resume {
        Some(path) => load_static_resume(path, &header, &entries)?,
        None => HashMap::new(),
    };
    let writer = open_writer(checkpoint, &header, &resumed, static_cell_line)?;
    let count = resumed.len();
    Ok((
        run_campaign_inner(&entries, config, writer.as_ref(), &resumed),
        count,
    ))
}

/// [`crate::churn::run_churn_campaign`] with checkpoint/resume; see
/// [`run_campaign_checkpointed`].
pub fn run_churn_campaign_checkpointed(
    config: &CampaignConfig,
    steps: usize,
    checkpoint: Option<&str>,
    resume: Option<&str>,
) -> Result<(ChurnReport, usize), CheckpointError> {
    let header = header_line(config, "churn", Some(steps));
    let entries = filtered_entries(config);
    let resumed = match resume {
        Some(path) => load_churn_resume(path, &header, &entries)?,
        None => HashMap::new(),
    };
    let writer = open_writer(checkpoint, &header, &resumed, |c| {
        format!("{{ {} }}", churn_cell_fields(c, true))
    })?;
    let count = resumed.len();
    Ok((
        run_churn_campaign_inner(&entries, config, steps, writer.as_ref(), &resumed),
        count,
    ))
}
