//! Graph surgery: disjoint unions, identifier shifts, and the path-join
//! used by the `⊙` construction of §6.1.

use crate::{Graph, GraphError, NodeId};

/// Disjoint union of two graphs.
///
/// Indices of `a` come first, then indices of `b` (shifted by `a.n()`).
///
/// # Errors
///
/// Returns [`GraphError::DuplicateNode`] if the identifier sets intersect —
/// use [`shift_ids`] first to separate them.
pub fn disjoint_union(a: &Graph, b: &Graph) -> Result<Graph, GraphError> {
    let mut g = Graph::with_capacity(a.n() + b.n());
    for &id in a.ids() {
        g.add_node(id)?;
    }
    for &id in b.ids() {
        g.add_node(id)?;
    }
    for (u, v) in a.edges() {
        g.add_edge(u, v)?;
    }
    for (u, v) in b.edges() {
        g.add_edge(a.n() + u, a.n() + v)?;
    }
    Ok(g)
}

/// Adds `offset` to every identifier.
///
/// This is the paper's `C(G, i)` shift (§6.1): `g.relabel(v ↦ v + i)`.
pub fn shift_ids(g: &Graph, offset: u64) -> Graph {
    g.relabel(|id| NodeId(id.0 + offset))
        .expect("shifting by a constant keeps ids distinct")
}

/// Joins two graphs with a fresh path.
///
/// Builds the disjoint union of `a` and `b`, adds `path_ids` as a fresh
/// path (in order), and connects its first node to `a_attach` (an index
/// into `a`) and its last node to `b_attach` (an index into `b`). With an
/// empty `path_ids`, the attachment nodes are joined by a direct edge.
///
/// This generalizes the §6.1 construction `G₁ ⊙ G₂`, where a path of `k`
/// fresh nodes `(1, 2, …, k)` joins node `k+1` of `C(G₁, k)` to node
/// `2k+1` of `C(G₂, 2k)`.
///
/// # Errors
///
/// Returns an error when identifier sets collide or attachment indices are
/// out of range.
pub fn join_with_path(
    a: &Graph,
    a_attach: usize,
    b: &Graph,
    b_attach: usize,
    path_ids: &[NodeId],
) -> Result<Graph, GraphError> {
    if a_attach >= a.n() {
        return Err(GraphError::IndexOutOfRange(a_attach));
    }
    if b_attach >= b.n() {
        return Err(GraphError::IndexOutOfRange(b_attach));
    }
    let mut g = disjoint_union(a, b)?;
    let b_attach = a.n() + b_attach;
    if path_ids.is_empty() {
        g.add_edge(a_attach, b_attach)?;
        return Ok(g);
    }
    let mut prev = a_attach;
    for &id in path_ids {
        let u = g.add_node(id)?;
        g.add_edge(prev, u)?;
        prev = u;
    }
    g.add_edge(prev, b_attach)?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal::is_connected;

    #[test]
    fn union_requires_disjoint_ids() {
        let g = generators::cycle(3);
        assert!(disjoint_union(&g, &g).is_err());
        let h = shift_ids(&g, 10);
        let u = disjoint_union(&g, &h).unwrap();
        assert_eq!(u.n(), 6);
        assert_eq!(u.m(), 6);
        assert!(!is_connected(&u));
    }

    #[test]
    fn shift_preserves_structure() {
        let g = generators::path(4);
        let h = shift_ids(&g, 100);
        assert_eq!(h.ids()[0], NodeId(101));
        assert_eq!(h.m(), 3);
    }

    #[test]
    fn join_with_empty_path_adds_edge() {
        let a = generators::cycle(3);
        let b = shift_ids(&generators::cycle(3), 10);
        let g = join_with_path(&a, 0, &b, 2, &[]).unwrap();
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 7);
        assert!(is_connected(&g));
        assert!(g.has_edge(0, 5));
    }

    #[test]
    fn join_with_path_inserts_fresh_nodes() {
        let a = generators::cycle(3);
        let b = shift_ids(&generators::cycle(3), 10);
        let mid = [NodeId(100), NodeId(101)];
        let g = join_with_path(&a, 1, &b, 0, &mid).unwrap();
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 3 + 3 + 3);
        assert!(is_connected(&g));
        let p = g.index_of(NodeId(100)).unwrap();
        let q = g.index_of(NodeId(101)).unwrap();
        assert!(g.has_edge(1, p));
        assert!(g.has_edge(p, q));
        assert!(g.has_edge(q, 3));
        assert_eq!(g.degree(p), 2);
    }

    #[test]
    fn join_validates_attachment_indices() {
        let a = generators::cycle(3);
        let b = shift_ids(&generators::cycle(3), 10);
        assert!(join_with_path(&a, 9, &b, 0, &[]).is_err());
        assert!(join_with_path(&a, 0, &b, 9, &[]).is_err());
    }

    #[test]
    fn join_rejects_id_collisions_in_path() {
        let a = generators::cycle(3);
        let b = shift_ids(&generators::cycle(3), 10);
        assert!(join_with_path(&a, 0, &b, 0, &[NodeId(1)]).is_err());
    }
}
