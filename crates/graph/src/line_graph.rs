//! Line graphs: the `L(G)` constructor, Krausz-partition recognition, and
//! Beineke's nine minimal forbidden induced subgraphs (§1.1).
//!
//! The paper's radius-2 verifier for "is a line graph" checks that no
//! forbidden subgraph of Beineke's characterisation appears in the local
//! view. Rather than hard-coding the nine graphs from a figure, this
//! module *derives* them: it enumerates all graphs on ≤ 6 nodes, tests
//! each for the Krausz clique-partition condition, and keeps the minimal
//! non-line graphs. Beineke's theorem says exactly nine survive — a test
//! asserts that, so the derivation doubles as a reproduction of the
//! characterisation itself.

use crate::{Graph, NodeId};
use std::sync::OnceLock;

/// The line graph `L(G)`: one node per edge of `g` (identifier `i + 1` for
/// the `i`-th edge in sorted order), adjacent iff the edges share an
/// endpoint.
pub fn line_graph(g: &Graph) -> Graph {
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let mut lg = Graph::with_contiguous_ids(edges.len());
    for i in 0..edges.len() {
        for j in (i + 1)..edges.len() {
            let (a, b) = edges[i];
            let (c, d) = edges[j];
            if a == c || a == d || b == c || b == d {
                lg.add_edge(i, j).expect("fresh pair");
            }
        }
    }
    lg
}

/// Whether `g` is a line graph, by the Krausz condition: the edge set
/// partitions into cliques such that every node lies in at most two
/// cliques.
///
/// Exhaustive backtracking — intended for small graphs (the Beineke
/// derivation and test ground truth), not for large inputs.
pub fn is_line_graph(g: &Graph) -> bool {
    let n = g.n();
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let mut covered = vec![false; edges.len()];
    let mut clique_count = vec![0u8; n];
    // Edge index lookup for cover marking.
    let edge_index = |u: usize, v: usize| -> Option<usize> {
        let key = crate::norm_edge(u, v);
        edges.binary_search(&key).ok()
    };
    fn rec(
        g: &Graph,
        edges: &[(usize, usize)],
        edge_index: &dyn Fn(usize, usize) -> Option<usize>,
        covered: &mut Vec<bool>,
        clique_count: &mut Vec<u8>,
    ) -> bool {
        let Some(first) = covered.iter().position(|&c| !c) else {
            return true; // all edges covered
        };
        let (u, v) = edges[first];
        if clique_count[u] >= 2 || clique_count[v] >= 2 {
            return false;
        }
        // Candidates that could join a clique containing {u, v}: common
        // neighbours with spare clique capacity whose edges to u, v are
        // uncovered.
        let candidates: Vec<usize> = g
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&w| {
                w != v
                    && g.has_edge(w, v)
                    && clique_count[w] < 2
                    && !covered[edge_index(u, w).expect("edge exists")]
                    && !covered[edge_index(v, w).expect("edge exists")]
            })
            .collect();
        // Enumerate all cliques {u, v} ∪ S with S ⊆ candidates mutually
        // adjacent via uncovered edges.
        let mut chosen: Vec<usize> = Vec::new();
        fn enumerate(
            g: &Graph,
            edges: &[(usize, usize)],
            edge_index: &dyn Fn(usize, usize) -> Option<usize>,
            covered: &mut Vec<bool>,
            clique_count: &mut Vec<u8>,
            u: usize,
            v: usize,
            candidates: &[usize],
            from: usize,
            chosen: &mut Vec<usize>,
        ) -> bool {
            // Try the clique {u, v} ∪ chosen as one block.
            let mut block = vec![u, v];
            block.extend_from_slice(chosen);
            let mut marked = Vec::new();
            let mut ok = true;
            'mark: for i in 0..block.len() {
                for j in (i + 1)..block.len() {
                    let e = edge_index(block[i], block[j]).expect("clique edges exist");
                    if covered[e] {
                        ok = false;
                        break 'mark;
                    }
                    covered[e] = true;
                    marked.push(e);
                }
            }
            if ok {
                for &w in &block {
                    clique_count[w] += 1;
                }
                if rec(g, edges, edge_index, covered, clique_count) {
                    return true;
                }
                for &w in &block {
                    clique_count[w] -= 1;
                }
            }
            for e in marked {
                covered[e] = false;
            }
            // Extend the clique with further candidates.
            for (i, &w) in candidates.iter().enumerate().skip(from) {
                if chosen
                    .iter()
                    .all(|&x| g.has_edge(x, w) && !covered[edge_index(x, w).expect("edge")])
                {
                    chosen.push(w);
                    if enumerate(
                        g,
                        edges,
                        edge_index,
                        covered,
                        clique_count,
                        u,
                        v,
                        candidates,
                        i + 1,
                        chosen,
                    ) {
                        return true;
                    }
                    chosen.pop();
                }
            }
            false
        }
        enumerate(
            g,
            edges,
            &edge_index,
            covered,
            clique_count,
            u,
            v,
            &candidates,
            0,
            &mut chosen,
        )
    }
    rec(g, &edges, &edge_index, &mut covered, &mut clique_count)
}

/// Searches for an induced embedding of `pattern` into `host`, returning
/// the image vertices (`map[i]` = host vertex for pattern vertex `i`).
///
/// Induced means adjacency *and* non-adjacency are preserved. Exhaustive
/// backtracking; `pattern` is expected to be small (≤ 6 nodes here).
pub fn find_induced_subgraph(host: &Graph, pattern: &Graph) -> Option<Vec<usize>> {
    let pn = pattern.n();
    if pn > host.n() {
        return None;
    }
    let mut map = vec![usize::MAX; pn];
    let mut used = vec![false; host.n()];
    fn rec(host: &Graph, pattern: &Graph, i: usize, map: &mut [usize], used: &mut [bool]) -> bool {
        if i == pattern.n() {
            return true;
        }
        for h in host.nodes() {
            if used[h] || host.degree(h) < pattern.degree(i) {
                continue;
            }
            let consistent = (0..i).all(|j| pattern.has_edge(j, i) == host.has_edge(map[j], h));
            if !consistent {
                continue;
            }
            map[i] = h;
            used[h] = true;
            if rec(host, pattern, i + 1, map, used) {
                return true;
            }
            used[h] = false;
            map[i] = usize::MAX;
        }
        false
    }
    rec(host, pattern, 0, &mut map, &mut used).then_some(map)
}

/// Beineke's nine minimal forbidden induced subgraphs, derived by
/// exhaustive search over all graphs on ≤ 6 nodes (computed once, then
/// cached).
///
/// A graph is a line graph **iff** it contains none of these as an induced
/// subgraph.
pub fn beineke_graphs() -> &'static [Graph] {
    static CACHE: OnceLock<Vec<Graph>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let mut out = Vec::new();
        for k in 1..=6 {
            for g in crate::enumerate::all_graphs_up_to_iso(k).expect("k <= 6") {
                if is_line_graph(&g) {
                    continue;
                }
                // Minimal: every vertex-deleted induced subgraph is a line
                // graph.
                let minimal = g.nodes().all(|v| {
                    let keep: Vec<usize> = g.nodes().filter(|&u| u != v).collect();
                    is_line_graph(&g.induced(&keep).0)
                });
                if minimal {
                    out.push(g);
                }
            }
        }
        out
    })
}

/// Whether `g` is a line graph, decided through Beineke's forbidden
/// subgraphs rather than the Krausz partition.
///
/// Agreement between this and [`is_line_graph`] is itself a reproduction
/// of Beineke's theorem (tested on the full ≤ 6-node catalogue).
pub fn is_line_graph_beineke(g: &Graph) -> bool {
    beineke_graphs()
        .iter()
        .all(|h| find_induced_subgraph(g, h).is_none())
}

/// The claw `K_{1,3}`, smallest of the forbidden subgraphs; exposed
/// because several tests and docs want it by name.
pub fn claw() -> Graph {
    let mut g = Graph::from_ids((1..=4).map(NodeId)).expect("ids unique");
    g.add_edge(0, 1).expect("fresh");
    g.add_edge(0, 2).expect("fresh");
    g.add_edge(0, 3).expect("fresh");
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn line_graph_of_path_is_shorter_path() {
        let lg = line_graph(&generators::path(5));
        assert_eq!(lg.n(), 4);
        assert_eq!(lg.m(), 3);
        assert!(crate::iso::is_isomorphic(&lg, &generators::path(4)).unwrap());
    }

    #[test]
    fn line_graph_of_claw_is_triangle() {
        let lg = line_graph(&claw());
        assert!(crate::iso::is_isomorphic(&lg, &generators::cycle(3)).unwrap());
    }

    #[test]
    fn krausz_accepts_line_graphs() {
        for g in [
            generators::path(4),
            generators::cycle(5),
            generators::complete(3),
            line_graph(&generators::complete(4)),
            line_graph(&generators::star(4)),
            Graph::new(),
        ] {
            assert!(is_line_graph(&g), "expected a line graph: {g:?}");
        }
    }

    #[test]
    fn krausz_rejects_claw_and_friends() {
        assert!(!is_line_graph(&claw()));
        assert!(!is_line_graph(&generators::star(3)));
        assert!(!is_line_graph(&generators::complete_bipartite(1, 4)));
        // K_{2,3} contains an induced claw.
        assert!(!is_line_graph(&generators::complete_bipartite(2, 3)));
    }

    #[test]
    fn beineke_family_has_nine_members() {
        let family = beineke_graphs();
        assert_eq!(family.len(), 9, "Beineke's theorem: nine minimal graphs");
        // The claw is among them.
        assert!(family
            .iter()
            .any(|h| crate::iso::is_isomorphic(h, &claw()).unwrap()));
        // Known size distribution: one on 4 nodes, two on 5, six on 6.
        let mut by_n = [0usize; 7];
        for h in family {
            by_n[h.n()] += 1;
        }
        assert_eq!(&by_n[4..=6], &[1, 2, 6]);
    }

    #[test]
    fn beineke_graphs_have_radius_at_most_two() {
        // This justifies the radius-2 local verifier of §1.1: every
        // occurrence of a forbidden graph fits inside the view of one of
        // its nodes.
        for h in beineke_graphs() {
            let radius = h
                .nodes()
                .map(|v| {
                    crate::traversal::bfs_distances(h, v)
                        .into_iter()
                        .map(|d| d.expect("forbidden graphs are connected"))
                        .max()
                        .expect("nonempty")
                })
                .min()
                .expect("nonempty");
            assert!(radius <= 2, "forbidden graph with radius {radius}: {h:?}");
        }
    }

    #[test]
    fn beineke_agrees_with_krausz_on_small_catalogue() {
        for k in 1..=5 {
            for g in crate::enumerate::all_graphs_up_to_iso(k).unwrap() {
                assert_eq!(
                    is_line_graph(&g),
                    is_line_graph_beineke(&g),
                    "disagreement on {g:?}"
                );
            }
        }
    }

    #[test]
    fn induced_search_respects_non_edges() {
        // P3 is induced in P4 but not in K3 (K3's triangle has an extra edge).
        let p3 = generators::path(3);
        assert!(find_induced_subgraph(&generators::path(4), &p3).is_some());
        assert!(find_induced_subgraph(&generators::complete(3), &p3).is_none());
    }

    #[test]
    fn induced_search_finds_claw_in_star() {
        let m = find_induced_subgraph(&generators::star(5), &claw()).unwrap();
        assert_eq!(m[0], 0, "claw centre must map to the hub");
    }
}
