//! Merge-input error paths: malformed or truncated shard JSON must
//! surface as a named [`MergeError`] carrying the offending file and a
//! byte offset — never a panic — so a CI fan-in failure points straight
//! at the broken artifact.

use lcp_conformance::merge::merge_reports;
use lcp_conformance::{run_campaign, CampaignConfig, Profile, Shard};

fn shard_config(seed: u64, shard: &str) -> CampaignConfig {
    CampaignConfig {
        sizes: vec![6],
        tamper_trials: 2,
        adversarial_iterations: 60,
        exhaustive_limit: 10_000,
        scheme_filter: Some("eulerian".into()),
        shard: Shard::parse(shard),
        ..CampaignConfig::for_profile(Profile::Smoke, seed)
    }
}

fn shard_json(seed: u64, shard: &str) -> String {
    run_campaign(&shard_config(seed, shard)).to_json(false)
}

#[test]
fn malformed_shard_json_names_the_file_and_byte_offset() {
    let inputs = vec![(
        "shard-0.json".to_string(),
        "{ definitely not json".to_string(),
    )];
    let err = merge_reports(&inputs).unwrap_err().to_string();
    assert!(err.contains("shard-0.json"), "file named: {err}");
    assert!(err.contains("byte"), "byte offset reported: {err}");
}

#[test]
fn a_truncated_shard_report_is_rejected_not_panicked() {
    let full = shard_json(7, "0/2");
    for cut in [1, full.len() / 3, full.len() - 2] {
        let inputs = vec![("cut.json".to_string(), full[..cut].to_string())];
        let err = merge_reports(&inputs).unwrap_err().to_string();
        assert!(
            err.contains("cut.json"),
            "truncation at {cut} names the file: {err}"
        );
    }
}

#[test]
fn a_shard_with_a_damaged_cell_object_is_rejected() {
    // Structurally valid JSON that drops a required cell field: parse
    // succeeds, semantic validation must still name the file.
    let broken = shard_json(7, "0/2").replace("\"coord\": 0,", "");
    let inputs = vec![
        ("broken.json".to_string(), broken),
        ("intact.json".to_string(), shard_json(7, "1/2")),
    ];
    let err = merge_reports(&inputs).unwrap_err().to_string();
    assert!(err.contains("broken.json"), "{err}");
    assert!(err.contains("coord"), "missing field named: {err}");
}

#[test]
fn mixed_mode_shards_refuse_to_merge() {
    let static_shard = shard_json(7, "0/2");
    let churn_shard =
        lcp_conformance::churn::run_churn_campaign(&shard_config(7, "1/2"), 4).to_json(false);
    let inputs = vec![
        ("a.json".to_string(), static_shard),
        ("b.json".to_string(), churn_shard),
    ];
    let err = merge_reports(&inputs).unwrap_err().to_string();
    assert!(err.contains("cannot mix"), "{err}");
}

#[test]
fn an_incomplete_shard_set_is_rejected() {
    let inputs = vec![("only.json".to_string(), shard_json(7, "0/2"))];
    let err = merge_reports(&inputs).unwrap_err().to_string();
    assert!(!err.is_empty(), "a lone shard of two cannot merge: {err}");
}
