//! The §7.5 compiler: a monadic Σ¹₁ sentence plus a witness finder
//! becomes a LogLCP proof labelling scheme.

use crate::eval::{evaluate_at, evaluate_global};
use crate::formula::Sigma11;
use lcp_core::components::TreeCert;
use lcp_core::{BitReader, BitWriter, Instance, Proof, Scheme, View};
use lcp_graph::spanning::bfs_spanning_tree;
use lcp_graph::{traversal, Graph, NodeId};

/// A witness for a Σ¹₁ sentence: the monadic relations `A₀ … A_{k−1}`
/// plus the node interpreting `∃x`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// `relations[r][v]` = whether node `v` is in `X_r`.
    pub relations: Vec<Vec<bool>>,
    /// The witness node `a` interpreting `∃x`.
    pub leader: usize,
}

/// The compiled LogLCP scheme for one sentence (§7.5): per node, `k`
/// relation bits followed by a spanning-tree certificate rooted at the
/// witness node.
///
/// The proof size is `k + O(log n)` bits, so every monadic Σ¹₁ property
/// of connected graphs lands in `LogLCP` — the paper's Theorem from §7.5
/// made executable.
///
/// The family promise is *connected* graphs (the tree certificate needs
/// it, see `lcp_core::components::TreeCert`).
pub struct Sigma11Scheme<W> {
    sentence: Sigma11,
    witness_finder: W,
}

impl<W> Sigma11Scheme<W>
where
    W: Fn(&Graph) -> Option<Witness>,
{
    /// Compiles a sentence with its witness finder.
    ///
    /// The finder is the prover's nondeterminism: it must return a
    /// witness for every graph satisfying the sentence and `None`
    /// otherwise (the constructors in [`crate::formulas`] pair sentences
    /// with complete finders).
    pub fn new(sentence: Sigma11, witness_finder: W) -> Self {
        Sigma11Scheme {
            sentence,
            witness_finder,
        }
    }

    /// The compiled sentence.
    pub fn sentence(&self) -> &Sigma11 {
        &self.sentence
    }
}

impl<W> Scheme for Sigma11Scheme<W>
where
    W: Fn(&Graph) -> Option<Witness>,
{
    type Node = ();
    type Edge = ();

    fn name(&self) -> String {
        format!("sigma11:{}", self.sentence.name)
    }

    fn radius(&self) -> usize {
        self.sentence.verifier_radius()
    }

    fn holds(&self, inst: &Instance) -> bool {
        let g = inst.graph();
        if g.n() == 0 || !traversal::is_connected(g) {
            return false; // outside the family promise / vacuous
        }
        match (self.witness_finder)(g) {
            Some(w) => evaluate_global(&self.sentence.matrix, g, w.leader, &w.relations),
            None => false,
        }
    }

    fn prove(&self, inst: &Instance) -> Option<Proof> {
        let g = inst.graph();
        if g.n() == 0 || !traversal::is_connected(g) {
            return None;
        }
        let witness = (self.witness_finder)(g)?;
        debug_assert!(
            evaluate_global(&self.sentence.matrix, g, witness.leader, &witness.relations),
            "witness finder returned a non-witness"
        );
        let tree = bfs_spanning_tree(g, witness.leader);
        let certs = TreeCert::prove(g, &tree);
        let k = self.sentence.relations;
        Some(Proof::from_fn(g.n(), |v| {
            let mut w = BitWriter::new();
            for r in 0..k {
                w.write_bit(witness.relations[r][v]);
            }
            certs[v].encode(&mut w);
            w.finish()
        }))
    }

    fn verify(&self, view: &View) -> bool {
        let k = self.sentence.relations;
        // Decode every visible node's proof: k bits + tree certificate.
        let decode = |u: usize| -> Option<(Vec<bool>, TreeCert)> {
            let mut r = BitReader::new(view.proof(u));
            let mut bits = Vec::with_capacity(k);
            for _ in 0..k {
                bits.push(r.read_bit().ok()?);
            }
            let cert = TreeCert::decode(&mut r).ok()?;
            r.is_exhausted().then_some((bits, cert))
        };
        let Some((_, my_cert)) = decode(view.center()) else {
            return false;
        };
        if !TreeCert::verify_at_center(view, |u| decode(u).map(|(_, c)| c)) {
            return false;
        }
        // The witness x is the root; visible iff its identifier is in view.
        let x = view.index_of(NodeId(my_cert.root_id));
        evaluate_at(&self.sentence.matrix, view, x, |u, r| {
            decode(u).is_some_and(|(bits, _)| bits[r])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulas;
    use lcp_core::evaluate;
    use lcp_core::harness::{
        adversarial_proof_search, check_completeness, check_soundness_exhaustive, Soundness,
    };
    use lcp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn three_col() -> Sigma11Scheme<impl Fn(&Graph) -> Option<Witness>> {
        Sigma11Scheme::new(formulas::k_colorable(3), |g| {
            formulas::k_colorable_witness(g, 3)
        })
    }

    #[test]
    fn three_colorable_graphs_certified() {
        let scheme = three_col();
        let instances: Vec<Instance> = vec![
            Instance::unlabeled(generators::cycle(5)),
            Instance::unlabeled(generators::cycle(6)),
            Instance::unlabeled(generators::grid(3, 4)),
            Instance::unlabeled(generators::complete(3)),
        ];
        let sizes = check_completeness(
            &scheme,
            &lcp_core::engine::prepare_sweep(&scheme, &instances),
        )
        .unwrap();
        assert_eq!(sizes.len(), 4);
    }

    #[test]
    fn k4_is_not_three_colorable_and_resists_forgery() {
        let scheme = three_col();
        let inst = Instance::unlabeled(generators::complete(4));
        assert!(!scheme.holds(&inst));
        assert!(scheme.prove(&inst).is_none());
        let mut rng = StdRng::seed_from_u64(7);
        assert!(
            adversarial_proof_search(
                &scheme,
                &lcp_core::engine::prepare(&scheme, &inst),
                8,
                800,
                &mut rng
            )
            .is_none(),
            "no small proof should 3-colour K4"
        );
    }

    #[test]
    fn perfect_code_scheme_roundtrip() {
        let scheme = Sigma11Scheme::new(formulas::perfect_code(), formulas::perfect_code_witness);
        let yes = Instance::unlabeled(generators::cycle(6));
        let proof = scheme.prove(&yes).unwrap();
        assert!(evaluate(&scheme, &yes, &proof).accepted());
        // C5 has no perfect code.
        let no = Instance::unlabeled(generators::cycle(5));
        assert!(!scheme.holds(&no));
        assert!(scheme.prove(&no).is_none());
    }

    #[test]
    fn perfect_code_exhaustive_soundness_on_tiny_no_instance() {
        // K3 with a pendant: closed neighbourhoods overlap so no perfect
        // code… actually verify via ground truth first.
        let scheme = Sigma11Scheme::new(formulas::perfect_code(), formulas::perfect_code_witness);
        let no = Instance::unlabeled(generators::cycle(4));
        assert!(!scheme.holds(&no));
        // Budget 2: relation bit + tiny certs; the space stays feasible.
        match check_soundness_exhaustive(&scheme, &lcp_core::engine::prepare(&scheme, &no), 2)
            .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("perfect-code scheme fooled by {p:?}"),
        }
    }

    #[test]
    fn triangle_witness_scheme() {
        let scheme = Sigma11Scheme::new(formulas::has_triangle(), formulas::has_triangle_witness);
        let yes = Instance::unlabeled(generators::complete(4));
        let proof = scheme.prove(&yes).unwrap();
        assert!(evaluate(&scheme, &yes, &proof).accepted());
        let no = Instance::unlabeled(generators::cycle(8));
        assert!(!scheme.holds(&no));
        let mut rng = StdRng::seed_from_u64(9);
        assert!(adversarial_proof_search(
            &scheme,
            &lcp_core::engine::prepare(&scheme, &no),
            6,
            500,
            &mut rng
        )
        .is_none());
    }

    #[test]
    fn proof_size_is_logarithmic() {
        use lcp_core::harness::{classify_growth, measure_sizes, GrowthClass};
        let scheme = Sigma11Scheme::new(formulas::independent_dominating_set(), |g| {
            formulas::independent_dominating_witness(g)
        });
        let instances: Vec<Instance> = [8usize, 16, 32, 64, 128, 256]
            .iter()
            .map(|&n| Instance::unlabeled(generators::cycle(n)))
            .collect();
        let points = measure_sizes(
            &scheme,
            &lcp_core::engine::prepare_sweep(&scheme, &instances),
        );
        assert_eq!(classify_growth(&points), GrowthClass::Logarithmic);
    }

    #[test]
    fn disconnected_inputs_are_outside_the_family() {
        let scheme = three_col();
        let g = lcp_graph::ops::disjoint_union(
            &generators::cycle(3),
            &lcp_graph::ops::shift_ids(&generators::cycle(3), 10),
        )
        .unwrap();
        let inst = Instance::unlabeled(g);
        assert!(!scheme.holds(&inst));
        assert!(scheme.prove(&inst).is_none());
    }
}
