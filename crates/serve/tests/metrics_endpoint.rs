//! The `metrics` op, observed over the wire: a real workload populates
//! the per-op counters and latency histograms, the export carries the
//! engine catalog driven by that workload, and the table gauges show a
//! resident verify rebuilding zero skeletons.
//!
//! The catalog statics are process-global (tests in this binary share
//! them), so every assertion here is a delta or a lower bound, never an
//! exact count.

use lcp_graph::families::GraphFamily;
use lcp_schemes::registry::Polarity;
use lcp_serve::{CellCoord, Client, Server, ServerConfig, WireMutation};

fn coord() -> CellCoord {
    CellCoord {
        scheme: "bipartite".into(),
        family: GraphFamily::Cycle,
        n: 200,
        seed: 7,
        polarity: Polarity::Yes,
    }
}

/// One sample value from the Prometheus text: `series` is the full key
/// (`name` or `name{labels}`).
fn value(text: &str, series: &str) -> i64 {
    text.lines()
        .find_map(|line| line.strip_prefix(series)?.strip_prefix(' '))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("series {series} missing from export:\n{text}"))
}

#[test]
fn a_workload_populates_the_per_op_series() {
    let handle = Server::bind(ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let coord = coord();

    client.prepare(&coord).expect("prepare");
    let before = client.metrics_text().expect("metrics");
    let misses_before = value(&before, "lcp_serve_skeleton_misses");

    client.verify(&coord, None).expect("verify");
    client.verify(&coord, None).expect("second verify");
    client.session_open(&coord).expect("session-open");
    client
        .mutate(&WireMutation::EdgeInsert(0, 2))
        .expect("mutate");
    client.session_close().expect("session-close");
    let text = client.metrics_text().expect("metrics");

    // Per-op counters: everything this workload touched is nonzero.
    for op in ["prepare", "verify", "session-open", "mutate", "metrics"] {
        let series = format!("lcp_serve_requests_total{{op=\"{op}\"}}");
        assert!(value(&text, &series) > 0, "{series} stayed zero");
    }
    // Latency histograms march with the counters: the verify histogram
    // holds at least the two samples this test just produced.
    assert!(value(&text, "lcp_serve_request_ns_count{op=\"verify\"}") >= 2);
    assert!(value(&text, "lcp_serve_request_ns_sum{op=\"verify\"}") > 0);

    // Residency, read from the export: both verifies reused the warm
    // skeletons, so the miss gauge did not move.
    assert_eq!(
        value(&text, "lcp_serve_skeleton_misses"),
        misses_before,
        "a resident verify must not rebuild skeletons"
    );
    assert!(value(&text, "lcp_serve_resident_cells") >= 1);

    // The export carries the engine catalog driven by the same work.
    assert!(value(&text, "lcp_engine_evaluate_sweeps_total") > 0);
    assert!(value(&text, "lcp_dynamic_reverifies_total") > 0);

    // The backpressure series exist even while idle (a scrape must
    // never have to guess whether zero means "fine" or "unregistered").
    assert_eq!(value(&text, "lcp_serve_queue_depth"), 0);
    assert!(value(&text, "lcp_serve_busy_rejections_total") >= 0);

    handle.stop().expect("clean drain");
}

#[test]
fn typed_errors_and_bad_frames_are_counted() {
    let handle = Server::bind(ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let base = client.metrics_text().expect("metrics");
    let errors = value(&base, "lcp_serve_error_responses_total");
    let bad = value(&base, "lcp_serve_bad_requests_total");

    let mut unknown = coord();
    unknown.scheme = "no-such-scheme".into();
    client.prepare(&unknown).expect_err("typed error");
    client.request("not json at all").expect_err("bad frame");

    let text = client.metrics_text().expect("metrics");
    assert_eq!(value(&text, "lcp_serve_error_responses_total"), errors + 1);
    assert_eq!(value(&text, "lcp_serve_bad_requests_total"), bad + 1);
    // A failed dispatch still counts as a request of its op...
    assert!(value(&text, "lcp_serve_requests_total{op=\"prepare\"}") > 0);
    // ...but an unparseable frame has no op to attribute.

    handle.stop().expect("clean drain");
}
