//! Spanning trees and rooted-tree bookkeeping.
//!
//! Rooted spanning trees are the paper's master tool for `LogLCP` upper
//! bounds (§5.1): leader election, acyclicity, node counting, and the
//! model translations of §7.1 all hang certificates off one.

use crate::{Graph, GraphError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::collections::VecDeque;

/// A rooted spanning tree of (one component of) a graph, stored as parent
/// pointers plus depths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootedTree {
    root: usize,
    parent: Vec<Option<usize>>,
    depth: Vec<Option<usize>>,
}

impl RootedTree {
    /// The root index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Parent of `u` in the tree (`None` for the root and for nodes outside
    /// the covered component).
    pub fn parent(&self, u: usize) -> Option<usize> {
        self.parent[u]
    }

    /// Depth of `u` (root has depth 0); `None` outside the component.
    pub fn depth(&self, u: usize) -> Option<usize> {
        self.depth[u]
    }

    /// Whether `u` is covered by the tree.
    pub fn covers(&self, u: usize) -> bool {
        self.depth[u].is_some()
    }

    /// Number of covered nodes.
    pub fn size(&self) -> usize {
        self.depth.iter().flatten().count()
    }

    /// Tree edges as `(child, parent)` pairs.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.parent
            .iter()
            .enumerate()
            .filter_map(|(c, p)| p.map(|p| (c, p)))
            .collect()
    }

    /// Children lists for every node (empty for uncovered nodes).
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for (c, p) in self.edges() {
            ch[p].push(c);
        }
        ch
    }

    /// Subtree sizes (`1` for covered leaves, `0` for uncovered nodes).
    ///
    /// `sizes[root]` equals [`RootedTree::size`]; these are exactly the
    /// node counters the §5.1 counting certificates propagate towards the
    /// root.
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let n = self.parent.len();
        let mut size = vec![0usize; n];
        // Process nodes in decreasing depth order.
        let mut order: Vec<usize> = (0..n).filter(|&u| self.covers(u)).collect();
        order.sort_by_key(|&u| std::cmp::Reverse(self.depth[u]));
        for u in order {
            size[u] += 1;
            if let Some(p) = self.parent[u] {
                let s = size[u];
                size[p] += s;
            }
        }
        size
    }
}

/// BFS spanning tree of the component containing `root`.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn bfs_spanning_tree(g: &Graph, root: usize) -> RootedTree {
    let (dist, parent) = crate::traversal::bfs_with_parents(g, root);
    RootedTree {
        root,
        parent,
        depth: dist,
    }
}

/// A spanning tree of the component containing `root` built from a random
/// edge order (uniformly random *process*, not uniform over trees).
///
/// Randomized trees exercise the strong/weak scheme distinction of §7.2:
/// strong schemes must certify *any* spanning tree, so tests feed them
/// adversarial/random trees rather than only BFS trees.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn random_spanning_tree(g: &Graph, root: usize, rng: &mut StdRng) -> RootedTree {
    assert!(root < g.n(), "root {root} out of range");
    let mut parent = vec![None; g.n()];
    let mut depth = vec![None; g.n()];
    depth[root] = Some(0);
    // Randomized DFS.
    let mut stack = vec![root];
    while let Some(u) = stack.pop() {
        let mut nbrs: Vec<usize> = g.neighbors(u).to_vec();
        nbrs.shuffle(rng);
        for v in nbrs {
            if depth[v].is_none() {
                depth[v] = Some(depth[u].expect("stacked nodes have depth") + 1);
                parent[v] = Some(u);
                stack.push(v);
            }
        }
    }
    // DFS depths are path lengths in the tree, not BFS distances; recompute
    // depths from parents to make them consistent (they already are, but
    // this keeps the invariant explicit).
    RootedTree {
        root,
        parent,
        depth,
    }
}

/// Checks whether `edges` (index pairs) form a spanning tree of `g`.
///
/// This is the centralized ground truth for the spanning-tree verification
/// problem of Table 1(b): exactly `n − 1` edges, all present in `g`, and
/// connecting all nodes.
///
/// # Errors
///
/// Returns an error if an edge mentions an out-of-range index or is not an
/// edge of `g`.
pub fn is_spanning_tree(g: &Graph, edges: &[(usize, usize)]) -> Result<bool, GraphError> {
    for &(u, v) in edges {
        if u >= g.n() {
            return Err(GraphError::IndexOutOfRange(u));
        }
        if v >= g.n() {
            return Err(GraphError::IndexOutOfRange(v));
        }
        if !g.has_edge(u, v) {
            return Err(GraphError::InvalidConstruction(format!(
                "{{{}, {}}} is not an edge of the graph",
                g.id(u),
                g.id(v)
            )));
        }
    }
    if g.n() == 0 {
        return Ok(edges.is_empty());
    }
    if edges.len() != g.n() - 1 {
        return Ok(false);
    }
    // Union-find connectivity over the edge set.
    let mut uf: Vec<usize> = (0..g.n()).collect();
    fn find(uf: &mut [usize], mut x: usize) -> usize {
        while uf[x] != x {
            uf[x] = uf[uf[x]];
            x = uf[x];
        }
        x
    }
    for &(u, v) in edges {
        let (ru, rv) = (find(&mut uf, u), find(&mut uf, v));
        if ru == rv {
            return Ok(false); // cycle
        }
        uf[ru] = rv;
    }
    let r0 = find(&mut uf, 0);
    Ok((1..g.n()).all(|u| find(&mut uf, u) == r0))
}

/// BFS spanning tree restricted to a caller-supplied edge subset.
///
/// Used to root a *given* spanning tree (a problem solution) at a chosen
/// node so a certificate can be attached to it.
///
/// Returns `None` if the edge subset does not connect `root` to every node.
///
/// # Panics
///
/// Panics if `root` or an edge index is out of range.
pub fn root_edge_subset(g: &Graph, edges: &[(usize, usize)], root: usize) -> Option<RootedTree> {
    assert!(root < g.n(), "root {root} out of range");
    let mut adj = vec![Vec::new(); g.n()];
    for &(u, v) in edges {
        assert!(u < g.n() && v < g.n(), "edge index out of range");
        adj[u].push(v);
        adj[v].push(u);
    }
    for list in &mut adj {
        list.sort_unstable();
    }
    let mut parent = vec![None; g.n()];
    let mut depth = vec![None; g.n()];
    depth[root] = Some(0);
    let mut queue = VecDeque::from([root]);
    let mut reached = 1;
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if depth[v].is_none() {
                depth[v] = Some(depth[u].expect("queued") + 1);
                parent[v] = Some(u);
                reached += 1;
                queue.push_back(v);
            }
        }
    }
    (reached == g.n()).then_some(RootedTree {
        root,
        parent,
        depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;

    #[test]
    fn bfs_tree_covers_component() {
        let g = generators::grid(3, 3);
        let t = bfs_spanning_tree(&g, 4);
        assert_eq!(t.size(), 9);
        assert_eq!(t.root(), 4);
        assert_eq!(t.depth(4), Some(0));
        assert_eq!(t.edges().len(), 8);
        // Every tree edge is a graph edge; depths increase by 1 along it.
        for (c, p) in t.edges() {
            assert!(g.has_edge(c, p));
            assert_eq!(t.depth(c).unwrap(), t.depth(p).unwrap() + 1);
        }
    }

    #[test]
    fn bfs_tree_on_disconnected_graph_covers_one_component() {
        let g = crate::ops::disjoint_union(
            &generators::cycle(3),
            &crate::ops::shift_ids(&generators::cycle(4), 10),
        )
        .unwrap();
        let t = bfs_spanning_tree(&g, 0);
        assert_eq!(t.size(), 3);
        assert!(!t.covers(5));
        assert_eq!(t.depth(5), None);
    }

    #[test]
    fn subtree_sizes_sum_at_root() {
        let g = generators::complete_binary_tree(3);
        let t = bfs_spanning_tree(&g, 0);
        let s = t.subtree_sizes();
        assert_eq!(s[0], 7);
        assert_eq!(s[1], 3);
        assert_eq!(s[2], 3);
        assert_eq!(s[3], 1);
    }

    #[test]
    fn children_invert_parents() {
        let g = generators::star(5);
        let t = bfs_spanning_tree(&g, 0);
        let ch = t.children();
        assert_eq!(ch[0].len(), 5);
        assert!(ch[1].is_empty());
    }

    #[test]
    fn random_tree_is_spanning() {
        let g = generators::complete(8);
        let mut rng = StdRng::seed_from_u64(3);
        let t = random_spanning_tree(&g, 2, &mut rng);
        assert_eq!(t.size(), 8);
        let edges = t.edges();
        assert!(is_spanning_tree(&g, &edges).unwrap());
        for (c, p) in edges {
            assert_eq!(t.depth(c).unwrap(), t.depth(p).unwrap() + 1);
        }
    }

    #[test]
    fn is_spanning_tree_accepts_bfs_tree() {
        let g = generators::grid(2, 4);
        let t = bfs_spanning_tree(&g, 0);
        assert!(is_spanning_tree(&g, &t.edges()).unwrap());
    }

    #[test]
    fn is_spanning_tree_rejects_cycles_and_forests() {
        let g = generators::cycle(4);
        // All 4 edges: a cycle, not a tree.
        let all: Vec<_> = g.edges().collect();
        assert!(!is_spanning_tree(&g, &all).unwrap());
        // Too few edges.
        assert!(!is_spanning_tree(&g, &all[..2]).unwrap());
        // Right count, wrong shape (re-using an edge is rejected as a cycle).
        assert!(!is_spanning_tree(&g, &[all[0], all[0], all[1]]).unwrap());
    }

    #[test]
    fn is_spanning_tree_rejects_non_edges() {
        let g = generators::path(4);
        assert!(is_spanning_tree(&g, &[(0, 3), (1, 2), (2, 3)]).is_err());
    }

    #[test]
    fn root_edge_subset_roots_a_given_tree() {
        let g = generators::cycle(5);
        let edges: Vec<_> = g.edges().filter(|&(u, v)| !(u == 0 && v == 4)).collect();
        let t = root_edge_subset(&g, &edges, 2).unwrap();
        assert_eq!(t.size(), 5);
        assert_eq!(t.depth(2), Some(0));
        // Dropping one more edge disconnects.
        assert!(root_edge_subset(&g, &edges[..3], 2).is_none());
    }
}
