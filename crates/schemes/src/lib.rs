//! # `lcp-schemes` — every proof labelling scheme of Table 1
//!
//! One module per theme; every scheme is a `lcp_core::Scheme` with a
//! prover, a constant-radius verifier, and centralized ground truth, so
//! the conformance harness and the Table 1 bench can sweep them
//! uniformly.
//!
//! | Paper row | Bound | Type |
//! |---|---|---|
//! | Eulerian graph (§1.1) | 0 | [`eulerian::Eulerian`] |
//! | line graph (§1.1) | 0 | [`line_graph::LineGraph`] |
//! | s–t reachability, undirected (§4.1) | Θ(1) | [`st_reach::StReachability`] |
//! | s–t unreachability, undirected/directed (§4.1) | Θ(1) | [`st_reach::StUnreachability`] |
//! | s–t reachability, directed (§4.1) | O(log Δ) (LCP(O(1)) open) | [`st_reach::StReachabilityDirected`] |
//! | s–t connectivity = k (§4.2) | O(log k) / Θ(1) planar | [`st_connectivity::StConnectivity`] |
//! | bipartite graph (§1.2) | Θ(1) | [`bipartite::Bipartite`] |
//! | even/odd n(G) on cycles (§5) | Θ(1) / Θ(log n) | [`cycles::EvenCycle`], [`cycles::OddCycle`] |
//! | chromatic number ≤ k (§2.2) | O(log k) | [`chromatic::ChromaticAtMost`] |
//! | chromatic number > 2 (§5.1) | Θ(log n) | [`chromatic::NonBipartite`] |
//! | coLCP(0) (§7.3) | O(log n) | [`complement::Complement`] |
//! | monadic Σ¹₁ (§7.5) | O(log n) | `lcp_logic::Sigma11Scheme` |
//! | symmetric graph (§6.1) | Θ(n²) | [`universal::symmetric_graph`] |
//! | fixpoint-free symmetry on trees (§6.2) | Θ(n) | [`tree_universal::tree_fixpoint_free`] |
//! | chromatic number > 3 (§6.3) | O(n²) | [`universal::non_three_colorable`] |
//! | computable properties (§6) | O(n²) | [`universal::Universal`] |
//! | maximal matching (§2.3) | 0 | [`matching::MaximalMatching`] |
//! | LCL / LD problems (§3) | 0 | [`lcl`] |
//! | maximum matching, bipartite (§2.3) | Θ(1) | [`matching::MaximumMatchingBipartite`] |
//! | max-weight matching, bipartite (§2.3) | O(log W) | [`matching::MaxWeightMatchingBipartite`] |
//! | leader election (§5.1) | Θ(log n) | [`leader::LeaderElection`] |
//! | spanning tree (§5.1) | Θ(log n) | [`spanning_tree::SpanningTree`] |
//! | maximum matching on cycles (§5.4) | Θ(log n) | [`cycles::MaxMatchingCycle`] |
//! | weak schemes (§7.2) | Θ(log n) | [`weak::WeakLeaderElection`] |
//! | Hamiltonian cycle (§5.1) | Θ(log n) | [`hamiltonian::HamiltonianCycle`] |
//!
//! The matching `Θ(log n)` **lower** bounds are not in this crate — they
//! are executable attacks in `lcp-lower-bounds`.
#![deny(missing_docs)]

pub mod bipartite;
pub mod chromatic;
pub mod complement;
pub mod cycles;
pub mod eulerian;
pub mod hamiltonian;
pub mod labels;
pub mod lcl;
pub mod leader;
pub mod line_graph;
pub mod matching;
pub mod registry;
pub mod spanning_tree;
pub mod st_connectivity;
pub mod st_reach;
pub mod tree_universal;
pub mod universal;
pub mod weak;

pub use labels::{ArcDir, StMark};
pub use registry::{CellRequest, Polarity, SchemeEntry};
