//! Menger machinery: maximum sets of internally vertex-disjoint `s`–`t`
//! paths and minimum vertex separators.
//!
//! The §4.2 scheme certifies "`s`–`t` vertex connectivity = k" with (i) `k`
//! vertex-disjoint paths and (ii) a partition `S ∪ C ∪ T` with `|C| = k`
//! whose middle layer each path crosses exactly once. Both certificates
//! come out of one unit-capacity max-flow on the node-split graph, which
//! this module implements from scratch.

use crate::Graph;
use std::collections::VecDeque;

/// A maximum set of internally vertex-disjoint `s`–`t` paths together with
/// a minimum `s`–`t` vertex separator (Menger's theorem: the two have
/// equal size when `s` and `t` are non-adjacent).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MengerCertificate {
    /// Vertex-disjoint paths, each written `s, …, t`.
    pub paths: Vec<Vec<usize>>,
    /// A minimum separator: internal nodes whose removal disconnects `s`
    /// from `t`. Empty when `s` and `t` are adjacent (no separator
    /// exists) or disconnected.
    pub separator: Vec<usize>,
}

/// Simple unit-ish capacity max-flow (Edmonds–Karp) on an explicit
/// residual graph.
struct FlowNetwork {
    to: Vec<usize>,
    cap: Vec<i64>,
    head: Vec<Vec<usize>>, // per-node edge indices
}

impl FlowNetwork {
    fn new(n: usize) -> Self {
        FlowNetwork {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    fn add_edge(&mut self, u: usize, v: usize, cap: i64) {
        let e = self.to.len();
        self.to.push(v);
        self.cap.push(cap);
        self.head[u].push(e);
        self.to.push(u);
        self.cap.push(0);
        self.head[v].push(e + 1);
    }

    fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        let mut total = 0;
        loop {
            // BFS for a shortest augmenting path.
            let mut pred: Vec<Option<usize>> = vec![None; self.head.len()]; // edge used to reach node
            let mut queue = VecDeque::from([s]);
            let mut seen = vec![false; self.head.len()];
            seen[s] = true;
            while let Some(u) = queue.pop_front() {
                for &e in &self.head[u] {
                    let v = self.to[e];
                    if !seen[v] && self.cap[e] > 0 {
                        seen[v] = true;
                        pred[v] = Some(e);
                        queue.push_back(v);
                    }
                }
            }
            if !seen[t] {
                return total;
            }
            // Bottleneck along the path.
            let mut bottleneck = i64::MAX;
            let mut v = t;
            while v != s {
                let e = pred[v].expect("path exists");
                bottleneck = bottleneck.min(self.cap[e]);
                v = self.to[e ^ 1];
            }
            let mut v = t;
            while v != s {
                let e = pred[v].expect("path exists");
                self.cap[e] -= bottleneck;
                self.cap[e ^ 1] += bottleneck;
                v = self.to[e ^ 1];
            }
            total += bottleneck;
        }
    }

    /// Nodes reachable from `s` in the residual graph.
    fn residual_reachable(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.head.len()];
        seen[s] = true;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &e in &self.head[u] {
                let v = self.to[e];
                if !seen[v] && self.cap[e] > 0 {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }
}

/// Computes a maximum family of internally vertex-disjoint `s`–`t` paths
/// and (when `s` and `t` are non-adjacent) a matching minimum separator.
///
/// Paths are *shortcut*: no path has a chord among its own vertices, the
/// "locally minimal" normalization §4.2 assumes.
///
/// # Panics
///
/// Panics if `s == t` or either is out of range.
pub fn menger_certificate(g: &Graph, s: usize, t: usize) -> MengerCertificate {
    assert!(s < g.n() && t < g.n(), "endpoints out of range");
    assert_ne!(s, t, "endpoints must differ");
    let n = g.n();
    // Split nodes: in(v) = 2v, out(v) = 2v + 1.
    let inn = |v: usize| 2 * v;
    let out = |v: usize| 2 * v + 1;
    let big = n as i64 + 1;
    let mut net = FlowNetwork::new(2 * n);
    for v in 0..n {
        let c = if v == s || v == t { big } else { 1 };
        net.add_edge(inn(v), out(v), c);
    }
    for (u, v) in g.edges() {
        // Edge arcs are uncapacitated so the minimum cut consists of
        // vertex-split arcs only; the direct s–t edge (if any) stays at 1
        // so it counts as a single path.
        let c = if (u == s || u == t) && (v == s || v == t) {
            1
        } else {
            big
        };
        net.add_edge(out(u), inn(v), c);
        net.add_edge(out(v), inn(u), c);
    }
    let flow = net.max_flow(out(s), inn(t)) as usize;

    // Decompose the flow into paths: walk flow-carrying edges from s.
    // flow on edge e = cap[e^1] for forward edges (initial cap minus residual).
    let mut used_flow: Vec<i64> = (0..net.to.len())
        .map(|e| if e % 2 == 0 { net.cap[e ^ 1] } else { 0 })
        .collect();
    let mut paths = Vec::new();
    for _ in 0..flow {
        // DFS from out(s) to inn(t) over positive-flow edges.
        let mut path_nodes = vec![s];
        let mut cur = out(s);
        let mut guard = 0;
        while cur != inn(t) {
            guard += 1;
            assert!(guard <= 4 * n + 4, "flow decomposition must terminate");
            let &e = net.head[cur]
                .iter()
                .find(|&&e| e % 2 == 0 && used_flow[e] > 0)
                .expect("flow conservation guarantees an outgoing unit");
            used_flow[e] -= 1;
            cur = net.to[e];
            // Record original nodes when stepping onto an in-vertex.
            if cur % 2 == 0 {
                path_nodes.push(cur / 2);
            }
        }
        paths.push(shortcut_path(g, path_nodes));
    }

    // Separator: min-cut nodes are those whose in-half is residually
    // reachable but out-half is not. Only defined when s, t non-adjacent.
    let separator = if g.has_edge(s, t) {
        Vec::new()
    } else {
        let reach = net.residual_reachable(out(s));
        (0..n)
            .filter(|&v| v != s && v != t && reach[inn(v)] && !reach[out(v)])
            .collect()
    };
    MengerCertificate { paths, separator }
}

/// Removes chords within a single path: while some `path[i]`–`path[j]`
/// edge with `j > i + 1` exists, splice out the interior.
fn shortcut_path(g: &Graph, mut path: Vec<usize>) -> Vec<usize> {
    'outer: loop {
        for i in 0..path.len() {
            for j in ((i + 2)..path.len()).rev() {
                if g.has_edge(path[i], path[j]) {
                    path.drain(i + 1..j);
                    continue 'outer;
                }
            }
        }
        return path;
    }
}

/// The local vertex connectivity `κ(s, t)`: the maximum number of
/// internally vertex-disjoint `s`–`t` paths.
///
/// # Panics
///
/// Panics if `s == t` or either is out of range.
pub fn local_vertex_connectivity(g: &Graph, s: usize, t: usize) -> usize {
    menger_certificate(g, s, t).paths.len()
}

/// Exhaustive minimum `s`–`t` separator size for ground truth on small
/// graphs: the smallest set of internal nodes whose removal disconnects
/// `s` from `t`. Returns `None` when `s` and `t` are adjacent.
pub fn min_separator_bruteforce(g: &Graph, s: usize, t: usize) -> Option<usize> {
    if g.has_edge(s, t) {
        return None;
    }
    let internal: Vec<usize> = g.nodes().filter(|&v| v != s && v != t).collect();
    assert!(
        internal.len() <= 20,
        "brute-force separator search is for small graphs"
    );
    let mut best = internal.len();
    for mask in 0u32..(1u32 << internal.len()) {
        let size = mask.count_ones() as usize;
        if size >= best {
            continue;
        }
        let removed: Vec<usize> = internal
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask >> i & 1 == 1)
            .map(|(_, &v)| v)
            .collect();
        let keep: Vec<usize> = g.nodes().filter(|v| !removed.contains(v)).collect();
        let (h, map) = g.induced(&keep);
        let hs = map.iter().position(|&x| x == s).expect("s kept");
        let ht = map.iter().position(|&x| x == t).expect("t kept");
        if crate::traversal::bfs_distances(&h, hs)[ht].is_none() {
            best = size;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_valid_paths(g: &Graph, s: usize, t: usize, paths: &[Vec<usize>]) {
        let mut seen_internal = vec![false; g.n()];
        for p in paths {
            assert_eq!(*p.first().unwrap(), s);
            assert_eq!(*p.last().unwrap(), t);
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]), "non-edge on path");
            }
            for &v in &p[1..p.len() - 1] {
                assert!(!seen_internal[v], "paths share internal node {v}");
                assert!(v != s && v != t);
                seen_internal[v] = true;
            }
        }
    }

    #[test]
    fn cycle_has_connectivity_two() {
        let g = generators::cycle(8);
        let cert = menger_certificate(&g, 0, 4);
        assert_eq!(cert.paths.len(), 2);
        assert_valid_paths(&g, 0, 4, &cert.paths);
        assert_eq!(cert.separator.len(), 2);
    }

    #[test]
    fn complete_bipartite_same_side() {
        let g = generators::complete_bipartite(3, 4);
        // Nodes 0 and 1 are on the small side: κ = 4.
        let cert = menger_certificate(&g, 0, 1);
        assert_eq!(cert.paths.len(), 4);
        assert_valid_paths(&g, 0, 1, &cert.paths);
        assert_eq!(cert.separator.len(), 4);
    }

    #[test]
    fn adjacent_endpoints_have_no_separator() {
        let g = generators::complete(4);
        let cert = menger_certificate(&g, 0, 1);
        assert_eq!(cert.paths.len(), 3); // direct edge + 2 two-hop paths
        assert!(cert.separator.is_empty());
        assert_valid_paths(&g, 0, 1, &cert.paths);
    }

    #[test]
    fn disconnected_endpoints_give_zero() {
        let g = crate::ops::disjoint_union(
            &generators::cycle(3),
            &crate::ops::shift_ids(&generators::cycle(3), 10),
        )
        .unwrap();
        let cert = menger_certificate(&g, 0, 4);
        assert!(cert.paths.is_empty());
        assert!(cert.separator.is_empty());
    }

    #[test]
    fn grid_corners_have_connectivity_two() {
        let g = generators::grid(3, 3);
        let cert = menger_certificate(&g, 0, 8);
        assert_eq!(cert.paths.len(), 2);
        assert_valid_paths(&g, 0, 8, &cert.paths);
    }

    #[test]
    fn separator_actually_separates() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut checked = 0;
        for _ in 0..30 {
            let g = generators::random_connected(9, 6, &mut rng);
            let (s, t) = (0, 8);
            if g.has_edge(s, t) {
                continue;
            }
            checked += 1;
            let cert = menger_certificate(&g, s, t);
            assert_eq!(cert.paths.len(), cert.separator.len(), "Menger equality");
            assert_valid_paths(&g, s, t, &cert.paths);
            // Removing the separator must disconnect s from t.
            let keep: Vec<usize> = g.nodes().filter(|v| !cert.separator.contains(v)).collect();
            let (h, map) = g.induced(&keep);
            let hs = map.iter().position(|&x| x == s).unwrap();
            let ht = map.iter().position(|&x| x == t).unwrap();
            assert_eq!(crate::traversal::bfs_distances(&h, hs)[ht], None);
        }
        assert!(checked >= 5, "want some non-adjacent test cases");
    }

    #[test]
    fn matches_bruteforce_on_small_graphs() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let g = generators::random_connected(7, 4, &mut rng);
            let (s, t) = (0, 6);
            if g.has_edge(s, t) {
                continue;
            }
            let cert = menger_certificate(&g, s, t);
            let brute = min_separator_bruteforce(&g, s, t).unwrap();
            assert_eq!(cert.separator.len(), brute);
        }
    }

    #[test]
    fn paths_are_chordless_within_themselves() {
        let g = generators::complete(6);
        let cert = menger_certificate(&g, 0, 1);
        for p in &cert.paths {
            for i in 0..p.len() {
                for j in (i + 2)..p.len() {
                    if !(i == 0 && j == p.len() - 1) {
                        assert!(
                            !g.has_edge(p[i], p[j]) || (p[i] == 0 && p[j] == 1),
                            "chord {}-{} left in path {p:?}",
                            p[i],
                            p[j],
                        );
                    }
                }
            }
        }
    }
}
