//! The §6.3 fooling-set attack on non-3-colourability schemes.
//!
//! For a set `A ⊆ I × I` (`I = {0..2^k − 1}`) we build a gadget graph
//! `G_A` whose valid 3-colourings encode exactly the pairs `(x, y) ∈ A`
//! on its encoder nodes, then join `G_A` and an isomorphic copy `G'_B`
//! with colour-propagating *wires* so that `G_{A,B}` is 3-colourable iff
//! `A ∩ B ≠ ∅`. The instances `G_{A,Ā}` are never 3-colourable
//! (yes-instances of "χ > 3"); if two sets `A ≠ B` receive identical
//! proofs on the wire window, splicing produces a 3-colourable hybrid
//! `G_{A,B̄}` (or `G_{B,Ā}`) accepted by every node.
//!
//! **Substitution note (documented in DESIGN.md):** the paper defers the
//! explicit `Θ(2^k)`-node construction of `G_A` to its extended version.
//! We use a transparent clause-per-excluded-cell construction
//! (Garey–Johnson OR-gadgets), which has `Θ(k · |Ā|)` gadget nodes. The
//! fooling *mechanism* — wire isolation, window collision, cut-and-paste
//! acceptance — is identical; only the constant bookkeeping of the bound
//! differs at experimental scale.

use crate::CounterExample;
use lcp_core::{engine, BitString, Instance, Proof, Scheme};
use lcp_graph::{coloring, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// A cell of the `I × I` grid.
pub type Cell = (u64, u64);

/// Identifier layout and wire geometry for the §6.3 construction.
///
/// All palette / encoder / wire identifiers are **fixed** across
/// different sets `A`, so donor proofs can be spliced by identifier; only
/// the clause gadgets (whose identifiers live in a reserved range) vary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GadgetLayout {
    /// Bits per coordinate; `I = {0 .. 2^k − 1}`.
    pub k: usize,
    /// Wire length in rows; must be ≥ `2r + 3` for a radius-`r` verifier
    /// so that no view spans both gadget sides.
    pub rows: usize,
}

const PRIME: u64 = 10_000_000;
const CLAUSE_BASE: u64 = 1_000_000;
const WIRE_BASE: u64 = 100_000;

impl GadgetLayout {
    /// A layout suitable for a radius-`r` verifier.
    pub fn for_radius(k: usize, r: usize) -> Self {
        assert!((1..=8).contains(&k), "coordinate width out of range");
        GadgetLayout {
            k,
            rows: (3 * r).max(2 * r + 3),
        }
    }

    /// The side length of the grid, `2^k`.
    pub fn side(&self) -> u64 {
        1 << self.k
    }

    /// All cells of `I × I`.
    pub fn all_cells(&self) -> Vec<Cell> {
        let s = self.side();
        (0..s).flat_map(|x| (0..s).map(move |y| (x, y))).collect()
    }

    // Fixed identifiers (unprimed side; add PRIME for the copy).
    fn id_t(&self) -> u64 {
        1
    }
    fn id_f(&self) -> u64 {
        2
    }
    fn id_n(&self) -> u64 {
        3
    }
    fn id_x(&self, i: usize) -> u64 {
        10 + i as u64
    }
    fn id_y(&self, i: usize) -> u64 {
        40 + i as u64
    }
    fn id_nx(&self, i: usize) -> u64 {
        70 + i as u64
    }
    fn id_ny(&self, i: usize) -> u64 {
        100 + i as u64
    }

    /// Wire endpoints, unprimed side: `T, x₀..x_{k−1}, y₀..y_{k−1}`.
    fn wire_endpoints(&self) -> Vec<u64> {
        let mut e = vec![self.id_t()];
        e.extend((0..self.k).map(|i| self.id_x(i)));
        e.extend((0..self.k).map(|i| self.id_y(i)));
        e
    }

    fn wire_node(&self, wire: usize, row: usize, col: usize) -> u64 {
        WIRE_BASE + (wire as u64 + 1) * 1000 + row as u64 * 5 + col as u64
    }

    /// Identifiers of the wire-owned (fresh) nodes — the §6.3 window `W`.
    pub fn window_ids(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for w in 0..self.wire_endpoints().len() {
            // Row 1 and row `rows` own only their third column; interior
            // rows own all three.
            out.push(NodeId(self.wire_node(w, 1, 3)));
            for row in 2..self.rows {
                for col in 1..=3 {
                    out.push(NodeId(self.wire_node(w, row, col)));
                }
            }
            out.push(NodeId(self.wire_node(w, self.rows, 3)));
        }
        out
    }

    /// Builds one gadget side realizing the cell set `cells` (i.e. valid
    /// 3-colourings encode exactly the pairs in `cells`), with
    /// identifiers offset by `base` (0 or [`PRIME`]).
    fn build_side(&self, g: &mut Graph, cells: &BTreeSet<Cell>, base: u64) {
        let add = |g: &mut Graph, id: u64| {
            g.add_node(NodeId(base + id)).expect("fresh gadget id");
        };
        let edge = |g: &mut Graph, a: u64, b: u64| {
            let ia = g.index_of(NodeId(base + a)).expect("node exists");
            let ib = g.index_of(NodeId(base + b)).expect("node exists");
            if !g.has_edge(ia, ib) {
                g.add_edge(ia, ib).expect("validated");
            }
        };
        // Palette triangle.
        add(g, self.id_t());
        add(g, self.id_f());
        add(g, self.id_n());
        edge(g, self.id_t(), self.id_f());
        edge(g, self.id_t(), self.id_n());
        edge(g, self.id_f(), self.id_n());
        // Encoders and negations.
        for i in 0..self.k {
            for id in [self.id_x(i), self.id_y(i), self.id_nx(i), self.id_ny(i)] {
                add(g, id);
                edge(g, id, self.id_n());
            }
            edge(g, self.id_x(i), self.id_nx(i));
            edge(g, self.id_y(i), self.id_ny(i));
        }
        // One clause per *excluded* cell: at least one encoder bit must
        // differ from the cell's coordinates.
        let mut next_clause = CLAUSE_BASE;
        for (a, b) in self.all_cells() {
            if cells.contains(&(a, b)) {
                continue;
            }
            // Literals: "x_i ≠ a_i" is nx_i when a_i = 1, else x_i.
            let mut literals: Vec<u64> = Vec::with_capacity(2 * self.k);
            for i in 0..self.k {
                literals.push(if a >> i & 1 == 1 {
                    self.id_nx(i)
                } else {
                    self.id_x(i)
                });
            }
            for i in 0..self.k {
                literals.push(if b >> i & 1 == 1 {
                    self.id_ny(i)
                } else {
                    self.id_y(i)
                });
            }
            // OR-chain of Garey–Johnson gadgets; the final output is tied
            // to F and N, forcing it to colour T ⇔ the clause holds.
            let mut acc = literals[0];
            for &lit in &literals[1..] {
                let (ga, gb, out) = (next_clause, next_clause + 1, next_clause + 2);
                next_clause += 3;
                for id in [ga, gb, out] {
                    add(g, id);
                }
                edge(g, acc, ga);
                edge(g, lit, gb);
                edge(g, ga, gb);
                edge(g, ga, out);
                edge(g, gb, out);
                acc = out;
            }
            edge(g, acc, self.id_f());
            edge(g, acc, self.id_n());
        }
    }

    /// Builds `G_{A,B}`: unprimed side realizing `A`, primed side
    /// realizing `B`, joined by `2k + 1` colour-propagating wires.
    pub fn build(&self, a: &BTreeSet<Cell>, b: &BTreeSet<Cell>) -> Graph {
        let mut g = Graph::new();
        self.build_side(&mut g, a, 0);
        self.build_side(&mut g, b, PRIME);
        // Wires.
        let endpoints = self.wire_endpoints();
        for (w, &ep) in endpoints.iter().enumerate() {
            // Row contents: row 1 = (N, ep, fresh); interior rows fresh;
            // row `rows` = (N', ep', fresh).
            let node_at = |g: &mut Graph, row: usize, col: usize| -> usize {
                let id = if row == 1 && col == 1 {
                    self.id_n()
                } else if row == 1 && col == 2 {
                    ep
                } else if row == self.rows && col == 1 {
                    PRIME + self.id_n()
                } else if row == self.rows && col == 2 {
                    PRIME + ep
                } else {
                    self.wire_node(w, row, col)
                };
                match g.index_of(NodeId(id)) {
                    Some(i) => i,
                    None => g.add_node(NodeId(id)).expect("fresh wire id"),
                }
            };
            for row in 1..=self.rows {
                // Triangle within the row.
                let trio: Vec<usize> = (1..=3).map(|c| node_at(&mut g, row, c)).collect();
                for i in 0..3 {
                    for j in (i + 1)..3 {
                        if !g.has_edge(trio[i], trio[j]) {
                            g.add_edge(trio[i], trio[j]).expect("validated");
                        }
                    }
                }
                // Cross edges to the previous row (j ≠ j′).
                if row > 1 {
                    let prev: Vec<usize> = (1..=3).map(|c| node_at(&mut g, row - 1, c)).collect();
                    for i in 0..3 {
                        for j in 0..3 {
                            if i != j && !g.has_edge(prev[i], trio[j]) {
                                g.add_edge(prev[i], trio[j]).expect("validated");
                            }
                        }
                    }
                }
            }
        }
        g
    }

    /// Builds `G_A` alone with the encoders pinned to `(x, y)` — a test
    /// helper for validating gadget semantics.
    pub fn build_pinned(&self, cells: &BTreeSet<Cell>, x: u64, y: u64) -> Graph {
        let mut g = Graph::new();
        self.build_side(&mut g, cells, 0);
        let mut pin = |enc_id: u64, bit: bool| {
            let enc = g.index_of(NodeId(enc_id)).expect("encoder exists");
            // Force T (bit 1) by excluding F; force F by excluding T.
            let other = g
                .index_of(NodeId(if bit { self.id_f() } else { self.id_t() }))
                .expect("palette exists");
            if !g.has_edge(enc, other) {
                g.add_edge(enc, other).expect("validated");
            }
        };
        for i in 0..self.k {
            pin(self.id_x(i), x >> i & 1 == 1);
            pin(self.id_y(i), y >> i & 1 == 1);
        }
        g
    }
}

/// Outcome of a fooling attack.
#[derive(Clone, Debug)]
pub enum FoolingOutcome {
    /// A 3-colourable hybrid was accepted by every node.
    Fooled(Box<CounterExample>),
    /// All wire windows were distinct (expected for `Θ(n²)` schemes).
    NoCollision {
        /// Provable donor instances examined.
        candidates: usize,
        /// Distinct window patterns.
        distinct_windows: usize,
    },
    /// A collision existed but some node rejected the spliced proof.
    SchemeSurvived {
        /// Rejecting node indices.
        rejecting: Vec<usize>,
    },
    /// The prover failed on every `G_{A,Ā}` donor.
    ProverFailed,
    /// A donor's *honest* proof was rejected — a scheme bug surfaced by
    /// the attack's sanity sweep, with the witness node.
    HonestProofRejected {
        /// Index of the donor set whose instance failed.
        donor: usize,
        /// The rejecting node.
        node: usize,
    },
}

impl FoolingOutcome {
    /// Whether the attack produced a counterexample.
    pub fn fooled(&self) -> bool {
        matches!(self, FoolingOutcome::Fooled(_))
    }
}

/// Runs the §6.3 attack: sample subsets `A`, prove `G_{A,Ā}`, find a
/// wire-window collision, splice, and evaluate.
pub fn fooling_attack<S>(
    scheme: &S,
    layout: &GadgetLayout,
    max_sets: usize,
    seed: u64,
) -> FoolingOutcome
where
    S: Scheme<Node = (), Edge = ()> + Sync,
{
    assert!(
        layout.rows >= 2 * scheme.radius() + 3,
        "wire rows too short for the verifier radius"
    );
    let all = layout.all_cells();
    let mut rng = StdRng::seed_from_u64(seed);
    // Candidate sets: for small grids, enumerate; otherwise sample.
    let sets: Vec<BTreeSet<Cell>> = if all.len() <= 4 && max_sets >= 16 {
        (0..(1u32 << all.len()))
            .map(|mask| {
                all.iter()
                    .enumerate()
                    .filter(|&(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &c)| c)
                    .collect()
            })
            .collect()
    } else {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        while out.len() < max_sets {
            let set: BTreeSet<Cell> = all
                .iter()
                .copied()
                .filter(|_| rng.random_bool(0.5))
                .collect();
            if seen.insert(set.clone()) {
                out.push(set);
            }
        }
        out
    };

    let window = layout.window_ids();
    let mut by_window: BTreeMap<Vec<BitString>, usize> = BTreeMap::new();
    let mut donors: Vec<Option<(Instance, Proof)>> = Vec::new();
    let mut candidates = 0usize;
    let mut collision = None;

    for (i, a) in sets.iter().enumerate() {
        let complement: BTreeSet<Cell> = all.iter().copied().filter(|c| !a.contains(c)).collect();
        let graph = layout.build(a, &complement);
        let inst = Instance::unlabeled(graph);
        let Some(proof) = scheme.prove(&inst) else {
            donors.push(None);
            continue;
        };
        if let Some(node) = lcp_core::evaluate_until_reject(scheme, &inst, &proof) {
            return FoolingOutcome::HonestProofRejected { donor: i, node };
        }
        candidates += 1;
        let key: Vec<BitString> = window
            .iter()
            .map(|&id| {
                let v = inst.graph().index_of(id).expect("window ids exist");
                proof.get(v).to_bitstring()
            })
            .collect();
        if let Some(&other) = by_window.get(&key) {
            collision = Some((other, i));
            donors.push(Some((inst, proof)));
            break;
        }
        by_window.insert(key, i);
        donors.push(Some((inst, proof)));
    }

    if candidates == 0 {
        return FoolingOutcome::ProverFailed;
    }
    let Some((i, j)) = collision else {
        return FoolingOutcome::NoCollision {
            candidates,
            distinct_windows: by_window.len(),
        };
    };

    // Orient the hybrid so it is 3-colourable: A ∩ B̄ ≠ ∅ or B ∩ Ā ≠ ∅.
    let (a, b) = (&sets[i], &sets[j]);
    let b_comp: BTreeSet<Cell> = all.iter().copied().filter(|c| !b.contains(c)).collect();
    let a_comp: BTreeSet<Cell> = all.iter().copied().filter(|c| !a.contains(c)).collect();
    let (unprimed_set, primed_set, unprimed_donor, primed_donor) =
        if a.intersection(&b_comp).next().is_some() {
            (a, &b_comp, i, j)
        } else {
            (b, &a_comp, j, i)
        };
    let hybrid_graph = layout.build(unprimed_set, primed_set);
    let (u_inst, u_proof) = donors[unprimed_donor].as_ref().expect("donor proved");
    let (p_inst, p_proof) = donors[primed_donor].as_ref().expect("donor proved");
    let proof = Proof::from_fn(hybrid_graph.n(), |v| {
        let id = hybrid_graph.id(v);
        if id.0 >= PRIME {
            let dv = p_inst.graph().index_of(id).expect("primed ids match donor");
            p_proof.get(dv).to_bitstring()
        } else {
            let dv = u_inst
                .graph()
                .index_of(id)
                .expect("unprimed/wire ids match donor");
            u_proof.get(dv).to_bitstring()
        }
    });
    debug_assert!(
        coloring::is_k_colorable(&hybrid_graph, 3),
        "hybrid must be 3-colourable by set logic"
    );
    let hybrid = Instance::unlabeled(hybrid_graph);
    // One skeleton preparation, then a cached-view sweep (engine path).
    let verdict = engine::prepare(scheme, &hybrid).evaluate(scheme, &proof);
    if verdict.accepted() {
        FoolingOutcome::Fooled(Box::new(CounterExample {
            instance: hybrid,
            proof,
            verdict,
        }))
    } else {
        FoolingOutcome::SchemeSurvived {
            rejecting: verdict.rejecting(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(cells: &[Cell]) -> BTreeSet<Cell> {
        cells.iter().copied().collect()
    }

    #[test]
    fn gadget_colorings_encode_exactly_the_cell_set() {
        // k = 1: I × I has 4 cells; check every A on every pin.
        let layout = GadgetLayout::for_radius(1, 1);
        for mask in 0u32..16 {
            let a: BTreeSet<Cell> = layout
                .all_cells()
                .into_iter()
                .enumerate()
                .filter(|&(i, _)| mask >> i & 1 == 1)
                .map(|(_, c)| c)
                .collect();
            for &(x, y) in &layout.all_cells() {
                let pinned = layout.build_pinned(&a, x, y);
                let expected = a.contains(&(x, y));
                assert_eq!(
                    coloring::is_k_colorable(&pinned, 3),
                    expected,
                    "A = {a:?}, pin = ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn joined_graph_colorable_iff_sets_intersect() {
        let layout = GadgetLayout::for_radius(1, 1);
        let a = set(&[(0, 0), (1, 1)]);
        let disjoint = set(&[(0, 1), (1, 0)]);
        let overlapping = set(&[(1, 1)]);
        assert!(!coloring::is_k_colorable(&layout.build(&a, &disjoint), 3));
        assert!(coloring::is_k_colorable(&layout.build(&a, &overlapping), 3));
        // G_{A,Ā} is never 3-colourable.
        let comp: BTreeSet<Cell> = layout
            .all_cells()
            .into_iter()
            .filter(|c| !a.contains(c))
            .collect();
        assert!(!coloring::is_k_colorable(&layout.build(&a, &comp), 3));
    }

    #[test]
    fn gadget_is_connected_and_id_stable() {
        let layout = GadgetLayout::for_radius(1, 1);
        let a = set(&[(0, 0)]);
        let b = set(&[(1, 1), (0, 1)]);
        let ga = layout.build(&a, &b);
        assert!(lcp_graph::traversal::is_connected(&ga));
        // Wire/palette/encoder ids identical across different sets.
        let gb = layout.build(&b, &a);
        for id in layout.window_ids() {
            assert!(ga.contains_id(id), "window id {id} in G(a,b)");
            assert!(gb.contains_id(id), "window id {id} in G(b,a)");
        }
    }

    #[test]
    fn window_is_far_from_both_gadgets() {
        let layout = GadgetLayout::for_radius(1, 2);
        let a = set(&[(0, 0)]);
        let comp: BTreeSet<Cell> = layout
            .all_cells()
            .into_iter()
            .filter(|c| !a.contains(c))
            .collect();
        let g = layout.build(&a, &comp);
        // The wire has `rows` ≥ 7 rows; middle-row nodes see only wire.
        let mid_row = layout.rows / 2 + 1;
        let mid = g
            .index_of(NodeId(layout.wire_node(0, mid_row, 1)))
            .expect("middle wire node");
        let ball = lcp_graph::traversal::ball(&g, mid, 2);
        for v in ball {
            let id = g.id(v).0;
            let raw = if id >= PRIME { id - PRIME } else { id };
            assert!(
                raw >= WIRE_BASE || raw == 3, // wire nodes or the N rails
                "view of a mid-wire node leaked to id {id}"
            );
        }
    }
}
