//! Property tests: the batched search loops are observationally
//! identical to the scalar ones.
//!
//! The batch layer ([`lcp_core::BatchPolicy::Auto`]) may change *how*
//! candidates are evaluated — 64 proofs per word through the block
//! odometer and the chunked bit-flip search — but never *what* the
//! harness reports. For random connected graphs, radii, string budgets,
//! and seeds these tests pin the full contract against the scalar
//! loops:
//!
//! * exhaustive: same verdict, same `tried` count on `Holds`, and the
//!   same **first** violating proof (which pins the enumeration order,
//!   not just the verdict — a trap scheme that accepts exactly one
//!   random target proof must surface that exact proof first under
//!   both policies);
//! * adversarial: identical `Option<Proof>` incumbents and an
//!   identical RNG stream position afterwards, so downstream draws in
//!   a campaign are unaffected by the routing.
//!
//! Both the kernel path (a scheme with `verify_batch`) and the
//! kernel-free path (scalar fills into the block mask tables) are
//! exercised.

use lcp_core::engine::PreparedInstance;
use lcp_core::harness::{
    adversarial_proof_search_policy, check_soundness_exhaustive_policy, Soundness,
};
use lcp_core::{BatchPolicy, BatchView, BitString, Deadline, Instance, Proof, Scheme, View};
use lcp_graph::generators;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// 1-bit bipartiteness with a bit-sliced kernel: the canonical
/// kernel-capable scheme (odd cycles and odd-cycle-containing random
/// graphs are its no-instances).
struct Bipartite;

impl Scheme for Bipartite {
    type Node = ();
    type Edge = ();
    fn name(&self) -> String {
        "bipartite".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn holds(&self, inst: &Instance) -> bool {
        lcp_graph::traversal::is_bipartite(inst.graph())
    }
    fn prove(&self, inst: &Instance) -> Option<Proof> {
        let colors = lcp_graph::traversal::bipartition(inst.graph())?;
        Some(Proof::from_fn(inst.n(), |v| {
            BitString::from_bits([colors[v] == 1])
        }))
    }
    fn verify(&self, view: &View) -> bool {
        let c = view.center();
        let mine = view.proof(c).first();
        mine.is_some()
            && view
                .neighbors(c)
                .iter()
                .all(|&u| view.proof(u).first().is_some_and(|b| Some(b) != mine))
    }
    fn supports_batch(&self) -> bool {
        true
    }
    fn verify_batch(&self, view: &BatchView) -> u64 {
        let c = view.center();
        let mut acc = view.has_bit(c, 0);
        for &u in view.neighbors(c) {
            acc &= view.has_bit(u, 0) & (view.bit(c, 0) ^ view.bit(u, 0));
        }
        acc
    }
}

/// Kernel-free verifier whose output depends on every proof bit it can
/// see: routes through the block odometer's *scalar-fill* mask tables
/// under `Auto` and stresses them with an irregular accept/reject
/// pattern.
struct Fingerprint {
    radius: usize,
}

impl Scheme for Fingerprint {
    type Node = ();
    type Edge = ();
    fn name(&self) -> String {
        format!("fingerprint-r{}", self.radius)
    }
    fn radius(&self) -> usize {
        self.radius
    }
    fn holds(&self, _: &Instance) -> bool {
        false
    }
    fn prove(&self, _: &Instance) -> Option<Proof> {
        None
    }
    fn verify(&self, view: &View) -> bool {
        let mut h: u64 = view.center() as u64 ^ (view.radius() as u64) << 8;
        for u in view.nodes() {
            h = h.wrapping_mul(1_000_003).wrapping_add(view.id(u).0);
            for b in view.proof(u).iter() {
                h = h.wrapping_mul(2).wrapping_add(b as u64 + 1);
            }
        }
        h.is_multiple_of(7)
    }
}

/// Accepts exactly one target proof (radius covers the whole graph, so
/// every verifier sees every node; keyed by `NodeId`, which need not
/// equal the vertex index). The exhaustive search must report the
/// target as the first — indeed only — violation; agreement on it
/// under both policies pins the enumeration *order*, not just the
/// verdict.
struct Trap {
    target: std::collections::HashMap<u64, BitString>,
}

impl Scheme for Trap {
    type Node = ();
    type Edge = ();
    fn name(&self) -> String {
        "trap".into()
    }
    fn radius(&self) -> usize {
        64
    }
    fn holds(&self, _: &Instance) -> bool {
        false
    }
    fn prove(&self, _: &Instance) -> Option<Proof> {
        None
    }
    fn verify(&self, view: &View) -> bool {
        view.nodes()
            .all(|u| view.proof(u).to_bitstring() == self.target[&view.id(u).0])
    }
}

/// Strategy: a connected random graph plus an independent seed.
fn instance_seed(max_n: usize) -> impl Strategy<Value = (Instance, u64)> {
    (3usize..max_n, 0usize..8, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_connected(n, extra, &mut rng);
        (Instance::unlabeled(g), seed)
    })
}

/// Exhaustive soundness under both policies; results must be equal.
fn exhaustive_both<S: Scheme<Node = (), Edge = ()>>(
    scheme: &S,
    inst: &Instance,
    max_bits: usize,
) -> (Soundness, Soundness) {
    let prep = PreparedInstance::new(inst, scheme.radius());
    let batch = check_soundness_exhaustive_policy(
        scheme,
        &prep,
        max_bits,
        &Deadline::none(),
        BatchPolicy::Auto,
    )
    .unwrap();
    let scalar = check_soundness_exhaustive_policy(
        scheme,
        &prep,
        max_bits,
        &Deadline::none(),
        BatchPolicy::Scalar,
    )
    .unwrap();
    (batch, scalar)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernel_odometer_equals_scalar((inst, _) in instance_seed(8), max_bits in 0usize..3) {
        // Kernel path. Soundness checks require a no-instance; the
        // scheme is sound, so `Holds` counts are what gets compared.
        prop_assume!(!lcp_graph::traversal::is_bipartite(inst.graph()));
        let (batch, scalar) = exhaustive_both(&Bipartite, &inst, max_bits);
        prop_assert_eq!(batch, scalar);
    }

    #[test]
    fn scalar_fill_odometer_equals_scalar((inst, _) in instance_seed(6), radius in 0usize..3, max_bits in 0usize..3) {
        // Kernel-free path: `Auto` still block-enumerates, filling mask
        // tables from the scalar verifier.
        let scheme = Fingerprint { radius };
        let (batch, scalar) = exhaustive_both(&scheme, &inst, max_bits);
        prop_assert_eq!(batch, scalar);
    }

    #[test]
    fn first_violation_is_the_same_proof((inst, seed) in instance_seed(6), max_bits in 0usize..3) {
        // Plant a random target proof; both policies must walk the
        // odometer in the same order and stop at that exact proof.
        let strings = lcp_core::harness::all_bitstrings_up_to(max_bits).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7ab);
        let target: Vec<BitString> = (0..inst.n())
            .map(|_| strings[rng.random_range(0..strings.len())].clone())
            .collect();
        let scheme = Trap {
            target: (0..inst.n())
                .map(|v| (inst.graph().id(v).0, target[v].clone()))
                .collect(),
        };
        let (batch, scalar) = exhaustive_both(&scheme, &inst, max_bits);
        let expected = Proof::from_strings(target);
        prop_assert_eq!(&batch, &scalar);
        match batch {
            Soundness::Violated(p) => prop_assert_eq!(p, expected),
            Soundness::Holds(t) => prop_assert!(false, "trap never sprung after {} proofs", t),
        }
    }

    #[test]
    fn adversarial_matches_scalar_incumbent_and_stream((inst, seed) in instance_seed(10), budget in 1usize..3, iters in 0usize..500) {
        // Chunked 64-lane search vs the scalar bit-flip loop: same
        // returned proof, and the RNG must sit at the same stream
        // position afterwards (campaigns draw from it next).
        prop_assume!(!lcp_graph::traversal::is_bipartite(inst.graph()));
        let prep = PreparedInstance::new(&inst, 1);
        let mut rng_batch = StdRng::seed_from_u64(seed ^ 0x51ee);
        let mut rng_scalar = rng_batch.clone();
        let batch = adversarial_proof_search_policy(
            &Bipartite, &prep, budget, iters, &mut rng_batch, &Deadline::none(), BatchPolicy::Auto,
        );
        let scalar = adversarial_proof_search_policy(
            &Bipartite, &prep, budget, iters, &mut rng_scalar, &Deadline::none(), BatchPolicy::Scalar,
        );
        prop_assert_eq!(batch, scalar);
        prop_assert_eq!(
            rng_batch.random_range(0..u64::MAX),
            rng_scalar.random_range(0..u64::MAX),
            "RNG stream positions diverged"
        );
    }
}
