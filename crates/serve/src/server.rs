//! The daemon: a bounded worker pool serving framed requests over TCP.
//!
//! ## Concurrency model
//!
//! Connections are the unit of work: the acceptor pushes each accepted
//! socket into a bounded waiting room, and each of `workers` threads
//! serves one connection at a time, request by request, until the
//! client closes. This keeps sessions trivially race-free — a session's
//! `DynamicInstance` lives on the stack of the worker serving its
//! connection — at the cost of capping concurrent connections at the
//! worker count.
//!
//! **Backpressure is a response, never a hang**: when every worker is
//! occupied and the waiting room is full, the acceptor itself writes a
//! typed [`ERR_BUSY`] frame and closes the
//! socket, so a saturated daemon answers in microseconds instead of
//! queueing unboundedly.
//!
//! ## Shutdown
//!
//! A `shutdown` request (or the binary's SIGTERM handler) sets one
//! shared flag. The acceptor stops accepting; each worker finishes the
//! request it is currently serving — an in-flight frame is always read
//! to completion and answered — then closes its connection and exits.
//! Connections still in the waiting room are closed without a response.

use crate::metrics;
use crate::protocol::{
    read_frame, write_frame, ProtoError, Request, WireLabel, WireMutation, ERR_BUSY, ERR_DEADLINE,
    ERR_INAPPLICABLE, ERR_LABEL_TYPE, ERR_MUTATION, ERR_NO_SESSION, ERR_SESSION_ACTIVE,
};
use crate::table::InstanceTable;
use lcp_core::harness::CompletenessError;
use lcp_core::json::escape;
use lcp_core::{CellMutationError, Deadline};
use lcp_dynamic::churn::{run_churn_within, ChurnConfig};
use lcp_dynamic::{Applied, DynamicInstance, Mutation};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Worker threads — the number of concurrently served connections.
    pub workers: usize,
    /// Waiting-room size: accepted connections allowed to wait for a
    /// worker. One more connection than `workers + queue` gets the
    /// typed busy error.
    pub queue: usize,
    /// Instance-table capacity (resident cells before LRU eviction).
    pub capacity: usize,
    /// Artifact directory to preload skeleton cores from (and persist
    /// fresh builds into) — `--preload <dir>` on the binary. `None`
    /// keeps cores purely in-process.
    pub preload: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue: 16,
            capacity: 64,
            preload: None,
        }
    }
}

/// A bound, not-yet-running daemon. [`Server::run`] blocks the calling
/// thread; [`Server::spawn`] runs it on a background thread and hands
/// back a [`ServerHandle`].
pub struct Server {
    listener: TcpListener,
    table: Arc<InstanceTable>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

/// A running daemon on a background thread (see [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared shutdown flag; storing `true` drains the daemon.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Requests shutdown and waits for the drain to finish.
    ///
    /// # Errors
    ///
    /// Propagates the run loop's I/O error, if any.
    pub fn stop(self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::Relaxed);
        self.thread.join().expect("server thread panicked")
    }
}

/// The waiting room between the acceptor and the workers.
struct WorkQueue {
    conns: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

impl Server {
    /// Binds `config.addr` and prepares an empty instance table.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let table = match &config.preload {
            Some(dir) => {
                // An unusable preload dir is a startup error, not a
                // degraded mode: the operator asked for durable cores.
                let store = lcp_core::ArtifactStore::open(dir)
                    .map_err(|e| io::Error::other(format!("--preload {}: {e}", dir.display())))?;
                InstanceTable::with_source(
                    config.capacity,
                    lcp_core::ArtifactSource::MappedDir(Arc::new(store)),
                )
            }
            None => InstanceTable::new(config.capacity),
        };
        Ok(Server {
            listener,
            table: Arc::new(table),
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared shutdown flag (for signal handlers and tests).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The instance table (for white-box assertions in tests).
    pub fn table(&self) -> Arc<InstanceTable> {
        Arc::clone(&self.table)
    }

    /// Runs the accept loop until the shutdown flag is set, then drains:
    /// workers finish their in-flight request and exit.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors (per-connection errors only end
    /// that connection).
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let queue = Arc::new(WorkQueue {
            conns: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        let workers: Vec<_> = (0..self.config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let table = Arc::clone(&self.table);
                let shutdown = Arc::clone(&self.shutdown);
                thread::spawn(move || worker_loop(&queue, &table, &shutdown))
            })
            .collect();

        while !self.shutdown.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let mut conns = queue.conns.lock().expect("queue lock");
                    if conns.len() >= self.config.queue.max(1) {
                        drop(conns);
                        // Backpressure: answer immediately, never hang.
                        metrics::BUSY_REJECTIONS.inc();
                        let mut stream = stream;
                        let busy = ProtoError::new(
                            ERR_BUSY,
                            "all workers occupied and the waiting room is full; retry later",
                        );
                        let _ = write_frame(&mut stream, &busy.render());
                    } else {
                        conns.push_back(stream);
                        metrics::QUEUE_DEPTH.set(conns.len() as i64);
                        drop(conns);
                        queue.ready.notify_one();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        let drain_started = Instant::now();
        queue.ready.notify_all();
        for worker in workers {
            worker.join().expect("worker thread panicked");
        }
        metrics::DRAIN_MS.set(drain_started.elapsed().as_millis().min(i64::MAX as u128) as i64);
        Ok(())
    }

    /// Runs the daemon on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = self.shutdown_handle();
        let thread = thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            shutdown,
            thread,
        })
    }
}

/// Pops connections until shutdown is flagged and the room is empty.
fn worker_loop(queue: &WorkQueue, table: &InstanceTable, shutdown: &AtomicBool) {
    loop {
        let conn = {
            let mut conns = queue.conns.lock().expect("queue lock");
            loop {
                if let Some(conn) = conns.pop_front() {
                    metrics::QUEUE_DEPTH.set(conns.len() as i64);
                    break Some(conn);
                }
                if shutdown.load(Ordering::Relaxed) {
                    break None;
                }
                let (guard, _) = queue
                    .ready
                    .wait_timeout(conns, Duration::from_millis(50))
                    .expect("queue lock");
                conns = guard;
            }
        };
        match conn {
            Some(stream) => serve_connection(stream, table, shutdown),
            None => return,
        }
    }
}

/// The per-connection session state: a private mutable copy of one
/// resident cell under incremental verification.
struct Session {
    inst: DynamicInstance,
}

/// Serves one connection until the client closes, the stream fails, or
/// a drain closes it between requests.
fn serve_connection(mut stream: TcpStream, table: &InstanceTable, shutdown: &AtomicBool) {
    // Sub-millisecond mutate round-trips need Nagle off; the drain poll
    // needs a read timeout (WouldBlock re-polls the shutdown flag).
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    metrics::CONNECTIONS.inc();
    let mut session: Option<Session> = None;
    let stop = || shutdown.load(Ordering::Relaxed);
    loop {
        // Checked between requests (not mid-frame): a drain answers the
        // in-flight request, then closes — even against a client that
        // keeps frames coming.
        if stop() {
            return;
        }
        let payload = match read_frame(&mut stream, &stop) {
            Ok(Some(payload)) => payload,
            Ok(None) | Err(_) => return,
        };
        // The latency window is parse + dispatch — the work the op name
        // describes — not socket I/O or the idle wait for the frame.
        let started = Instant::now();
        let response = match Request::parse(&payload) {
            Ok(request) => {
                let op = metrics::op_index(request.op());
                let result = dispatch(request, table, &mut session, shutdown);
                if result.is_err() {
                    metrics::ERROR_RESPONSES.inc();
                }
                if let Some(i) = op {
                    metrics::REQUESTS[i].inc();
                    metrics::REQUEST_NS[i]
                        .observe(started.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                }
                result.unwrap_or_else(|e| e.render())
            }
            Err(e) => {
                metrics::BAD_REQUESTS.inc();
                e.render()
            }
        };
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// Executes one request against the table and the connection session.
fn dispatch(
    request: Request,
    table: &InstanceTable,
    session: &mut Option<Session>,
    shutdown: &AtomicBool,
) -> Result<String, ProtoError> {
    match request {
        Request::Prepare(coord) => {
            let cell = table.get_or_load(&coord)?;
            let stats = table.stats();
            Ok(format!(
                "{{\"ok\":true,\"op\":\"prepare\",\"scheme\":{},\"n\":{},\"radius\":{},\"holds\":{},\"resident\":{}}}",
                escape(cell.name()),
                cell.n(),
                cell.radius(),
                cell.holds(),
                stats.resident
            ))
        }
        Request::Verify {
            coord,
            budget_ms,
            iterations,
            size_budget,
            seed,
        } => {
            let cell = table.get_or_load(&coord)?;
            let deadline = to_deadline(budget_ms);
            if cell.holds() {
                match cell.check_completeness_within(&deadline) {
                    Ok(max_bits) => Ok(verify_response(
                        "completeness",
                        true,
                        &[],
                        &format!(",\"max_proof_bits\":{}", render_opt(max_bits)),
                    )),
                    Err(CompletenessError::Rejected(nodes)) => {
                        Ok(verify_response("completeness", false, &nodes, ""))
                    }
                    Err(CompletenessError::DeadlineExpired) => Err(ProtoError::new(
                        ERR_DEADLINE,
                        "budget expired before the completeness sweep finished",
                    )),
                    Err(e) => Ok(verify_response(
                        "completeness",
                        false,
                        &[],
                        &format!(",\"detail\":{}", escape(&e.to_string())),
                    )),
                }
            } else {
                let forged =
                    cell.adversarial_search_within(size_budget, iterations, seed, &deadline);
                if forged.is_none() && deadline.expired() {
                    return Err(ProtoError::new(
                        ERR_DEADLINE,
                        "budget expired before the soundness probe finished",
                    ));
                }
                Ok(verify_response(
                    "soundness-probe",
                    forged.is_none(),
                    &[],
                    &format!(",\"violation\":{}", forged.is_some()),
                ))
            }
        }
        Request::TamperProbe {
            coord,
            trials,
            seed,
        } => {
            let cell = table.get_or_load(&coord)?;
            match cell.tamper_probe(trials, seed) {
                Some(p) => Ok(format!(
                    "{{\"ok\":true,\"op\":\"tamper-probe\",\"trials\":{},\"detected\":{},\"undetected\":{},\"witness\":{}}}",
                    p.trials,
                    p.detected,
                    p.undetected,
                    render_opt(p.witness)
                )),
                None => Err(ProtoError::new(
                    ERR_INAPPLICABLE,
                    "nothing to probe: the prover refused or the honest proof is rejected",
                )),
            }
        }
        Request::Stats => {
            let s = table.stats();
            Ok(format!(
                "{{\"ok\":true,\"op\":\"stats\",\"resident\":{},\"capacity\":{},\"evictions\":{},\"loads\":{},\
                 \"skeletons\":{{\"len\":{},\"hits\":{},\"misses\":{}}},\
                 \"cores\":{{\"built\":{},\"cache_hit\":{},\"artifact_loaded\":{}}}}}",
                s.resident,
                s.capacity,
                s.evictions,
                s.loads,
                s.skeleton_len,
                s.skeleton_hits,
                s.skeleton_misses,
                s.cores_built,
                s.cores_cache_hits,
                s.cores_loaded
            ))
        }
        Request::Metrics => {
            // Table and skeleton counters live in the table, not in
            // statics; copy a point-in-time snapshot into the export
            // gauges so the scrape reflects the table right now.
            metrics::snapshot_table(&table.stats());
            let text = metrics::global_registry().to_prometheus();
            Ok(format!(
                "{{\"ok\":true,\"op\":\"metrics\",\"format\":\"prometheus\",\"body\":{}}}",
                escape(&text)
            ))
        }
        Request::SessionOpen(coord) => {
            if session.is_some() {
                return Err(ProtoError::new(
                    ERR_SESSION_ACTIVE,
                    "this connection already has a session (close it first)",
                ));
            }
            let cell = table.get_or_load(&coord)?;
            let mut inst = DynamicInstance::from_cell(cell.dynamic_cell());
            let first = inst.reverify();
            let (n, m) = (inst.n(), inst.graph().m());
            *session = Some(Session { inst });
            Ok(format!(
                "{{\"ok\":true,\"op\":\"session-open\",\"n\":{},\"m\":{},\"holds\":{},\
                 \"accepted\":{},\"witness\":{},\"reverified\":{}}}",
                n,
                m,
                cell.holds(),
                first.accepted,
                render_opt(first.witness),
                first.reverified
            ))
        }
        Request::Mutate(wire) => {
            let sess = session
                .as_mut()
                .ok_or_else(|| ProtoError::new(ERR_NO_SESSION, "open a session first"))?;
            let kind = wire.kind();
            let applied = apply_wire(&mut sess.inst, wire).map_err(|e| match e {
                CellMutationError::LabelType => ProtoError::new(ERR_LABEL_TYPE, e.to_string()),
                other => ProtoError::new(ERR_MUTATION, other.to_string()),
            })?;
            Ok(format!(
                "{{\"ok\":true,\"op\":\"mutate\",\"kind\":{},\"impact\":{},\
                 \"accepted\":{},\"witness\":{},\"reverified\":{}}}",
                escape(kind),
                render_list(&applied.impact),
                applied.outcome.accepted,
                render_opt(applied.outcome.witness),
                applied.outcome.reverified
            ))
        }
        Request::Churn {
            seed,
            steps,
            check_every,
            budget_ms,
        } => {
            let sess = session
                .as_mut()
                .ok_or_else(|| ProtoError::new(ERR_NO_SESSION, "open a session first"))?;
            let config = ChurnConfig::new(seed);
            let run = run_churn_within(
                &mut sess.inst,
                &config,
                steps,
                check_every,
                &to_deadline(budget_ms),
            );
            let mut rendered = String::from("[");
            for (i, step) in run.steps.iter().enumerate() {
                if i > 0 {
                    rendered.push(',');
                }
                rendered.push_str(&format!(
                    "{{\"kind\":{},\"impact\":{},\"reverified\":{},\"accepted\":{},\"witness\":{},\"matched_full\":{}}}",
                    escape(step.mutation.kind()),
                    step.impact,
                    step.reverified,
                    step.accepted,
                    render_opt(step.witness),
                    match step.matched_full {
                        None => "null".to_string(),
                        Some(b) => b.to_string(),
                    }
                ));
            }
            rendered.push(']');
            Ok(format!(
                "{{\"ok\":true,\"op\":\"churn\",\"steps\":{},\"checks\":{},\"mismatches\":{},\
                 \"max_impact\":{},\"total_reverified\":{},\"timed_out\":{},\"trace\":{}}}",
                run.steps.len(),
                run.checks,
                run.mismatches,
                run.max_impact,
                run.total_reverified,
                run.timed_out,
                rendered
            ))
        }
        Request::SessionClose => {
            let sess = session
                .take()
                .ok_or_else(|| ProtoError::new(ERR_NO_SESSION, "no session to close"))?;
            Ok(format!(
                "{{\"ok\":true,\"op\":\"session-close\",\"mutations\":{}}}",
                sess.inst.log().len()
            ))
        }
        Request::Shutdown => {
            shutdown.store(true, Ordering::Relaxed);
            Ok("{\"ok\":true,\"op\":\"shutdown\"}".to_string())
        }
    }
}

/// Applies one wire mutation to the session instance, re-verifying
/// incrementally — label changes go through the typed setter, the other
/// kinds through `apply_verified`.
fn apply_wire(
    inst: &mut DynamicInstance,
    wire: WireMutation,
) -> Result<Applied, CellMutationError> {
    match wire {
        WireMutation::EdgeInsert(u, v) => inst.apply_verified(&Mutation::EdgeInsert(u, v)),
        WireMutation::EdgeDelete(u, v) => inst.apply_verified(&Mutation::EdgeDelete(u, v)),
        WireMutation::ProofRewrite(v, bits) => {
            inst.apply_verified(&Mutation::ProofRewrite(v, bits))
        }
        WireMutation::NodeLabelChange(v, label) => {
            let mut impact = match label {
                WireLabel::Unit => inst.set_node_label(v, ())?,
                WireLabel::Bool(b) => inst.set_node_label(v, b)?,
                WireLabel::U8(x) => inst.set_node_label(v, x)?,
                WireLabel::U64(x) => inst.set_node_label(v, x)?,
            };
            impact.sort_unstable();
            let outcome = inst.reverify();
            Ok(Applied { impact, outcome })
        }
    }
}

fn to_deadline(budget_ms: Option<u64>) -> Deadline {
    match budget_ms {
        Some(ms) => Deadline::after(Duration::from_millis(ms)),
        None => Deadline::none(),
    }
}

fn verify_response(check: &str, accepted: bool, witness: &[usize], extra: &str) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"verify\",\"check\":{},\"accepted\":{},\"witness\":{}{}}}",
        escape(check),
        accepted,
        render_list(witness),
        extra
    )
}

fn render_opt(v: Option<usize>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "null".to_string(),
    }
}

fn render_list(xs: &[usize]) -> String {
    let mut s = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&x.to_string());
    }
    s.push(']');
    s
}
