//! `s`–`t` reachability and unreachability (§4.1): the flagship
//! `LCP(O(1))` problems.

use crate::labels::{ArcDir, StMark};
use lcp_core::{BitString, Instance, Proof, Scheme, View};
use lcp_graph::traversal;

/// The 1-bit scheme for undirected `s`–`t` reachability: mark the nodes
/// of a shortest `s`–`t` path.
///
/// Verifier checks (§4.1): (i) `s` and `t` are marked; (ii) `s` and `t`
/// have exactly one marked neighbour; (iii) every other marked node has
/// exactly two marked neighbours. Because a shortest path is chordless,
/// the honest marking passes; conversely any passing marking makes `s`'s
/// component of the marked subgraph a path whose other endpoint has odd
/// marked-degree — and only `t` qualifies.
///
/// Instance promise: exactly one [`StMark::S`] and one [`StMark::T`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StReachability;

impl Scheme for StReachability {
    type Node = StMark;
    type Edge = ();

    fn name(&self) -> String {
        "st-reachability".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance<StMark>) -> bool {
        let (Some(s), Some(t)) = endpoints(inst) else {
            return false;
        };
        traversal::bfs_distances(inst.graph(), s)[t].is_some()
    }

    fn prove(&self, inst: &Instance<StMark>) -> Option<Proof> {
        let (Some(s), Some(t)) = endpoints(inst) else {
            return None;
        };
        let path = traversal::shortest_path(inst.graph(), s, t)?;
        let mut on_path = vec![false; inst.n()];
        for &v in &path {
            on_path[v] = true;
        }
        Some(Proof::from_fn(inst.n(), |v| {
            BitString::from_bits([on_path[v]])
        }))
    }

    fn verify(&self, view: &View<StMark>) -> bool {
        let c = view.center();
        let Some(marked) = view.proof(c).first() else {
            return false;
        };
        let marked_nbrs = view
            .neighbors(c)
            .iter()
            .filter(|&&u| view.proof(u).first() == Some(true))
            .count();
        match view.node_label(c) {
            StMark::S | StMark::T => marked && marked_nbrs == 1,
            StMark::Plain => !marked || marked_nbrs == 2,
        }
    }
}

/// The 1-bit scheme for `s`–`t` **un**reachability, undirected or
/// directed (§4.1): mark a side `S ∋ s` with no edge leaving towards
/// `t`'s side.
///
/// On undirected instances (`directed = false`) the edge orientation
/// labels are ignored and "no edge from `S` to `T`" means no edge at all
/// between the sides; on directed instances, edges are labelled with
/// [`ArcDir`] and only *traversable* `S → T` arcs are forbidden — the
/// asymmetry the paper highlights (directed reachability is open, its
/// complement is easy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StUnreachability {
    /// Whether to honour the [`ArcDir`] edge labels.
    pub directed: bool,
}

impl StUnreachability {
    /// The undirected variant.
    pub fn undirected() -> Self {
        StUnreachability { directed: false }
    }

    /// The directed variant.
    pub fn directed() -> Self {
        StUnreachability { directed: true }
    }

    fn reaches(&self, inst: &Instance<StMark, ArcDir>, s: usize, t: usize) -> bool {
        // BFS following traversable arcs only.
        let g = inst.graph();
        let mut seen = vec![false; g.n()];
        seen[s] = true;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            if u == t {
                return true;
            }
            for &w in g.neighbors(u) {
                if seen[w] {
                    continue;
                }
                let traversable = if self.directed {
                    inst.edge_label(u, w)
                        .is_some_and(|d| d.allows(g.id(u), g.id(w)))
                } else {
                    true
                };
                if traversable {
                    seen[w] = true;
                    queue.push_back(w);
                }
            }
        }
        false
    }
}

impl Scheme for StUnreachability {
    type Node = StMark;
    type Edge = ArcDir;

    fn name(&self) -> String {
        format!(
            "st-unreachability-{}",
            if self.directed {
                "directed"
            } else {
                "undirected"
            }
        )
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance<StMark, ArcDir>) -> bool {
        let (Some(s), Some(t)) = endpoints_de(inst) else {
            return false;
        };
        !self.reaches(inst, s, t)
    }

    fn prove(&self, inst: &Instance<StMark, ArcDir>) -> Option<Proof> {
        let (Some(s), Some(t)) = endpoints_de(inst) else {
            return None;
        };
        if self.reaches(inst, s, t) {
            return None;
        }
        // S = everything reachable from s; certainly excludes t.
        let g = inst.graph();
        let mut in_s = vec![false; g.n()];
        in_s[s] = true;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &w in g.neighbors(u) {
                if in_s[w] {
                    continue;
                }
                let traversable = if self.directed {
                    inst.edge_label(u, w)
                        .is_some_and(|d| d.allows(g.id(u), g.id(w)))
                } else {
                    true
                };
                if traversable {
                    in_s[w] = true;
                    queue.push_back(w);
                }
            }
        }
        Some(Proof::from_fn(inst.n(), |v| {
            BitString::from_bits([in_s[v]])
        }))
    }

    fn verify(&self, view: &View<StMark, ArcDir>) -> bool {
        let c = view.center();
        let Some(mine) = view.proof(c).first() else {
            return false;
        };
        match view.node_label(c) {
            StMark::S if !mine => return false,
            StMark::T if mine => return false,
            _ => {}
        }
        // No traversable edge from the S side to the T side.
        view.neighbors(c).iter().all(|&u| {
            let Some(theirs) = view.proof(u).first() else {
                return false;
            };
            if mine == theirs {
                return true;
            }
            // Determine the S→T direction of this edge.
            let (from, to) = if mine { (c, u) } else { (u, c) };
            if !self.directed {
                return false; // any S–T edge is forbidden when undirected
            }
            let Some(dir) = view.edge_label(c, u) else {
                return false; // unlabeled edge in a directed instance
            };
            // Orientation is defined over identifiers, which the view sees.
            !dir.allows(view.id(from), view.id(to))
        })
    }
}

/// Directed `s`–`t` reachability with `O(log Δ)` bits (§4.1): "in graphs
/// of maximum degree Δ, one can still give an easy upper bound of
/// O(log Δ) by using edge pointers in the proof labelling to describe a
/// path from s to t". Whether `LCP(O(1))` suffices is the paper's open
/// problem (citing Ajtai–Fagin).
///
/// Proof per node: a mark bit; marked nodes other than `t` carry the
/// *port* (identifier-rank among neighbours) of their successor. The
/// radius-2 verifier checks, per marked node: the successor arc is
/// traversable and leads to a marked node (or `t`), and exactly one
/// marked in-neighbour points here (`s`: none). Pointer cycles cannot
/// absorb `s`'s chain — merging into a cycle would give some node two
/// incoming pointers — so the chain must end at the only marked node
/// without a successor, which is `t`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StReachabilityDirected;

impl StReachabilityDirected {
    fn next_hops(inst: &Instance<StMark, ArcDir>, s: usize, t: usize) -> Option<Vec<usize>> {
        // BFS over traversable arcs, then read back the s→t path.
        let g = inst.graph();
        let mut parent = vec![usize::MAX; g.n()];
        let mut queue = std::collections::VecDeque::from([s]);
        let mut seen = vec![false; g.n()];
        seen[s] = true;
        while let Some(u) = queue.pop_front() {
            for &w in g.neighbors(u) {
                if !seen[w]
                    && inst
                        .edge_label(u, w)
                        .is_some_and(|d| d.allows(g.id(u), g.id(w)))
                {
                    seen[w] = true;
                    parent[w] = u;
                    queue.push_back(w);
                }
            }
        }
        if !seen[t] {
            return None;
        }
        let mut path = vec![t];
        let mut cur = t;
        while cur != s {
            cur = parent[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Identifier-rank port of `to` among `from`'s neighbours.
    fn port(g: &lcp_graph::Graph, from: usize, to: usize) -> u64 {
        let mut nbrs: Vec<usize> = g.neighbors(from).to_vec();
        nbrs.sort_by_key(|&u| g.id(u));
        nbrs.iter().position(|&u| u == to).expect("adjacent") as u64 + 1
    }
}

#[derive(Clone, Copy, Debug)]
struct DirCert {
    marked: bool,
    /// 1-based successor port; 0 at `t` (no successor).
    out_port: u64,
}

fn decode_dir(proof: lcp_core::ProofRef<'_>) -> Option<DirCert> {
    let mut r = lcp_core::BitReader::new(proof);
    let marked = r.read_bit().ok()?;
    let out_port = if marked { r.read_gamma().ok()? } else { 0 };
    r.is_exhausted().then_some(DirCert { marked, out_port })
}

impl Scheme for StReachabilityDirected {
    type Node = StMark;
    type Edge = ArcDir;

    fn name(&self) -> String {
        "st-reachability-directed".into()
    }

    fn radius(&self) -> usize {
        2 // ports of neighbours need their full adjacency in view
    }

    fn holds(&self, inst: &Instance<StMark, ArcDir>) -> bool {
        let (Some(s), Some(t)) = endpoints_de(inst) else {
            return false;
        };
        Self::next_hops(inst, s, t).is_some()
    }

    fn prove(&self, inst: &Instance<StMark, ArcDir>) -> Option<Proof> {
        let (Some(s), Some(t)) = endpoints_de(inst) else {
            return None;
        };
        let path = Self::next_hops(inst, s, t)?;
        let g = inst.graph();
        let mut cert = vec![
            DirCert {
                marked: false,
                out_port: 0
            };
            g.n()
        ];
        for w in path.windows(2) {
            cert[w[0]] = DirCert {
                marked: true,
                out_port: Self::port(g, w[0], w[1]),
            };
        }
        cert[t] = DirCert {
            marked: true,
            out_port: 0,
        };
        Some(Proof::from_fn(g.n(), |v| {
            let mut w = lcp_core::BitWriter::new();
            w.write_bit(cert[v].marked);
            if cert[v].marked {
                w.write_gamma(cert[v].out_port);
            }
            w.finish()
        }))
    }

    fn verify(&self, view: &View<StMark, ArcDir>) -> bool {
        let c = view.center();
        let Some(mine) = decode_dir(view.proof(c)) else {
            return false;
        };
        let mark = *view.node_label(c);
        // s and t must be marked; t must have no successor pointer.
        match mark {
            StMark::S if !mine.marked => return false,
            StMark::T if !mine.marked || mine.out_port != 0 => return false,
            _ => {}
        }
        if !mine.marked {
            return true;
        }
        // Port-ordered adjacency of a node (full list: dist(u) ≤ 1 < r).
        let ports_of = |u: usize| -> Vec<usize> {
            let mut nbrs: Vec<usize> = view.neighbors(u).to_vec();
            nbrs.sort_by_key(|&w| view.id(w));
            nbrs
        };
        // My successor: valid port, traversable arc, marked target.
        if mark != StMark::T {
            let ports = ports_of(c);
            if mine.out_port == 0 || mine.out_port as usize > ports.len() {
                return false;
            }
            let succ = ports[mine.out_port as usize - 1];
            let Some(dir) = view.edge_label(c, succ) else {
                return false;
            };
            if !dir.allows(view.id(c), view.id(succ)) {
                return false;
            }
            if !decode_dir(view.proof(succ)).is_some_and(|d| d.marked) {
                return false;
            }
        }
        // Incoming pointers: exactly one marked in-neighbour points here
        // (none at s).
        let mut incoming = 0;
        for &u in view.neighbors(c) {
            let Some(cu) = decode_dir(view.proof(u)) else {
                return false;
            };
            if !cu.marked || cu.out_port == 0 {
                continue;
            }
            let u_ports = ports_of(u);
            if cu.out_port as usize <= u_ports.len()
                && u_ports[cu.out_port as usize - 1] == c
                && view
                    .edge_label(u, c)
                    .is_some_and(|d| d.allows(view.id(u), view.id(c)))
            {
                incoming += 1;
            }
        }
        match mark {
            StMark::S => incoming == 0,
            _ => incoming == 1,
        }
    }
}

fn endpoints(inst: &Instance<StMark>) -> (Option<usize>, Option<usize>) {
    let s = inst.node_labels().iter().position(|&m| m == StMark::S);
    let t = inst.node_labels().iter().position(|&m| m == StMark::T);
    (s, t)
}

fn endpoints_de(inst: &Instance<StMark, ArcDir>) -> (Option<usize>, Option<usize>) {
    let s = inst.node_labels().iter().position(|&m| m == StMark::S);
    let t = inst.node_labels().iter().position(|&m| m == StMark::T);
    (s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::evaluate;
    use lcp_core::harness::{check_soundness_exhaustive, Soundness};
    use lcp_graph::{generators, ops};

    fn reach_instance(g: lcp_graph::Graph, s: usize, t: usize) -> Instance<StMark> {
        let marks = StMark::mark(g.n(), s, t);
        Instance::with_node_data(g, marks)
    }

    #[test]
    fn path_marking_accepted() {
        let inst = reach_instance(generators::grid(3, 4), 0, 11);
        assert!(StReachability.holds(&inst));
        let proof = StReachability.prove(&inst).unwrap();
        assert_eq!(proof.size(), 1);
        assert!(evaluate(&StReachability, &inst, &proof).accepted());
    }

    #[test]
    fn adjacent_endpoints() {
        let inst = reach_instance(generators::path(2), 0, 1);
        let proof = StReachability.prove(&inst).unwrap();
        assert!(evaluate(&StReachability, &inst, &proof).accepted());
    }

    #[test]
    fn unreachable_pair_is_a_no_instance() {
        let g = ops::disjoint_union(
            &generators::path(3),
            &ops::shift_ids(&generators::path(2), 10),
        )
        .unwrap();
        let inst = reach_instance(g, 0, 4);
        assert!(!StReachability.holds(&inst));
        assert!(StReachability.prove(&inst).is_none());
        match check_soundness_exhaustive(
            &StReachability,
            &lcp_core::engine::prepare(&StReachability, &inst),
            1,
        )
        .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("reachability forged by {p:?}"),
        }
    }

    #[test]
    fn fake_cycle_marking_rejected() {
        // Mark a decoy cycle in another component: its nodes pass their
        // local checks, but s and t are unmarked and reject.
        let mut g = generators::cycle(4);
        let s = g.add_node(lcp_graph::NodeId(100)).unwrap();
        let t = g.add_node(lcp_graph::NodeId(101)).unwrap();
        let inst = reach_instance(g, s, t);
        assert!(!StReachability.holds(&inst));
        let fake = Proof::from_fn(6, |v| BitString::from_bits([v < 4]));
        let verdict = evaluate(&StReachability, &inst, &fake);
        assert!(!verdict.accepted());
        assert!(verdict.rejecting().contains(&s));
        assert!(verdict.rejecting().contains(&t));
    }

    fn undirected_unreach(g: lcp_graph::Graph, s: usize, t: usize) -> Instance<StMark, ArcDir> {
        let marks = StMark::mark(g.n(), s, t);
        Instance::with_data(g, marks, Default::default())
    }

    #[test]
    fn unreachability_certified_on_split_graph() {
        let g = ops::disjoint_union(
            &generators::cycle(3),
            &ops::shift_ids(&generators::cycle(3), 10),
        )
        .unwrap();
        let inst = undirected_unreach(g, 0, 3);
        let scheme = StUnreachability::undirected();
        assert!(scheme.holds(&inst));
        let proof = scheme.prove(&inst).unwrap();
        assert_eq!(proof.size(), 1);
        assert!(evaluate(&scheme, &inst, &proof).accepted());
    }

    #[test]
    fn reachable_pair_resists_unreachability_forgery() {
        let inst = undirected_unreach(generators::path(4), 0, 3);
        let scheme = StUnreachability::undirected();
        assert!(!scheme.holds(&inst));
        match check_soundness_exhaustive(&scheme, &lcp_core::engine::prepare(&scheme, &inst), 1)
            .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("unreachability forged by {p:?}"),
        }
    }

    #[test]
    fn directed_unreachability_uses_orientations() {
        // Path 0 → 1 → 2 with all arcs forward: 2 cannot reach 0.
        let g = generators::path(3);
        let mut edges = lcp_core::EdgeMap::new();
        edges.insert((0, 1), ArcDir::Forward);
        edges.insert((1, 2), ArcDir::Forward);
        let marks = StMark::mark(3, 2, 0); // s = 2, t = 0
        let inst = Instance::with_data(g, marks, edges);
        let scheme = StUnreachability::directed();
        assert!(scheme.holds(&inst));
        let proof = scheme.prove(&inst).unwrap();
        assert!(evaluate(&scheme, &inst, &proof).accepted());
    }

    #[test]
    fn directed_reachable_resists_forgery() {
        let g = generators::path(3);
        let mut edges = lcp_core::EdgeMap::new();
        edges.insert((0, 1), ArcDir::Forward);
        edges.insert((1, 2), ArcDir::Forward);
        let marks = StMark::mark(3, 0, 2); // s = 0 reaches t = 2
        let inst = Instance::with_data(g, marks, edges);
        let scheme = StUnreachability::directed();
        assert!(!scheme.holds(&inst));
        match check_soundness_exhaustive(&scheme, &lcp_core::engine::prepare(&scheme, &inst), 1)
            .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("directed unreachability forged by {p:?}"),
        }
    }

    fn oriented_cycle_instance(n: usize, s: usize, t: usize) -> Instance<StMark, ArcDir> {
        // Cycle with all arcs oriented "ascending id", so s can reach t
        // only going one way around.
        let g = generators::cycle(n);
        let mut edges = lcp_core::EdgeMap::new();
        for (u, v) in g.edges() {
            let dir = if g.id(u) < g.id(v) {
                ArcDir::Forward
            } else {
                ArcDir::Backward
            };
            edges.insert((u, v), dir);
        }
        let marks = StMark::mark(n, s, t);
        Instance::with_data(g, marks, edges)
    }

    #[test]
    fn directed_reachability_pointer_chain_accepted() {
        // On the ascending-oriented cycle, 0 reaches 5 but 5 cannot reach
        // 0 without the wrap arc n-1 → 0... which IS ascending? The wrap
        // edge {0, n-1} is oriented 0→n-1 (ids 1 < n), so from 5 the only
        // way to 0 is blocked: a genuine directed instance.
        let inst = oriented_cycle_instance(8, 0, 5);
        assert!(StReachabilityDirected.holds(&inst));
        let proof = StReachabilityDirected.prove(&inst).unwrap();
        assert!(evaluate(&StReachabilityDirected, &inst, &proof).accepted());
        // Proof size is O(log Δ): Δ = 2 here, so ≤ 1 + γ(2) bits.
        assert!(proof.size() <= 4, "size {}", proof.size());
    }

    #[test]
    fn directed_unreachable_resists_all_small_proofs() {
        // Path 0 ← 1 ← 2 (all arcs descending): s = 0 cannot reach t = 2.
        let g = generators::path(3);
        let mut edges = lcp_core::EdgeMap::new();
        edges.insert((0, 1), ArcDir::Backward);
        edges.insert((1, 2), ArcDir::Backward);
        let inst = Instance::with_data(g, StMark::mark(3, 0, 2), edges);
        assert!(!StReachabilityDirected.holds(&inst));
        match check_soundness_exhaustive(
            &StReachabilityDirected,
            &lcp_core::engine::prepare(&StReachabilityDirected, &inst),
            3,
        )
        .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("directed reachability forged by {p:?}"),
        }
    }

    #[test]
    fn decoy_pointer_cycles_do_not_help() {
        // A directed 4-cycle far from s and t plus an s,t pair with no
        // connection: marking the decoy cycle self-consistently still
        // leaves s without a valid chain.
        let mut g = generators::cycle(4);
        let s = g.add_node(lcp_graph::NodeId(100)).unwrap();
        let t = g.add_node(lcp_graph::NodeId(101)).unwrap();
        let mut edges = lcp_core::EdgeMap::new();
        // Orient the 4-cycle consistently: 0→1→2→3→0.
        edges.insert((0, 1), ArcDir::Forward);
        edges.insert((1, 2), ArcDir::Forward);
        edges.insert((2, 3), ArcDir::Forward);
        edges.insert((0, 3), ArcDir::Backward); // 3 → 0
        let inst = Instance::with_data(g, StMark::mark(6, s, t), edges);
        assert!(!StReachabilityDirected.holds(&inst));
        // Hand-craft the decoy: mark the 4-cycle with its pointers; mark
        // s and t too (they must be marked to pass their own checks).
        let gg = inst.graph();
        let mk = |out: u64| {
            let mut w = lcp_core::BitWriter::new();
            w.write_bit(true);
            w.write_gamma(out);
            w.finish()
        };
        let mut proof = Proof::empty(6);
        for v in 0..4 {
            let next = [1usize, 2, 3, 0][v];
            proof.set(v, mk(StReachabilityDirected::port(gg, v, next)));
        }
        proof.set(s, mk(1)); // s has no neighbours: invalid port
        let mut wt = lcp_core::BitWriter::new();
        wt.write_bit(true);
        proof.set(t, wt.finish());
        let verdict = evaluate(&StReachabilityDirected, &inst, &proof);
        assert!(!verdict.accepted());
        assert!(verdict.rejecting().contains(&s), "s cannot fake a chain");
    }

    #[test]
    fn merging_into_a_cycle_is_detected() {
        // s → a, and a sits on a directed triangle a→b→c→a. Marking the
        // triangle plus s's pointer gives node a TWO incoming pointers.
        let mut g = lcp_graph::Graph::with_contiguous_ids(3); // a=0 b=1 c=2
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(0, 2).unwrap();
        let s = g.add_node(lcp_graph::NodeId(50)).unwrap();
        let t = g.add_node(lcp_graph::NodeId(51)).unwrap();
        g.add_edge(s, 0).unwrap();
        let mut edges = lcp_core::EdgeMap::new();
        edges.insert((0, 1), ArcDir::Forward); // a→b
        edges.insert((1, 2), ArcDir::Forward); // b→c
        edges.insert((0, 2), ArcDir::Backward); // c→a
        edges.insert((0, s), ArcDir::Backward); // s→a (id 50 > 1)
        let inst = Instance::with_data(g, StMark::mark(5, s, t), edges);
        assert!(!StReachabilityDirected.holds(&inst));
        let gg = inst.graph();
        let mk = |out: u64| {
            let mut w = lcp_core::BitWriter::new();
            w.write_bit(true);
            w.write_gamma(out);
            w.finish()
        };
        let mut proof = Proof::empty(5);
        proof.set(s, mk(StReachabilityDirected::port(gg, s, 0)));
        proof.set(0, mk(StReachabilityDirected::port(gg, 0, 1)));
        proof.set(1, mk(StReachabilityDirected::port(gg, 1, 2)));
        proof.set(2, mk(StReachabilityDirected::port(gg, 2, 0)));
        let mut wt = lcp_core::BitWriter::new();
        wt.write_bit(true);
        proof.set(t, wt.finish());
        let verdict = evaluate(&StReachabilityDirected, &inst, &proof);
        assert!(!verdict.accepted());
        // Node a (index 0) has incoming pointers from both s and c.
        assert!(verdict.rejecting().contains(&0));
    }

    #[test]
    fn back_edges_do_not_leak_reachability() {
        // 0 → 1, 2 → 1: t = 2 unreachable from s = 0 although the
        // underlying undirected graph is a connected path.
        let g = generators::path(3);
        let mut edges = lcp_core::EdgeMap::new();
        edges.insert((0, 1), ArcDir::Forward);
        edges.insert((1, 2), ArcDir::Backward);
        let marks = StMark::mark(3, 0, 2);
        let inst = Instance::with_data(g, marks, edges);
        let scheme = StUnreachability::directed();
        assert!(scheme.holds(&inst));
        let proof = scheme.prove(&inst).unwrap();
        assert!(evaluate(&scheme, &inst, &proof).accepted());
    }
}
