//! Incremental reverify vs full evaluate under single-edge churn: the
//! comparison that justifies `lcp-dynamic`.
//!
//! Workload: the `Θ(log n)` non-bipartiteness scheme on large cycles,
//! grids, and random trees (n ≈ 10⁴). Each mutation deletes a seeded
//! random edge and re-inserts it (two single-edge mutations, returning
//! to the start state), and both executors must produce the same
//! verdict after every mutation:
//!
//! * `incremental` — a [`DynamicInstance`]: repair the two affected
//!   CSR balls, re-run only the dirty verifiers;
//! * `full` — what a consumer without the dynamic layer must do:
//!   re-prepare the instance (`PreparedInstance::new`) and evaluate
//!   every node.
//!
//! Besides criterion timings, the `churn-snapshot` stage measures both
//! sides and records `BENCH_dynamic.json` (committed reference: see
//! README § Benchmarks); the acceptance target is ≥ 10× on single-edge
//! churn at n ≥ 10⁴, and in practice the gap is orders of magnitude.

use criterion::{criterion_group, criterion_main, Criterion};
use lcp_core::engine::PreparedInstance;
use lcp_core::{Instance, Proof, Scheme};
use lcp_dynamic::DynamicInstance;
use lcp_graph::families::GraphFamily;
use lcp_schemes::chromatic::NonBipartite;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Seeded edge picks: `(u, v)` pairs that are edges of `g` right now.
fn pick_edge(g: &lcp_graph::Graph, rng: &mut StdRng) -> (usize, usize) {
    loop {
        let u = rng.random_range(0..g.n());
        if g.degree(u) > 0 {
            let v = g.neighbors(u)[rng.random_range(0..g.degree(u))];
            return (u, v);
        }
    }
}

fn build(family: GraphFamily, n: usize) -> (Instance, Proof) {
    // Odd sizes make cycles non-bipartite, so the cycle cell runs with a
    // real honest proof; grids/trees are bipartite and run with ε.
    let g = family.generate(n | 1, 7);
    let inst = Instance::unlabeled(g);
    let proof = NonBipartite
        .prove(&inst)
        .unwrap_or_else(|| Proof::empty(inst.n()));
    (inst, proof)
}

/// `mutations` single-edge churn steps (delete + reinsert), incremental.
/// Returns the XOR-folded verdict stream so work cannot be elided.
fn incremental_churn(dynamic: &mut DynamicInstance, mutations: usize, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fold = 0u64;
    for step in 0..mutations {
        let (u, v) = pick_edge(dynamic.graph(), &mut rng);
        dynamic.delete_edge(u, v).expect("picked an existing edge");
        let out = dynamic.reverify();
        fold ^= (out.accepted as u64) << (step % 63);
        dynamic.insert_edge(u, v).expect("was just deleted");
        let out = dynamic.reverify();
        fold ^= (out.accepted as u64) << ((step + 31) % 63);
    }
    fold
}

/// The same churn with from-scratch re-preparation after every mutation.
fn full_churn(inst: &mut Instance, proof: &Proof, mutations: usize, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fold = 0u64;
    for step in 0..mutations {
        let (u, v) = pick_edge(inst.graph(), &mut rng);
        inst.remove_edge(u, v).expect("picked an existing edge");
        let prep = PreparedInstance::new(&*inst, NonBipartite.radius());
        fold ^= (prep.evaluate(&NonBipartite, proof).accepted() as u64) << (step % 63);
        inst.insert_edge(u, v).expect("was just removed");
        let prep = PreparedInstance::new(&*inst, NonBipartite.radius());
        fold ^= (prep.evaluate(&NonBipartite, proof).accepted() as u64) << ((step + 31) % 63);
    }
    fold
}

fn workload(c: &Criterion) -> (usize, usize) {
    // (n, mutations): smoke mode exercises the same code in milliseconds.
    if c.is_test_mode() {
        (400, 4)
    } else {
        (10_000, 24)
    }
}

fn bench_single_edge_churn(c: &mut Criterion) {
    let (n, mutations) = workload(c);
    let (inst, proof) = build(GraphFamily::Cycle, n);
    let mut group = c.benchmark_group(format!("churn-cycle-n{n}"));
    group.sample_size(1);
    group.bench_function("incremental", |b| {
        let mut dynamic =
            DynamicInstance::seal_with_proof(NonBipartite, inst.clone(), proof.clone());
        dynamic.reverify();
        b.iter(|| incremental_churn(black_box(&mut dynamic), mutations, 11))
    });
    group.bench_function("full", |b| {
        let mut inst = inst.clone();
        b.iter(|| full_churn(black_box(&mut inst), &proof, mutations, 11))
    });
    group.finish();
}

fn bench_churn_snapshot(c: &mut Criterion) {
    if !c.filter_matches("churn-snapshot") {
        return;
    }
    let (n, mutations) = workload(c);
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"dynamic-reverify-vs-full\",\n");
    let _ = writeln!(json, "  \"scheme\": \"chromatic>2\",");
    let _ = writeln!(json, "  \"n\": {n},");
    let _ = writeln!(json, "  \"mutations\": {},", mutations * 2);

    let families = [GraphFamily::Cycle, GraphFamily::Grid, GraphFamily::Tree];
    for (i, family) in families.iter().enumerate() {
        let (inst, proof) = build(*family, n);
        let real_n = inst.n();

        let mut dynamic =
            DynamicInstance::seal_with_proof(NonBipartite, inst.clone(), proof.clone());
        dynamic.reverify();
        // Warm-up pass, then best-of-three for the (fast) incremental side.
        incremental_churn(&mut dynamic, mutations, 11);
        let mut incremental_s = f64::INFINITY;
        let mut inc_fold = 0;
        for _ in 0..if c.is_test_mode() { 1 } else { 3 } {
            let t = Instant::now();
            inc_fold = incremental_churn(&mut dynamic, mutations, 11);
            incremental_s = incremental_s.min(t.elapsed().as_secs_f64());
        }

        let mut full_inst = inst.clone();
        let t = Instant::now();
        let full_fold = full_churn(&mut full_inst, &proof, mutations, 11);
        let full_s = t.elapsed().as_secs_f64();

        assert_eq!(
            inc_fold,
            full_fold,
            "{}: executors must agree",
            family.name()
        );
        let speedup = full_s / incremental_s;
        println!(
            "dynamic-vs-full on {} (n = {real_n}): {} single-edge mutations — \
             full {full_s:.3}s, incremental {incremental_s:.5}s, speedup {speedup:.0}x",
            family.name(),
            mutations * 2,
        );
        let _ = writeln!(json, "  \"{}_n\": {real_n},", family.name());
        let _ = writeln!(json, "  \"{}_full_seconds\": {full_s:.5},", family.name());
        let _ = writeln!(
            json,
            "  \"{}_incremental_seconds\": {incremental_s:.6},",
            family.name()
        );
        let _ = write!(json, "  \"{}_speedup\": {speedup:.1}", family.name());
        json.push_str(if i + 1 < families.len() { ",\n" } else { "\n" });
    }
    json.push_str("}\n");

    if !c.is_test_mode() {
        // Same snapshot policy as benches/engine.rs: casual runs land in
        // target/, LCP_BENCH_SNAPSHOT=1 refreshes the committed file.
        let path = if std::env::var_os("LCP_BENCH_SNAPSHOT").is_some_and(|v| v == "1") {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dynamic.json")
        } else {
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../target/BENCH_dynamic.json"
            )
        };
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("could not write {path}: {e}");
        } else {
            println!("snapshot written to {path}");
        }
    }
}

criterion_group!(benches, bench_single_edge_churn, bench_churn_snapshot);
criterion_main!(benches);
