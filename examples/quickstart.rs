//! Quickstart: prove that a graph is bipartite with one bit per node,
//! verify it locally, and watch a tampered proof get caught.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lcp::core::{evaluate, BitString, Instance, Scheme};
use lcp::graph::generators;
use lcp::schemes::bipartite::Bipartite;

fn main() {
    // A 4×5 grid network: bipartite, like any grid.
    let g = generators::grid(4, 5);
    let inst = Instance::unlabeled(g);

    // The prover computes a 2-colouring; the proof is 1 bit per node.
    let proof = Bipartite.prove(&inst).expect("grids are bipartite");
    println!("proof size: {} bit(s) per node", proof.size());

    // Every node checks its radius-1 view; all accept.
    let verdict = evaluate(&Bipartite, &inst, &proof);
    println!("honest proof accepted: {}", verdict.accepted());
    assert!(verdict.accepted());

    // An adversary flips one node's colour bit…
    let mut forged = proof.clone();
    let old = forged.get(7).first().expect("bit exists");
    forged.set(7, BitString::from_bits([!old]));

    // …and its neighbours raise the alarm.
    let verdict = evaluate(&Bipartite, &inst, &forged);
    println!("tampered proof rejected by nodes {:?}", verdict.rejecting());
    assert!(!verdict.accepted());

    // When the same instance faces many candidate proofs, prepare it
    // once: the engine caches every node's view skeleton and each proof
    // only swaps bit strings (see `lcp_core::engine`).
    let prep = lcp::core::prepare(&Bipartite, &inst);
    assert!(prep.evaluate(&Bipartite, &proof).accepted());
    let first_alarm = prep.evaluate_until_reject(&Bipartite, &forged);
    println!("engine: first alarm at node {first_alarm:?}");
    assert!(first_alarm.is_some());

    // On an odd cycle no proof exists at all: the prover refuses, and
    // (as the exhaustive harness confirms in the tests) every 1-bit
    // labelling is rejected somewhere.
    let odd = Instance::unlabeled(generators::cycle(9));
    assert!(Bipartite.prove(&odd).is_none());
    println!("odd cycle: prover correctly refuses");
}
