//! # `lcp` — Locally Checkable Proofs
//!
//! Facade crate re-exporting the whole workspace. See the README for a
//! tour; the individual crates carry the detailed documentation:
//!
//! * [`graph`] — graph substrate ([`lcp_graph`]).
//! * [`core`] — the LCP model ([`lcp_core`]).
//! * [`dynamic`] — incremental verification for dynamic graphs
//!   ([`lcp_dynamic`]).
//! * [`sim`] — LOCAL-model simulator ([`lcp_sim`]).
//! * [`logic`] — monadic Σ¹₁ engine ([`lcp_logic`]).
//! * [`schemes`] — the Table 1 proof labeling schemes ([`lcp_schemes`]).
//! * [`lower_bounds`] — executable lower-bound attacks
//!   ([`lcp_lower_bounds`]).

pub use lcp_core as core;
pub use lcp_dynamic as dynamic;
pub use lcp_graph as graph;
pub use lcp_logic as logic;
pub use lcp_lower_bounds as lower_bounds;
pub use lcp_schemes as schemes;
pub use lcp_sim as sim;
