//! Graph-family descriptors: the named generator families the
//! conformance campaign sweeps schemes across.
//!
//! A [`GraphFamily`] is a *seeded, deterministic* recipe: the same
//! `(family, n, seed)` triple always yields the same graph, including
//! across the `parallel` feature and across processes — the property the
//! campaign's byte-identical-report guarantee rests on. Random families
//! (trees, `G(n,p)`, bipartite) derive their RNG stream from a splitmix
//! of the triple, so two cells of a campaign never share randomness by
//! accident.

use crate::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The generator families of the campaign matrix.
///
/// Each family maps a requested size `n` to a concrete graph of *about*
/// that size (grids and barbells round to their natural shapes); read
/// the actual size back off the generated graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GraphFamily {
    /// The path `P_n`.
    Path,
    /// The cycle `C_n` (`n ≥ 3`).
    Cycle,
    /// The near-square `rows × cols` grid with `rows·cols ≈ n`.
    Grid,
    /// A uniform random tree.
    Tree,
    /// Erdős–Rényi `G(n, p)` with `p ≈ 2·ln n / n` (sparse, usually
    /// connected, usually asymmetric).
    Gnp,
    /// A random *connected* bipartite graph (alternating tree plus cross
    /// chords).
    Bipartite,
    /// Two `n/2`-cliques joined by a bridge.
    Barbell,
}

impl GraphFamily {
    /// Every family, in campaign matrix order.
    pub const ALL: [GraphFamily; 7] = [
        GraphFamily::Path,
        GraphFamily::Cycle,
        GraphFamily::Grid,
        GraphFamily::Tree,
        GraphFamily::Gnp,
        GraphFamily::Bipartite,
        GraphFamily::Barbell,
    ];

    /// Stable lowercase name (used in reports and `--family` filters).
    pub fn name(self) -> &'static str {
        match self {
            GraphFamily::Path => "path",
            GraphFamily::Cycle => "cycle",
            GraphFamily::Grid => "grid",
            GraphFamily::Tree => "tree",
            GraphFamily::Gnp => "gnp",
            GraphFamily::Bipartite => "bipartite",
            GraphFamily::Barbell => "barbell",
        }
    }

    /// Parses a [`Self::name`] back into a family.
    pub fn parse(s: &str) -> Option<GraphFamily> {
        GraphFamily::ALL.iter().copied().find(|f| f.name() == s)
    }

    /// The smallest size the family generates sensibly.
    pub fn min_n(self) -> usize {
        match self {
            GraphFamily::Path | GraphFamily::Tree => 2,
            GraphFamily::Cycle => 3,
            GraphFamily::Grid => 6,
            GraphFamily::Gnp | GraphFamily::Bipartite => 4,
            GraphFamily::Barbell => 6,
        }
    }

    /// Generates the family member of size ≈ `n` for `seed`,
    /// deterministically in `(self, n, seed)`.
    ///
    /// Sizes below [`Self::min_n`] are clamped up. Deterministic families
    /// ignore the seed entirely.
    pub fn generate(self, n: usize, seed: u64) -> Graph {
        let n = n.max(self.min_n());
        let mut rng = StdRng::seed_from_u64(mix(seed, self as u64, n as u64));
        match self {
            GraphFamily::Path => generators::path(n),
            GraphFamily::Cycle => generators::cycle(n),
            GraphFamily::Grid => {
                // Near-square, but never a single row (that is Path) and
                // never 2×2 (that is C₄): min_n = 6 forces ≥ 2×3, so a
                // degree-3 node always exists.
                let rows = (n as f64).sqrt().floor().max(2.0) as usize;
                let cols = n.div_ceil(rows).max(3);
                generators::grid(rows, cols)
            }
            GraphFamily::Tree => generators::random_tree(n, &mut rng),
            GraphFamily::Gnp => {
                let p = (2.0 * (n as f64).ln() / n as f64).clamp(0.05, 0.95);
                generators::gnp(n, p, &mut rng)
            }
            GraphFamily::Bipartite => generators::random_connected_bipartite(n, n / 3, &mut rng).0,
            GraphFamily::Barbell => generators::barbell((n / 2).max(3)),
        }
    }
}

/// splitmix64-style mixer tying a cell's RNG stream to its coordinates.
fn mix(seed: u64, family: u64, n: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(family.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(n.wrapping_mul(0x94d0_49bb_1331_11eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn names_round_trip() {
        for f in GraphFamily::ALL {
            assert_eq!(GraphFamily::parse(f.name()), Some(f));
        }
        assert_eq!(GraphFamily::parse("klein-bottle"), None);
    }

    #[test]
    fn generation_is_deterministic_in_the_triple() {
        for f in GraphFamily::ALL {
            let a = f.generate(16, 7);
            let b = f.generate(16, 7);
            assert_eq!(a, b, "{} must be reproducible", f.name());
            let c = f.generate(16, 8);
            if matches!(
                f,
                GraphFamily::Tree | GraphFamily::Gnp | GraphFamily::Bipartite
            ) {
                assert_ne!(a, c, "{} should vary with the seed", f.name());
            }
        }
    }

    #[test]
    fn sizes_are_near_the_request() {
        for f in GraphFamily::ALL {
            for n in [8usize, 16, 32] {
                let g = f.generate(n, 1);
                assert!(
                    g.n() >= n.saturating_sub(1) && g.n() <= n + 6,
                    "{} at n={n} gave {}",
                    f.name(),
                    g.n()
                );
            }
        }
    }

    #[test]
    fn degenerate_sizes_clamp_deterministically() {
        // n ∈ {0, 1, 2} must never panic, never produce a malformed
        // graph, and stay deterministic in the (family, n, seed) triple:
        // sub-minimum requests clamp up to min_n *before* the RNG stream
        // is derived, so every degenerate request is byte-identical to
        // the clamped one.
        for f in GraphFamily::ALL {
            for n in [0usize, 1, 2] {
                let a = f.generate(n, 7);
                let b = f.generate(n, 7);
                assert_eq!(a, b, "{} at n={n} must be reproducible", f.name());
                assert_eq!(
                    a,
                    f.generate(f.min_n().min(n.max(f.min_n())), 7),
                    "{} at n={n} must clamp to min_n={}",
                    f.name(),
                    f.min_n()
                );
                assert!(
                    a.n() >= f.min_n().min(2),
                    "{} at n={n} gave an undersized graph ({} nodes)",
                    f.name(),
                    a.n()
                );
                // Simple-graph invariants survive the clamp.
                for v in a.nodes() {
                    assert!(!a.has_edge(v, v), "self-loop in {} at n={n}", f.name());
                }
            }
        }
    }

    /// Pins the seed-policy contract: a cell's graph is a pure function
    /// of `(family, clamped n, seed)`, so replaying a campaign seed next
    /// release regenerates the same instances. If this test breaks, the
    /// splitmix derivation changed and every committed campaign report
    /// is invalidated — bump deliberately, never silently.
    #[test]
    fn degenerate_cell_seeds_are_stable() {
        let edges = |g: &Graph| g.edges().collect::<Vec<_>>();
        // Deterministic families: the shape alone pins them.
        assert_eq!(edges(&GraphFamily::Path.generate(2, 7)), vec![(0, 1)]);
        assert_eq!(
            edges(&GraphFamily::Cycle.generate(1, 7)),
            vec![(0, 1), (0, 2), (1, 2)]
        );
        assert_eq!(GraphFamily::Grid.generate(0, 7).n(), 6);
        assert_eq!(GraphFamily::Barbell.generate(2, 7).n(), 6);
        // Random families: pin the exact edge sets drawn from the
        // splitmix-derived stream at seed 7 (clamped to min_n).
        assert_eq!(edges(&GraphFamily::Tree.generate(0, 7)), vec![(0, 1)]);
        let gnp = GraphFamily::Gnp.generate(1, 7);
        let bip = GraphFamily::Bipartite.generate(2, 7);
        assert_eq!((gnp.n(), edges(&gnp)), (4, gnp_pinned_edges()));
        assert_eq!((bip.n(), edges(&bip)), (4, bipartite_pinned_edges()));
    }

    /// Seed-7 G(n,p) draw at the clamped minimum size (pinned output).
    fn gnp_pinned_edges() -> Vec<(usize, usize)> {
        vec![(0, 2), (1, 2), (2, 3)]
    }

    /// Seed-7 bipartite draw at the clamped minimum size (pinned output).
    fn bipartite_pinned_edges() -> Vec<(usize, usize)> {
        vec![(0, 1), (1, 2), (1, 3)]
    }

    #[test]
    fn family_shapes() {
        assert!(traversal::is_connected(&GraphFamily::Tree.generate(20, 3)));
        assert_eq!(GraphFamily::Tree.generate(20, 3).m(), 19);
        assert!(traversal::is_bipartite(
            &GraphFamily::Bipartite.generate(15, 3)
        ));
        assert!(traversal::is_connected(
            &GraphFamily::Bipartite.generate(15, 3)
        ));
        let grid = GraphFamily::Grid.generate(12, 0);
        assert!(
            grid.nodes().any(|v| grid.degree(v) >= 3),
            "grids must not be cycles"
        );
        let barbell = GraphFamily::Barbell.generate(12, 0);
        assert_eq!(barbell.n(), 12);
        // Sub-minimum requests are clamped, not rejected.
        assert!(GraphFamily::Cycle.generate(1, 0).n() == 3);
    }
}
