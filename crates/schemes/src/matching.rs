//! Matching verification (§2.3): maximal (`LCP(0)`), maximum on
//! bipartite graphs (König, `Θ(1)`), and maximum-weight on bipartite
//! graphs (LP duality, `O(log W)`).

use lcp_core::{BitReader, BitString, BitWriter, Instance, Proof, Scheme, View};
use lcp_graph::matching as gm;
use lcp_graph::traversal;

/// Maximal matching: `LCP(0)` (Table 1(b)). No proof; a radius-2
/// verifier checks validity (my labelled degree ≤ 1) and maximality (if
/// I am unmatched, every neighbour is matched — their matched edges are
/// visible at radius 2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaximalMatching;

impl Scheme for MaximalMatching {
    type Node = ();
    type Edge = ();

    fn name(&self) -> String {
        "maximal-matching".into()
    }

    fn radius(&self) -> usize {
        2
    }

    fn holds(&self, inst: &Instance) -> bool {
        gm::is_maximal_matching(inst.graph(), &inst.labelled_edges())
    }

    fn prove(&self, inst: &Instance) -> Option<Proof> {
        self.holds(inst).then(|| Proof::empty(inst.n()))
    }

    fn verify(&self, view: &View) -> bool {
        let c = view.center();
        let labelled_degree = |u: usize| {
            view.neighbors(u)
                .iter()
                .filter(|&&w| view.edge_label(u, w).is_some())
                .count()
        };
        match labelled_degree(c) {
            0 => view.neighbors(c).iter().all(|&u| labelled_degree(u) >= 1),
            1 => true,
            _ => false,
        }
    }
}

/// Maximum-cardinality matching on **bipartite** graphs: `Θ(1)` via
/// König's theorem (§2.3).
///
/// Proof: one bit per node — membership in a minimum vertex cover `C`.
/// The verifier checks: the labelled edges form a matching; `C` covers
/// every edge; every matched edge has exactly one endpoint in `C`; every
/// `C`-node is matched. Together these force `|C| = |M|`, and weak
/// duality makes both optimal.
///
/// Family promise: bipartite graphs (König's theorem needs it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaximumMatchingBipartite;

impl Scheme for MaximumMatchingBipartite {
    type Node = ();
    type Edge = ();

    fn name(&self) -> String {
        "maximum-matching-bipartite".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance) -> bool {
        let g = inst.graph();
        let Some(side) = traversal::bipartition(g) else {
            return false;
        };
        let m = inst.labelled_edges();
        gm::is_matching(g, &m) && m.len() == gm::maximum_bipartite_matching(g, &side).size()
    }

    fn prove(&self, inst: &Instance) -> Option<Proof> {
        if !self.holds(inst) {
            return None;
        }
        let g = inst.graph();
        let side = traversal::bipartition(g).expect("bipartite by holds()");
        let maximum = gm::maximum_bipartite_matching(g, &side);
        let cover = gm::koenig_vertex_cover(g, &side, &maximum);
        Some(Proof::from_fn(g.n(), |v| BitString::from_bits([cover[v]])))
    }

    fn verify(&self, view: &View) -> bool {
        let c = view.center();
        let Some(in_cover) = view.proof(c).first() else {
            return false;
        };
        let matched_nbrs: Vec<usize> = view
            .neighbors(c)
            .iter()
            .copied()
            .filter(|&u| view.edge_label(c, u).is_some())
            .collect();
        // Validity: at most one matched edge at me.
        if matched_nbrs.len() > 1 {
            return false;
        }
        // C-nodes must be matched.
        if in_cover && matched_nbrs.is_empty() {
            return false;
        }
        for &u in view.neighbors(c) {
            let Some(u_cover) = view.proof(u).first() else {
                return false;
            };
            // Cover condition on every incident edge.
            if !in_cover && !u_cover {
                return false;
            }
            // Matched edges: exactly one endpoint in C.
            if view.edge_label(c, u).is_some() && in_cover == u_cover {
                return false;
            }
        }
        true
    }
}

/// Per-edge data for the weighted problem: integer weight plus matched
/// flag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WeightedEdge {
    /// Nonnegative integer edge weight (`0..=W`).
    pub weight: u64,
    /// Whether the edge is in the claimed matching.
    pub matched: bool,
}

// Artifact codec (tag space 100+, see `docs/FORMAT.md`): two words per
// edge — weight, then matched as 0/1. Any other second word is rejected
// so a corrupted artifact can never decode to a valid-looking label.
impl lcp_core::frozen::PortableLabel for WeightedEdge {
    const TAG: u64 = 102;

    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.weight);
        out.push(u64::from(self.matched));
    }

    fn decode(r: &mut lcp_core::frozen::WordReader<'_>) -> Option<Self> {
        let weight = r.next()?;
        let matched = match r.next()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        Some(WeightedEdge { weight, matched })
    }
}

/// Maximum-**weight** matching on bipartite graphs: `O(log W)` bits via
/// LP duality (§2.3).
///
/// Proof: the integral optimal dual `y_v ∈ {0..W}`, γ-coded. The verifier
/// checks per node: matching validity; dual feasibility `y_u + y_v ≥ w`
/// on every incident edge; complementary slackness (`y_u + y_v = w` on
/// matched edges, `y_v > 0` only on matched nodes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaxWeightMatchingBipartite;

impl Scheme for MaxWeightMatchingBipartite {
    type Node = ();
    type Edge = WeightedEdge;

    fn name(&self) -> String {
        "max-weight-matching-bipartite".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance<(), WeightedEdge>) -> bool {
        let g = inst.graph();
        let Some(side) = traversal::bipartition(g) else {
            return false;
        };
        let matched: Vec<(usize, usize)> = inst
            .edge_labels()
            .iter()
            .filter(|(_, e)| e.matched)
            .map(|(&k, _)| k)
            .collect();
        if !gm::is_matching(g, &matched) {
            return false;
        }
        let weights: gm::EdgeWeightMap = inst
            .edge_labels()
            .iter()
            .map(|(&k, e)| (k, e.weight))
            .collect();
        let claimed: u64 = matched
            .iter()
            .map(|&(u, v)| inst.edge_label(u, v).map_or(0, |e| e.weight))
            .sum();
        let best = gm::max_weight_bipartite_matching(g, &side, &weights).weight;
        claimed == best
    }

    fn prove(&self, inst: &Instance<(), WeightedEdge>) -> Option<Proof> {
        if !self.holds(inst) {
            return None;
        }
        let g = inst.graph();
        let side = traversal::bipartition(g).expect("bipartite by holds()");
        let weights: gm::EdgeWeightMap = inst
            .edge_labels()
            .iter()
            .map(|(&k, e)| (k, e.weight))
            .collect();
        let sol = gm::max_weight_bipartite_matching(g, &side, &weights);
        Some(Proof::from_fn(g.n(), |v| {
            let mut w = BitWriter::new();
            w.write_gamma(sol.duals[v]);
            w.finish()
        }))
    }

    fn verify(&self, view: &View<(), WeightedEdge>) -> bool {
        let dual = |u: usize| -> Option<u64> {
            let mut r = BitReader::new(view.proof(u));
            let y = r.read_gamma().ok()?;
            r.is_exhausted().then_some(y)
        };
        let c = view.center();
        let Some(my_y) = dual(c) else {
            return false;
        };
        let mut matched_count = 0;
        for &u in view.neighbors(c) {
            let Some(edge) = view.edge_label(c, u) else {
                return false; // weighted instances label every edge
            };
            let Some(u_y) = dual(u) else {
                return false;
            };
            // Dual feasibility.
            if my_y + u_y < edge.weight {
                return false;
            }
            if edge.matched {
                matched_count += 1;
                // Tightness on matched edges.
                if my_y + u_y != edge.weight {
                    return false;
                }
            }
        }
        if matched_count > 1 {
            return false; // matching validity
        }
        // Slackness: positive dual only on matched nodes.
        !(my_y > 0 && matched_count == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::evaluate;
    use lcp_core::harness::{
        adversarial_proof_search, check_completeness, check_soundness_exhaustive, Soundness,
    };
    use lcp_core::EdgeMap;
    use lcp_graph::generators;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn greedy_maximal_matchings_accepted() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut instances = Vec::new();
        for _ in 0..8 {
            let g = generators::gnp(10, 0.35, &mut rng);
            let m = gm::greedy_maximal_matching(&g);
            instances.push(Instance::unlabeled(g).with_edge_set(m));
        }
        let sizes = check_completeness(
            &MaximalMatching,
            &lcp_core::engine::prepare_sweep(&MaximalMatching, &instances),
        )
        .unwrap();
        assert!(sizes.iter().all(|&s| s == 0), "LCP(0)");
    }

    #[test]
    fn non_maximal_matching_rejected_without_proof_help() {
        // P4 with nothing labelled: the empty matching is not maximal.
        let inst = Instance::unlabeled(generators::path(4));
        assert!(!MaximalMatching.holds(&inst));
        match check_soundness_exhaustive(
            &MaximalMatching,
            &lcp_core::engine::prepare(&MaximalMatching, &inst),
            1,
        )
        .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("empty matching certified maximal by {p:?}"),
        }
    }

    #[test]
    fn overlapping_edges_rejected() {
        let g = generators::path(3);
        let inst = Instance::unlabeled(g).with_edge_set([(0, 1), (1, 2)]);
        assert!(!MaximalMatching.holds(&inst));
        let verdict = evaluate(&MaximalMatching, &inst, &Proof::empty(3));
        assert!(verdict.rejecting().contains(&1));
    }

    fn kuhn_instance(g: lcp_graph::Graph) -> Instance {
        let side = traversal::bipartition(&g).unwrap();
        let m = gm::maximum_bipartite_matching(&g, &side);
        Instance::unlabeled(g).with_edge_set(m.edges())
    }

    #[test]
    fn koenig_certificates_accepted() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut instances = Vec::new();
        for _ in 0..10 {
            instances.push(kuhn_instance(generators::random_bipartite(
                6, 6, 0.4, &mut rng,
            )));
        }
        let sizes = check_completeness(
            &MaximumMatchingBipartite,
            &lcp_core::engine::prepare_sweep(&MaximumMatchingBipartite, &instances),
        )
        .unwrap();
        assert!(sizes.iter().all(|&s| s == 1), "Θ(1): one bit");
    }

    #[test]
    fn submaximum_matching_rejected_exhaustively() {
        // K2,2 with a single matched edge (max is 2).
        let g = generators::complete_bipartite(2, 2);
        let inst = Instance::unlabeled(g).with_edge_set([(0, 2)]);
        assert!(!MaximumMatchingBipartite.holds(&inst));
        match check_soundness_exhaustive(
            &MaximumMatchingBipartite,
            &lcp_core::engine::prepare(&MaximumMatchingBipartite, &inst),
            1,
        )
        .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("submaximum matching certified by {p:?}"),
        }
    }

    #[test]
    fn empty_matching_on_star_rejected() {
        let inst = Instance::unlabeled(generators::star(4));
        assert!(!MaximumMatchingBipartite.holds(&inst));
        let mut rng = StdRng::seed_from_u64(33);
        assert!(adversarial_proof_search(
            &MaximumMatchingBipartite,
            &lcp_core::engine::prepare(&MaximumMatchingBipartite, &inst),
            1,
            400,
            &mut rng
        )
        .is_none());
    }

    fn weighted_instance(seed: u64) -> Instance<(), WeightedEdge> {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_bipartite(5, 5, 0.5, &mut rng);
        let side = traversal::bipartition(&g).unwrap();
        let weights: gm::EdgeWeightMap = g
            .edges()
            .map(|(u, v)| ((u, v), rng.random_range(0..10u64)))
            .collect();
        let sol = gm::max_weight_bipartite_matching(&g, &side, &weights);
        let matched: std::collections::BTreeSet<(usize, usize)> = sol.edges().into_iter().collect();
        let mut data = EdgeMap::new();
        for (k, w) in weights {
            data.insert(
                k,
                WeightedEdge {
                    weight: w,
                    matched: matched.contains(&k),
                },
            );
        }
        Instance::with_data(g, vec![(); 10], data)
    }

    #[test]
    fn lp_dual_certificates_accepted() {
        let instances: Vec<Instance<(), WeightedEdge>> = (0..10).map(weighted_instance).collect();
        let sizes = check_completeness(
            &MaxWeightMatchingBipartite,
            &lcp_core::engine::prepare_sweep(&MaxWeightMatchingBipartite, &instances),
        )
        .unwrap();
        // γ-coded duals ≤ W = 9: at most 2·⌊log₂ 10⌋ + 1 = 7 bits.
        assert!(sizes.iter().all(|&s| s <= 7), "O(log W) bits: {sizes:?}");
    }

    #[test]
    fn suboptimal_weighted_matching_rejected() {
        // Path a-b-c with weights 2 and 5; matching {a-b} is suboptimal.
        let g = generators::path(3);
        let mut data = EdgeMap::new();
        data.insert(
            (0, 1),
            WeightedEdge {
                weight: 2,
                matched: true,
            },
        );
        data.insert(
            (1, 2),
            WeightedEdge {
                weight: 5,
                matched: false,
            },
        );
        let inst = Instance::with_data(g, vec![(); 3], data);
        assert!(!MaxWeightMatchingBipartite.holds(&inst));
        match check_soundness_exhaustive(
            &MaxWeightMatchingBipartite,
            &lcp_core::engine::prepare(&MaxWeightMatchingBipartite, &inst),
            3,
        )
        .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("suboptimal matching certified by {p:?}"),
        }
    }

    #[test]
    fn equal_weight_alternative_matchings_both_certifiable() {
        // Strong scheme sanity: the dual certifies *any* optimal matching.
        let g = generators::cycle(4); // bipartite 4-cycle
        for matched_pair in [[(0usize, 1usize), (2, 3)], [(1, 2), (0, 3)]] {
            let mut data = EdgeMap::new();
            for (u, v) in g.edges() {
                data.insert(
                    (u, v),
                    WeightedEdge {
                        weight: 1,
                        matched: matched_pair.contains(&(u, v)),
                    },
                );
            }
            let inst = Instance::with_data(g.clone(), vec![(); 4], data);
            assert!(MaxWeightMatchingBipartite.holds(&inst));
            let proof = MaxWeightMatchingBipartite.prove(&inst).unwrap();
            assert!(
                evaluate(&MaxWeightMatchingBipartite, &inst, &proof).accepted(),
                "matching {matched_pair:?} should be certifiable"
            );
        }
    }
}
