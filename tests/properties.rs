//! Property-based tests (proptest) over the whole stack: codec
//! roundtrips, model invariants, simulator equivalence, duality, and
//! attack-counterexample validity.

use lcp::core::harness::all_bitstrings_up_to;
use lcp::core::{evaluate, BitReader, BitString, BitWriter, Instance, Proof, Scheme, View};
use lcp::graph::{generators, iso, matching, traversal, Graph, NodeId};
use lcp::sim::run_distributed;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a connected random graph from a seed.
fn connected_graph() -> impl Strategy<Value = Graph> {
    (4usize..14, 0usize..12, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::random_connected(n, extra, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bit_codec_roundtrips(values in prop::collection::vec(0u64..1_000_000, 0..20)) {
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_gamma(v);
        }
        let s = w.finish();
        let mut r = BitReader::new(&s);
        for &v in &values {
            prop_assert_eq!(r.read_gamma().unwrap(), v);
        }
        prop_assert!(r.is_exhausted());
    }

    #[test]
    fn fixed_width_roundtrips(value in 0u64..u64::MAX, extra in 0u32..8) {
        // Any width that fits the value must round-trip exactly.
        let min_width = (64 - value.leading_zeros()).max(1);
        let width = (min_width + extra).min(64);
        let mut w = BitWriter::new();
        w.write_u64(value, width);
        let s = w.finish();
        prop_assert_eq!(s.len() as u32, width);
        prop_assert_eq!(BitReader::new(&s).read_u64(width).unwrap(), value);
    }

    #[test]
    fn ball_matches_bfs_distances(g in connected_graph(), v in 0usize..4, r in 0usize..4) {
        let v = v % g.n();
        let dist = traversal::bfs_distances(&g, v);
        let ball = traversal::ball(&g, v, r);
        for u in g.nodes() {
            let inside = dist[u].is_some_and(|d| d <= r);
            prop_assert_eq!(ball.contains(&u), inside, "node {}", u);
        }
    }

    #[test]
    fn view_extraction_is_an_induced_subgraph(g in connected_graph(), c in 0usize..4, r in 0usize..3) {
        let c = c % g.n();
        let inst = Instance::unlabeled(g);
        let view = View::extract(&inst, &Proof::empty(inst.n()), c, r);
        // Every view edge is a graph edge, and every in-ball graph edge
        // appears in the view.
        let g = inst.graph();
        for (u, w) in view.edges() {
            let gu = g.index_of(view.id(u)).unwrap();
            let gw = g.index_of(view.id(w)).unwrap();
            prop_assert!(g.has_edge(gu, gw));
        }
        let members: Vec<usize> = view.ids().iter().map(|&id| g.index_of(id).unwrap()).collect();
        for (i, &gu) in members.iter().enumerate() {
            for (j, &gw) in members.iter().enumerate().skip(i + 1) {
                if g.has_edge(gu, gw) {
                    prop_assert!(view.has_edge(i, j), "missing induced edge");
                }
            }
        }
    }

    #[test]
    fn simulator_equals_extraction_on_random_proofs(g in connected_graph(), seed in any::<u64>()) {
        /// A verifier whose output depends on everything in the view.
        struct Fingerprint;
        impl Scheme for Fingerprint {
            type Node = ();
            type Edge = ();
            fn name(&self) -> String { "fingerprint".into() }
            fn radius(&self) -> usize { 2 }
            fn holds(&self, _: &Instance) -> bool { true }
            fn prove(&self, inst: &Instance) -> Option<Proof> { Some(Proof::empty(inst.n())) }
            fn verify(&self, view: &View) -> bool {
                let mut h: u64 = 0;
                for u in view.nodes() {
                    h = h.wrapping_mul(1_000_003).wrapping_add(view.id(u).0);
                    h = h.wrapping_mul(31).wrapping_add(view.dist(u) as u64);
                    for b in view.proof(u).iter() {
                        h = h.wrapping_mul(2).wrapping_add(b as u64);
                    }
                    for &w in view.neighbors(u) {
                        h = h.wrapping_mul(131).wrapping_add(view.id(w).0);
                    }
                }
                !h.is_multiple_of(3)
            }
        }
        let inst = Instance::unlabeled(g);
        let mut rng = StdRng::seed_from_u64(seed);
        let proof = lcp::core::harness::random_proof(inst.n(), 5, &mut rng);
        let central = evaluate(&Fingerprint, &inst, &proof);
        let (distributed, _) = run_distributed(&Fingerprint, &inst, &proof);
        prop_assert_eq!(central, distributed);
    }

    #[test]
    fn canonical_code_is_permutation_invariant(seed in any::<u64>(), n in 4usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, 0.4, &mut rng);
        let h = g.relabel(|id| NodeId(1000 - id.0)).unwrap();
        prop_assert_eq!(iso::canonical_code(&g).unwrap(), iso::canonical_code(&h).unwrap());
    }

    #[test]
    fn koenig_duality_on_random_bipartite(seed in any::<u64>(), a in 2usize..7, b in 2usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_bipartite(a, b, 0.5, &mut rng);
        let side = traversal::bipartition(&g).unwrap();
        let m = matching::maximum_bipartite_matching(&g, &side);
        let cover = matching::koenig_vertex_cover(&g, &side, &m);
        prop_assert!(matching::is_vertex_cover(&g, &cover));
        prop_assert_eq!(cover.iter().filter(|&&x| x).count(), m.size());
    }

    #[test]
    fn bipartite_scheme_sound_on_odd_cycles_small_exhaustive(k in 1usize..3) {
        // Every 1-bit proof on C_{2k+3} is rejected somewhere.
        let n = 2 * k + 3;
        let inst = Instance::unlabeled(generators::cycle(n));
        let strings = all_bitstrings_up_to(1).expect("tiny table");
        // Exhaustive product over per-node strings.
        let mut indices = vec![0usize; n];
        loop {
            let proof = Proof::from_strings(indices.iter().map(|&i| strings[i].clone()).collect());
            let verdict = evaluate(&lcp::schemes::bipartite::Bipartite, &inst, &proof);
            prop_assert!(!verdict.accepted(), "C{} fooled by {:?}", n, proof);
            let mut pos = 0;
            loop {
                if pos == n { return Ok(()); }
                indices[pos] += 1;
                if indices[pos] < strings.len() { break; }
                indices[pos] = 0;
                pos += 1;
            }
        }
    }

    #[test]
    fn tree_certificates_complete_on_random_graphs(g in connected_graph()) {
        use lcp::core::components::{CountingTreeCert, TreeCert};
        let tree = lcp::graph::spanning::bfs_spanning_tree(&g, 0);
        let inst = Instance::unlabeled(g);
        let certs = CountingTreeCert::prove(inst.graph(), &tree);
        let proof = Proof::from_fn(inst.n(), |v| {
            let mut w = BitWriter::new();
            certs[v].encode(&mut w);
            w.finish()
        });
        for v in inst.graph().nodes() {
            let view = View::extract(&inst, &proof, v, 1);
            let ok = CountingTreeCert::verify_at_center(&view, |u| {
                CountingTreeCert::decode(&mut BitReader::new(view.proof(u))).ok()
            });
            prop_assert!(ok, "counting certificate rejected at node {}", v);
            let ok = TreeCert::verify_at_center(&view, |u| {
                CountingTreeCert::decode(&mut BitReader::new(view.proof(u))).ok().map(|c| c.tree)
            });
            prop_assert!(ok, "tree certificate rejected at node {}", v);
        }
    }

    #[test]
    fn proof_size_reporting_is_consistent(strings in prop::collection::vec(prop::collection::vec(any::<bool>(), 0..12), 1..10)) {
        let proof = Proof::from_strings(strings.iter().map(|bits| BitString::from_bits(bits.iter().copied())).collect());
        let max = strings.iter().map(Vec::len).max().unwrap_or(0);
        let total: usize = strings.iter().map(Vec::len).sum();
        prop_assert_eq!(proof.size(), max);
        prop_assert_eq!(proof.total_bits(), total);
    }
}
