//! Exhaustive and sampled enumeration of small graphs up to isomorphism.
//!
//! §6.1 needs the family `F_k`: one representative of every isomorphism
//! class of *asymmetric connected* graphs on `k` nodes (`log |F_k| =
//! Θ(k²)` by Erdős–Rényi). Exhaustive enumeration is feasible for `k ≤ 6`;
//! beyond that, [`sample_asymmetric_connected`] collects distinct classes
//! by rejection sampling, which is all the fooling experiments need.

use crate::iso::{canonical_code, is_symmetric, CanonicalCode};
use crate::{Graph, GraphError};
use rand::rngs::StdRng;
use std::collections::HashSet;

/// Largest `k` for which exhaustive enumeration is allowed (2^21 edge
/// masks at `k = 7` is already minutes of work; we stop at 6).
pub const MAX_EXHAUSTIVE_NODES: usize = 6;

/// All graphs on `k` labelled-then-deduplicated nodes, one per
/// isomorphism class, with identifiers `1..=k`.
///
/// Counts match OEIS A000088: 1, 2, 4, 11, 34, 156 for `k = 1..=6`.
///
/// # Errors
///
/// Returns an error if `k = 0` or `k >` [`MAX_EXHAUSTIVE_NODES`].
pub fn all_graphs_up_to_iso(k: usize) -> Result<Vec<Graph>, GraphError> {
    if k == 0 || k > MAX_EXHAUSTIVE_NODES {
        return Err(GraphError::InvalidConstruction(format!(
            "exhaustive enumeration supports 1..={MAX_EXHAUSTIVE_NODES} nodes, got {k}"
        )));
    }
    let pairs: Vec<(usize, usize)> = (0..k)
        .flat_map(|u| ((u + 1)..k).map(move |v| (u, v)))
        .collect();
    let mut seen: HashSet<CanonicalCode> = HashSet::new();
    let mut out = Vec::new();
    for mask in 0u64..(1u64 << pairs.len()) {
        let mut g = Graph::with_contiguous_ids(k);
        for (bit, &(u, v)) in pairs.iter().enumerate() {
            if mask >> bit & 1 == 1 {
                g.add_edge(u, v).expect("pairs are distinct");
            }
        }
        let code = canonical_code(&g).expect("k <= MAX_CANON_NODES");
        if seen.insert(code) {
            out.push(g);
        }
    }
    Ok(out)
}

/// One representative per isomorphism class of *connected* graphs on `k`
/// nodes.
///
/// Counts match OEIS A001349: 1, 1, 2, 6, 21, 112 for `k = 1..=6`.
///
/// # Errors
///
/// Same bounds as [`all_graphs_up_to_iso`].
pub fn connected_graphs_up_to_iso(k: usize) -> Result<Vec<Graph>, GraphError> {
    Ok(all_graphs_up_to_iso(k)?
        .into_iter()
        .filter(crate::traversal::is_connected)
        .collect())
}

/// The family `F_k` of §6.1: one representative per isomorphism class of
/// asymmetric connected graphs on `k` nodes.
///
/// Nonempty only from `k = 1` (trivially) and `k ≥ 6`; the count at
/// `k = 6` is 8.
///
/// # Errors
///
/// Same bounds as [`all_graphs_up_to_iso`].
pub fn asymmetric_connected_graphs(k: usize) -> Result<Vec<Graph>, GraphError> {
    Ok(connected_graphs_up_to_iso(k)?
        .into_iter()
        .filter(|g| !is_symmetric(g))
        .collect())
}

/// Collects up to `count` pairwise non-isomorphic asymmetric connected
/// graphs on `k` nodes by seeded rejection sampling (G(k, 1/2) conditioned
/// on connectivity and asymmetry, deduplicated by canonical code).
///
/// Gives up after `max_attempts` draws, returning what it has; by
/// Erdős–Rényi almost all graphs qualify, so for `k ≥ 7` the yield is
/// high.
///
/// # Errors
///
/// Returns an error if `k` exceeds [`crate::iso::MAX_CANON_NODES`] (the
/// deduplication needs canonical codes).
pub fn sample_asymmetric_connected(
    k: usize,
    count: usize,
    max_attempts: usize,
    rng: &mut StdRng,
) -> Result<Vec<Graph>, GraphError> {
    if k == 0 || k > crate::iso::MAX_CANON_NODES {
        return Err(GraphError::InvalidConstruction(format!(
            "sampling supports 1..={} nodes, got {k}",
            crate::iso::MAX_CANON_NODES
        )));
    }
    let mut seen: HashSet<CanonicalCode> = HashSet::new();
    let mut out = Vec::new();
    for _ in 0..max_attempts {
        if out.len() == count {
            break;
        }
        let g = crate::generators::gnp(k, 0.5, rng);
        if !crate::traversal::is_connected(&g) || is_symmetric(&g) {
            continue;
        }
        let code = canonical_code(&g)?;
        if seen.insert(code) {
            out.push(g);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn graph_counts_match_a000088() {
        let expected = [1usize, 2, 4, 11, 34];
        for (i, &count) in expected.iter().enumerate() {
            assert_eq!(all_graphs_up_to_iso(i + 1).unwrap().len(), count);
        }
    }

    #[test]
    fn connected_counts_match_a001349() {
        let expected = [1usize, 1, 2, 6, 21];
        for (i, &count) in expected.iter().enumerate() {
            assert_eq!(connected_graphs_up_to_iso(i + 1).unwrap().len(), count);
        }
    }

    #[test]
    #[ignore = "k = 6 exhaustive pass takes ~10s in debug builds; run with --ignored"]
    fn six_node_counts() {
        assert_eq!(all_graphs_up_to_iso(6).unwrap().len(), 156);
        assert_eq!(connected_graphs_up_to_iso(6).unwrap().len(), 112);
        assert_eq!(asymmetric_connected_graphs(6).unwrap().len(), 8);
    }

    #[test]
    fn no_small_asymmetric_graphs() {
        // Between 2 and 5 nodes every connected graph has a symmetry.
        for k in 2..=5 {
            assert!(
                asymmetric_connected_graphs(k).unwrap().is_empty(),
                "k = {k}"
            );
        }
        // The single-node graph is trivially asymmetric.
        assert_eq!(asymmetric_connected_graphs(1).unwrap().len(), 1);
    }

    #[test]
    fn sampling_yields_distinct_asymmetric_graphs() {
        let mut rng = StdRng::seed_from_u64(42);
        let graphs = sample_asymmetric_connected(7, 20, 5000, &mut rng).unwrap();
        assert!(graphs.len() >= 10, "expected a healthy yield at k = 7");
        for g in &graphs {
            assert_eq!(g.n(), 7);
            assert!(crate::traversal::is_connected(g));
            assert!(!is_symmetric(g));
        }
        // Pairwise non-isomorphic by construction.
        let codes: HashSet<_> = graphs.iter().map(|g| canonical_code(g).unwrap()).collect();
        assert_eq!(codes.len(), graphs.len());
    }

    #[test]
    fn enumeration_bounds() {
        assert!(all_graphs_up_to_iso(0).is_err());
        assert!(all_graphs_up_to_iso(7).is_err());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample_asymmetric_connected(17, 1, 10, &mut rng).is_err());
    }
}
