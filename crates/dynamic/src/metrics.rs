//! The dynamic-layer metric catalog (see `docs/OBSERVABILITY.md`).
//!
//! Same write-only discipline as [`lcp_core::metrics`]: relaxed atomics,
//! incremented at mutation/reverify boundaries (never inside a per-node
//! verifier loop), and never read back by the engine — metrics cannot
//! perturb verdicts, dirty sets, or churn RNG streams.

use lcp_obs::{Counter, Histogram, Registry};

/// Applied `edge-insert` mutations (successful only).
pub static MUTATIONS_EDGE_INSERT: Counter = Counter::new();
/// Applied `edge-delete` mutations (successful only).
pub static MUTATIONS_EDGE_DELETE: Counter = Counter::new();
/// Applied `node-label-change` mutations (successful only).
pub static MUTATIONS_NODE_LABEL: Counter = Counter::new();
/// Applied `proof-rewrite` mutations (successful, bit-changing only —
/// mirrors the mutation log, which skips no-op rewrites).
pub static MUTATIONS_PROOF_REWRITE: Counter = Counter::new();

/// `reverify` calls.
pub static REVERIFIES: Counter = Counter::new();
/// Dirty-set size observed by each `reverify` call.
pub static DIRTY_SET_SIZE: Histogram = Histogram::new();
/// Wall time of each `reverify` call, nanoseconds.
pub static REVERIFY_NS: Histogram = Histogram::new();
/// Total verifiers re-run by `reverify` calls.
pub static REVERIFIED_NODES: Counter = Counter::new();

/// Registers the dynamic-layer catalog into `reg` (idempotent).
pub fn register(reg: &Registry) {
    reg.counter(
        "lcp_dynamic_mutations_total",
        "kind=\"edge-insert\"",
        "applied mutations by kind",
        &MUTATIONS_EDGE_INSERT,
    );
    reg.counter(
        "lcp_dynamic_mutations_total",
        "kind=\"edge-delete\"",
        "applied mutations by kind",
        &MUTATIONS_EDGE_DELETE,
    );
    reg.counter(
        "lcp_dynamic_mutations_total",
        "kind=\"node-label-change\"",
        "applied mutations by kind",
        &MUTATIONS_NODE_LABEL,
    );
    reg.counter(
        "lcp_dynamic_mutations_total",
        "kind=\"proof-rewrite\"",
        "applied mutations by kind",
        &MUTATIONS_PROOF_REWRITE,
    );
    reg.counter(
        "lcp_dynamic_reverifies_total",
        "",
        "incremental reverify calls",
        &REVERIFIES,
    );
    reg.histogram(
        "lcp_dynamic_dirty_set_size",
        "",
        "dirty-set size per reverify call",
        &DIRTY_SET_SIZE,
    );
    reg.histogram(
        "lcp_dynamic_reverify_ns",
        "",
        "reverify wall time in nanoseconds",
        &REVERIFY_NS,
    );
    reg.counter(
        "lcp_dynamic_reverified_nodes_total",
        "",
        "verifiers re-run across all reverify calls",
        &REVERIFIED_NODES,
    );
}
