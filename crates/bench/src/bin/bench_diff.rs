//! `bench_diff` — CI guard for committed benchmark snapshots.
//!
//! ```text
//! bench_diff <fresh.json> <committed.json> [--max-regression 0.25] [--keys slow,fast]...
//! ```
//!
//! Compares the *relative* speedup (a slow reference path vs a fast
//! path, measured in the same run on the same machine) of a freshly
//! produced snapshot against the committed reference. Wall-clock
//! seconds are not comparable across machines, but the speedup ratio
//! is — a refactor that costs the fast path 25% of its advantage fails
//! the job regardless of runner hardware.
//!
//! The key pair defaults to the engine snapshot's
//! `naive_seconds`/`engine_seconds`; other series pass their own, and
//! `--keys` may repeat to gate several series of one snapshot in a
//! single run, e.g. the dynamic-churn snapshot's cycle *and* grid *and*
//! tree series:
//!
//! ```text
//! bench_diff target/BENCH_dynamic.json BENCH_dynamic.json \
//!     --keys cycle_full_seconds,cycle_incremental_seconds \
//!     --keys grid_full_seconds,grid_incremental_seconds \
//!     --keys tree_full_seconds,tree_incremental_seconds
//! ```
//!
//! Every listed pair is checked; any regressing pair fails the run.
//!
//! **First-introduction tolerance:** a brand-new series has nothing to
//! diff against. When the committed snapshot file is absent, or it
//! exists but lacks the requested keys (an older snapshot predating the
//! series), the diff reports "no baseline" and exits 0 — CI only starts
//! guarding once a baseline lands. A missing or malformed *fresh*
//! snapshot is still an error: the bench that was supposed to produce
//! it just ran.
//!
//! Exit codes: `0` ok (including no-baseline), `1` usage/parse error,
//! `2` regression.

use std::process::exit;

/// Minimal extractor for the flat one-level BENCH json: finds `"key":
/// <number>` and parses the number (no string values contain keys).
fn field(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

struct Snapshot {
    slow_seconds: f64,
    fast_seconds: f64,
}

/// Extracts one series from an already-read snapshot.
fn series(json: &str, path: &str, slow_key: &str, fast_key: &str) -> Result<Snapshot, String> {
    let get = |key: &str| field(json, key).ok_or_else(|| format!("{path}: missing \"{key}\""));
    Ok(Snapshot {
        slow_seconds: get(slow_key)?,
        fast_seconds: get(fast_key)?,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_regression = 0.25f64;
    let mut key_pairs: Vec<(String, String)> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--max-regression" {
            let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                eprintln!("--max-regression needs a fraction (e.g. 0.25)");
                exit(1);
            };
            max_regression = v;
        } else if a == "--keys" {
            let Some((slow, fast)) = it.next().and_then(|v| v.split_once(',')) else {
                eprintln!("--keys needs a pair (e.g. naive_seconds,engine_seconds)");
                exit(1);
            };
            key_pairs.push((slow.trim().to_string(), fast.trim().to_string()));
        } else {
            paths.push(a.clone());
        }
    }
    if key_pairs.is_empty() {
        key_pairs.push(("naive_seconds".into(), "engine_seconds".into()));
    }
    let [fresh_path, committed_path] = paths.as_slice() else {
        eprintln!(
            "usage: bench_diff <fresh.json> <committed.json> \
             [--max-regression 0.25] [--keys slow,fast]..."
        );
        exit(1);
    };

    // The fresh snapshot must exist — the bench producing it just ran,
    // so an unreadable file is a real failure. Read once for all pairs.
    let fresh_json = match std::fs::read_to_string(fresh_path) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("error: cannot read {fresh_path}: {e}");
            exit(1);
        }
    };

    // The committed baseline may legitimately not exist yet (first
    // introduction of a bench series): check once, for every pair.
    let committed_json = match std::fs::read_to_string(committed_path) {
        Ok(json) => Some(json),
        Err(_) => {
            println!(
                "no baseline: {committed_path} is not committed yet — \
                 skipping the diff (commit the fresh snapshot to start guarding)"
            );
            None
        }
    };

    let mut regressed = false;
    for (slow_key, fast_key) in &key_pairs {
        // Every requested series must be present in the fresh snapshot.
        let fresh = match series(&fresh_json, fresh_path, slow_key, fast_key) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: {e}");
                exit(1);
            }
        };
        let Some(committed_json) = &committed_json else {
            continue;
        };
        // A committed snapshot may predate an individual series.
        let committed = match series(committed_json, committed_path, slow_key, fast_key) {
            Ok(c) => c,
            Err(e) => {
                println!(
                    "no baseline for this series ({e}) — \
                     skipping the diff (refresh the committed snapshot to start guarding)"
                );
                continue;
            }
        };

        // Machine-normalized throughput: the fast path's advantage over
        // the slow path measured in the same run.
        let fresh_speedup = fresh.slow_seconds / fresh.fast_seconds;
        let committed_speedup = committed.slow_seconds / committed.fast_seconds;
        let ratio = fresh_speedup / committed_speedup;
        println!(
            "{fast_key}: fresh {fresh_speedup:.1}x over {slow_key}, \
             committed {committed_speedup:.1}x, ratio {ratio:.2}"
        );
        if ratio < 1.0 - max_regression {
            eprintln!(
                "FAIL: {fast_key} speedup regressed by {:.0}% (allowed {:.0}%)",
                (1.0 - ratio) * 100.0,
                max_regression * 100.0
            );
            regressed = true;
        }
    }
    if regressed {
        exit(2);
    }
    if committed_json.is_some() {
        println!(
            "ok: {} series within the {:.0}% regression budget",
            key_pairs.len(),
            max_regression * 100.0
        );
    }
}
