//! Simple undirected graphs with first-class node identifiers.

use crate::{GraphError, NodeId};
use std::collections::HashMap;
use std::fmt;

/// A finite, simple, undirected graph whose nodes carry explicit
/// [`NodeId`] identifiers.
///
/// Nodes are addressed internally by dense indices `0..n` (insertion
/// order); every node additionally has a unique identifier, as required by
/// the LCP model (§2 of the paper). Adjacency lists are kept sorted so all
/// iteration orders are deterministic.
///
/// ```
/// use lcp_graph::{Graph, NodeId};
///
/// # fn main() -> Result<(), lcp_graph::GraphError> {
/// let mut g = Graph::new();
/// let a = g.add_node(NodeId(10))?;
/// let b = g.add_node(NodeId(20))?;
/// g.add_edge(a, b)?;
/// assert_eq!(g.n(), 2);
/// assert_eq!(g.m(), 1);
/// assert!(g.has_edge(a, b));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Graph {
    ids: Vec<NodeId>,
    index: HashMap<NodeId, usize>,
    adj: Vec<Vec<usize>>,
    m: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates an empty graph with room for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        Graph {
            ids: Vec::with_capacity(n),
            index: HashMap::with_capacity(n),
            adj: Vec::with_capacity(n),
            m: 0,
        }
    }

    /// Creates a graph with the given identifiers and no edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateNode`] if an identifier repeats.
    pub fn from_ids<I>(ids: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut g = Graph::new();
        for id in ids {
            g.add_node(id)?;
        }
        Ok(g)
    }

    /// Creates a graph with identifiers `1..=n` and no edges.
    ///
    /// This is the "contiguous identifiers" convention used by most
    /// generators; the LCP model allows any `poly(n)`-bounded identifiers.
    pub fn with_contiguous_ids(n: usize) -> Self {
        Graph::from_ids((1..=n as u64).map(NodeId)).expect("contiguous ids are unique")
    }

    /// Creates a graph from identifiers and identifier pairs.
    ///
    /// # Errors
    ///
    /// Propagates node/edge validation errors ([`GraphError`]).
    pub fn from_edge_ids<I, E>(ids: I, edges: E) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = NodeId>,
        E: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut g = Graph::from_ids(ids)?;
        for (a, b) in edges {
            g.add_edge_ids(a, b)?;
        }
        Ok(g)
    }

    /// Builds the path `ids[0] – ids[1] – … – ids[k-1]`.
    ///
    /// # Errors
    ///
    /// Returns an error when identifiers repeat or fewer than one node is
    /// given.
    pub fn path_with_ids<I>(ids: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut g = Graph::from_ids(ids)?;
        if g.n() == 0 {
            return Err(GraphError::InvalidConstruction(
                "path needs at least 1 node".into(),
            ));
        }
        for u in 1..g.n() {
            g.add_edge(u - 1, u)?;
        }
        Ok(g)
    }

    /// Builds the cycle `ids[0] – ids[1] – … – ids[k-1] – ids[0]`.
    ///
    /// # Errors
    ///
    /// Returns an error when identifiers repeat or fewer than three nodes
    /// are given (simple graphs have no 1- or 2-cycles).
    pub fn cycle_with_ids<I>(ids: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut g = Graph::from_ids(ids)?;
        if g.n() < 3 {
            return Err(GraphError::InvalidConstruction(
                "cycle needs at least 3 nodes".into(),
            ));
        }
        for u in 1..g.n() {
            g.add_edge(u - 1, u)?;
        }
        g.add_edge(g.n() - 1, 0)?;
        Ok(g)
    }

    /// Adds a node with the given identifier and returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateNode`] if the identifier is taken.
    pub fn add_node(&mut self, id: NodeId) -> Result<usize, GraphError> {
        if self.index.contains_key(&id) {
            return Err(GraphError::DuplicateNode(id));
        }
        let idx = self.ids.len();
        self.ids.push(id);
        self.index.insert(id, idx);
        self.adj.push(Vec::new());
        Ok(idx)
    }

    /// Adds the undirected edge `{u, v}` by internal index.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range indices, self-loops, and duplicate edges.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        if u >= self.n() {
            return Err(GraphError::IndexOutOfRange(u));
        }
        if v >= self.n() {
            return Err(GraphError::IndexOutOfRange(v));
        }
        if u == v {
            return Err(GraphError::SelfLoop(self.ids[u]));
        }
        match self.adj[u].binary_search(&v) {
            Ok(_) => return Err(GraphError::DuplicateEdge(self.ids[u], self.ids[v])),
            Err(pos) => self.adj[u].insert(pos, v),
        }
        let pos = self.adj[v]
            .binary_search(&u)
            .expect_err("edge sets must stay symmetric");
        self.adj[v].insert(pos, u);
        self.m += 1;
        Ok(())
    }

    /// Adds the undirected edge `{a, b}` by identifier.
    ///
    /// # Errors
    ///
    /// Rejects unknown identifiers, self-loops, and duplicate edges.
    pub fn add_edge_ids(&mut self, a: NodeId, b: NodeId) -> Result<(), GraphError> {
        let u = self.index_of(a).ok_or(GraphError::UnknownNode(a))?;
        let v = self.index_of(b).ok_or(GraphError::UnknownNode(b))?;
        self.add_edge(u, v)
    }

    /// Removes the undirected edge `{u, v}` by internal index — the
    /// inverse of [`Self::add_edge`], used by dynamic-graph workloads.
    ///
    /// Node indices and identifiers are untouched; only the adjacency
    /// lists shrink (they stay sorted, so iteration orders remain
    /// deterministic).
    ///
    /// # Errors
    ///
    /// Rejects out-of-range indices and edges that are not present
    /// ([`GraphError::UnknownEdge`]).
    pub fn remove_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        if u >= self.n() {
            return Err(GraphError::IndexOutOfRange(u));
        }
        if v >= self.n() {
            return Err(GraphError::IndexOutOfRange(v));
        }
        let Ok(pos_u) = self.adj[u].binary_search(&v) else {
            return Err(GraphError::UnknownEdge(self.ids[u], self.ids[v]));
        };
        self.adj[u].remove(pos_u);
        let pos_v = self.adj[v]
            .binary_search(&u)
            .expect("edge sets must stay symmetric");
        self.adj[v].remove(pos_v);
        self.m -= 1;
        Ok(())
    }

    /// Removes the undirected edge `{a, b}` by identifier.
    ///
    /// # Errors
    ///
    /// Rejects unknown identifiers and absent edges.
    pub fn remove_edge_ids(&mut self, a: NodeId, b: NodeId) -> Result<(), GraphError> {
        let u = self.index_of(a).ok_or(GraphError::UnknownNode(a))?;
        let v = self.index_of(b).ok_or(GraphError::UnknownNode(b))?;
        self.remove_edge(u, v)
    }

    /// Number of nodes, written `n(G)` in the paper.
    pub fn n(&self) -> usize {
        self.ids.len()
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Identifier of the node at index `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn id(&self, u: usize) -> NodeId {
        self.ids[u]
    }

    /// All identifiers, in index order.
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Index of the node carrying identifier `id`, if present.
    pub fn index_of(&self, id: NodeId) -> Option<usize> {
        self.index.get(&id).copied()
    }

    /// Whether some node carries identifier `id`.
    pub fn contains_id(&self, id: NodeId) -> bool {
        self.index.contains_key(&id)
    }

    /// Sorted neighbour indices of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Maximum degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether the edge `{u, v}` is present (by index).
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.n() && v < self.n() && self.adj[u].binary_search(&v).is_ok()
    }

    /// Iterates over all node indices.
    pub fn nodes(&self) -> std::ops::Range<usize> {
        0..self.n()
    }

    /// Iterates over all edges as index pairs `(u, v)` with `u < v`.
    pub fn edges(&self) -> Edges<'_> {
        Edges {
            graph: self,
            u: 0,
            pos: 0,
        }
    }

    /// The subgraph induced by `nodes` (indices into `self`).
    ///
    /// Returns the new graph (which keeps the original identifiers) and the
    /// mapping `new index -> old index`. Duplicate entries in `nodes` are
    /// ignored after the first occurrence.
    pub fn induced(&self, nodes: &[usize]) -> (Graph, Vec<usize>) {
        let mut picked = Vec::new();
        let mut seen = vec![false; self.n()];
        for &u in nodes {
            if u < self.n() && !seen[u] {
                seen[u] = true;
                picked.push(u);
            }
        }
        let mut old_to_new = vec![usize::MAX; self.n()];
        let mut g = Graph::with_capacity(picked.len());
        for (new, &old) in picked.iter().enumerate() {
            old_to_new[old] = new;
            g.add_node(self.ids[old]).expect("ids unique in source");
        }
        for (new_u, &old_u) in picked.iter().enumerate() {
            for &old_v in &self.adj[old_u] {
                let new_v = old_to_new[old_v];
                if new_v != usize::MAX && new_u < new_v {
                    g.add_edge(new_u, new_v).expect("source graph is simple");
                }
            }
        }
        (g, picked)
    }

    /// Re-assigns identifiers through `f`, keeping the structure intact.
    ///
    /// Graph properties are closed under exactly this operation (§2.2), so
    /// tests use it to confirm invariance.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateNode`] if `f` is not injective on the
    /// current identifier set.
    pub fn relabel<F>(&self, mut f: F) -> Result<Graph, GraphError>
    where
        F: FnMut(NodeId) -> NodeId,
    {
        let mut g = Graph::with_capacity(self.n());
        for &id in &self.ids {
            g.add_node(f(id))?;
        }
        for (u, v) in self.edges() {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// The degree sequence in non-increasing order.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut d: Vec<usize> = self.adj.iter().map(Vec::len).collect();
        d.sort_unstable_by(|a, b| b.cmp(a));
        d
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={}; ", self.n(), self.m())?;
        let edges: Vec<String> = self
            .edges()
            .map(|(u, v)| format!("{}-{}", self.ids[u], self.ids[v]))
            .collect();
        write!(f, "[{}])", edges.join(", "))
    }
}

/// Iterator over the edges of a [`Graph`]; see [`Graph::edges`].
#[derive(Debug)]
pub struct Edges<'a> {
    graph: &'a Graph,
    u: usize,
    pos: usize,
}

impl Iterator for Edges<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        while self.u < self.graph.n() {
            let nbrs = &self.graph.adj[self.u];
            while self.pos < nbrs.len() {
                let v = nbrs[self.pos];
                self.pos += 1;
                if v > self.u {
                    return Some((self.u, v));
                }
            }
            self.u += 1;
            self.pos = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::cycle_with_ids([NodeId(1), NodeId(2), NodeId(3)]).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert!(g.is_empty());
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn build_triangle() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(0, 2));
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn duplicate_node_rejected() {
        let mut g = Graph::new();
        g.add_node(NodeId(5)).unwrap();
        assert_eq!(
            g.add_node(NodeId(5)),
            Err(GraphError::DuplicateNode(NodeId(5)))
        );
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Graph::from_ids([NodeId(1)]).unwrap();
        assert_eq!(g.add_edge(0, 0), Err(GraphError::SelfLoop(NodeId(1))));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = Graph::from_ids([NodeId(1), NodeId(2)]).unwrap();
        g.add_edge(0, 1).unwrap();
        assert_eq!(
            g.add_edge(1, 0),
            Err(GraphError::DuplicateEdge(NodeId(2), NodeId(1)))
        );
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let mut g = Graph::from_ids([NodeId(1)]).unwrap();
        assert_eq!(g.add_edge(0, 3), Err(GraphError::IndexOutOfRange(3)));
        assert_eq!(g.add_edge(9, 0), Err(GraphError::IndexOutOfRange(9)));
    }

    #[test]
    fn unknown_id_edge_rejected() {
        let mut g = Graph::from_ids([NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(
            g.add_edge_ids(NodeId(1), NodeId(9)),
            Err(GraphError::UnknownNode(NodeId(9)))
        );
    }

    #[test]
    fn remove_edge_is_the_inverse_of_add_edge() {
        let mut g = triangle();
        g.remove_edge(0, 2).unwrap();
        assert_eq!(g.m(), 2);
        assert!(!g.has_edge(0, 2) && !g.has_edge(2, 0));
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2));
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[1]);
        // Re-adding restores the original graph exactly.
        g.add_edge(0, 2).unwrap();
        assert_eq!(g, triangle());
    }

    #[test]
    fn remove_missing_edge_rejected() {
        let mut g = Graph::path_with_ids((1..=3).map(NodeId)).unwrap();
        assert_eq!(
            g.remove_edge(0, 2),
            Err(GraphError::UnknownEdge(NodeId(1), NodeId(3)))
        );
        assert_eq!(g.remove_edge(0, 9), Err(GraphError::IndexOutOfRange(9)));
        assert_eq!(g.remove_edge(7, 0), Err(GraphError::IndexOutOfRange(7)));
        assert_eq!(g.m(), 2, "failed removals leave the graph intact");
    }

    #[test]
    fn remove_edge_by_ids() {
        let mut g = triangle();
        g.remove_edge_ids(NodeId(2), NodeId(1)).unwrap();
        assert!(!g.has_edge(0, 1));
        assert_eq!(
            g.remove_edge_ids(NodeId(2), NodeId(9)),
            Err(GraphError::UnknownNode(NodeId(9)))
        );
    }

    #[test]
    fn adjacency_is_sorted() {
        let mut g = Graph::from_ids((1..=5).map(NodeId)).unwrap();
        g.add_edge(0, 4).unwrap();
        g.add_edge(0, 2).unwrap();
        g.add_edge(0, 1).unwrap();
        g.add_edge(0, 3).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn id_index_roundtrip() {
        let g = triangle();
        for u in g.nodes() {
            assert_eq!(g.index_of(g.id(u)), Some(u));
        }
        assert_eq!(g.index_of(NodeId(99)), None);
        assert!(g.contains_id(NodeId(2)));
        assert!(!g.contains_id(NodeId(4)));
    }

    #[test]
    fn induced_subgraph_keeps_ids_and_edges() {
        // Path 1-2-3-4 plus chord 1-3.
        let mut g = Graph::path_with_ids((1..=4).map(NodeId)).unwrap();
        g.add_edge(0, 2).unwrap();
        let (h, map) = g.induced(&[0, 2, 3]);
        assert_eq!(h.n(), 3);
        assert_eq!(map, vec![0, 2, 3]);
        assert_eq!(h.ids(), &[NodeId(1), NodeId(3), NodeId(4)]);
        // Edges 1-3 (chord) and 3-4 survive; 1-2 and 2-3 drop out.
        assert_eq!(h.m(), 2);
        assert!(h.has_edge(0, 1));
        assert!(h.has_edge(1, 2));
        assert!(!h.has_edge(0, 2));
    }

    #[test]
    fn induced_ignores_duplicates_and_out_of_range() {
        let g = triangle();
        let (h, map) = g.induced(&[1, 1, 2, 7]);
        assert_eq!(h.n(), 2);
        assert_eq!(map, vec![1, 2]);
        assert_eq!(h.m(), 1);
    }

    #[test]
    fn relabel_keeps_structure() {
        let g = triangle();
        let h = g.relabel(|id| NodeId(id.0 * 10)).unwrap();
        assert_eq!(h.ids(), &[NodeId(10), NodeId(20), NodeId(30)]);
        assert_eq!(h.m(), 3);
        assert!(h.has_edge(0, 1));
    }

    #[test]
    fn relabel_rejects_collisions() {
        let g = triangle();
        assert!(g.relabel(|_| NodeId(7)).is_err());
    }

    #[test]
    fn cycle_too_small_rejected() {
        assert!(Graph::cycle_with_ids([NodeId(1), NodeId(2)]).is_err());
        assert!(Graph::path_with_ids(std::iter::empty()).is_err());
    }

    #[test]
    fn degree_sequence_sorted() {
        let mut g = Graph::path_with_ids((1..=4).map(NodeId)).unwrap();
        g.add_edge(0, 2).unwrap();
        assert_eq!(g.degree_sequence(), vec![3, 2, 2, 1]);
    }

    #[test]
    fn debug_output_mentions_edges() {
        let g = triangle();
        let s = format!("{g:?}");
        assert!(s.contains("n=3"));
        assert!(s.contains("1-2"));
    }

    #[test]
    fn with_contiguous_ids_starts_at_one() {
        let g = Graph::with_contiguous_ids(4);
        assert_eq!(g.ids(), &[NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
    }
}
