//! Cross-crate integration: schemes running on the distributed simulator,
//! adapters composing across crates, and full Table-1-style sweeps
//! through the public facade.

use lcp::core::engine::prepare_sweep;
use lcp::core::harness::{check_completeness, classify_growth, measure_sizes, GrowthClass};
use lcp::core::{evaluate, Instance, Proof, Scheme};
use lcp::graph::{generators, Graph, NodeId};
use lcp::schemes::bipartite::Bipartite;
use lcp::schemes::chromatic::NonBipartite;
use lcp::schemes::complement::Complement;
use lcp::schemes::eulerian::Eulerian;
use lcp::schemes::leader::LeaderElection;
use lcp::schemes::spanning_tree::SpanningTree;
use lcp::sim::run_distributed;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every scheme's verdict must be identical under centralized view
/// extraction and under the message-passing simulator.
#[test]
fn distributed_equals_centralized_across_schemes() {
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..5 {
        let g = generators::random_connected(14, 9, &mut rng);
        // Unlabeled schemes.
        let inst = Instance::unlabeled(g.clone());
        for_scheme_check(&Eulerian, &inst);
        for_scheme_check(&NonBipartite, &inst);
        // Leader election.
        let leader_inst = Instance::with_node_data(g.clone(), (0..g.n()).map(|v| v == 0).collect());
        for_scheme_check(&LeaderElection, &leader_inst);
    }
}

fn for_scheme_check<S: Scheme>(scheme: &S, inst: &Instance<S::Node, S::Edge>) {
    let proof = scheme.prove(inst).unwrap_or_else(|| Proof::empty(inst.n()));
    let central = evaluate(scheme, inst, &proof);
    let (distributed, _) = run_distributed(scheme, inst, &proof);
    assert_eq!(central, distributed, "{} diverged", scheme.name());
}

/// The §7.3 complement adapter composes with any LCP(0) scheme and the
/// result still runs distributively.
#[test]
fn complement_adapter_runs_distributed() {
    let scheme = Complement::new(Eulerian);
    let inst = Instance::unlabeled(generators::path(9)); // not Eulerian
    let proof = scheme.prove(&inst).expect("complement provable");
    let (verdict, stats) = run_distributed(&scheme, &inst, &proof);
    assert!(verdict.accepted());
    assert_eq!(stats.rounds, 1);
}

/// Proof-size growth classes across the hierarchy, measured through the
/// facade: 0 vs Θ(1) vs Θ(log n) vs Θ(n²) — Table 1's skeleton.
#[test]
fn hierarchy_separation_in_one_sweep() {
    // LCP(0): Eulerian.
    let eul: Vec<Instance> = [8usize, 32, 128]
        .iter()
        .map(|&n| Instance::unlabeled(generators::cycle(n)))
        .collect();
    assert_eq!(
        classify_growth(&measure_sizes(&Eulerian, &prepare_sweep(&Eulerian, &eul))),
        GrowthClass::Zero
    );
    // LCP(1): bipartiteness.
    let bip: Vec<Instance> = [8usize, 32, 128, 512]
        .iter()
        .map(|&n| Instance::unlabeled(generators::cycle(n)))
        .collect();
    assert_eq!(
        classify_growth(&measure_sizes(&Bipartite, &prepare_sweep(&Bipartite, &bip))),
        GrowthClass::Constant
    );
    // LogLCP: non-bipartiteness.
    let nonbip: Vec<Instance> = [9usize, 17, 33, 65, 129, 257]
        .iter()
        .map(|&n| Instance::unlabeled(generators::cycle(n)))
        .collect();
    assert_eq!(
        classify_growth(&measure_sizes(
            &NonBipartite,
            &prepare_sweep(&NonBipartite, &nonbip)
        )),
        GrowthClass::Logarithmic
    );
    // LCP(poly): the universal scheme.
    let uni = lcp::schemes::universal::prime_order();
    let primes: Vec<Instance> = [5usize, 11, 23, 47]
        .iter()
        .map(|&n| Instance::unlabeled(generators::cycle(n)))
        .collect();
    assert_eq!(
        classify_growth(&measure_sizes(&uni, &prepare_sweep(&uni, &primes))),
        GrowthClass::Quadratic
    );
}

/// Spanning-tree certificates survive identifier re-assignment (graph
/// properties are closed under it, §2.2).
#[test]
fn schemes_are_identifier_invariant() {
    let mut rng = StdRng::seed_from_u64(123);
    let g = generators::random_connected(12, 6, &mut rng);
    let relabeled = g.relabel(|id| NodeId(id.0 * 31 + 7)).unwrap();
    for graph in [g, relabeled] {
        let tree = lcp::graph::spanning::bfs_spanning_tree(&graph, 0);
        let edges = tree.edges();
        let inst = Instance::unlabeled(graph).with_edge_set(edges.iter().map(|&(c, p)| (c, p)));
        let prepared = prepare_sweep(&SpanningTree, std::slice::from_ref(&inst));
        check_completeness(&SpanningTree, &prepared).unwrap();
    }
}

/// The §7.1 DFS-interval machinery validates against real graphs through
/// the facade.
#[test]
fn port_numbering_translation_machinery() {
    let mut rng = StdRng::seed_from_u64(5);
    let g = generators::random_connected(15, 10, &mut rng);
    let tree = lcp::graph::spanning::bfs_spanning_tree(&g, 3);
    let labels = lcp::sim::dfs_interval_labels(&g, &tree);
    assert!(lcp::sim::verify_dfs_intervals(&tree, &labels).is_empty());
    // Generated identifiers are globally unique.
    let ids: std::collections::HashSet<_> = labels
        .iter()
        .map(|&(x, y)| lcp::sim::port::interval_to_id(x, y, g.n()))
        .collect();
    assert_eq!(ids.len(), g.n());
}

/// A broken-by-construction scheme is caught by the completeness sweep —
/// the harness guards the guards.
#[test]
fn harness_catches_a_broken_scheme() {
    struct Broken;
    impl Scheme for Broken {
        type Node = ();
        type Edge = ();
        fn name(&self) -> String {
            "broken".into()
        }
        fn radius(&self) -> usize {
            0
        }
        fn holds(&self, _: &Instance) -> bool {
            true
        }
        fn prove(&self, inst: &Instance) -> Option<Proof> {
            Some(Proof::empty(inst.n()))
        }
        fn verify(&self, view: &lcp::core::View) -> bool {
            view.id(view.center()).0.is_multiple_of(2) // rejects odd identifiers
        }
    }
    let inst = Instance::unlabeled(generators::path(3));
    let instances = [inst];
    let result = check_completeness(&Broken, &prepare_sweep(&Broken, &instances));
    assert!(result.is_err());
}

/// Universal scheme certifies an exotic "computable property" (§6): the
/// node count is a perfect square.
#[test]
fn universal_scheme_handles_arbitrary_decidable_properties() {
    let square = lcp::schemes::universal::Universal::new("square-n", |g: &Graph| {
        let n = g.n();
        (0..=n).any(|k| k * k == n)
    });
    let yes = Instance::unlabeled(generators::grid(3, 3)); // n = 9
    let proof = square.prove(&yes).unwrap();
    assert!(evaluate(&square, &yes, &proof).accepted());
    let no = Instance::unlabeled(generators::grid(2, 5)); // n = 10
    assert!(square.prove(&no).is_none());
}
