//! The shard-determinism contract: partitioning the campaign matrix with
//! `--shard i/N` and merging the N reports yields **byte-identical**
//! output to the unsharded run (modulo timing, which the deterministic
//! JSON form excludes) — for the static and the churn campaign alike.
//!
//! This is what lets CI fan a campaign out across runners and still diff
//! the merged artifact against any single-process run of the same seed.

use lcp_conformance::churn::run_churn_campaign;
use lcp_conformance::merge::merge_reports;
use lcp_conformance::{run_campaign, CampaignConfig, Profile, Shard};
use lcp_graph::families::GraphFamily;

/// Small but representative: every scheme, two sizes, both polarities.
fn config(seed: u64, shard: Option<Shard>) -> CampaignConfig {
    CampaignConfig {
        sizes: vec![6, 10],
        tamper_trials: 4,
        adversarial_iterations: 120,
        exhaustive_limit: 20_000,
        shard,
        ..CampaignConfig::for_profile(Profile::Smoke, seed)
    }
}

fn static_shards(seed: u64, count: usize) -> Vec<(String, String)> {
    (0..count)
        .map(|index| {
            let report = run_campaign(&config(seed, Some(Shard { index, count })));
            (format!("shard-{index}.json"), report.to_json(false))
        })
        .collect()
}

fn churn_shards(seed: u64, count: usize, steps: usize) -> Vec<(String, String)> {
    (0..count)
        .map(|index| {
            let report = run_churn_campaign(&config(seed, Some(Shard { index, count })), steps);
            (format!("churn-shard-{index}.json"), report.to_json(false))
        })
        .collect()
}

#[test]
fn static_shard_union_is_byte_identical_for_two_and_four_shards() {
    let whole = run_campaign(&config(7, None));
    let whole_json = whole.to_json(false);
    for count in [2, 4] {
        let shards = static_shards(7, count);
        // The shards genuinely partition the matrix...
        let merged = merge_reports(&shards).expect("valid shard set");
        assert_eq!(merged.cell_count(), whole.cell_count(), "N={count}");
        // ...and reassemble to the exact unsharded bytes.
        assert_eq!(merged.to_json(), whole_json, "N={count}");
    }
}

#[test]
fn churn_shard_union_is_byte_identical_for_two_and_four_shards() {
    let steps = 8;
    let whole = run_churn_campaign(&config(7, None), steps).to_json(false);
    for count in [2, 4] {
        let merged = merge_reports(&churn_shards(7, count, steps)).expect("valid shard set");
        assert_eq!(merged.to_json(), whole, "N={count}");
    }
}

#[test]
fn empty_shards_merge_cleanly() {
    // One scheme on one family at one size = exactly two matrix cells
    // (yes + no), so sharding 4 ways leaves two shards with no cells at
    // all — their reports still carry the scheme list and must merge.
    let tiny = |shard| CampaignConfig {
        sizes: vec![8],
        scheme_filter: Some("bipartite".into()),
        family_filter: Some(GraphFamily::Cycle),
        shard,
        ..config(7, shard)
    };
    let whole = run_campaign(&tiny(None));
    assert_eq!(whole.cell_count(), 2, "premise: two cells");
    let shards: Vec<(String, String)> = (0..4)
        .map(|index| {
            let report = run_campaign(&tiny(Some(Shard { index, count: 4 })));
            (format!("shard-{index}.json"), report.to_json(false))
        })
        .collect();
    let empty = shards
        .iter()
        .filter(|(_, json)| json.contains("\"summary\": { \"cells\": 0"))
        .count();
    assert_eq!(empty, 2, "premise: two empty shards");
    let merged = merge_reports(&shards).expect("empty shards are valid");
    assert_eq!(merged.to_json(), whole.to_json(false));
}

#[test]
fn shard_reports_carry_their_shard_header_and_global_coords() {
    let count = 3;
    let report = run_campaign(&config(7, Some(Shard { index: 1, count })));
    let json = report.to_json(false);
    assert!(json.contains("\"shard\": { \"index\": 1, \"count\": 3 },"));
    // Every cell's global coordinate belongs to this shard.
    for s in &report.schemes {
        for c in &s.cells {
            assert_eq!(c.coord % count, 1, "cell {} leaked into shard 1", c.coord);
        }
    }
    // The unsharded report has no shard header.
    let whole = run_campaign(&config(7, None)).to_json(false);
    assert!(!whole.contains("\"shard\""));
}

#[test]
fn shard_parse_round_trips_and_rejects_nonsense() {
    let s = Shard::parse("2/4").unwrap();
    assert_eq!((s.index, s.count), (2, 4));
    assert_eq!(s.to_string(), "2/4");
    for bad in ["4/4", "5/4", "x/4", "2/", "/4", "2", "", "2/0"] {
        assert!(Shard::parse(bad).is_none(), "accepted {bad:?}");
    }
}
