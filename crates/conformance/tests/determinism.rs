//! The campaign's reproducibility contract: the same configuration
//! yields a byte-identical JSON report (modulo timing fields), across
//! runs and thread schedules — what lets CI diff reports between
//! commits and lets a failure be replayed from its seed alone.

use lcp_conformance::{run_campaign, CampaignConfig, CellStatus, Profile};

/// Small but representative: every scheme, two sizes, both polarities.
fn config(seed: u64) -> CampaignConfig {
    CampaignConfig {
        sizes: vec![6, 10],
        tamper_trials: 4,
        adversarial_iterations: 120,
        exhaustive_limit: 20_000,
        ..CampaignConfig::for_profile(Profile::Smoke, seed)
    }
}

#[test]
fn same_seed_same_report_bytes() {
    let a = run_campaign(&config(7)).to_json(false);
    let b = run_campaign(&config(7)).to_json(false);
    assert_eq!(a, b, "same seed must reproduce the report byte-for-byte");
}

#[test]
fn different_seeds_differ_only_in_seeded_content() {
    let a = run_campaign(&config(7));
    let b = run_campaign(&config(8));
    // Matrix shape is seed-independent...
    assert_eq!(a.cell_count(), b.cell_count());
    assert_eq!(a.schemes.len(), b.schemes.len());
    // ...and both campaigns stay green on the honest schemes.
    assert!(a.ok(), "seed 7 failures: {:?}", a.failures());
    assert!(b.ok(), "seed 8 failures: {:?}", b.failures());
}

#[test]
fn filtered_replay_reproduces_the_full_campaign_cells() {
    // A CI failure names (scheme, family, n, polarity, seed); replaying
    // with --scheme must rebuild the *same* instances. Cell seeds are
    // keyed on the stable scheme id, never its registry position.
    let full = run_campaign(&config(7));
    let filtered = run_campaign(&CampaignConfig {
        scheme_filter: Some("spanning-tree".into()),
        ..config(7)
    });
    let from_full = full
        .schemes
        .iter()
        .find(|s| s.id == "spanning-tree")
        .expect("registered");
    let from_filtered = &filtered.schemes[0];
    assert_eq!(from_full.cells.len(), from_filtered.cells.len());
    for (a, b) in from_full.cells.iter().zip(&from_filtered.cells) {
        assert_eq!(
            (a.n, a.holds, a.status, a.proof_bits, a.witness_node),
            (b.n, b.holds, b.status, b.proof_bits, b.witness_node),
            "cell {}/{}/{} drifted under --scheme filtering",
            a.family.name(),
            a.requested_n,
            a.polarity.name()
        );
    }
}

#[test]
fn every_scheme_passes_on_at_least_three_families() {
    let report = run_campaign(&config(7));
    for s in &report.schemes {
        let mut families: Vec<&str> = s
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::Pass)
            .map(|c| c.family.name())
            .collect();
        families.sort_unstable();
        families.dedup();
        assert!(
            families.len() >= 3,
            "{} passed on only {:?}",
            s.id,
            families
        );
    }
}
