//! Weak proof labelling schemes (§7.2).
//!
//! For graph *problems* the paper distinguishes:
//!
//! * **strong** schemes — the adversary picks the input *and* the
//!   solution, the prover must certify it (our labelled schemes:
//!   [`crate::leader::LeaderElection`], [`crate::spanning_tree::SpanningTree`],
//!   …, all tested against adversarial solutions);
//! * **weak** schemes — the adversary picks the input, the *prover*
//!   picks a convenient solution and encodes it in the proof.
//!
//! §7.2 observes that for the problems studied here the two cost the
//! same `Θ(log n)`; this module provides the weak variant of leader
//! election so the claim is executable: the solution (who leads) lives
//! entirely inside the proof, and the §5.4 lower-bound argument still
//! applies because the gluing attack inherits proofs — and with them the
//! encoded solutions — from the donors.

use lcp_core::components::TreeCert;
use lcp_core::{BitReader, BitWriter, Instance, Proof, Scheme, View};
use lcp_graph::traversal;

/// Weak leader election: the input carries no labels; the proof itself
/// designates the leader (the root of its spanning-tree certificate) and
/// certifies uniqueness.
///
/// Soundness statement (weak form): any proof accepted by every node
/// decodes — via [`WeakLeaderElection::decode_leaders`] — to exactly one
/// leader per connected component; under the connectedness promise,
/// exactly one leader.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WeakLeaderElection;

impl WeakLeaderElection {
    /// Reads the solution out of a proof: the nodes claiming distance 0.
    pub fn decode_leaders(proof: &Proof) -> Vec<usize> {
        (0..proof.n())
            .filter(|&v| {
                let mut r = BitReader::new(proof.get(v));
                TreeCert::decode(&mut r).is_ok_and(|c| c.dist == 0)
            })
            .collect()
    }
}

impl Scheme for WeakLeaderElection {
    type Node = ();
    type Edge = ();

    fn name(&self) -> String {
        "weak-leader-election".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance) -> bool {
        // Weak problems: a certifiable solution exists iff the instance
        // is in the family (some node can always be elected).
        inst.n() > 0 && traversal::is_connected(inst.graph())
    }

    fn prove(&self, inst: &Instance) -> Option<Proof> {
        if !self.holds(inst) {
            return None;
        }
        // The prover's privilege: pick the most convenient solution —
        // the smallest-identifier node.
        let g = inst.graph();
        let leader = g.nodes().min_by_key(|&v| g.id(v)).expect("nonempty");
        let tree = lcp_graph::spanning::bfs_spanning_tree(g, leader);
        let certs = TreeCert::prove(g, &tree);
        Some(Proof::from_fn(g.n(), |v| {
            let mut w = BitWriter::new();
            certs[v].encode(&mut w);
            w.finish()
        }))
    }

    fn verify(&self, view: &View) -> bool {
        TreeCert::verify_at_center(view, |u| {
            let mut r = BitReader::new(view.proof(u));
            let c = TreeCert::decode(&mut r).ok()?;
            r.is_exhausted().then_some(c)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::evaluate;
    use lcp_core::harness::all_bitstrings_up_to;
    use lcp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prover_chooses_and_certifies_a_leader() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..6 {
            let g = generators::random_connected(12, 8, &mut rng);
            let inst = Instance::unlabeled(g);
            let proof = WeakLeaderElection.prove(&inst).unwrap();
            assert!(evaluate(&WeakLeaderElection, &inst, &proof).accepted());
            let leaders = WeakLeaderElection::decode_leaders(&proof);
            assert_eq!(leaders.len(), 1, "weak scheme elects exactly one");
        }
    }

    #[test]
    fn weak_soundness_every_accepted_proof_has_one_leader() {
        // Exhaustively on P2 up to 10 bits per node. The verifier rejects
        // any node whose string does not decode cleanly to a TreeCert, so
        // restricting the enumeration to decodable strings loses nothing
        // — and makes the exhaustive check instant.
        let inst = Instance::unlabeled(generators::path(2));
        let decodable: Vec<_> = all_bitstrings_up_to(10)
            .expect("10-bit table is in budget")
            .into_iter()
            .filter(|s| {
                let mut r = BitReader::new(s);
                TreeCert::decode(&mut r).is_ok() && r.is_exhausted()
            })
            .collect();
        assert!(decodable.len() > 10, "enough certificate shapes to try");
        let mut accepted = 0u32;
        for a in &decodable {
            for b in &decodable {
                let proof = Proof::from_strings(vec![a.clone(), b.clone()]);
                if evaluate(&WeakLeaderElection, &inst, &proof).accepted() {
                    accepted += 1;
                    assert_eq!(
                        WeakLeaderElection::decode_leaders(&proof).len(),
                        1,
                        "accepted proof with ≠1 leader: {proof:?}"
                    );
                }
            }
        }
        assert!(accepted > 0, "some proof should be accepted");
    }

    #[test]
    fn weak_and_strong_sizes_match_within_constants() {
        // §7.2: the weak scheme saves no more than a constant factor.
        use crate::leader::LeaderElection;
        for n in [8usize, 64, 512] {
            let g = generators::cycle(n);
            let weak = WeakLeaderElection
                .prove(&Instance::unlabeled(g.clone()))
                .unwrap()
                .size();
            let labels: Vec<bool> = (0..n).map(|v| v == 0).collect();
            let strong = LeaderElection
                .prove(&Instance::with_node_data(g, labels))
                .unwrap()
                .size();
            assert!(
                weak <= strong + 2 && strong <= weak + 2,
                "n={n}: {weak} vs {strong}"
            );
        }
    }

    #[test]
    fn disconnected_input_is_outside_the_family() {
        let g = lcp_graph::ops::disjoint_union(
            &generators::cycle(3),
            &lcp_graph::ops::shift_ids(&generators::cycle(3), 10),
        )
        .unwrap();
        let inst = Instance::unlabeled(g);
        assert!(!WeakLeaderElection.holds(&inst));
    }
}
