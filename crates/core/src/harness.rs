//! Conformance harness: turning the model's quantifiers into executable
//! checks.
//!
//! * `∀` yes-instances, the honest proof is accepted — [`check_completeness`].
//! * `∀` proofs of a no-instance, some node rejects — decided exactly by
//!   [`check_soundness_exhaustive`] on small instances, and attacked
//!   heuristically by [`adversarial_proof_search`] on larger ones.
//! * The "Proof size s" column of Table 1 — [`measure_sizes`] +
//!   [`classify_growth`].

use crate::bits::BitString;
use crate::instance::Instance;
use crate::proof::Proof;
use crate::scheme::{evaluate, Scheme};
use rand::rngs::StdRng;
use rand::RngExt;
use std::fmt;

/// A completeness violation: a yes-instance the scheme failed on.
#[derive(Clone, Debug)]
pub struct CompletenessFailure {
    /// Index of the failing instance in the input slice.
    pub instance: usize,
    /// What went wrong.
    pub reason: CompletenessError,
}

/// Ways completeness can fail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompletenessError {
    /// The prover returned `None` although `holds` is true.
    ProverRefused,
    /// The honest proof was rejected by the listed nodes.
    Rejected(Vec<usize>),
    /// The prover labelled a no-instance (`holds` is false) with a proof
    /// that all nodes accepted — a soundness smell surfaced during a
    /// completeness sweep.
    AcceptedNoInstance,
}

impl fmt::Display for CompletenessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompletenessError::ProverRefused => write!(f, "prover refused a yes-instance"),
            CompletenessError::Rejected(nodes) => {
                write!(f, "honest proof rejected at nodes {nodes:?}")
            }
            CompletenessError::AcceptedNoInstance => {
                write!(f, "a no-instance was fully accepted")
            }
        }
    }
}

/// Sweeps instances: yes-instances must be provable and accepted;
/// no-instances, if the prover emits anything, must not be fully accepted.
///
/// Returns the per-instance proof sizes of the yes-instances on success.
///
/// # Errors
///
/// The first [`CompletenessFailure`] encountered.
pub fn check_completeness<S: Scheme>(
    scheme: &S,
    instances: &[Instance<S::Node, S::Edge>],
) -> Result<Vec<usize>, CompletenessFailure> {
    let mut sizes = Vec::new();
    for (i, inst) in instances.iter().enumerate() {
        let truth = scheme.holds(inst);
        match (truth, scheme.prove(inst)) {
            (true, None) => {
                return Err(CompletenessFailure {
                    instance: i,
                    reason: CompletenessError::ProverRefused,
                })
            }
            (true, Some(proof)) => {
                let verdict = evaluate(scheme, inst, &proof);
                if !verdict.accepted() {
                    return Err(CompletenessFailure {
                        instance: i,
                        reason: CompletenessError::Rejected(verdict.rejecting()),
                    });
                }
                sizes.push(proof.size());
            }
            (false, Some(proof)) => {
                if evaluate(scheme, inst, &proof).accepted() {
                    return Err(CompletenessFailure {
                        instance: i,
                        reason: CompletenessError::AcceptedNoInstance,
                    });
                }
            }
            (false, None) => {}
        }
    }
    Ok(sizes)
}

/// All bit strings with at most `max_bits` bits, shortest first
/// (`2^(max_bits+1) − 1` strings).
pub fn all_bitstrings_up_to(max_bits: usize) -> Vec<BitString> {
    let mut out = vec![BitString::new()];
    for len in 1..=max_bits {
        for value in 0u64..(1 << len) {
            out.push(BitString::from_bits(
                (0..len).rev().map(|i| value >> i & 1 == 1),
            ));
        }
    }
    out
}

/// Outcome of an exhaustive soundness check on one no-instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Soundness {
    /// Every proof up to the size bound was rejected by some node;
    /// carries the number of proofs enumerated.
    Holds(u64),
    /// A fully-accepted proof for the no-instance — a genuine violation.
    Violated(Proof),
}

/// Exhaustively enumerates **every** proof of size ≤ `max_bits` on a
/// no-instance and checks that each is rejected somewhere.
///
/// The search space has `(2^(max_bits+1) − 1)^n` proofs, so keep
/// `n · max_bits` small (the point is to decide the `∀ P` quantifier
/// *exactly* on small instances).
///
/// # Panics
///
/// Panics if `inst` is a yes-instance (soundness is about no-instances)
/// or if the search space exceeds `10^8` proofs.
pub fn check_soundness_exhaustive<S: Scheme>(
    scheme: &S,
    inst: &Instance<S::Node, S::Edge>,
    max_bits: usize,
) -> Soundness {
    assert!(
        !scheme.holds(inst),
        "exhaustive soundness check requires a no-instance"
    );
    let n = inst.n();
    let strings = all_bitstrings_up_to(max_bits);
    let space = (strings.len() as f64).powi(n as i32);
    assert!(
        space <= 1e8,
        "search space of {space:.1e} proofs is too large; shrink n or max_bits"
    );
    let mut indices = vec![0usize; n];
    let mut tried = 0u64;
    loop {
        let proof = Proof::from_strings(indices.iter().map(|&i| strings[i].clone()).collect());
        tried += 1;
        if evaluate(scheme, inst, &proof).accepted() {
            return Soundness::Violated(proof);
        }
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == n {
                return Soundness::Holds(tried);
            }
            indices[pos] += 1;
            if indices[pos] < strings.len() {
                break;
            }
            indices[pos] = 0;
            pos += 1;
        }
    }
}

/// A uniformly random proof: each node gets `max_bits` random bits.
pub fn random_proof(n: usize, max_bits: usize, rng: &mut StdRng) -> Proof {
    Proof::from_fn(n, |_| {
        BitString::from_bits((0..max_bits).map(|_| rng.random_bool(0.5)))
    })
}

/// Randomized adversarial proof search on a no-instance: hill-climbs the
/// number of accepting nodes by flipping random bits, restarting from
/// random proofs.
///
/// Returns a fully-accepted proof (a soundness violation for the given
/// size budget) if one is found within `iterations` verifier sweeps.
/// Finding `None` is *evidence*, not proof, of soundness — use
/// [`check_soundness_exhaustive`] for certainty on small instances.
///
/// # Panics
///
/// Panics if `inst` is a yes-instance.
pub fn adversarial_proof_search<S: Scheme>(
    scheme: &S,
    inst: &Instance<S::Node, S::Edge>,
    size_budget: usize,
    iterations: usize,
    rng: &mut StdRng,
) -> Option<Proof> {
    assert!(
        !scheme.holds(inst),
        "adversarial search requires a no-instance"
    );
    let n = inst.n();
    if n == 0 {
        return None;
    }
    let score = |p: &Proof| -> usize {
        evaluate(scheme, inst, p)
            .outputs()
            .iter()
            .filter(|&&b| b)
            .count()
    };
    let mut current = random_proof(n, size_budget, rng);
    let mut current_score = score(&current);
    for iter in 0..iterations {
        if current_score == n {
            return Some(current);
        }
        // Occasional restart to escape local optima.
        if iter % 200 == 199 {
            current = random_proof(n, size_budget, rng);
            current_score = score(&current);
            continue;
        }
        let mut candidate = current.clone();
        let v = rng.random_range(0..n);
        if size_budget == 0 {
            continue;
        }
        let mut s = candidate.get(v).clone();
        if s.is_empty() {
            s = BitString::from_bits((0..size_budget).map(|_| rng.random_bool(0.5)));
        } else {
            let idx = rng.random_range(0..s.len());
            s.flip(idx);
        }
        candidate.set(v, s);
        let cand_score = score(&candidate);
        if cand_score >= current_score {
            current = candidate;
            current_score = cand_score;
        }
    }
    (current_score == n).then_some(current)
}

/// One measured point of the "Proof size s" column: instance size vs.
/// honest proof size in bits per node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizePoint {
    /// `n(G)` of the instance.
    pub n: usize,
    /// `|P|` of the honest proof.
    pub bits: usize,
}

/// Proves every (yes-)instance and records `(n, |P|)` points.
///
/// # Panics
///
/// Panics if the prover refuses an instance — callers feed yes-instances.
pub fn measure_sizes<S: Scheme>(
    scheme: &S,
    instances: &[Instance<S::Node, S::Edge>],
) -> Vec<SizePoint> {
    instances
        .iter()
        .map(|inst| {
            let proof = scheme
                .prove(inst)
                .unwrap_or_else(|| panic!("{} refused an instance", scheme.name()));
            SizePoint {
                n: inst.n(),
                bits: proof.size(),
            }
        })
        .collect()
}

/// Growth classes used to compare measured proof sizes against the
/// paper's asymptotic claims.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrowthClass {
    /// Identically zero — `LCP(0)`.
    Zero,
    /// Bounded — `LCP(O(1))`.
    Constant,
    /// `Θ(log n)` — `LogLCP`.
    Logarithmic,
    /// `Θ(n)`.
    Linear,
    /// `Θ(n²)` (the `n²/log n` lower bound also lands here at feasible n).
    Quadratic,
}

impl fmt::Display for GrowthClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GrowthClass::Zero => "0",
            GrowthClass::Constant => "Θ(1)",
            GrowthClass::Logarithmic => "Θ(log n)",
            GrowthClass::Linear => "Θ(n)",
            GrowthClass::Quadratic => "Θ(n²)",
        };
        write!(f, "{s}")
    }
}

/// Fits measured `(n, bits)` points against candidate growth shapes by
/// least squares and returns the best-fitting class.
///
/// The classification is deliberately coarse — it reproduces the *shape*
/// claims of Table 1, not constants. Points should span at least a factor
/// of 4 in `n` for the classes to separate.
pub fn classify_growth(points: &[SizePoint]) -> GrowthClass {
    assert!(!points.is_empty(), "need at least one measurement");
    if points.iter().all(|p| p.bits == 0) {
        return GrowthClass::Zero;
    }
    let lo = points.iter().map(|p| p.bits).min().expect("nonempty");
    let hi = points.iter().map(|p| p.bits).max().expect("nonempty");
    if hi <= lo.max(1) * 2 && hi.saturating_sub(lo) <= 3 {
        return GrowthClass::Constant;
    }
    // Least-squares fit bits ≈ a · f(n) + b for each candidate f; compare
    // residuals (normalized by total variance).
    let candidates: [(GrowthClass, fn(f64) -> f64); 4] = [
        (GrowthClass::Logarithmic, |n| n.log2()),
        (GrowthClass::Linear, |n| n),
        (GrowthClass::Quadratic, |n| n * n),
        (GrowthClass::Constant, |_| 1.0),
    ];
    let ys: Vec<f64> = points.iter().map(|p| p.bits as f64).collect();
    let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
    let var_y: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
    let mut best = (GrowthClass::Constant, f64::INFINITY);
    for (class, f) in candidates {
        let xs: Vec<f64> = points.iter().map(|p| f(p.n as f64)).collect();
        let mean_x = xs.iter().sum::<f64>() / xs.len() as f64;
        let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
        let sxy: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mean_x) * (y - mean_y))
            .sum();
        let a = if sxx == 0.0 { 0.0 } else { sxy / sxx };
        let b = mean_y - a * mean_x;
        let sse: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (y - (a * x + b)).powi(2))
            .sum();
        let normalized = if var_y == 0.0 { 0.0 } else { sse / var_y };
        if normalized < best.1 - 1e-9 {
            best = (class, normalized);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::View;
    use lcp_graph::generators;
    use rand::SeedableRng;

    /// The 1-bit bipartiteness scheme, used as the harness guinea pig.
    struct Bipartite;
    impl Scheme for Bipartite {
        type Node = ();
        type Edge = ();
        fn name(&self) -> String {
            "bipartite".into()
        }
        fn radius(&self) -> usize {
            1
        }
        fn holds(&self, inst: &Instance) -> bool {
            lcp_graph::traversal::is_bipartite(inst.graph())
        }
        fn prove(&self, inst: &Instance) -> Option<Proof> {
            let colors = lcp_graph::traversal::bipartition(inst.graph())?;
            Some(Proof::from_fn(inst.n(), |v| {
                BitString::from_bits([colors[v] == 1])
            }))
        }
        fn verify(&self, view: &View) -> bool {
            let c = view.center();
            let mine = view.proof(c).first();
            mine.is_some()
                && view
                    .neighbors(c)
                    .iter()
                    .all(|&u| view.proof(u).first().is_some_and(|b| Some(b) != mine))
        }
    }

    #[test]
    fn completeness_sweep_passes_on_even_cycles() {
        let instances: Vec<Instance> = (2..8)
            .map(|k| Instance::unlabeled(generators::cycle(2 * k)))
            .collect();
        let sizes = check_completeness(&Bipartite, &instances).unwrap();
        assert!(sizes.iter().all(|&s| s == 1));
    }

    #[test]
    fn completeness_sweep_tolerates_no_instances() {
        let instances = vec![
            Instance::unlabeled(generators::cycle(5)),
            Instance::unlabeled(generators::cycle(6)),
        ];
        assert!(check_completeness(&Bipartite, &instances).is_ok());
    }

    #[test]
    fn exhaustive_soundness_on_odd_cycle() {
        let inst = Instance::unlabeled(generators::cycle(5));
        match check_soundness_exhaustive(&Bipartite, &inst, 1) {
            Soundness::Holds(tried) => assert_eq!(tried, 3u64.pow(5)),
            Soundness::Violated(p) => panic!("bipartite scheme fooled by {p:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "no-instance")]
    fn exhaustive_soundness_rejects_yes_instances() {
        let inst = Instance::unlabeled(generators::cycle(4));
        let _ = check_soundness_exhaustive(&Bipartite, &inst, 1);
    }

    #[test]
    fn adversarial_search_fails_against_sound_scheme() {
        let inst = Instance::unlabeled(generators::cycle(7));
        let mut rng = StdRng::seed_from_u64(1);
        assert!(adversarial_proof_search(&Bipartite, &inst, 1, 500, &mut rng).is_none());
    }

    #[test]
    fn adversarial_search_breaks_a_broken_scheme() {
        /// Deliberately unsound: accepts when every node holds bit 1.
        struct Gullible;
        impl Scheme for Gullible {
            type Node = ();
            type Edge = ();
            fn name(&self) -> String {
                "gullible".into()
            }
            fn radius(&self) -> usize {
                0
            }
            fn holds(&self, _: &Instance) -> bool {
                false // everything is a no-instance
            }
            fn prove(&self, _: &Instance) -> Option<Proof> {
                None
            }
            fn verify(&self, view: &View) -> bool {
                view.proof(view.center()).first() == Some(true)
            }
        }
        let inst = Instance::unlabeled(generators::cycle(6));
        let mut rng = StdRng::seed_from_u64(2);
        let forged = adversarial_proof_search(&Gullible, &inst, 1, 2000, &mut rng)
            .expect("hill climbing finds the all-ones proof");
        assert!(evaluate(&Gullible, &inst, &forged).accepted());
    }

    #[test]
    fn bitstring_enumeration_counts() {
        assert_eq!(all_bitstrings_up_to(0).len(), 1);
        assert_eq!(all_bitstrings_up_to(1).len(), 3);
        assert_eq!(all_bitstrings_up_to(3).len(), 15);
        // No duplicates.
        let all = all_bitstrings_up_to(3);
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn growth_classification() {
        let zero: Vec<SizePoint> = (1..6).map(|k| SizePoint { n: 10 * k, bits: 0 }).collect();
        assert_eq!(classify_growth(&zero), GrowthClass::Zero);

        let constant: Vec<SizePoint> = (1..6).map(|k| SizePoint { n: 10 * k, bits: 2 }).collect();
        assert_eq!(classify_growth(&constant), GrowthClass::Constant);

        let log: Vec<SizePoint> = (2..10)
            .map(|k| {
                let n = 1usize << k;
                SizePoint { n, bits: 3 * k as usize + 2 }
            })
            .collect();
        assert_eq!(classify_growth(&log), GrowthClass::Logarithmic);

        let linear: Vec<SizePoint> = (1..10)
            .map(|k| SizePoint { n: 8 * k, bits: 16 * k + 3 })
            .collect();
        assert_eq!(classify_growth(&linear), GrowthClass::Linear);

        let quad: Vec<SizePoint> = (1..10)
            .map(|k| SizePoint { n: 8 * k, bits: (8 * k) * (8 * k) })
            .collect();
        assert_eq!(classify_growth(&quad), GrowthClass::Quadratic);
    }

    #[test]
    fn measure_sizes_reports_one_bit_for_bipartite() {
        let instances: Vec<Instance> = (2..6)
            .map(|k| Instance::unlabeled(generators::cycle(2 * k)))
            .collect();
        let points = measure_sizes(&Bipartite, &instances);
        assert_eq!(classify_growth(&points), GrowthClass::Constant);
    }

    #[test]
    fn random_proof_respects_budget() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = random_proof(5, 4, &mut rng);
        assert_eq!(p.n(), 5);
        assert!(p.size() <= 4);
    }
}
