//! Allocation probe: the arena-backed search loops perform **zero heap
//! allocations per candidate proof**.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the
//! probes run the exhaustive odometer, the adversarial bit-flip search,
//! and a view-binding loop inside a counting window and assert that the
//! allocation totals are flat in the number of candidates — setup
//! (string table, arena, output vectors) allocates a bounded amount,
//! the per-candidate steady state allocates nothing.
//!
//! Every search-loop phase runs under **both** batch policies: `Auto`
//! (the scheme below ships a bit-sliced kernel, so this exercises the
//! 64-lane block odometer and the chunked adversarial search) and
//! `Scalar` (the classic per-candidate loops). The zero-allocations
//! guarantee covers both: the batched paths allocate only bounded
//! setup (transposed arena, mask tables, chunk scratch), never per
//! 64-candidate block or per chunk.
//!
//! The search loops counted here run **instrumented**: they carry the
//! `lcp_core::metrics` catalog's flush-at-exit accounting, so the
//! zero-per-candidate assertions pin that observability never
//! reintroduced an allocation. A final phase probes the metric
//! primitives themselves — the counter adds and histogram observes the
//! loops flush into are single relaxed atomics and must be strictly
//! allocation-free.
//!
//! One `#[test]` drives all phases: the counter is process-global, so
//! concurrent test functions would double-count.

use lcp_core::engine::PreparedInstance;
use lcp_core::harness::{
    adversarial_proof_search_policy, check_soundness_exhaustive_policy, random_proof, Soundness,
};
use lcp_core::{BatchArena, BatchPolicy, BatchView, Deadline, Instance, Proof, Scheme, View};
use lcp_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator with an allocation-event counter.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation events during `f`.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

/// Minimum allocation count of `f` over several runs.
///
/// The counter is process-global, so other threads (libtest's harness
/// thread, lazy runtime initialization) occasionally add a few events
/// inside the window. That noise is strictly additive; the minimum over
/// repeats recovers the loop's true allocation count and keeps the
/// zero-per-candidate assertions deterministic.
fn min_allocs<R>(mut f: impl FnMut() -> R) -> (usize, R) {
    let (mut best, mut out) = count_allocs(&mut f);
    for _ in 0..4 {
        let (allocs, run_out) = count_allocs(&mut f);
        if allocs < best {
            best = allocs;
        }
        out = run_out;
    }
    (best, out)
}

/// The 1-bit bipartiteness scheme; its verifier reads proof bits without
/// allocating, so every counted allocation belongs to the harness.
struct Bipartite;
impl Scheme for Bipartite {
    type Node = ();
    type Edge = ();
    fn name(&self) -> String {
        "bipartite".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn holds(&self, inst: &Instance) -> bool {
        lcp_graph::traversal::is_bipartite(inst.graph())
    }
    fn prove(&self, inst: &Instance) -> Option<Proof> {
        let colors = lcp_graph::traversal::bipartition(inst.graph())?;
        Some(Proof::from_fn(inst.n(), |v| {
            lcp_core::BitString::from_bits([colors[v] == 1])
        }))
    }
    fn verify(&self, view: &View) -> bool {
        let c = view.center();
        let mine = view.proof(c).first();
        mine.is_some()
            && view
                .neighbors(c)
                .iter()
                .all(|&u| view.proof(u).first().is_some_and(|b| Some(b) != mine))
    }
    fn supports_batch(&self) -> bool {
        true
    }
    fn verify_batch(&self, view: &BatchView) -> u64 {
        let c = view.center();
        let mut acc = view.has_bit(c, 0);
        for &u in view.neighbors(c) {
            acc &= view.has_bit(u, 0) & (view.bit(c, 0) ^ view.bit(u, 0));
        }
        acc
    }
}

#[test]
fn search_loops_do_not_allocate_per_candidate() {
    // --- Exhaustive odometer -----------------------------------------
    // Two workloads whose candidate counts differ by ~8x: the
    // allocation totals must differ only by O(n) setup, proving the
    // steady state allocates nothing per candidate.
    let small = Instance::unlabeled(generators::cycle(5)); // 3^5 = 243
    let large = Instance::unlabeled(generators::cycle(7)); // 3^7 = 2187
    let prep_small = PreparedInstance::new(&small, 1);
    let prep_large = PreparedInstance::new(&large, 1);

    for policy in [BatchPolicy::Auto, BatchPolicy::Scalar] {
        let (allocs_small, result) = min_allocs(|| {
            check_soundness_exhaustive_policy(&Bipartite, &prep_small, 1, &Deadline::none(), policy)
                .unwrap()
        });
        assert!(matches!(result, Soundness::Holds(243)));
        let (allocs_large, result) = min_allocs(|| {
            check_soundness_exhaustive_policy(&Bipartite, &prep_large, 1, &Deadline::none(), policy)
                .unwrap()
        });
        assert!(matches!(result, Soundness::Holds(2187)));

        assert!(
            allocs_small < 100,
            "odometer setup should allocate a bounded amount, \
             counted {allocs_small} under {policy:?}"
        );
        // 1944 extra candidates (72 extra 27-lane blocks under `Auto`)
        // may not buy even one extra allocation beyond the slightly
        // larger O(n) setup vectors.
        assert!(
            allocs_large <= allocs_small + 20,
            "odometer allocations grew with the candidate count under {policy:?}: \
             {allocs_small} for 243 candidates vs {allocs_large} for 2187"
        );
    }

    // --- Adversarial bit-flip search ---------------------------------
    // Under `Auto` the kernel + unbounded deadline route this through
    // the chunked 64-lane search; its per-chunk scratch is preallocated
    // once, so extra iterations are allocation-free there too.
    for policy in [BatchPolicy::Auto, BatchPolicy::Scalar] {
        let (allocs_short, _) = min_allocs(|| {
            let mut rng = StdRng::seed_from_u64(11);
            adversarial_proof_search_policy(
                &Bipartite,
                &prep_large,
                1,
                250,
                &mut rng,
                &Deadline::none(),
                policy,
            )
            .is_some()
        });
        let (allocs_long, _) = min_allocs(|| {
            let mut rng = StdRng::seed_from_u64(11);
            adversarial_proof_search_policy(
                &Bipartite,
                &prep_large,
                1,
                2_250,
                &mut rng,
                &Deadline::none(),
                policy,
            )
            .is_some()
        });
        assert!(
            allocs_short < 60,
            "adversarial setup should allocate a bounded amount, \
             counted {allocs_short} under {policy:?}"
        );
        // 2000 extra candidate steps (including 10 in-place restarts)
        // must not allocate.
        assert!(
            allocs_long <= allocs_short,
            "adversarial allocations grew with the iteration count under {policy:?}: \
             {allocs_short} for 250 iters vs {allocs_long} for 2250"
        );
    }

    // --- Binding and in-place mutation -------------------------------
    // bind + verify + flip on a live arena: strictly zero allocations.
    let mut rng = StdRng::seed_from_u64(13);
    let mut proof = random_proof(prep_large.n(), 1, &mut rng);
    let (allocs, _) = min_allocs(|| {
        let mut rejections = 0usize;
        for round in 0..1_000 {
            let v = round % prep_large.n();
            proof.flip(v, 0);
            for owner in prep_large.dependents(v) {
                if !Bipartite.verify(&prep_large.bind(owner, &proof)) {
                    rejections += 1;
                }
            }
        }
        rejections
    });
    assert_eq!(
        allocs, 0,
        "bind + verify + flip must be allocation-free, counted {allocs}"
    );

    // --- Batched binding and in-place mutation -----------------------
    // The 64-lane mirror of the phase above: bind_batch + verify_batch
    // + per-lane flip on a live transposed arena — strictly zero
    // allocations per 64-candidate block.
    let mut arena = BatchArena::new(prep_large.n(), 1);
    for v in 0..prep_large.n() {
        arena.broadcast(v, proof.get(v));
    }
    let (allocs, _) = min_allocs(|| {
        let mut rejections = 0u32;
        for round in 0..1_000 {
            let v = round % prep_large.n();
            arena.flip((round / prep_large.n()) % 64, v, 0);
            for owner in prep_large.dependents(v) {
                let accepted = Bipartite.verify_batch(&prep_large.bind_batch(owner, &arena));
                rejections += (!accepted).count_ones();
            }
        }
        rejections
    });
    assert_eq!(
        allocs, 0,
        "bind_batch + verify_batch + flip must be allocation-free, counted {allocs}"
    );

    // --- Metric primitives -------------------------------------------
    // What the loops above flush into at their exits. A counter add and
    // a histogram observe are relaxed atomic ops on `static` storage:
    // zero allocations, however many samples land.
    let (allocs, _) = min_allocs(|| {
        for i in 0..10_000u64 {
            lcp_core::metrics::BINDS.add(i & 7);
            lcp_core::metrics::EVALUATE_NS.observe(i);
        }
        lcp_core::metrics::DEADLINE_POLLS.inc();
    });
    assert_eq!(
        allocs, 0,
        "metric increments must be allocation-free, counted {allocs}"
    );
}
