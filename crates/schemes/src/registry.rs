//! The scheme registry: every Table-1 scheme of this crate as one
//! [`SchemeEntry`] — metadata (paper row, claimed bound, applicable
//! graph families, radius) plus a builder that materializes a
//! type-erased [`DynScheme`] cell for any `(family, size, seed,
//! polarity)` request.
//!
//! The registry is a *static list*, not link-time magic: [`all`] simply
//! constructs every entry, so adding a scheme means adding one entry
//! here (the registry test fails if a public scheme is forgotten). The
//! conformance campaign (`lcp-conformance`) sweeps [`all`] × sizes ×
//! families × polarities; the Table-1 bench bin renders the same
//! metadata as a table.
//!
//! Builders are **deterministic in the request**: the same
//! [`CellRequest`] always yields the same instance (random families
//! derive their stream from the request's seed), which is what makes
//! campaign reports byte-identical across runs and thread schedules.
//!
//! A builder returns `None` when the requested polarity cannot be
//! realized on that family (e.g. a *non*-Eulerian cycle): the campaign
//! records such cells as inapplicable rather than failed. Polarity is
//! the builder's *intent*; the campaign re-derives ground truth from
//! [`DynScheme::holds`], so a random family member that lands on the
//! other side is re-classified, never mis-checked.
//!
//! ## Cell coordinates and seed derivation
//!
//! Everything downstream of the registry addresses work by **cell
//! coordinates**: the tuple `(scheme id, family, n, seed, polarity)`.
//! The first four become a [`CellRequest`] handed to the entry's
//! builder; the id resolves through [`find`]. Two conventions make
//! coordinates a stable, location-independent addressing scheme:
//!
//! * **Ids, not positions.** The scheme id is a stable kebab-case
//!   string. Consumers that need per-cell randomness (the conformance
//!   campaign, `lcp-serve` cell loading) hash the *id* — never the
//!   entry's index in [`all`] — so inserting a new scheme reorders
//!   nothing and replays stay byte-identical.
//! * **Derived seeds, not shared streams.** A campaign-level seed is
//!   mixed (splitmix64-style, in `lcp-conformance`) with the remaining
//!   coordinates to give every cell its own RNG stream. Cells therefore
//!   generate identical instances regardless of execution order,
//!   thread schedule, `--scheme`/`--family` filters, or shard
//!   assignment — the root of the repo's standing seed and shard
//!   determinism policies.
//!
//! The builder itself adds the last determinism layer: equal
//! `CellRequest`s yield equal instances, so any two processes that
//! agree on coordinates agree on the cell — which is also what lets a
//! resident server and an in-process checker compare verdicts
//! cell-for-cell.

use crate::labels::{ArcDir, StMark};
use crate::{
    chromatic::{ChromaticAtMost, NonBipartite},
    complement::Complement,
    cycles::{EvenCycle, MaxMatchingCycle, OddCycle},
    eulerian::Eulerian,
    hamiltonian::HamiltonianCycle,
    lcl,
    leader::LeaderElection,
    line_graph::LineGraph,
    matching::{
        MaxWeightMatchingBipartite, MaximalMatching, MaximumMatchingBipartite, WeightedEdge,
    },
    spanning_tree::{Acyclic, SpanningTree},
    st_connectivity::StConnectivity,
    st_reach::{StReachability, StReachabilityDirected, StUnreachability},
    tree_universal, universal,
    weak::WeakLeaderElection,
};
use lcp_core::dynamic::DynScheme;
use lcp_core::harness::GrowthClass;
use lcp_core::{EdgeMap, Instance};
use lcp_graph::families::GraphFamily;
use lcp_graph::matching as gm;
use lcp_graph::{hamilton, ops, spanning, traversal, Graph};

/// Which side of the completeness/soundness matrix a builder should aim
/// for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Polarity {
    /// A yes-instance: completeness, size measurement, tamper probing.
    Yes,
    /// A no-instance: exhaustive / adversarial soundness checks.
    No,
}

impl Polarity {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Polarity::Yes => "yes",
            Polarity::No => "no",
        }
    }
}

/// One cell request of the campaign matrix.
#[derive(Clone, Copy, Debug)]
pub struct CellRequest {
    /// Graph family to draw the instance from.
    pub family: GraphFamily,
    /// Requested size (builders may round to the family's natural
    /// shapes or the polarity's parity; read the real size off the
    /// cell).
    pub n: usize,
    /// Seed for the family's RNG stream.
    pub seed: u64,
    /// The side of the matrix to aim for.
    pub polarity: Polarity,
}

/// Builder signature: a plain `fn` so entries stay `'static` without
/// link-time registration crates.
pub type CellBuilder = fn(&CellRequest) -> Option<DynScheme>;

/// One registered scheme with its Table-1 metadata.
pub struct SchemeEntry {
    /// Stable kebab-case identifier (report keys, `--scheme` filters).
    pub id: &'static str,
    /// Human-readable property / problem name.
    pub title: &'static str,
    /// Where the row lives in the paper.
    pub paper_row: &'static str,
    /// The paper's "Proof size s" claim, verbatim.
    pub claimed_bound: &'static str,
    /// The claim as a measurable growth class (an *upper* bound: cells
    /// pass when the measured class is no larger).
    pub claimed_growth: GrowthClass,
    /// Families the campaign sweeps this scheme across.
    pub families: &'static [GraphFamily],
    /// The verifier's horizon `r`.
    pub radius: usize,
    /// Size cap for schemes with expensive ground truth or `poly(n)`
    /// proofs (the campaign clamps requested sizes).
    pub max_n: usize,
    /// The cell builder (public so downstream crates can append entries
    /// for schemes living outside `lcp-schemes`, e.g. `lcp-logic`'s
    /// Σ¹₁ scheme).
    pub builder: CellBuilder,
}

impl SchemeEntry {
    /// Builds the cell for `req`, or `None` when the `(family,
    /// polarity)` combination is inapplicable to this scheme.
    ///
    /// Requests above [`Self::max_n`] are clamped, not rejected.
    pub fn build(&self, req: &CellRequest) -> Option<DynScheme> {
        let clamped = CellRequest {
            n: req.n.min(self.max_n),
            ..*req
        };
        (self.builder)(&clamped)
    }
}

impl std::fmt::Debug for SchemeEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchemeEntry")
            .field("id", &self.id)
            .field("paper_row", &self.paper_row)
            .field("claimed_bound", &self.claimed_bound)
            .finish()
    }
}

/// No size cap.
const UNCAPPED: usize = usize::MAX;

// ---------------------------------------------------------------------
// Builder helpers
// ---------------------------------------------------------------------

fn base(req: &CellRequest) -> Graph {
    req.family.generate(req.n, req.seed)
}

fn base_n(req: &CellRequest, n: usize) -> Graph {
    req.family.generate(n, req.seed)
}

/// Two family members side by side (ids of the second shifted out of the
/// way) — the canonical disconnected instance.
/// Returns the union together with the first half's node count — the
/// index where the second component starts (for placing `t` across the
/// cut).
fn split_halves(req: &CellRequest) -> (Graph, usize) {
    let a = req.family.generate((req.n / 2).max(2), req.seed);
    let b = req
        .family
        .generate((req.n / 2).max(2), req.seed ^ 0x9e37_79b9_7f4a_7c15);
    let boundary = a.n();
    (
        ops::disjoint_union(&a, &ops::shift_ids(&b, 1_000_000)).expect("shifted ids are disjoint"),
        boundary,
    )
}

/// `s`–`t` marked instance with unit edges.
fn st_instance(g: Graph, s: usize, t: usize) -> Instance<StMark> {
    let marks = StMark::mark(g.n(), s, t);
    Instance::with_node_data(g, marks)
}

/// `s`–`t` marked instance in the directed representation, every edge
/// oriented from its smaller identifier to its larger.
fn st_directed(g: Graph, s: usize, t: usize) -> Instance<StMark, ArcDir> {
    let mut edges: EdgeMap<ArcDir> = EdgeMap::new();
    for (u, v) in g.edges() {
        edges.insert(lcp_graph::norm_edge(u, v), ArcDir::Forward);
    }
    let marks = StMark::mark(g.n(), s, t);
    Instance::with_data(g, marks, edges)
}

/// A pair of nodes at distance ≥ 2 (the non-adjacency promise of the
/// `s`–`t` connectivity schemes).
fn nonadjacent_pair(g: &Graph) -> Option<(usize, usize)> {
    for s in g.nodes() {
        let dist = traversal::bfs_distances(g, s);
        if let Some(t) = g.nodes().find(|&t| dist[t].is_some_and(|d| d >= 2)) {
            return Some((s, t));
        }
    }
    None
}

fn is_prime(n: usize) -> bool {
    n >= 2
        && (2..)
            .take_while(|d| d * d <= n)
            .all(|d| !n.is_multiple_of(d))
}

fn next_prime(mut n: usize) -> usize {
    n = n.max(3);
    while !is_prime(n) {
        n += 1;
    }
    n
}

// ---------------------------------------------------------------------
// Builders (one per entry; deterministic in the request)
// ---------------------------------------------------------------------

fn b_eulerian(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    match (req.family, req.polarity) {
        // Cycles are Eulerian; paths, grids (≥ 2×3), trees, and barbells
        // always have an odd-degree node.
        (Cycle, Polarity::Yes) => Some(DynScheme::seal(Eulerian, Instance::unlabeled(base(req)))),
        (Path | Grid | Tree | Barbell, Polarity::No) => {
            Some(DynScheme::seal(Eulerian, Instance::unlabeled(base(req))))
        }
        _ => None,
    }
}

fn b_line_graph(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    match (req.family, req.polarity) {
        // Paths and cycles are line graphs (of paths and cycles).
        (Path | Cycle, Polarity::Yes) => {
            Some(DynScheme::seal(LineGraph, Instance::unlabeled(base(req))))
        }
        // Grids ≥ 2×3 contain an induced claw; trees are forced to one.
        (Grid, Polarity::No) => Some(DynScheme::seal(LineGraph, Instance::unlabeled(base(req)))),
        (Tree, Polarity::No) => {
            let g = base(req);
            let g = if g.nodes().any(|v| {
                // An induced claw: a degree-≥3 node with 3 pairwise
                // non-adjacent neighbours — automatic in a tree.
                g.degree(v) >= 3
            }) {
                g
            } else {
                // The random tree came out as a path; a star is the
                // canonical non-line-graph tree.
                lcp_graph::generators::star(g.n().max(4) - 1)
            };
            Some(DynScheme::seal(LineGraph, Instance::unlabeled(g)))
        }
        _ => None,
    }
}

fn b_st_reachability(req: &CellRequest) -> Option<DynScheme> {
    match req.polarity {
        Polarity::Yes => {
            let g = base(req);
            let n = g.n();
            Some(DynScheme::seal(StReachability, st_instance(g, 0, n - 1)))
        }
        Polarity::No => {
            let (g, half) = split_halves(req);
            Some(DynScheme::seal(StReachability, st_instance(g, 0, half)))
        }
    }
}

fn b_st_unreachability_undirected(req: &CellRequest) -> Option<DynScheme> {
    let scheme = StUnreachability::undirected();
    match req.polarity {
        Polarity::Yes => {
            let (g, half) = split_halves(req);
            let marks = StMark::mark(g.n(), 0, half);
            Some(DynScheme::seal(
                scheme,
                Instance::with_data(g, marks, EdgeMap::new()),
            ))
        }
        Polarity::No => {
            let g = base(req);
            let n = g.n();
            let marks = StMark::mark(n, 0, n - 1);
            Some(DynScheme::seal(
                scheme,
                Instance::with_data(g, marks, EdgeMap::new()),
            ))
        }
    }
}

/// In the all-`Forward` orientation the largest identifier is a sink, and
/// node 0 reaches node `n − 1` along monotone paths in every family used.
fn b_st_reachability_directed(req: &CellRequest) -> Option<DynScheme> {
    let g = base(req);
    let n = g.n();
    let sink = g.nodes().max_by_key(|&v| g.id(v)).expect("nonempty");
    match req.polarity {
        Polarity::Yes => Some(DynScheme::seal(
            StReachabilityDirected,
            st_directed(g, 0, n - 1),
        )),
        Polarity::No => {
            if sink == 0 {
                return None;
            }
            Some(DynScheme::seal(
                StReachabilityDirected,
                st_directed(g, sink, 0),
            ))
        }
    }
}

fn b_st_unreachability_directed(req: &CellRequest) -> Option<DynScheme> {
    let scheme = StUnreachability::directed();
    let g = base(req);
    let n = g.n();
    let sink = g.nodes().max_by_key(|&v| g.id(v)).expect("nonempty");
    match req.polarity {
        Polarity::Yes => {
            if sink == 0 {
                return None;
            }
            Some(DynScheme::seal(scheme, st_directed(g, sink, 0)))
        }
        Polarity::No => Some(DynScheme::seal(scheme, st_directed(g, 0, n - 1))),
    }
}

fn b_st_connectivity(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    let scheme = StConnectivity::general(2);
    match (req.family, req.polarity) {
        // κ(s, t) = 2 between antipodes of a cycle / corners of a grid.
        (Cycle, Polarity::Yes) => {
            let g = base_n(req, req.n.max(5));
            let n = g.n();
            Some(DynScheme::seal(scheme, st_instance(g, 0, n / 2)))
        }
        (Grid, Polarity::Yes) => {
            let g = base(req);
            let n = g.n();
            Some(DynScheme::seal(scheme, st_instance(g, 0, n - 1)))
        }
        // κ = 1 across a path, a tree, or the barbell bridge.
        (Path, Polarity::No) => {
            let g = base(req);
            let n = g.n();
            (n >= 3).then(|| DynScheme::seal(scheme, st_instance(g, 0, n - 1)))
        }
        (Tree | Barbell, Polarity::No) => {
            let g = base(req);
            let (s, t) = nonadjacent_pair(&g)?;
            Some(DynScheme::seal(scheme, st_instance(g, s, t)))
        }
        _ => None,
    }
}

fn b_st_connectivity_planar(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    let scheme = StConnectivity::planar(2);
    match (req.family, req.polarity) {
        (Cycle, Polarity::Yes) => {
            let g = base_n(req, req.n.max(5));
            let n = g.n();
            Some(DynScheme::seal(scheme, st_instance(g, 0, n / 2)))
        }
        (Grid, Polarity::Yes) => {
            let g = base(req);
            let n = g.n();
            Some(DynScheme::seal(scheme, st_instance(g, 0, n - 1)))
        }
        (Path, Polarity::No) => {
            let g = base(req);
            let n = g.n();
            (n >= 3).then(|| DynScheme::seal(scheme, st_instance(g, 0, n - 1)))
        }
        _ => None,
    }
}

fn b_bipartite(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    let seal = |g: Graph| {
        Some(DynScheme::seal(
            crate::bipartite::Bipartite,
            Instance::unlabeled(g),
        ))
    };
    match (req.family, req.polarity) {
        (Cycle, Polarity::Yes) => seal(base_n(req, (req.n + 1) & !1)),
        (Cycle, Polarity::No) => seal(base_n(req, (req.n | 1).max(5))),
        (Grid | Bipartite, Polarity::Yes) => seal(base(req)),
        (Barbell | Gnp, Polarity::No) => seal(base(req)),
        _ => None,
    }
}

fn b_even_cycle(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    let seal = |g: Graph| Some(DynScheme::seal(EvenCycle, Instance::unlabeled(g)));
    match (req.family, req.polarity) {
        (Cycle, Polarity::Yes) => seal(base_n(req, (req.n + 1) & !1)),
        (Cycle, Polarity::No) => seal(base_n(req, (req.n | 1).max(5))),
        // Outside the cycle family the degree check rejects locally.
        (Path | Grid, Polarity::No) => seal(base(req)),
        _ => None,
    }
}

fn b_odd_cycle(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    let seal = |g: Graph| Some(DynScheme::seal(OddCycle, Instance::unlabeled(g)));
    match (req.family, req.polarity) {
        (Cycle, Polarity::Yes) => seal(base_n(req, (req.n | 1).max(5))),
        (Cycle, Polarity::No) => seal(base_n(req, (req.n + 1) & !1)),
        (Path | Grid, Polarity::No) => seal(base(req)),
        _ => None,
    }
}

fn alternating_matching(n: usize) -> Vec<(usize, usize)> {
    (0..n / 2).map(|i| (2 * i, 2 * i + 1)).collect()
}

fn b_max_matching_cycle(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    match (req.family, req.polarity) {
        (Cycle, Polarity::Yes) => {
            let g = base(req);
            let m = alternating_matching(g.n());
            Some(DynScheme::seal(
                MaxMatchingCycle,
                Instance::unlabeled(g).with_edge_set(m),
            ))
        }
        (Cycle, Polarity::No) => {
            // One edge short of maximum.
            let g = base_n(req, req.n.max(5));
            let mut m = alternating_matching(g.n());
            m.pop();
            Some(DynScheme::seal(
                MaxMatchingCycle,
                Instance::unlabeled(g).with_edge_set(m),
            ))
        }
        (Path, Polarity::No) => {
            let g = base(req);
            let m: Vec<(usize, usize)> = (0..(g.n() - 1) / 2).map(|i| (2 * i, 2 * i + 1)).collect();
            Some(DynScheme::seal(
                MaxMatchingCycle,
                Instance::unlabeled(g).with_edge_set(m),
            ))
        }
        (Grid, Polarity::No) => Some(DynScheme::seal(
            MaxMatchingCycle,
            Instance::unlabeled(base(req)),
        )),
        _ => None,
    }
}

fn b_chromatic_at_most(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    let scheme = ChromaticAtMost { k: 3 };
    match (req.family, req.polarity) {
        // Every cycle and grid is 3-colourable.
        (Cycle | Grid, Polarity::Yes) => {
            Some(DynScheme::seal(scheme, Instance::unlabeled(base(req))))
        }
        // Barbell cliques of size ≥ 4 contain K₄.
        (Barbell, Polarity::No) => Some(DynScheme::seal(
            scheme,
            Instance::unlabeled(base_n(req, req.n.max(8))),
        )),
        (Gnp, Polarity::No) => Some(DynScheme::seal(scheme, Instance::unlabeled(base(req)))),
        _ => None,
    }
}

fn b_non_bipartite(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    let seal = |g: Graph| Some(DynScheme::seal(NonBipartite, Instance::unlabeled(g)));
    match (req.family, req.polarity) {
        (Cycle, Polarity::Yes) => seal(base_n(req, (req.n | 1).max(5))),
        (Barbell, Polarity::Yes) => seal(base(req)),
        (Cycle, Polarity::No) => seal(base_n(req, (req.n + 1) & !1)),
        (Grid | Path, Polarity::No) => seal(base(req)),
        _ => None,
    }
}

fn b_co_eulerian(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    let scheme = Complement::new(Eulerian);
    match (req.family, req.polarity) {
        (Path | Grid | Tree, Polarity::Yes) => {
            Some(DynScheme::seal(scheme, Instance::unlabeled(base(req))))
        }
        (Cycle, Polarity::No) => Some(DynScheme::seal(scheme, Instance::unlabeled(base(req)))),
        _ => None,
    }
}

fn b_co_maximal_matching(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    let scheme = Complement::new(MaximalMatching);
    match (req.family, req.polarity) {
        // The empty matching is never maximal on a graph with edges.
        (Path | Cycle | Grid | Tree, Polarity::Yes) => {
            Some(DynScheme::seal(scheme, Instance::unlabeled(base(req))))
        }
        // A genuinely maximal matching refutes the complement property.
        (Path | Cycle | Grid | Tree, Polarity::No) => {
            let g = base(req);
            let m = gm::greedy_maximal_matching(&g);
            Some(DynScheme::seal(
                scheme,
                Instance::unlabeled(g).with_edge_set(m),
            ))
        }
        _ => None,
    }
}

fn b_symmetric_graph(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    let seal = |g: Graph| {
        Some(DynScheme::seal(
            universal::symmetric_graph(),
            Instance::unlabeled(g),
        ))
    };
    match (req.family, req.polarity) {
        // Cycles and paths have their reflections.
        (Cycle | Path, Polarity::Yes) => seal(base(req)),
        // Random trees almost always carry a twin-leaf automorphism, so
        // a *random* tree is useless as a no-instance; a spider whose
        // three legs have pairwise distinct lengths is provably
        // asymmetric (any automorphism fixes the unique degree-3 hub
        // and cannot permute unequal legs).
        (Tree, Polarity::No) => {
            let n = req.n.max(7);
            let mut g = lcp_graph::generators::path(n - 1);
            let leaf = g
                .add_node(lcp_graph::NodeId(1_000_000))
                .expect("fresh id is unique");
            g.add_edge(2, leaf).expect("fresh leaf edge");
            seal(g) // legs of lengths 1, 2, and n − 4 from the hub
        }
        // G(n, p) at these sizes is asymmetric with high probability
        // (ground truth re-classifies the exceptions).
        (Gnp, Polarity::No) => seal(base(req)),
        _ => None,
    }
}

fn b_non_three_colorable(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    let seal = |g: Graph| {
        Some(DynScheme::seal(
            universal::non_three_colorable(),
            Instance::unlabeled(g),
        ))
    };
    match (req.family, req.polarity) {
        (Barbell, Polarity::Yes) => seal(base_n(req, req.n.max(8))),
        (Cycle | Grid | Tree, Polarity::No) => seal(base(req)),
        _ => None,
    }
}

fn b_prime_order(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    let seal = |g: Graph| {
        Some(DynScheme::seal(
            universal::prime_order(),
            Instance::unlabeled(g),
        ))
    };
    match (req.family, req.polarity) {
        (Path | Cycle | Tree, Polarity::Yes) => seal(base_n(req, next_prime(req.n))),
        // Grids ≥ 2×3 have composite order; even sizes are composite.
        (Grid, Polarity::No) => seal(base(req)),
        (Path | Cycle | Tree, Polarity::No) => seal(base_n(req, (req.n + 1) & !1)),
        _ => None,
    }
}

fn b_tree_fixpoint_free(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    let seal = |g: Graph| {
        Some(DynScheme::seal(
            tree_universal::tree_fixpoint_free(),
            Instance::unlabeled(g),
        ))
    };
    match (req.family, req.polarity) {
        // A doubled tree: the copy-swap is a fixpoint-free automorphism.
        (Tree, Polarity::Yes) => {
            let t = req.family.generate((req.n / 2).max(2), req.seed);
            let t2 = ops::shift_ids(&t, 1_000_000);
            seal(ops::join_with_path(&t, 0, &t2, 0, &[]).expect("shifted ids disjoint"))
        }
        // Reversing an even path is fixpoint-free; an odd path fixes its
        // centre (and every tree automorphism preserves the centre).
        (Path, Polarity::Yes) => seal(base_n(req, (req.n + 1) & !1)),
        (Path, Polarity::No) => seal(base_n(req, (req.n | 1).max(3))),
        (Tree | Grid, Polarity::No) => seal(base(req)),
        _ => None,
    }
}

fn b_maximal_matching(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    match (req.family, req.polarity) {
        (Path | Cycle | Grid | Gnp, Polarity::Yes) => {
            let g = base(req);
            let m = gm::greedy_maximal_matching(&g);
            Some(DynScheme::seal(
                MaximalMatching,
                Instance::unlabeled(g).with_edge_set(m),
            ))
        }
        // The empty matching is not maximal whenever the graph has edges.
        (Path | Cycle | Grid | Gnp, Polarity::No) => Some(DynScheme::seal(
            MaximalMatching,
            Instance::unlabeled(base(req)),
        )),
        _ => None,
    }
}

fn greedy_mis(g: &Graph) -> Vec<bool> {
    let mut in_set = vec![false; g.n()];
    let mut blocked = vec![false; g.n()];
    for v in g.nodes() {
        if !blocked[v] {
            in_set[v] = true;
            blocked[v] = true;
            for &u in g.neighbors(v) {
                blocked[u] = true;
            }
        }
    }
    in_set
}

fn b_lcl_mis(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    if !matches!(req.family, Path | Cycle | Grid | Tree) {
        return None;
    }
    let g = base(req);
    let labels = match req.polarity {
        Polarity::Yes => greedy_mis(&g),
        // The empty set is independent but nothing is dominated.
        Polarity::No => vec![false; g.n()],
    };
    Some(DynScheme::seal(
        lcl::mis(),
        Instance::with_node_data(g, labels),
    ))
}

fn b_lcl_agreement(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    if !matches!(req.family, Path | Cycle | Grid | Tree) {
        return None;
    }
    let g = base(req);
    let mut labels = vec![7u64; g.n()];
    if req.polarity == Polarity::No {
        labels[0] = 8;
    }
    Some(DynScheme::seal(
        lcl::agreement(),
        Instance::with_node_data(g, labels),
    ))
}

fn b_lcl_proper_coloring(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    if !matches!(req.family, Path | Cycle | Grid | Tree) {
        return None;
    }
    let g = base(req);
    let labels = match req.polarity {
        Polarity::Yes => {
            let colors = lcp_graph::coloring::greedy_coloring(&g);
            if colors.iter().any(|&c| c >= 4) {
                return None; // greedy overshot the palette on this tree
            }
            colors
        }
        Polarity::No => vec![0usize; g.n()],
    };
    Some(DynScheme::seal(
        lcl::proper_coloring(4),
        Instance::with_node_data(g, labels),
    ))
}

fn b_maximum_matching_bipartite(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    if !matches!(req.family, Bipartite | Grid | Path | Cycle) {
        return None;
    }
    let g = match req.family {
        Cycle => base_n(req, (req.n + 1) & !1), // odd cycles are not bipartite
        _ => base(req),
    };
    let side = traversal::bipartition(&g)?;
    let sol = gm::maximum_bipartite_matching(&g, &side);
    let mut edges = sol.edges();
    match req.polarity {
        Polarity::Yes => {}
        Polarity::No => {
            // One edge short of maximum is still a matching, not maximum.
            edges.pop()?;
        }
    }
    Some(DynScheme::seal(
        MaximumMatchingBipartite,
        Instance::unlabeled(g).with_edge_set(edges),
    ))
}

fn b_max_weight_matching_bipartite(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    if !matches!(req.family, Bipartite | Grid | Path) {
        return None;
    }
    let g = base(req);
    let side = traversal::bipartition(&g)?;
    // Deterministic strictly positive weights in 1..=7.
    let weights: gm::EdgeWeightMap = g
        .edges()
        .enumerate()
        .map(|(i, e)| (e, 1 + (i as u64 * 5 + 3) % 7))
        .collect();
    let matched: std::collections::BTreeSet<(usize, usize)> = match req.polarity {
        Polarity::Yes => gm::max_weight_bipartite_matching(&g, &side, &weights)
            .edges()
            .into_iter()
            .collect(),
        // Empty matching: suboptimal because every weight is positive.
        Polarity::No => Default::default(),
    };
    let mut data: EdgeMap<WeightedEdge> = EdgeMap::new();
    for (k, w) in &weights {
        data.insert(
            *k,
            WeightedEdge {
                weight: *w,
                matched: matched.contains(k),
            },
        );
    }
    let n = g.n();
    Some(DynScheme::seal(
        MaxWeightMatchingBipartite,
        Instance::with_data(g, vec![(); n], data),
    ))
}

fn b_leader_election(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    if !matches!(req.family, Path | Cycle | Grid | Tree) {
        return None;
    }
    let g = base(req);
    let n = g.n();
    let labels: Vec<bool> = match req.polarity {
        Polarity::Yes => (0..n).map(|v| v == n / 2).collect(),
        // Zero leaders: inside the (connected) promise, never certifiable.
        Polarity::No => vec![false; n],
    };
    Some(DynScheme::seal(
        LeaderElection,
        Instance::with_node_data(g, labels),
    ))
}

fn b_spanning_tree(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    if !matches!(req.family, Path | Cycle | Grid | Tree | Gnp) {
        return None;
    }
    let g = base(req);
    if !traversal::is_connected(&g) {
        return None; // G(n, p) stragglers: outside the connected promise
    }
    let tree_edges: Vec<(usize, usize)> = spanning::bfs_spanning_tree(&g, 0).edges();
    let edges: Vec<(usize, usize)> = match (req.family, req.polarity) {
        (_, Polarity::Yes) => tree_edges,
        // A full cycle is not a tree; elsewhere drop an edge so the
        // labelled forest no longer spans.
        (Cycle, Polarity::No) => base(req).edges().collect(),
        (_, Polarity::No) => {
            let mut e = tree_edges;
            e.pop()?;
            e
        }
    };
    Some(DynScheme::seal(
        SpanningTree,
        Instance::unlabeled(g).with_edge_set(edges),
    ))
}

fn b_acyclic(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    let seal = |g: Graph| Some(DynScheme::seal(Acyclic, Instance::unlabeled(g)));
    match (req.family, req.polarity) {
        (Tree | Path, Polarity::Yes) => seal(base(req)),
        (Cycle | Grid | Barbell, Polarity::No) => seal(base(req)),
        _ => None,
    }
}

fn b_hamiltonian_cycle(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    match (req.family, req.polarity) {
        (Cycle, Polarity::Yes) => {
            let g = base(req);
            let edges: Vec<(usize, usize)> = g.edges().collect();
            Some(DynScheme::seal(
                HamiltonianCycle,
                Instance::unlabeled(g).with_edge_set(edges),
            ))
        }
        (Grid, Polarity::Yes) => {
            let g = base(req);
            let cycle = hamilton::hamiltonian_cycle(&g)?;
            let n = g.n();
            let edges: Vec<(usize, usize)> =
                (0..n).map(|i| (cycle[i], cycle[(i + 1) % n])).collect();
            Some(DynScheme::seal(
                HamiltonianCycle,
                Instance::unlabeled(g).with_edge_set(edges),
            ))
        }
        (Cycle, Polarity::No) => {
            // All but one edge labelled: the gap endpoints see degree 1.
            let g = base(req);
            let edges: Vec<(usize, usize)> = g.edges().skip(1).collect();
            Some(DynScheme::seal(
                HamiltonianCycle,
                Instance::unlabeled(g).with_edge_set(edges),
            ))
        }
        (Path | Tree, Polarity::No) => Some(DynScheme::seal(
            HamiltonianCycle,
            Instance::unlabeled(base(req)),
        )),
        _ => None,
    }
}

fn b_weak_leader_election(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    if !matches!(req.family, Path | Cycle | Grid | Tree) {
        return None;
    }
    // Weak schemes have no no-instances inside the connected promise: the
    // prover may always pick a leader. (Disconnected graphs are outside
    // the promise — the per-component certificates would wrongly elect
    // one leader each.)
    match req.polarity {
        Polarity::Yes => Some(DynScheme::seal(
            WeakLeaderElection,
            Instance::unlabeled(base(req)),
        )),
        Polarity::No => None,
    }
}

// ---------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------

use GraphFamily::{Barbell, Bipartite as FBipartite, Cycle, Gnp, Grid, Path, Tree};

/// Looks up a registered scheme by its stable kebab-case id — the
/// resolution step for anything that addresses cells by coordinates
/// (`lcp-serve` requests, CLI `--scheme` filters).
///
/// Ids are unique across the registry, so the first match is the only
/// one. `None` for unknown ids.
pub fn find(id: &str) -> Option<SchemeEntry> {
    all().into_iter().find(|e| e.id == id)
}

/// Every registered scheme, in Table-1 order (properties, then
/// problems).
///
/// The list is the single source of truth for the conformance campaign
/// and the registry-driven bench bin; `tests::registry_covers_every_public_scheme`
/// pins it against the crate's public surface.
pub fn all() -> Vec<SchemeEntry> {
    vec![
        SchemeEntry {
            id: "eulerian",
            title: "Eulerian graph",
            paper_row: "1(a) §1.1",
            claimed_bound: "0",
            claimed_growth: GrowthClass::Zero,
            families: &[Cycle, Path, Grid, Tree, Barbell],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_eulerian,
        },
        SchemeEntry {
            id: "line-graph",
            title: "line graph",
            paper_row: "1(a) §1.1",
            claimed_bound: "0",
            claimed_growth: GrowthClass::Zero,
            families: &[Path, Cycle, Tree, Grid],
            radius: 2,
            max_n: 48,
            builder: b_line_graph,
        },
        SchemeEntry {
            id: "st-reachability",
            title: "s–t reachability",
            paper_row: "1(a) §4.1",
            claimed_bound: "Θ(1)",
            claimed_growth: GrowthClass::Constant,
            families: &[Path, Cycle, Grid, Tree, FBipartite, Barbell],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_st_reachability,
        },
        SchemeEntry {
            id: "st-unreachability-undirected",
            title: "s–t unreachability (undir.)",
            paper_row: "1(a) §4.1",
            claimed_bound: "Θ(1)",
            claimed_growth: GrowthClass::Constant,
            families: &[Path, Cycle, Grid, Tree, FBipartite, Barbell],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_st_unreachability_undirected,
        },
        SchemeEntry {
            id: "st-unreachability-directed",
            title: "s–t unreachability (directed)",
            paper_row: "1(a) §4.1",
            claimed_bound: "Θ(1)",
            claimed_growth: GrowthClass::Constant,
            families: &[Path, Cycle, Grid],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_st_unreachability_directed,
        },
        SchemeEntry {
            id: "st-reachability-directed",
            title: "s–t reachability (directed)",
            paper_row: "1(a) §4.1",
            claimed_bound: "O(log Δ)",
            claimed_growth: GrowthClass::Logarithmic,
            families: &[Path, Cycle, Grid],
            radius: 2,
            max_n: UNCAPPED,
            builder: b_st_reachability_directed,
        },
        SchemeEntry {
            id: "st-connectivity",
            title: "s–t connectivity = 2",
            paper_row: "1(a) §4.2",
            claimed_bound: "O(log k)",
            claimed_growth: GrowthClass::Constant,
            families: &[Cycle, Grid, Path, Tree, Barbell],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_st_connectivity,
        },
        SchemeEntry {
            id: "st-connectivity-planar",
            title: "s–t connectivity = 2 (colored idx)",
            paper_row: "1(a) §4.2",
            claimed_bound: "Θ(1) planar",
            claimed_growth: GrowthClass::Constant,
            families: &[Cycle, Grid, Path],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_st_connectivity_planar,
        },
        SchemeEntry {
            id: "bipartite",
            title: "bipartite graph",
            paper_row: "1(a) §1.2",
            claimed_bound: "Θ(1)",
            claimed_growth: GrowthClass::Constant,
            families: &[Cycle, Grid, FBipartite, Barbell, Gnp],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_bipartite,
        },
        SchemeEntry {
            id: "even-cycle",
            title: "even n(G) on cycles",
            paper_row: "1(a) §5",
            claimed_bound: "Θ(1)",
            claimed_growth: GrowthClass::Constant,
            families: &[Cycle, Path, Grid],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_even_cycle,
        },
        SchemeEntry {
            id: "odd-cycle",
            title: "odd n(G) on cycles",
            paper_row: "1(a) §5",
            claimed_bound: "Θ(log n)",
            claimed_growth: GrowthClass::Logarithmic,
            families: &[Cycle, Path, Grid],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_odd_cycle,
        },
        SchemeEntry {
            id: "chromatic-at-most-3",
            title: "chromatic number ≤ 3",
            paper_row: "1(a) §2.2",
            claimed_bound: "O(log k)",
            claimed_growth: GrowthClass::Constant,
            families: &[Cycle, Grid, Barbell, Gnp],
            radius: 1,
            max_n: 24,
            builder: b_chromatic_at_most,
        },
        SchemeEntry {
            id: "non-bipartite",
            title: "chromatic number > 2",
            paper_row: "1(a) §5.1",
            claimed_bound: "Θ(log n)",
            claimed_growth: GrowthClass::Logarithmic,
            families: &[Cycle, Barbell, Grid, Path],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_non_bipartite,
        },
        SchemeEntry {
            id: "co-eulerian",
            title: "coLCP(0): non-Eulerian",
            paper_row: "1(a) §7.3",
            claimed_bound: "O(log n)",
            claimed_growth: GrowthClass::Logarithmic,
            families: &[Path, Grid, Tree, Cycle],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_co_eulerian,
        },
        SchemeEntry {
            id: "symmetric-graph",
            title: "symmetric graph",
            paper_row: "1(a) §6.1",
            claimed_bound: "Θ(n²)",
            claimed_growth: GrowthClass::Quadratic,
            families: &[Cycle, Path, Tree, Gnp],
            radius: 1,
            max_n: 16,
            builder: b_symmetric_graph,
        },
        SchemeEntry {
            id: "tree-fixpoint-free",
            title: "fixpoint-free symmetry on trees",
            paper_row: "1(a) §6.2",
            claimed_bound: "Θ(n)",
            claimed_growth: GrowthClass::Linear,
            families: &[Tree, Path, Grid],
            radius: 1,
            max_n: 20,
            builder: b_tree_fixpoint_free,
        },
        SchemeEntry {
            id: "non-3-colorable",
            title: "chromatic number > 3",
            paper_row: "1(a) §6.3",
            claimed_bound: "O(n²)",
            claimed_growth: GrowthClass::Quadratic,
            families: &[Barbell, Cycle, Grid, Tree],
            radius: 1,
            max_n: 16,
            builder: b_non_three_colorable,
        },
        SchemeEntry {
            id: "prime-order",
            title: "computable property (prime n)",
            paper_row: "1(a) §6",
            claimed_bound: "O(n²)",
            claimed_growth: GrowthClass::Quadratic,
            families: &[Path, Cycle, Tree, Grid],
            radius: 1,
            max_n: 16,
            builder: b_prime_order,
        },
        SchemeEntry {
            id: "maximal-matching",
            title: "maximal matching",
            paper_row: "1(b) §2.3",
            claimed_bound: "0",
            claimed_growth: GrowthClass::Zero,
            families: &[Path, Cycle, Grid, Gnp],
            radius: 2,
            max_n: UNCAPPED,
            builder: b_maximal_matching,
        },
        SchemeEntry {
            id: "lcl-mis",
            title: "LCL: maximal independent set",
            paper_row: "1(b) §3",
            claimed_bound: "0",
            claimed_growth: GrowthClass::Zero,
            families: &[Path, Cycle, Grid, Tree],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_lcl_mis,
        },
        SchemeEntry {
            id: "lcl-agreement",
            title: "LD: agreement",
            paper_row: "1(b) §3.2",
            claimed_bound: "0",
            claimed_growth: GrowthClass::Zero,
            families: &[Path, Cycle, Grid, Tree],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_lcl_agreement,
        },
        SchemeEntry {
            id: "lcl-proper-coloring",
            title: "LCL: proper 4-coloring",
            paper_row: "1(b) §3",
            claimed_bound: "0",
            claimed_growth: GrowthClass::Zero,
            families: &[Path, Cycle, Grid, Tree],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_lcl_proper_coloring,
        },
        SchemeEntry {
            id: "maximum-matching-bipartite",
            title: "maximum matching (König cover)",
            paper_row: "1(b) §2.3",
            claimed_bound: "Θ(1)",
            claimed_growth: GrowthClass::Constant,
            families: &[FBipartite, Grid, Path, Cycle],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_maximum_matching_bipartite,
        },
        SchemeEntry {
            id: "max-weight-matching-bipartite",
            title: "max-weight matching (LP duals)",
            paper_row: "1(b) §2.3",
            claimed_bound: "O(log W)",
            claimed_growth: GrowthClass::Constant,
            families: &[FBipartite, Grid, Path],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_max_weight_matching_bipartite,
        },
        SchemeEntry {
            id: "co-maximal-matching",
            title: "coLCP(0): non-maximal matching",
            paper_row: "1(b) §7.3",
            claimed_bound: "O(log n)",
            claimed_growth: GrowthClass::Logarithmic,
            families: &[Path, Cycle, Grid, Tree],
            radius: 2,
            max_n: UNCAPPED,
            builder: b_co_maximal_matching,
        },
        SchemeEntry {
            id: "leader-election",
            title: "leader election",
            paper_row: "1(b) §5.1",
            claimed_bound: "Θ(log n)",
            claimed_growth: GrowthClass::Logarithmic,
            families: &[Path, Cycle, Grid, Tree],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_leader_election,
        },
        SchemeEntry {
            id: "spanning-tree",
            title: "spanning tree",
            paper_row: "1(b) §5.1",
            claimed_bound: "Θ(log n)",
            claimed_growth: GrowthClass::Logarithmic,
            families: &[Path, Cycle, Grid, Tree, Gnp],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_spanning_tree,
        },
        SchemeEntry {
            id: "acyclic",
            title: "acyclic graph (forest)",
            paper_row: "1(b) §5.1",
            claimed_bound: "O(log n)",
            claimed_growth: GrowthClass::Logarithmic,
            families: &[Tree, Path, Cycle, Grid, Barbell],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_acyclic,
        },
        SchemeEntry {
            id: "max-matching-cycle",
            title: "maximum matching on cycles",
            paper_row: "1(b) §5.4",
            claimed_bound: "Θ(log n)",
            claimed_growth: GrowthClass::Logarithmic,
            families: &[Cycle, Path, Grid],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_max_matching_cycle,
        },
        SchemeEntry {
            id: "hamiltonian-cycle",
            title: "Hamiltonian cycle",
            paper_row: "1(b) §5.1",
            claimed_bound: "Θ(log n)",
            claimed_growth: GrowthClass::Logarithmic,
            families: &[Cycle, Grid, Path, Tree],
            radius: 1,
            max_n: 16,
            builder: b_hamiltonian_cycle,
        },
        SchemeEntry {
            id: "weak-leader-election",
            title: "weak leader election",
            paper_row: "1(b) §7.2",
            claimed_bound: "Θ(log n)",
            claimed_growth: GrowthClass::Logarithmic,
            families: &[Path, Cycle, Grid, Tree],
            radius: 1,
            max_n: UNCAPPED,
            builder: b_weak_leader_election,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// The crate's public scheme surface, as registry ids. Adding a
    /// public scheme without registering it (or registering one twice)
    /// fails here.
    const EXPECTED_IDS: &[&str] = &[
        "acyclic",
        "bipartite",
        "chromatic-at-most-3",
        "co-eulerian",
        "co-maximal-matching",
        "eulerian",
        "even-cycle",
        "hamiltonian-cycle",
        "lcl-agreement",
        "lcl-mis",
        "lcl-proper-coloring",
        "leader-election",
        "line-graph",
        "max-matching-cycle",
        "max-weight-matching-bipartite",
        "maximal-matching",
        "maximum-matching-bipartite",
        "non-3-colorable",
        "non-bipartite",
        "odd-cycle",
        "prime-order",
        "spanning-tree",
        "st-connectivity",
        "st-connectivity-planar",
        "st-reachability",
        "st-reachability-directed",
        "st-unreachability-directed",
        "st-unreachability-undirected",
        "symmetric-graph",
        "tree-fixpoint-free",
        "weak-leader-election",
    ];

    #[test]
    fn registry_covers_every_public_scheme_exactly_once() {
        let entries = all();
        let mut ids: Vec<&str> = entries.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(
            ids, EXPECTED_IDS,
            "registry ids drifted from the public scheme surface"
        );
        let set: BTreeSet<&str> = ids.iter().copied().collect();
        assert_eq!(set.len(), entries.len(), "duplicate registry ids");
    }

    #[test]
    fn every_entry_spans_at_least_three_families() {
        for e in all() {
            assert!(
                e.families.len() >= 3,
                "{} declares only {} families",
                e.id,
                e.families.len()
            );
            let set: BTreeSet<_> = e.families.iter().collect();
            assert_eq!(set.len(), e.families.len(), "{} repeats a family", e.id);
        }
    }

    #[test]
    fn every_entry_builds_a_yes_cell_somewhere() {
        for e in all() {
            let mut built = 0usize;
            let mut yes_seen = false;
            for &family in e.families {
                for polarity in [Polarity::Yes, Polarity::No] {
                    let req = CellRequest {
                        family,
                        n: 10,
                        seed: 5,
                        polarity,
                    };
                    if let Some(cell) = e.build(&req) {
                        built += 1;
                        assert!(cell.n() > 0, "{}: empty instance", e.id);
                        assert_eq!(cell.radius(), e.radius, "{}: radius drift", e.id);
                        if polarity == Polarity::Yes && cell.holds() {
                            yes_seen = true;
                        }
                    }
                }
            }
            assert!(built >= 3, "{} built only {built} cells", e.id);
            assert!(yes_seen, "{} never produced a yes-instance", e.id);
        }
    }

    #[test]
    fn builders_are_deterministic() {
        for e in all() {
            let req = CellRequest {
                family: e.families[0],
                n: 12,
                seed: 11,
                polarity: Polarity::Yes,
            };
            let (Some(a), Some(b)) = (e.build(&req), e.build(&req)) else {
                continue;
            };
            assert_eq!(a.n(), b.n(), "{}: nondeterministic size", e.id);
            assert_eq!(a.holds(), b.holds(), "{}: nondeterministic truth", e.id);
            assert_eq!(a.prove(), b.prove(), "{}: nondeterministic prover", e.id);
        }
    }

    #[test]
    fn find_round_trips() {
        assert_eq!(find("eulerian").unwrap().id, "eulerian");
        assert!(find("perpetual-motion").is_none());
    }
}
