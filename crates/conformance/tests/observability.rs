//! Determinism under observation: the metrics layer (`lcp-obs` plus the
//! engine/dynamic/campaign catalogs) must never perturb what the
//! campaign computes. These tests pin:
//!
//! * report bytes are identical whether or not the sidecar is exported
//!   (metrics are write-only — nothing reads them back);
//! * the timed-out detail enrichment (phase + deadline polls) appears in
//!   the **timed** report only, and survives a checkpoint/resume round
//!   trip without leaking into the deterministic bytes or doubling;
//! * the sidecar itself carries the engine and campaign catalogs with
//!   live (nonzero) values.

use lcp_conformance::checkpoint::run_campaign_checkpointed;
use lcp_conformance::churn::run_churn_campaign;
use lcp_conformance::metrics::{churn_sidecar, static_sidecar};
use lcp_conformance::{run_campaign, CampaignConfig, CellStatus, Profile};

/// Small but real: one honest scheme, two sizes, both polarities.
fn config(seed: u64) -> CampaignConfig {
    CampaignConfig {
        sizes: vec![6, 10],
        tamper_trials: 2,
        adversarial_iterations: 60,
        exhaustive_limit: 10_000,
        scheme_filter: Some("eulerian".into()),
        ..CampaignConfig::for_profile(Profile::Smoke, seed)
    }
}

fn tmp(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("lcp-obs-{}-{name}", std::process::id()));
    p.to_string_lossy().into_owned()
}

/// Extracts a counter's value from the sidecar's embedded registry
/// export (`"name": N`).
fn counter_value(sidecar: &str, name: &str) -> u64 {
    let key = format!("\"{name}\": ");
    let start = sidecar
        .find(&key)
        .map(|i| i + key.len())
        .unwrap_or_else(|| {
            panic!("{name} missing from sidecar:\n{sidecar}");
        });
    sidecar[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("counter value parses")
}

#[test]
fn metrics_export_does_not_perturb_the_report() {
    let baseline = run_campaign(&config(7)).to_json(false);
    let report = run_campaign(&config(7));
    // Exporting registers every catalog and reads every metric — the
    // strongest observation the layer supports.
    let sidecar = static_sidecar(&report);
    assert_eq!(report.to_json(false), baseline);
    assert_eq!(
        run_campaign(&config(7)).to_json(false),
        baseline,
        "a run after the export still reproduces the bytes"
    );

    assert!(sidecar.contains("\"mode\": \"static\""), "{sidecar}");
    assert!(sidecar.contains("\"phase\": \"completeness\""), "{sidecar}");
    assert!(counter_value(&sidecar, "lcp_campaign_cells_run_total") > 0);
    assert!(counter_value(&sidecar, "lcp_engine_prepares_total") > 0);
    assert!(
        counter_value(&sidecar, "lcp_harness_exhaustive_candidates_total") > 0,
        "the no-cells of this config run the exhaustive search"
    );
}

#[test]
fn churn_metrics_export_does_not_perturb_the_report() {
    let baseline = run_churn_campaign(&config(7), 8).to_json(false);
    let report = run_churn_campaign(&config(7), 8);
    let sidecar = churn_sidecar(&report);
    assert_eq!(report.to_json(false), baseline);

    assert!(sidecar.contains("\"mode\": \"churn\""), "{sidecar}");
    assert!(sidecar.contains("\"phase\": \"churn\""), "{sidecar}");
    assert!(counter_value(&sidecar, "lcp_dynamic_reverifies_total") > 0);
}

#[test]
fn timeout_enrichment_is_timed_only_and_survives_resume() {
    let cfg = CampaignConfig {
        cell_budget_ms: Some(0),
        ..config(7)
    };
    let report = run_campaign(&cfg);
    let timed_out = report.count(CellStatus::TimedOut);
    assert!(timed_out > 0, "a zero budget must expire somewhere");

    let timed = report.to_json(true);
    assert_eq!(
        timed.matches(" [timed out in the ").count(),
        timed_out,
        "every timed-out cell's timed detail names its phase:\n{timed}"
    );
    assert!(timed.contains(" deadline polls]"), "{timed}");
    assert!(
        !report.to_json(false).contains("timed out in the"),
        "the enrichment must never reach the deterministic bytes"
    );

    // Checkpoint the run, then resume everything from the file: the
    // loader strips the enrichment back into the structured field, so
    // the deterministic bytes match and a timed re-serialization
    // renders the suffix exactly once per cell (never doubled).
    let path = tmp("timeout-resume.jsonl");
    let (first, _) = run_campaign_checkpointed(&cfg, Some(&path), None).unwrap();
    let (resumed, count) = run_campaign_checkpointed(&cfg, None, Some(&path)).unwrap();
    assert_eq!(count, resumed.cell_count(), "everything resumes");
    assert_eq!(resumed.to_json(false), first.to_json(false));
    assert_eq!(
        resumed.to_json(true).matches(" [timed out in the ").count(),
        resumed.count(CellStatus::TimedOut)
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn churn_timeout_enrichment_round_trips() {
    let cfg = CampaignConfig {
        cell_budget_ms: Some(0),
        ..config(7)
    };
    let report = run_churn_campaign(&cfg, 8);
    let timed_out = report
        .cells
        .iter()
        .filter(|c| c.status == CellStatus::TimedOut)
        .count();
    assert!(timed_out > 0, "a zero budget must expire somewhere");
    let timed = report.to_json(true);
    assert_eq!(
        timed
            .matches(" [timed out in the churn phase after ")
            .count(),
        timed_out,
        "{timed}"
    );
    assert!(!report.to_json(false).contains("timed out in the"));

    // Timed-out churn cells surface their poll count in the sidecar.
    let sidecar = churn_sidecar(&report);
    let timed_row = sidecar
        .lines()
        .find(|l| l.contains("\"status\": \"timed_out\""))
        .expect("a timed-out per-cell row in the sidecar");
    assert!(
        !timed_row.contains("\"deadline_polls\": null"),
        "timed-out cells carry a poll count, not null: {timed_row}"
    );
}
