//! Regenerates **Table 1(b)**: the local proof complexity of verifying
//! solutions of graph problems.

use lcp_bench::{param_row, print_table, run_row, Row};
use lcp_core::harness::GrowthClass;
use lcp_core::{EdgeMap, Instance, Scheme};
use lcp_graph::matching::{self as gm, EdgeWeightMap};
use lcp_graph::{generators, hamilton, spanning, traversal};
use lcp_schemes::complement::Complement;
use lcp_schemes::cycles::MaxMatchingCycle;
use lcp_schemes::hamiltonian::HamiltonianCycle;
use lcp_schemes::lcl;
use lcp_schemes::leader::LeaderElection;
use lcp_schemes::matching::{
    MaxWeightMatchingBipartite, MaximalMatching, MaximumMatchingBipartite, WeightedEdge,
};
use lcp_schemes::spanning_tree::SpanningTree;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut rows: Vec<Row> = Vec::new();

    // ---- LCP(0) ----
    let maximal: Vec<Instance> = [10usize, 20, 40]
        .iter()
        .map(|&n| {
            let g = generators::random_connected(n, n / 2, &mut rng);
            let m = gm::greedy_maximal_matching(&g);
            Instance::unlabeled(g).with_edge_set(m)
        })
        .collect();
    rows.push(run_row(
        "T1b.1",
        "maximal matching",
        "general",
        "0",
        &MaximalMatching,
        &maximal,
        GrowthClass::Zero,
    ));
    let mis_instances: Vec<Instance<bool>> = [10usize, 20, 40]
        .iter()
        .map(|&n| {
            let g = generators::random_connected(n, n / 3, &mut rng);
            let mut in_set = vec![false; g.n()];
            let mut blocked = vec![false; g.n()];
            for v in g.nodes() {
                if !blocked[v] {
                    in_set[v] = true;
                    for &u in g.neighbors(v) {
                        blocked[u] = true;
                    }
                    blocked[v] = true;
                }
            }
            Instance::with_node_data(g, in_set)
        })
        .collect();
    rows.push(run_row(
        "T1b.2",
        "LCL problem (maximal indep. set)",
        "general",
        "0",
        &lcl::mis(),
        &mis_instances,
        GrowthClass::Zero,
    ));
    let agree_instances: Vec<Instance<u64>> = [10usize, 40]
        .iter()
        .map(|&n| Instance::with_node_data(generators::cycle(n), vec![7; n]))
        .collect();
    rows.push(run_row(
        "T1b.3",
        "LD problem (agreement)",
        "conn.",
        "0",
        &lcl::agreement(),
        &agree_instances,
        GrowthClass::Zero,
    ));

    // ---- LCP(O(1)) ----
    let koenig: Vec<Instance> = [6usize, 12, 24]
        .iter()
        .map(|&half| {
            let g = generators::random_bipartite(half, half, 0.4, &mut rng);
            let side = traversal::bipartition(&g).unwrap();
            let m = gm::maximum_bipartite_matching(&g, &side);
            Instance::unlabeled(g).with_edge_set(m.edges())
        })
        .collect();
    rows.push(run_row(
        "T1b.4",
        "maximum matching (König cover)",
        "bipartite",
        "Θ(1)",
        &MaximumMatchingBipartite,
        &koenig,
        GrowthClass::Constant,
    ));

    // ---- LCP(O(log W)) ----
    let mut weight_pairs = Vec::new();
    for w_max in [3u64, 15, 255, 4095] {
        let g = generators::complete_bipartite(6, 6);
        let side = traversal::bipartition(&g).unwrap();
        let weights: EdgeWeightMap = g
            .edges()
            .enumerate()
            .map(|(i, e)| (e, (i as u64 * 7 + 3) % (w_max + 1)))
            .collect();
        let sol = gm::max_weight_bipartite_matching(&g, &side, &weights);
        let matched: std::collections::BTreeSet<_> = sol.edges().into_iter().collect();
        let mut data = EdgeMap::new();
        for (k, w) in &weights {
            data.insert(
                *k,
                WeightedEdge {
                    weight: *w,
                    matched: matched.contains(k),
                },
            );
        }
        let inst = Instance::with_data(g, vec![(); 12], data);
        let proof = MaxWeightMatchingBipartite
            .prove(&inst)
            .expect("optimal matching certifiable");
        weight_pairs.push((w_max as usize, proof.size()));
    }
    let w_ok = weight_pairs.windows(2).all(|w| w[0].1 <= w[1].1)
        && weight_pairs.last().unwrap().1 <= 2 * 13 + 1;
    rows.push(param_row(
        "T1b.5",
        "max-weight matching (LP duals)",
        "bipartite",
        "O(log W)",
        "W",
        &weight_pairs,
        w_ok,
    ));

    // ---- LogLCP ----
    let co_maximal: Vec<Instance> = [8usize, 32, 128, 512]
        .iter()
        .map(|&n| Instance::unlabeled(generators::path(n))) // empty matching: not maximal
        .collect();
    rows.push(run_row(
        "T1b.6",
        "coLCP(0): non-maximal matching",
        "conn.",
        "O(log n)",
        &Complement::new(MaximalMatching),
        &co_maximal,
        GrowthClass::Logarithmic,
    ));
    let leaders: Vec<Instance<bool>> = [8usize, 32, 128, 512]
        .iter()
        .map(|&n| {
            let g = generators::cycle(n);
            Instance::with_node_data(g, (0..n).map(|v| v == n / 2).collect())
        })
        .collect();
    rows.push(run_row(
        "T1b.7",
        "leader election",
        "conn.",
        "Θ(log n)",
        &LeaderElection,
        &leaders,
        GrowthClass::Logarithmic,
    ));
    let trees: Vec<Instance> = [8usize, 32, 128, 512]
        .iter()
        .map(|&n| {
            let g = generators::random_connected(n, n / 2, &mut rng);
            let t = spanning::bfs_spanning_tree(&g, 0);
            let edges = t.edges();
            Instance::unlabeled(g).with_edge_set(edges.iter().map(|&(c, p)| (c, p)))
        })
        .collect();
    rows.push(run_row(
        "T1b.8",
        "spanning tree",
        "conn.",
        "Θ(log n)",
        &SpanningTree,
        &trees,
        GrowthClass::Logarithmic,
    ));
    let cycle_matchings: Vec<Instance> = [9usize, 33, 129, 513]
        .iter()
        .map(|&n| {
            let g = generators::cycle(n);
            let m: Vec<(usize, usize)> = (0..n / 2).map(|i| (2 * i, 2 * i + 1)).collect();
            Instance::unlabeled(g).with_edge_set(m)
        })
        .collect();
    rows.push(run_row(
        "T1b.9",
        "maximum matching",
        "cycles",
        "Θ(log n)",
        &MaxMatchingCycle,
        &cycle_matchings,
        GrowthClass::Logarithmic,
    ));
    let hams: Vec<Instance> = [8usize, 32, 128, 512]
        .iter()
        .map(|&n| {
            let g = generators::cycle(n);
            let cycle = hamilton::hamiltonian_cycle(&g).expect("cycles are Hamiltonian");
            let edges: Vec<(usize, usize)> =
                (0..n).map(|i| (cycle[i], cycle[(i + 1) % n])).collect();
            Instance::unlabeled(g).with_edge_set(edges)
        })
        .collect();
    rows.push(run_row(
        "T1b.10",
        "Hamiltonian cycle",
        "conn.",
        "Θ(log n)",
        &HamiltonianCycle,
        &hams,
        GrowthClass::Logarithmic,
    ));

    print_table(
        "Table 1(b) — local proof complexity of graph problems (measured)",
        &rows,
    );
    println!(
        "note: NLD / NLD#n (unlimited proofs) are definitional rows; LCP′(∞) contains\n\
         all computable properties via the universal scheme (see table1a row T1a.18)."
    );
}
