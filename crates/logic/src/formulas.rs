//! Stock monadic Σ¹₁ sentences and their witness finders.
//!
//! Each function returns a [`Sigma11`] sentence; the companion
//! `*_witness` functions are the centralized solvers a prover uses to
//! find the existential relations (and, where relevant, the witness node
//! `x`). §7.5 notes that some NP-complete properties — 3-colourability
//! chief among them — are monadic Σ¹₁, which is why the witness finders
//! are allowed to be exponential-time: nondeterminism is free for the
//! prover.

use crate::formula::{LocalFormula, Sigma11};
use crate::scheme::Witness;
use lcp_graph::{coloring, Graph};

use LocalFormula::{Adj, And, Eq, ExistsNear, ForallNear, InSet, Or};

/// `k`-colourability: `∃X₀…X_{k−1} ∀y`: `y` is in exactly one class and no
/// neighbour shares its class.
///
/// For `k = 3` this is the paper's flagship example of an NP-complete
/// monadic Σ¹₁ property (§7.5, citing Fagin/Schwentick).
pub fn k_colorable(k: usize) -> Sigma11 {
    assert!(k >= 1, "colourability needs at least one colour");
    // Exactly one class contains y.
    let exactly_one = Or((0..k)
        .map(|c| {
            And(std::iter::once(InSet(1, c))
                .chain((0..k).filter(|&d| d != c).map(|d| InSet(1, d).not()))
                .collect())
        })
        .collect());
    // No neighbour shares y's class: ∀z near 1: adj(y,z) → ∧_c ¬(X_c(y) ∧ X_c(z)).
    let proper = ForallNear {
        radius: 1,
        body: Box::new(Or(vec![
            Adj(1, 2).not(),
            And((0..k)
                .map(|c| And(vec![InSet(1, c), InSet(2, c)]).not())
                .collect()),
        ])),
    };
    Sigma11::new(format!("{k}-colourable"), k, And(vec![exactly_one, proper]))
}

/// Witness for [`k_colorable`]: an exact colouring solver.
pub fn k_colorable_witness(g: &Graph, k: usize) -> Option<Witness> {
    let coloring = coloring::k_coloring(g, k)?;
    let relations = (0..k)
        .map(|c| coloring.iter().map(|&col| col == c).collect())
        .collect();
    Some(Witness {
        relations,
        leader: 0,
    })
}

/// Perfect code (efficient dominating set): `∃X ∀y`: exactly one node of
/// the closed neighbourhood `N[y]` is in `X`.
pub fn perfect_code() -> Sigma11 {
    let in_closed = |a: usize, b: usize| Or(vec![Eq(a, b), Adj(a, b)]);
    let matrix = ExistsNear {
        radius: 1,
        body: Box::new(And(vec![
            InSet(2, 0),
            in_closed(1, 2),
            ForallNear {
                radius: 1,
                body: Box::new(Or(vec![
                    And(vec![InSet(3, 0), in_closed(1, 3)]).not(),
                    Eq(2, 3),
                ])),
            },
        ])),
    };
    Sigma11::new("perfect-code", 1, matrix)
}

/// Witness for [`perfect_code`]: exhaustive subset search (ground truth
/// for small graphs).
pub fn perfect_code_witness(g: &Graph) -> Option<Witness> {
    let n = g.n();
    assert!(n <= 24, "perfect-code brute force is for small graphs");
    'subsets: for mask in 0u64..(1 << n) {
        for y in g.nodes() {
            let mut count = (mask >> y & 1) as u32;
            for &u in g.neighbors(y) {
                count += (mask >> u & 1) as u32;
            }
            if count != 1 {
                continue 'subsets;
            }
        }
        return Some(Witness {
            relations: vec![(0..n).map(|v| mask >> v & 1 == 1).collect()],
            leader: 0,
        });
    }
    None
}

/// Independent dominating set: `∃X ∀y`: if `y ∈ X` no neighbour is in
/// `X`; if `y ∉ X` some neighbour is.
pub fn independent_dominating_set() -> Sigma11 {
    let no_nbr_in = ForallNear {
        radius: 1,
        body: Box::new(Or(vec![Adj(1, 2).not(), InSet(2, 0).not()])),
    };
    let some_nbr_in = ExistsNear {
        radius: 1,
        body: Box::new(And(vec![Adj(1, 2), InSet(2, 0)])),
    };
    let matrix = And(vec![
        Or(vec![InSet(1, 0).not(), no_nbr_in]),
        Or(vec![InSet(1, 0), some_nbr_in]),
    ]);
    Sigma11::new("independent-dominating-set", 1, matrix)
}

/// Witness for [`independent_dominating_set`]: a greedy maximal
/// independent set (always independent dominating).
pub fn independent_dominating_witness(g: &Graph) -> Option<Witness> {
    let mut in_set = vec![false; g.n()];
    let mut blocked = vec![false; g.n()];
    for v in g.nodes() {
        if !blocked[v] {
            in_set[v] = true;
            blocked[v] = true;
            for &u in g.neighbors(v) {
                blocked[u] = true;
            }
        }
    }
    Some(Witness {
        relations: vec![in_set],
        leader: 0,
    })
}

/// "Contains a triangle", with the `∃x` witness doing real work: the
/// matrix only constrains `y = x`, where it demands a triangle through
/// `x`'s neighbourhood.
pub fn has_triangle() -> Sigma11 {
    let triangle_at_y = ExistsNear {
        radius: 1,
        body: Box::new(ExistsNear {
            radius: 1,
            body: Box::new(And(vec![Adj(1, 2), Adj(1, 3), Adj(2, 3)])),
        }),
    };
    let matrix = Or(vec![Eq(0, 1).not(), triangle_at_y]);
    Sigma11::new("has-triangle", 0, matrix)
}

/// Witness for [`has_triangle`]: any triangle corner.
pub fn has_triangle_witness(g: &Graph) -> Option<Witness> {
    for (u, v) in g.edges() {
        for &w in g.neighbors(u) {
            if w != v && g.has_edge(v, w) {
                return Some(Witness {
                    relations: vec![],
                    leader: u,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_global;
    use lcp_graph::generators;

    #[test]
    fn three_colorability_of_known_graphs() {
        let s = k_colorable(3);
        let c5 = generators::cycle(5);
        let w = k_colorable_witness(&c5, 3).unwrap();
        assert!(evaluate_global(&s.matrix, &c5, w.leader, &w.relations));
        assert!(k_colorable_witness(&generators::complete(4), 3).is_none());
    }

    #[test]
    fn two_colorability_matches_bipartiteness() {
        let s = k_colorable(2);
        for n in 3..9 {
            let c = generators::cycle(n);
            let w = k_colorable_witness(&c, 2);
            assert_eq!(w.is_some(), n % 2 == 0, "C_{n}");
            if let Some(w) = w {
                assert!(evaluate_global(&s.matrix, &c, w.leader, &w.relations));
            }
        }
    }

    #[test]
    fn wrong_coloring_fails_matrix() {
        let s = k_colorable(2);
        let c4 = generators::cycle(4);
        // All nodes in class 0: exactly-one holds, properness fails.
        let bad = vec![vec![true; 4], vec![false; 4]];
        assert!(!evaluate_global(&s.matrix, &c4, 0, &bad));
        // A node in both classes: exactly-one fails.
        let ambiguous = vec![
            vec![true, false, true, false],
            vec![true, true, false, true],
        ];
        assert!(!evaluate_global(&s.matrix, &c4, 0, &ambiguous));
    }

    #[test]
    fn perfect_codes_on_cycles() {
        // C_n has a perfect code iff 3 | n.
        let s = perfect_code();
        for n in 3..10 {
            let c = generators::cycle(n);
            let w = perfect_code_witness(&c);
            assert_eq!(w.is_some(), n % 3 == 0, "C_{n}");
            if let Some(w) = w {
                assert!(evaluate_global(&s.matrix, &c, w.leader, &w.relations));
            }
        }
    }

    #[test]
    fn independent_dominating_always_exists() {
        let s = independent_dominating_set();
        for g in [
            generators::cycle(7),
            generators::complete(5),
            generators::grid(3, 4),
            generators::star(6),
        ] {
            let w = independent_dominating_witness(&g).unwrap();
            assert!(
                evaluate_global(&s.matrix, &g, w.leader, &w.relations),
                "greedy MIS should satisfy the sentence on {g:?}"
            );
        }
    }

    #[test]
    fn triangle_detection() {
        let s = has_triangle();
        let k4 = generators::complete(4);
        let w = has_triangle_witness(&k4).unwrap();
        assert!(evaluate_global(&s.matrix, &k4, w.leader, &w.relations));
        assert!(has_triangle_witness(&generators::cycle(6)).is_none());
        // No witness can make C6 satisfy it.
        for x in 0..6 {
            assert!(!evaluate_global(&s.matrix, &generators::cycle(6), x, &[]));
        }
    }
}
