//! Proofs: per-node bit strings (§2.1), stored word-packed.
//!
//! A [`Proof`] is a thin owner over a [`ProofArena`]: all nodes' bits
//! live in one flat `Vec<u64>` with per-node slots. Readers get borrowed
//! [`ProofRef`] slices ([`Proof::get`]); writers mutate slots in place
//! ([`Proof::set`], [`Proof::flip`], [`Proof::write_bits`]), which is
//! what lets the harness's search loops walk millions of candidate
//! proofs without a single heap allocation per candidate.

use crate::arena::ProofArena;
use crate::bits::{AsBits, BitString, ProofRef};

/// A proof `P : V(G) → {0,1}*`, stored per node index.
///
/// The *size* `|P|` is the maximum number of bits at any node — the
/// quantity Table 1 classifies. The empty proof `ε` has size 0.
///
/// ```
/// use lcp_core::{BitString, Proof};
///
/// let p = Proof::from_fn(3, |v| BitString::from_bits((0..v).map(|_| true)));
/// assert_eq!(p.size(), 2);
/// assert_eq!(p.total_bits(), 3);
/// assert!(p.get(0).is_empty());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Proof {
    arena: ProofArena,
}

impl Proof {
    /// The empty proof `ε` for `n` nodes (0 bits everywhere).
    pub fn empty(n: usize) -> Self {
        Proof {
            arena: ProofArena::empty(n),
        }
    }

    /// The empty proof for `n` nodes with `bits_per_node` bits of
    /// reserved capacity per slot, so every later in-budget [`Self::set`]
    /// is allocation-free — the search-loop constructor.
    pub fn with_capacity(n: usize, bits_per_node: usize) -> Self {
        Proof {
            arena: ProofArena::with_capacity(n, bits_per_node),
        }
    }

    /// Builds a proof by evaluating `f` at every node index.
    pub fn from_fn<F>(n: usize, mut f: F) -> Self
    where
        F: FnMut(usize) -> BitString,
    {
        let mut arena = ProofArena::default();
        for v in 0..n {
            arena.push(f(v).as_bits());
        }
        Proof { arena }
    }

    /// Builds a proof from explicit per-node strings (compatibility
    /// shim over [`ProofArena::from_strings`]).
    pub fn from_strings(strings: Vec<BitString>) -> Self {
        Proof {
            arena: ProofArena::from_strings(&strings),
        }
    }

    /// Wraps an already-packed arena.
    pub fn from_arena(arena: ProofArena) -> Self {
        Proof { arena }
    }

    /// The word-packed storage (what the engine binds views against).
    pub fn arena(&self) -> &ProofArena {
        &self.arena
    }

    /// Number of nodes the proof labels.
    pub fn n(&self) -> usize {
        self.arena.n()
    }

    /// The proof string of node `v`, borrowed from the arena
    /// (compatibility shim: prior revisions returned `&BitString`; use
    /// [`ProofRef::to_bitstring`] where an owned copy is needed).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn get(&self, v: usize) -> ProofRef<'_> {
        self.arena.get(v)
    }

    /// Replaces the proof string of node `v` (adversarial testing hook).
    ///
    /// Accepts anything bit-shaped: an owned or borrowed [`BitString`],
    /// or a [`ProofRef`]. In-capacity writes are a word copy; larger
    /// values relocate the slot inside the arena.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn set(&mut self, v: usize, s: impl AsBits) {
        self.arena.set(v, s.as_bits());
    }

    /// Rewrites node `v` from a bit iterator, in place.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn write_bits(&mut self, v: usize, bits: impl IntoIterator<Item = bool>) {
        self.arena.write_bits(v, bits);
    }

    /// Truncates node `v` back to `ε` (reserved capacity is kept).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn clear(&mut self, v: usize) {
        self.arena.clear(v);
    }

    /// Flips bit `index` of node `v` — one XOR.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `index` is out of range.
    pub fn flip(&mut self, v: usize, index: usize) {
        self.arena.flip(v, index);
    }

    /// The proof size `|P|`: maximum bits at any node (0 for empty graphs).
    pub fn size(&self) -> usize {
        self.arena.size()
    }

    /// Total bits across all nodes.
    pub fn total_bits(&self) -> usize {
        self.arena.total_bits()
    }

    /// Iterates over the per-node strings in index order.
    pub fn iter(&self) -> impl Iterator<Item = ProofRef<'_>> {
        self.arena.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_proof_has_size_zero() {
        let p = Proof::empty(5);
        assert_eq!(p.n(), 5);
        assert_eq!(p.size(), 0);
        assert_eq!(p.total_bits(), 0);
        assert!(p.iter().all(|s| s.is_empty()));
    }

    #[test]
    fn size_is_max_not_total() {
        let p = Proof::from_strings(vec![
            BitString::from_bits([true]),
            BitString::from_bits([true, false, true]),
            BitString::new(),
        ]);
        assert_eq!(p.size(), 3);
        assert_eq!(p.total_bits(), 4);
    }

    #[test]
    fn set_overwrites() {
        let mut p = Proof::empty(2);
        p.set(1, BitString::from_bits([true, true]));
        assert_eq!(p.get(1).len(), 2);
        assert_eq!(p.size(), 2);
    }

    #[test]
    fn set_accepts_borrowed_refs() {
        let donor = Proof::from_strings(vec![BitString::from_bits([true, false, true])]);
        let mut p = Proof::empty(2);
        p.set(0, donor.get(0));
        assert_eq!(p.get(0), donor.get(0));
        assert_eq!(
            p.get(0).to_bitstring(),
            BitString::from_bits([true, false, true])
        );
    }

    #[test]
    fn flip_and_clear_mutate_in_place() {
        let mut p = Proof::with_capacity(2, 4);
        p.write_bits(0, [false, false, true]);
        p.flip(0, 0);
        assert_eq!(
            p.get(0).to_bitstring(),
            BitString::from_bits([true, false, true])
        );
        p.clear(0);
        assert!(p.get(0).is_empty());
    }

    #[test]
    fn equality_is_content_based() {
        let a = Proof::from_strings(vec![BitString::from_bits([true]), BitString::new()]);
        let mut b = Proof::with_capacity(2, 8);
        b.set(0, BitString::from_bits([true]));
        assert_eq!(a, b);
        b.set(1, BitString::from_bits([false]));
        assert_ne!(a, b);
    }

    #[test]
    fn proof_on_zero_nodes() {
        let p = Proof::empty(0);
        assert_eq!(p.size(), 0);
        assert_eq!(p.n(), 0);
    }
}
