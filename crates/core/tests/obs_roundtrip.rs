//! Round-trips the metric registry's exports through the workspace's
//! own JSON parser: the `to_json` export must parse with
//! `lcp_core::json`, counters must be monotone across exports, and
//! every exported histogram must be internally consistent (bucket
//! counts summing to the sample count). The Prometheus exposition of
//! the same registry must agree with the JSON on the series it lists.

use lcp_core::json::Json;
use lcp_core::metrics;

fn counter(doc: &Json, name: &str) -> u64 {
    doc.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("counter {name} missing from the JSON export"))
}

#[test]
fn registry_exports_parse_and_stay_consistent() {
    let reg = lcp_obs::global();
    metrics::register(reg);
    // Drive a few series directly so the export has live values even
    // before any engine work runs in this process.
    metrics::PREPARES.inc();
    metrics::PREPARE_NS.observe(1_500);
    metrics::PREPARE_NS.observe(40);
    metrics::SKELETON_CACHE_HITS.add(3);

    let export = reg.to_json();
    let doc = Json::parse(&export).expect("to_json parses with lcp_core::json");
    for section in ["counters", "gauges", "histograms", "spans"] {
        assert!(
            doc.get(section).and_then(Json::as_object).is_some(),
            "export lacks the {section} section:\n{export}"
        );
    }

    let prepares = counter(&doc, "lcp_engine_prepares_total");
    assert!(prepares >= 1);
    assert!(counter(&doc, "lcp_engine_skeleton_cache_total{outcome=\"hit\"}") >= 3);

    // Histograms (and span histograms) are internally consistent:
    // per-bucket counts sum to the total sample count.
    for section in ["histograms", "spans"] {
        for (name, h) in doc.get(section).and_then(Json::as_object).unwrap() {
            let count = h
                .get("count")
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("{name} lacks a count"));
            let bucket_sum: u64 = h
                .get("buckets")
                .and_then(Json::as_array)
                .unwrap_or_else(|| panic!("{name} lacks buckets"))
                .iter()
                .map(|b| b.as_u64().expect("bucket counts are integers"))
                .sum();
            assert_eq!(bucket_sum, count, "{name}: bucket counts must sum to count");
        }
    }
    let prepare_ns = doc
        .get("histograms")
        .and_then(|h| h.get("lcp_engine_prepare_ns"))
        .expect("lcp_engine_prepare_ns exported");
    assert!(prepare_ns.get("count").and_then(Json::as_u64).unwrap() >= 2);
    assert!(prepare_ns.get("sum").and_then(Json::as_u64).unwrap() >= 1_540);

    // Counters are monotone: more work, strictly larger exported value.
    metrics::PREPARES.inc();
    let doc2 = Json::parse(&reg.to_json()).expect("second export parses");
    assert!(counter(&doc2, "lcp_engine_prepares_total") > prepares);

    // The Prometheus exposition lists the same series with the same
    // monotone values.
    let prom = reg.to_prometheus();
    let sample = |series: &str| -> u64 {
        prom.lines()
            .find_map(|l| l.strip_prefix(series)?.strip_prefix(' '))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("series {series} missing from exposition:\n{prom}"))
    };
    assert_eq!(
        sample("lcp_engine_prepares_total"),
        counter(&doc2, "lcp_engine_prepares_total")
    );
    assert_eq!(
        sample("lcp_engine_prepare_ns_count"),
        prepare_ns.get("count").and_then(Json::as_u64).unwrap()
    );
    assert!(prom.contains("# TYPE lcp_engine_prepare_ns histogram"));
}
