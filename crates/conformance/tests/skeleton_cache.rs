//! Cross-cell skeleton sharing over the real registry: schemes asked
//! about the same generated graph reuse one CSR build, and cached cells
//! report exactly what fresh cells report.

use lcp_conformance::{campaign_registry, run_campaign, CampaignConfig, Profile};
use lcp_core::SkeletonCache;
use lcp_graph::families::GraphFamily;
use lcp_schemes::registry::{CellRequest, Polarity};
use std::sync::Arc;

/// A registry sample over one deterministic family member: every entry
/// that sweeps cycles, asked about the same `(cycle, n = 8)` cell.
fn cycle_requests() -> Vec<(&'static str, CellRequest)> {
    campaign_registry()
        .into_iter()
        .filter(|e| e.families.contains(&GraphFamily::Cycle))
        .map(|e| {
            (
                e.id,
                CellRequest {
                    family: GraphFamily::Cycle,
                    n: 8,
                    seed: 7,
                    polarity: Polarity::Yes,
                },
            )
        })
        .collect()
}

#[test]
fn cached_and_fresh_registry_cells_agree_and_the_cache_is_hit() {
    let cache = Arc::new(SkeletonCache::new());
    let mut checked = 0usize;
    for (id, req) in cycle_requests() {
        let entry = lcp_conformance::campaign_registry()
            .into_iter()
            .find(|e| e.id == id)
            .expect("sampled from the registry");
        let Some(fresh) = entry.build(&req) else {
            continue;
        };
        let cached = entry
            .build(&req)
            .expect("deterministic builder")
            .with_cache(Arc::clone(&cache));
        // Verdicts and witnesses are identical through the cache.
        assert_eq!(
            cached.check_completeness(),
            fresh.check_completeness(),
            "{id}: completeness drifted under caching"
        );
        assert_eq!(
            cached.tamper_probe(6, 11),
            fresh.tamper_probe(6, 11),
            "{id}: tamper probe drifted under caching"
        );
        checked += 1;
    }
    assert!(checked >= 5, "sample too small: {checked} cells");
    // Cycle(8) is seed-independent, and most cycle schemes run at radius
    // 1 over the unlabeled C₈ — those cells must have shared one build.
    assert!(
        cache.hits() > cache.misses(),
        "cross-cell sharing did not happen: {cache:?}"
    );
}

#[test]
fn campaign_report_counts_cache_traffic() {
    // One deterministic family at one size: every radius-1 unlabeled
    // scheme over cycles shares the same C₈ skeletons.
    let config = CampaignConfig {
        sizes: vec![8],
        tamper_trials: 4,
        adversarial_iterations: 60,
        family_filter: Some(GraphFamily::Cycle),
        ..CampaignConfig::for_profile(Profile::Smoke, 7)
    };
    let report = run_campaign(&config);
    assert!(report.ok(), "failures: {:?}", report.failures());
    assert!(
        report.cache_hits > 0,
        "campaign cells never shared a skeleton build"
    );
    // The cache stats ride only in the timed JSON; the deterministic
    // form stays free of schedule-dependent numbers.
    assert!(report.to_json(true).contains("\"skeleton_cache\""));
    assert!(!report.to_json(false).contains("\"skeleton_cache\""));
}
