//! `SkeletonCache` contract: preparations served from the cache are
//! indistinguishable from fresh ones, sharing only happens between
//! *equal* instances at equal radii, and the hit/miss counters report
//! what actually happened.

use lcp_core::dynamic::DynScheme;
use lcp_core::{evaluate, Instance, PreparedInstance, Proof, Scheme, SkeletonCache, View};
use lcp_graph::generators;
use std::sync::Arc;

/// The usual 1-bit bipartiteness scheme.
struct Bipartite;
impl Scheme for Bipartite {
    type Node = ();
    type Edge = ();
    fn name(&self) -> String {
        "bipartite".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn holds(&self, inst: &Instance) -> bool {
        lcp_graph::traversal::is_bipartite(inst.graph())
    }
    fn prove(&self, inst: &Instance) -> Option<Proof> {
        let colors = lcp_graph::traversal::bipartition(inst.graph())?;
        Some(Proof::from_fn(inst.n(), |v| {
            lcp_core::BitString::from_bits([colors[v] == 1])
        }))
    }
    fn verify(&self, view: &View) -> bool {
        let c = view.center();
        let mine = view.proof(c).first();
        mine.is_some()
            && view
                .neighbors(c)
                .iter()
                .all(|&u| view.proof(u).first().is_some_and(|b| Some(b) != mine))
    }
}

/// A second radius-1 scheme over the same unlabeled instances.
struct EvenDegrees;
impl Scheme for EvenDegrees {
    type Node = ();
    type Edge = ();
    fn name(&self) -> String {
        "even-degrees".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn holds(&self, inst: &Instance) -> bool {
        lcp_graph::euler::all_degrees_even(inst.graph())
    }
    fn prove(&self, inst: &Instance) -> Option<Proof> {
        self.holds(inst).then(|| Proof::empty(inst.n()))
    }
    fn verify(&self, view: &View) -> bool {
        view.degree(view.center()).is_multiple_of(2)
    }
}

#[test]
fn cached_preparation_is_indistinguishable_from_fresh() {
    let inst = Instance::unlabeled(generators::grid(3, 4));
    let cache = SkeletonCache::new();
    let fresh = PreparedInstance::new(&inst, 1);
    let cached = cache.prepare(&inst, 1);
    let proof = Bipartite.prove(&inst).expect("grids are bipartite");
    for v in 0..inst.n() {
        assert_eq!(cached.bind(v, &proof), fresh.bind(v, &proof), "view {v}");
        assert_eq!(
            cached.members(v).collect::<Vec<_>>(),
            fresh.members(v).collect::<Vec<_>>()
        );
        assert_eq!(
            cached.dependents(v).collect::<Vec<_>>(),
            fresh.dependents(v).collect::<Vec<_>>()
        );
    }
    assert_eq!(
        cached.evaluate(&Bipartite, &proof),
        evaluate(&Bipartite, &inst, &proof)
    );
}

#[test]
fn equal_instances_share_a_build_and_count_hits() {
    let cache = SkeletonCache::new();
    let a = Instance::unlabeled(generators::cycle(8));
    let b = Instance::unlabeled(generators::cycle(8)); // equal, distinct allocation
    let _pa = cache.prepare(&a, 1);
    assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 1, 1));
    let _pb = cache.prepare(&b, 1);
    assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
    // A different radius is a different preparation.
    let _pc = cache.prepare(&a, 2);
    assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 2, 2));
    // A different topology never shares.
    let c = Instance::unlabeled(generators::cycle(9));
    let _pd = cache.prepare(&c, 1);
    assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 3, 3));
    cache.clear();
    assert!(cache.is_empty());
}

#[test]
fn label_differences_are_never_shared() {
    let cache = SkeletonCache::new();
    let g = generators::path(6);
    let a: Instance<u8> = Instance::with_node_data(g.clone(), vec![0; 6]);
    let b: Instance<u8> = Instance::with_node_data(g, vec![0, 0, 0, 9, 0, 0]);
    let pa = cache.prepare(&a, 1);
    let pb = cache.prepare(&b, 1);
    // Same topology (same content hash bucket), different labels: the
    // equality check must fork the builds.
    assert_eq!(cache.misses(), 2);
    assert_eq!(cache.hits(), 0);
    let proof = Proof::empty(6);
    let (va, vb) = (pa.bind(3, &proof), pb.bind(3, &proof));
    assert_eq!(*va.node_label(va.center()), 0u8);
    assert_eq!(*vb.node_label(vb.center()), 9u8);
}

#[test]
fn dyn_schemes_share_one_build_through_with_cache() {
    let cache = Arc::new(SkeletonCache::new());
    // Two different schemes sealed over equal instances — the campaign's
    // cross-cell sharing situation in miniature.
    let c6 = || Instance::unlabeled(generators::cycle(6));
    let bip = DynScheme::seal(Bipartite, c6()).with_cache(Arc::clone(&cache));
    let even = DynScheme::seal(EvenDegrees, c6()).with_cache(Arc::clone(&cache));

    let uncached_bip = DynScheme::seal(Bipartite, c6());
    let uncached_even = DynScheme::seal(EvenDegrees, c6());

    // Identical results with and without the cache...
    assert_eq!(bip.check_completeness(), uncached_bip.check_completeness());
    assert_eq!(
        bip.tamper_probe(8, 3).expect("bits to tamper"),
        uncached_bip.tamper_probe(8, 3).expect("bits to tamper")
    );
    assert_eq!(
        even.check_completeness(),
        uncached_even.check_completeness()
    );
    // ...and one CSR build served all cached operations (both schemes
    // have radius 1 over equal instances).
    assert_eq!(cache.misses(), 1, "one build for the shared graph");
    assert!(cache.hits() >= 2, "later operations hit ({:?})", cache);
}
