//! The `lcp-serve` daemon binary.
//!
//! ```text
//! lcp-serve [--addr HOST:PORT] [--workers N] [--queue N] [--capacity N]
//!           [--preload DIR] [--port-file PATH]
//! lcp-serve --client-smoke ADDR
//! ```
//!
//! `--preload DIR` attaches a persistent artifact directory
//! (`docs/FORMAT.md`): skeleton cores are mapped back from disk across
//! daemon restarts instead of being rebuilt, and fresh builds are
//! persisted for the next process. The `stats` op reports how many
//! resident cells were served each way.
//!
//! The daemon serves the protocol of `docs/PROTOCOL.md` until it
//! receives SIGTERM/SIGINT or a `shutdown` request, then drains: the
//! request in flight on each connection is answered, every connection
//! is closed, and the process exits 0 after printing
//! `lcp-serve: drained and stopped`. `--port-file` writes the bound
//! address (e.g. `127.0.0.1:45123`) once listening, so scripts binding
//! port 0 can find the daemon.
//!
//! `--client-smoke ADDR` runs a tiny over-TCP exercise against an
//! already-running daemon instead (prepare → verify → session → two
//! mutations → close, with `metrics` scrapes asserting nonzero request
//! counters and zero skeleton rebuilds across the resident verify) —
//! the CI serve-smoke job's client half.

use lcp_graph::families::GraphFamily;
use lcp_schemes::registry::Polarity;
use lcp_serve::protocol::CellCoord;
use lcp_serve::{Client, Server, ServerConfig, WireMutation};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const USAGE: &str = "usage: lcp-serve [--addr HOST:PORT] [--workers N] [--queue N] \
[--capacity N] [--preload DIR] [--port-file PATH] | lcp-serve --client-smoke ADDR";

/// Process-wide signal flag: the handler may only do async-signal-safe
/// work, so it stores one atomic and the main thread polls it.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALLED.store(true, Ordering::Relaxed);
}

fn install_signal_handlers() {
    // SIGTERM = 15, SIGINT = 2 on every platform this workspace
    // targets; `signal` comes from the libc std already links.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(15, on_signal);
        signal(2, on_signal);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServerConfig::default();
    let mut port_file: Option<String> = None;
    let mut client_smoke: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let result: Result<(), String> = match arg.as_str() {
            "--addr" => value("--addr").map(|v| config.addr = v),
            "--workers" => parse_usize(&mut value, "--workers").map(|v| config.workers = v),
            "--queue" => parse_usize(&mut value, "--queue").map(|v| config.queue = v),
            "--capacity" => parse_usize(&mut value, "--capacity").map(|v| config.capacity = v),
            "--preload" => {
                value("--preload").map(|v| config.preload = Some(std::path::PathBuf::from(v)))
            }
            "--port-file" => value("--port-file").map(|v| port_file = Some(v)),
            "--client-smoke" => value("--client-smoke").map(|v| client_smoke = Some(v)),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown argument {other:?}")),
        };
        if let Err(msg) = result {
            eprintln!("lcp-serve: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    }

    if let Some(addr) = client_smoke {
        return run_client_smoke(&addr);
    }

    install_signal_handlers();
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("lcp-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("lcp-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, addr.to_string()) {
            eprintln!("lcp-serve: cannot write port file {path:?}: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("lcp-serve: listening on {addr}");

    let shutdown = server.shutdown_handle();
    let watcher = std::thread::spawn(move || {
        // Forward the signal flag to the server's drain flag; exit once
        // either side initiated shutdown (a `shutdown` request sets the
        // drain flag directly).
        loop {
            if SIGNALLED.load(Ordering::Relaxed) {
                shutdown.store(true, Ordering::Relaxed);
                return;
            }
            if shutdown.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    });

    let outcome = server.run();
    watcher.join().expect("signal watcher panicked");
    match outcome {
        Ok(()) => {
            eprintln!("lcp-serve: drained and stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lcp-serve: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Reads one sample value out of a Prometheus-style text export:
/// `series` is the full key (`name` or `name{labels}`), the value the
/// integer after the space.
fn prom_value(text: &str, series: &str) -> Option<i64> {
    text.lines()
        .find_map(|line| line.strip_prefix(series)?.strip_prefix(' '))
        .and_then(|v| v.trim().parse().ok())
}

fn parse_usize(
    value: &mut impl FnMut(&str) -> Result<String, String>,
    name: &str,
) -> Result<usize, String> {
    value(name)?
        .parse()
        .map_err(|_| format!("{name} needs an unsigned integer"))
}

/// The CI client half: exercise the daemon over real TCP and leave a
/// session open long enough for the drain path to matter.
fn run_client_smoke(addr: &str) -> ExitCode {
    let coord = CellCoord {
        scheme: "bipartite".into(),
        family: GraphFamily::Cycle,
        n: 256,
        seed: 11,
        polarity: Polarity::Yes,
    };
    let run = || -> Result<(), Box<dyn std::error::Error>> {
        let mut client = Client::connect(addr)?;
        client.prepare(&coord)?;
        // A resident verify must be pure cache reuse: the skeleton-miss
        // count (= skeleton builds) may not move across it.
        let misses_before = prom_value(&client.metrics_text()?, "lcp_serve_skeleton_misses")
            .ok_or("lcp_serve_skeleton_misses missing from the metrics export")?;
        client.verify(&coord, Some(5_000))?;
        let misses_after = prom_value(&client.metrics_text()?, "lcp_serve_skeleton_misses")
            .ok_or("lcp_serve_skeleton_misses missing from the metrics export")?;
        if misses_after != misses_before {
            return Err(format!(
                "resident verify rebuilt skeletons ({misses_before} -> {misses_after} misses)"
            )
            .into());
        }
        client.session_open(&coord)?;
        client.mutate(&WireMutation::EdgeInsert(0, 2))?;
        client.mutate(&WireMutation::EdgeDelete(0, 2))?;
        let closed = client.session_close()?;
        let mutations = closed
            .get("mutations")
            .and_then(lcp_core::json::Json::as_u64)
            .unwrap_or(0);
        let text = client.metrics_text()?;
        for series in [
            "lcp_serve_requests_total{op=\"prepare\"}",
            "lcp_serve_requests_total{op=\"verify\"}",
            "lcp_serve_requests_total{op=\"mutate\"}",
            "lcp_serve_requests_total{op=\"metrics\"}",
        ] {
            if prom_value(&text, series).unwrap_or(0) == 0 {
                return Err(format!("{series} is zero after the smoke workload").into());
            }
        }
        println!("client-smoke: ok ({mutations} mutations applied)");
        println!("client-smoke: metrics ok (skeleton rebuilds across resident verify: 0)");
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("lcp-serve: client smoke failed: {e}");
            ExitCode::FAILURE
        }
    }
}
