//! The universal `O(n²)` scheme (§6): "encode the structure of `G` and
//! the unique node identifiers in `O(n²)` bits; the nodes can verify that
//! their neighbours agree on the structure of `G`, and then they can
//! solve the problem by brute force."
//!
//! Section 6 shows this brute-force ceiling is essentially tight for
//! *symmetric graphs* (Ω(n²), §6.1) and *non-3-colourability*
//! (Ω(n²/log n), §6.3) — both instantiated here as [`Universal`]
//! schemes, with the matching attacks in `lcp-lower-bounds`.

use lcp_core::{BitReader, BitString, BitWriter, Instance, Proof, ProofRef, Scheme, View};
use lcp_graph::{coloring, iso, traversal, Graph, NodeId};

/// The universal scheme for an arbitrary computable property of
/// connected graphs.
///
/// Every node's proof is the same string: `n`, the sorted identifier
/// list, and the adjacency upper triangle in identifier order. Each node
/// checks that (a) all neighbours carry the identical string, (b) its own
/// row of the encoded adjacency matches its true neighbourhood, and (c)
/// the decision function accepts the decoded graph. On connected inputs,
/// (a)+(b) force the encoding to *be* the input graph.
pub struct Universal<F> {
    name: String,
    decide: F,
}

impl<F> Universal<F>
where
    F: Fn(&Graph) -> bool,
{
    /// Builds the universal scheme for `decide` (the computable property).
    pub fn new(name: impl Into<String>, decide: F) -> Self {
        Universal {
            name: name.into(),
            decide,
        }
    }

    fn encode(g: &Graph) -> BitString {
        let mut ids: Vec<NodeId> = g.ids().to_vec();
        ids.sort_unstable();
        let pos: std::collections::HashMap<NodeId, usize> =
            ids.iter().enumerate().map(|(i, &d)| (d, i)).collect();
        let n = g.n();
        let mut w = BitWriter::new();
        w.write_gamma(n as u64);
        for &id in &ids {
            w.write_gamma(id.0);
        }
        // Upper triangle in sorted-identifier order.
        let mut matrix = vec![false; n * n];
        for (u, v) in g.edges() {
            let (i, j) = (pos[&g.id(u)], pos[&g.id(v)]);
            matrix[i * n + j] = true;
            matrix[j * n + i] = true;
        }
        for i in 0..n {
            for j in (i + 1)..n {
                w.write_bit(matrix[i * n + j]);
            }
        }
        w.finish()
    }

    fn decode(s: ProofRef<'_>) -> Option<Graph> {
        let mut r = BitReader::new(s);
        let n = r.read_gamma().ok()? as usize;
        if n > 100_000 {
            return None; // refuse absurd claims
        }
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(NodeId(r.read_gamma().ok()?));
        }
        // Identifiers must arrive sorted and distinct.
        if !ids.windows(2).all(|w| w[0] < w[1]) {
            return None;
        }
        let mut g = Graph::from_ids(ids).ok()?;
        for i in 0..n {
            for j in (i + 1)..n {
                if r.read_bit().ok()? {
                    g.add_edge(i, j).ok()?;
                }
            }
        }
        r.is_exhausted().then_some(g)
    }
}

impl<F> Scheme for Universal<F>
where
    F: Fn(&Graph) -> bool,
{
    type Node = ();
    type Edge = ();

    fn name(&self) -> String {
        format!("universal:{}", self.name)
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance) -> bool {
        inst.n() > 0 && traversal::is_connected(inst.graph()) && (self.decide)(inst.graph())
    }

    fn prove(&self, inst: &Instance) -> Option<Proof> {
        if !self.holds(inst) {
            return None;
        }
        let enc = Self::encode(inst.graph());
        Some(Proof::from_fn(inst.n(), |_| enc.clone()))
    }

    fn verify(&self, view: &View) -> bool {
        let c = view.center();
        let mine = view.proof(c);
        // (a) Neighbour agreement on the exact string.
        if view.neighbors(c).iter().any(|&u| view.proof(u) != mine) {
            return false;
        }
        let Some(decoded) = Self::decode(mine) else {
            return false;
        };
        // (b) My row matches my true neighbourhood.
        let Some(me) = decoded.index_of(view.id(c)) else {
            return false;
        };
        let mut claimed: Vec<NodeId> = decoded
            .neighbors(me)
            .iter()
            .map(|&u| decoded.id(u))
            .collect();
        claimed.sort_unstable();
        let mut actual: Vec<NodeId> = view.neighbors(c).iter().map(|&u| view.id(u)).collect();
        actual.sort_unstable();
        if claimed != actual {
            return false;
        }
        // (c) Brute force the property on the decoded graph.
        (self.decide)(&decoded)
    }
}

/// §6.1: the *symmetric graphs* property (has a nontrivial
/// automorphism) through the universal scheme — `Θ(n²)` is optimal.
pub fn symmetric_graph() -> Universal<impl Fn(&Graph) -> bool> {
    Universal::new("symmetric-graph", iso::is_symmetric)
}

/// §6.3: non-3-colourability through the universal scheme; the fooling
/// attack shows `Ω(n²/log n)` is necessary, so brute force is near
/// optimal.
pub fn non_three_colorable() -> Universal<impl Fn(&Graph) -> bool> {
    Universal::new("chromatic>3", |g: &Graph| !coloring::is_k_colorable(g, 3))
}

/// An arbitrary "computable property" exemplar for the Table 1(a) row:
/// `n(G)` is prime (hard for any sub-counting certificate, trivial for
/// the universal one).
pub fn prime_order() -> Universal<impl Fn(&Graph) -> bool> {
    Universal::new("prime-n", |g: &Graph| {
        let n = g.n();
        n >= 2
            && (2..n)
                .take_while(|d| d * d <= n)
                .all(|d| !n.is_multiple_of(d))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::evaluate;
    use lcp_core::harness::{
        check_completeness, check_soundness_exhaustive, classify_growth, measure_sizes,
        GrowthClass, Soundness,
    };
    use lcp_graph::generators;

    #[test]
    fn symmetric_graphs_certified() {
        let instances: Vec<Instance> = vec![
            Instance::unlabeled(generators::cycle(6)),
            Instance::unlabeled(generators::complete(4)),
            Instance::unlabeled(generators::star(3)),
            Instance::unlabeled(generators::complete_bipartite(2, 3)),
        ];
        check_completeness(
            &symmetric_graph(),
            &lcp_core::engine::prepare_sweep(&symmetric_graph(), &instances),
        )
        .unwrap();
    }

    #[test]
    fn asymmetric_graph_rejected() {
        // The 7-node asymmetric spider.
        let mut g = Graph::with_contiguous_ids(7);
        for (u, v) in [(0, 1), (0, 2), (2, 3), (0, 4), (4, 5), (5, 6)] {
            g.add_edge(u, v).unwrap();
        }
        let inst = Instance::unlabeled(g);
        let scheme = symmetric_graph();
        assert!(!scheme.holds(&inst));
        assert!(scheme.prove(&inst).is_none());
    }

    #[test]
    fn proof_size_quadratic() {
        let scheme = prime_order();
        let instances: Vec<Instance> = [5usize, 11, 23, 47]
            .iter()
            .map(|&n| Instance::unlabeled(generators::cycle(n)))
            .collect();
        let points = measure_sizes(
            &scheme,
            &lcp_core::engine::prepare_sweep(&scheme, &instances),
        );
        assert_eq!(classify_growth(&points), GrowthClass::Quadratic);
    }

    #[test]
    fn non_three_colorable_k5() {
        let scheme = non_three_colorable();
        let yes = Instance::unlabeled(generators::complete(5));
        let proof = scheme.prove(&yes).unwrap();
        assert!(evaluate(&scheme, &yes, &proof).accepted());
        let no = Instance::unlabeled(generators::cycle(5)); // 3-colourable
        assert!(!scheme.holds(&no));
        assert!(scheme.prove(&no).is_none());
    }

    #[test]
    fn wrong_graph_encoding_rejected() {
        // Encode a *different* graph (with the right ids) and check the
        // row check fires.
        let inst = Instance::unlabeled(generators::cycle(4));
        let scheme = prime_order();
        let _ = scheme; // prime(4) is false anyway; use a thinner decide:
        let any = Universal::new("anything", |_: &Graph| true);
        let fake_graph = generators::path(4); // same ids 1..4, other edges
        let enc = Universal::<fn(&Graph) -> bool>::encode(&fake_graph);
        let proof = Proof::from_fn(4, |_| enc.clone());
        let verdict = evaluate(&any, &inst, &proof);
        assert!(!verdict.accepted(), "row consistency must catch the lie");
    }

    #[test]
    fn tiny_no_instances_resist_all_small_proofs() {
        // prime-n on a 4-cycle (4 is composite): nothing of ≤ 2 bits helps
        // (a valid encoding of a 4-node graph needs ≥ 4 + 6 bits anyway).
        let inst = Instance::unlabeled(generators::cycle(4));
        match check_soundness_exhaustive(
            &prime_order(),
            &lcp_core::engine::prepare(&prime_order(), &inst),
            2,
        )
        .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("prime-n forged by {p:?}"),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for g in [
            generators::cycle(5),
            generators::complete(4),
            generators::grid(2, 3),
            lcp_graph::ops::shift_ids(&generators::path(4), 100),
        ] {
            let enc = Universal::<fn(&Graph) -> bool>::encode(&g);
            let dec = Universal::<fn(&Graph) -> bool>::decode((&enc).into()).unwrap();
            assert_eq!(dec.n(), g.n());
            assert_eq!(dec.m(), g.m());
            for (u, v) in g.edges() {
                let du = dec.index_of(g.id(u)).unwrap();
                let dv = dec.index_of(g.id(v)).unwrap();
                assert!(dec.has_edge(du, dv));
            }
        }
    }
}
