//! Anonymous networks and the §7.1 model translation.
//!
//! Model `M2` has no node identifiers — only port numbers and a leader.
//! This example takes an identifier-hungry `M1` scheme (a counting
//! spanning tree certifying that `n` is odd) and runs it in an anonymous
//! network: the proof *carries its own identifiers* as DFS intervals,
//! locally checked for global uniqueness.
//!
//! ```sh
//! cargo run --example anonymous_network
//! ```

use lcp::core::components::CountingTreeCert;
use lcp::core::{BitReader, BitWriter, Instance, Proof, Scheme, View};
use lcp::graph::{generators, traversal};
use lcp::sim::{evaluate_anonymous, AnonymousFromIdentified, AnonymousScheme};

/// An M1 scheme: "n(G) is odd", certified by a counting spanning tree —
/// it reads identifiers for root election and parent pointers.
struct OddN;

impl Scheme for OddN {
    type Node = ();
    type Edge = ();
    fn name(&self) -> String {
        "odd-n".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn holds(&self, inst: &Instance) -> bool {
        traversal::is_connected(inst.graph()) && inst.n() % 2 == 1
    }
    fn prove(&self, inst: &Instance) -> Option<Proof> {
        if !self.holds(inst) {
            return None;
        }
        let tree = lcp::graph::spanning::bfs_spanning_tree(inst.graph(), 0);
        let certs = CountingTreeCert::prove(inst.graph(), &tree);
        Some(Proof::from_fn(inst.n(), |v| {
            let mut w = BitWriter::new();
            certs[v].encode(&mut w);
            w.finish()
        }))
    }
    fn verify(&self, view: &View) -> bool {
        let certs = |u: usize| {
            let mut r = BitReader::new(view.proof(u));
            let c = CountingTreeCert::decode(&mut r).ok()?;
            r.is_exhausted().then_some(c)
        };
        CountingTreeCert::verify_at_center(view, certs)
            && certs(view.center()).expect("decoded").n_claim % 2 == 1
    }
}

fn main() {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
    let g = lcp::graph::generators::random_connected(15, 9, &mut rng);
    let inst = Instance::unlabeled(g);

    // Translate to the anonymous model and pick a leader.
    let anon = AnonymousFromIdentified::new(OddN);
    let leader = 6;
    let proof = anon.prove(&inst, leader).expect("n = 15 is odd");
    println!(
        "anonymous certificate: {} bits/node (DFS intervals + parent port + inner proof)",
        proof.size()
    );

    // The verifier runs on PortViews: it never sees a real identifier.
    let verdict = evaluate_anonymous(&anon, &inst, leader, &proof);
    println!("anonymous network accepts: {}", verdict.accepted());
    assert!(verdict.accepted());

    // Forged intervals (a swapped pair of certificates) are caught by the
    // purely local interval-chaining conditions.
    let mut forged = proof.clone();
    let p1 = proof.get(1);
    forged.set(1, proof.get(2));
    forged.set(2, p1);
    let verdict = evaluate_anonymous(&anon, &inst, leader, &forged);
    println!(
        "forged identifiers rejected by nodes {:?}",
        verdict.rejecting()
    );
    assert!(!verdict.accepted());

    // Even n: the prover refuses, regardless of leader choice.
    let even = Instance::unlabeled(generators::cycle(8));
    assert!(anon.prove(&even, 0).is_none());
    println!("even-n network: prover correctly refuses");
}
