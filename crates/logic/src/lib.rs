//! # `lcp-logic` — monadic Σ¹₁ properties as LogLCP schemes (§7.5)
//!
//! §7.5 of the paper observes that on connected graphs every monadic Σ¹₁
//! graph property is in `LogLCP`. The argument is constructive, and this
//! crate executes it:
//!
//! 1. A sentence in Schwentick–Barthelmann local normal form
//!    `∃X₁ … ∃X_k ∃x ∀y : φ(X₁, …, X_k, x, y)` is represented by
//!    [`Sigma11`], with `φ` a [`LocalFormula`] whose quantifiers are
//!    radius-bounded around `y`.
//! 2. A *witness* (the relations `A₁ … A_k` and the node `a`) is turned
//!    into a locally checkable proof: one bit per relation per node, plus
//!    a spanning-tree certificate rooted at `a` proving `∃x`
//!    ([`Sigma11Scheme`]).
//! 3. The verifier checks the tree certificate and evaluates `φ` with
//!    `y :=` itself inside its radius-`r` view — legal because `φ` is
//!    local around `y`.
//!
//! Stock sentences ([`formulas`]) include k-colourability, perfect codes,
//! independent dominating sets, and triangle-freeness-with-witness.

pub mod eval;
pub mod formula;
pub mod formulas;
pub mod scheme;

pub use eval::{evaluate_at, evaluate_global};
pub use formula::{LocalFormula, Sigma11};
pub use scheme::{Sigma11Scheme, Witness};
