//! # `lcp-core` — the locally-checkable-proofs model
//!
//! This crate is the executable form of the definitions in §2 of Göös &
//! Suomela, *Locally Checkable Proofs* (PODC 2011):
//!
//! * a **proof** `P : V(G) → {0,1}*` assigns a bit string to every node
//!   ([`Proof`], built on [`BitString`]); its size is the maximum number
//!   of bits at any node;
//! * a **local verifier** with horizon `r` maps each node's radius-`r`
//!   view `(G[v,r], P[v,r], v)` to accept/reject; views are *extracted*
//!   ([`View`]) so a verifier physically cannot read outside its horizon;
//! * a **proof labelling scheme** pairs a prover `f` with a verifier `A`
//!   ([`Scheme`]); a property is in `LCP(s)` when yes-instances have
//!   all-accepted proofs of size ≤ `s(n)` and no-instances never do.
//!
//! The [`harness`] module turns those ∀/∃ quantifiers into executable
//! checks: completeness sweeps, exhaustive proof enumeration on small
//! instances, randomized adversarial proof search, and proof-size
//! measurement with growth-class fitting (the "Proof size s" column of
//! Table 1). The [`engine`] module is the substrate those checks run on:
//! a [`PreparedInstance`] caches every node's view *skeleton* (the
//! proof-independent ball topology) once per `(instance, radius)`, and
//! candidate proofs live in a word-packed [`ProofArena`] that bound
//! views borrow directly — search loops mutate one preallocated arena in
//! place, performing zero heap allocations per candidate — with
//! node-level parallelism behind the `parallel` feature.
//!
//! ## Example: the bipartiteness scheme in miniature
//!
//! ```
//! use lcp_core::{evaluate, Instance, Proof, Scheme, View};
//! use lcp_core::bits::BitString;
//! use lcp_graph::{generators, traversal};
//!
//! /// 1-bit scheme: the proof is a 2-colouring (§1.2).
//! struct Bipartite;
//!
//! impl Scheme for Bipartite {
//!     type Node = ();
//!     type Edge = ();
//!     fn name(&self) -> String { "bipartite".into() }
//!     fn radius(&self) -> usize { 1 }
//!     fn holds(&self, inst: &Instance) -> bool {
//!         traversal::is_bipartite(inst.graph())
//!     }
//!     fn prove(&self, inst: &Instance) -> Option<Proof> {
//!         let colors = traversal::bipartition(inst.graph())?;
//!         Some(Proof::from_fn(inst.graph().n(), |v| {
//!             BitString::from_bits([colors[v] == 1])
//!         }))
//!     }
//!     fn verify(&self, view: &View) -> bool {
//!         let me = view.proof(view.center());
//!         view.neighbors(view.center()).iter().all(|&u| {
//!             view.proof(u).first() != me.first()
//!         })
//!     }
//! }
//!
//! let yes = Instance::unlabeled(generators::cycle(6));
//! let proof = Bipartite.prove(&yes).unwrap();
//! assert_eq!(proof.size(), 1);
//! assert!(evaluate(&Bipartite, &yes, &proof).accepted());
//! ```

pub mod arena;
pub mod artifact;
pub mod batch;
pub mod bits;
pub mod components;
pub mod deadline;
pub mod dynamic;
pub mod engine;
pub mod frozen;
pub mod harness;
pub mod instance;
pub mod json;
pub mod metrics;
pub mod proof;
pub mod scheme;
pub mod view;

pub use arena::{BatchArena, ProofArena};
pub use artifact::{ArtifactSource, ArtifactStore, CoreProvenance};
pub use batch::{BatchPolicy, BatchView};
pub use bits::{AsBits, BitReader, BitString, BitWriter, CodecError, ProofRef};
pub use deadline::{Deadline, DeadlineExpired};
pub use dynamic::{seal_mutable, CellMutationError, DynScheme, MutableCell, TamperProbe};
pub use engine::{prepare, prepare_sweep, PreparedInstance, SkeletonCache, SkeletonStore};
pub use frozen::{ArtifactError, CoreBuilder, FrozenCore, PortableLabel};
pub use instance::{EdgeMap, Instance};
pub use proof::Proof;
pub use scheme::{evaluate, evaluate_until_reject, Scheme, Verdict};
pub use view::View;
