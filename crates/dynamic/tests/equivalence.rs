//! The dynamic-instance acceptance suite: for random mutation sequences
//! on registry schemes, incremental re-verification is observationally
//! identical to re-preparing and fully evaluating from scratch —
//! verdicts, per-node outputs, *and* the rejecting-node witness — and
//! the dirty set always contains every node whose output changed.
//!
//! The strategy draws real cells from the scheme registry (the same
//! builders the conformance campaign sweeps), opens a mutable copy, and
//! churns it with a seeded stream, cross-checking after every single
//! mutation.

use lcp_core::{BitString, Instance, Proof, Scheme, View};
use lcp_dynamic::churn::{ChurnConfig, ChurnStream};
use lcp_dynamic::DynamicInstance;
use lcp_schemes::registry::{self, CellRequest, Polarity};
use proptest::prelude::*;

/// Draws `(registry entry, family, n, seed, steps)` coordinates; the
/// polarity rides along in a seed bit (the vendored proptest implements
/// tuple strategies up to arity 5).
fn cell_coords() -> impl Strategy<Value = (usize, usize, usize, u64, usize)> {
    let entries = registry::all().len();
    (0..entries, 0usize..8, 6usize..20, any::<u64>(), 1usize..25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every mutation: (a) the set of nodes whose from-scratch
    /// output changed is contained in the dirty set, and (b) after
    /// `reverify`, the cached outputs and witness equal the from-scratch
    /// evaluation of the mutated instance.
    #[test]
    fn registry_churn_matches_from_scratch_evaluation(
        (entry_idx, family_idx, n, seed, steps) in cell_coords()
    ) {
        let entries = registry::all();
        let entry = &entries[entry_idx];
        let family = entry.families[family_idx % entry.families.len()];
        let polarity = if seed & 1 == 0 { Polarity::Yes } else { Polarity::No };
        let req = CellRequest { family, n, seed, polarity };
        let Some(cell) = entry.build(&req) else {
            // Polarity unrealizable on this family — nothing to churn.
            return Ok(());
        };
        // Huge cells make per-step full checks pointless; the campaign
        // covers those via its clamped sizes.
        prop_assume!(cell.n() <= 64);

        let mut dynamic = DynamicInstance::from_cell(cell.dynamic_cell());
        let first = dynamic.reverify();
        let reference = dynamic.full_check();
        prop_assert_eq!(first.accepted, reference.accepted());
        prop_assert_eq!(first.witness, reference.rejecting().first().copied());

        let mut stream = ChurnStream::new(ChurnConfig::new(seed ^ 0xc0ffee));
        let mut previous = reference;
        for step in 0..steps {
            let Some(mutation) = stream.propose(&dynamic) else { break };
            let impact = dynamic.apply(&mutation).unwrap();
            let fresh = dynamic.full_check();

            // (a) Dirty-containment: every node whose from-scratch output
            // changed must be awaiting re-verification.
            let dirty = dynamic.dirty_nodes();
            for v in 0..dynamic.n() {
                if previous.outputs()[v] != fresh.outputs()[v] {
                    prop_assert!(
                        dirty.binary_search(&v).is_ok(),
                        "step {}: output of node {} changed ({:?}) without being dirtied \
                         (dirty = {:?}, impact = {:?})",
                        step, v, mutation, dirty, impact
                    );
                }
            }

            // (b) Equivalence: incremental == from scratch, node for node.
            let outcome = dynamic.reverify();
            prop_assert_eq!(outcome.accepted, fresh.accepted(), "step {}", step);
            prop_assert_eq!(
                outcome.witness,
                fresh.rejecting().first().copied(),
                "witness diverged at step {}",
                step
            );
            let cached = dynamic.cached_verdict().expect("clean after reverify");
            prop_assert_eq!(&cached, &fresh, "outputs diverged at step {}", step);
            previous = fresh;
        }
    }
}

/// A label-sensitive radius-1 scheme for typed label-churn coverage:
/// accepts iff the centre's label equals the parity of its proof bits
/// and no neighbour carries a larger label.
struct LabelledParity;
impl Scheme for LabelledParity {
    type Node = u8;
    type Edge = ();
    fn name(&self) -> String {
        "labelled-parity".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn holds(&self, _: &Instance<u8>) -> bool {
        true
    }
    fn prove(&self, inst: &Instance<u8>) -> Option<Proof> {
        Some(Proof::empty(inst.n()))
    }
    fn verify(&self, view: &View<u8>) -> bool {
        let c = view.center();
        let parity = (view.proof(c).iter().filter(|&b| b).count() % 2) as u8;
        *view.node_label(c) % 2 == parity
            && view
                .neighbors(c)
                .iter()
                .all(|&u| *view.node_label(u) <= *view.node_label(c) + 1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Typed path: interleaved label changes, proof rewrites, and edge
    /// churn on a labelled scheme stay equivalent to from-scratch
    /// evaluation.
    #[test]
    fn labelled_churn_matches_from_scratch(seed in any::<u64>(), steps in 1usize..30) {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let g = lcp_graph::generators::random_connected(10, 4, &mut rng);
        let labels: Vec<u8> = (0..10).map(|_| rng.random_range(0..4u8)).collect();
        let inst = Instance::with_node_data(g, labels);
        let mut dynamic = DynamicInstance::seal(LabelledParity, inst);
        dynamic.reverify();

        for step in 0..steps {
            match rng.random_range(0..4u32) {
                0 => {
                    let v = rng.random_range(0..10);
                    let _ = dynamic.set_node_label(v, rng.random_range(0..4u8)).unwrap();
                }
                1 => {
                    let v = rng.random_range(0..10);
                    let len = rng.random_range(0..4usize);
                    let bits = BitString::from_bits((0..len).map(|_| rng.random_bool(0.5)));
                    dynamic.rewrite_proof(v, &bits).unwrap();
                }
                2 => {
                    let (u, v) = (rng.random_range(0..10), rng.random_range(0..10));
                    if u != v && !dynamic.graph().has_edge(u, v) {
                        dynamic.insert_edge(u, v).unwrap();
                    }
                }
                _ => {
                    let u = rng.random_range(0..10);
                    if dynamic.graph().degree(u) > 0 {
                        let v = dynamic.graph().neighbors(u)
                            [rng.random_range(0..dynamic.graph().degree(u))];
                        dynamic.delete_edge(u, v).unwrap();
                    }
                }
            }
            let outcome = dynamic.reverify();
            let fresh = dynamic.full_check();
            prop_assert_eq!(outcome.accepted, fresh.accepted(), "step {}", step);
            prop_assert_eq!(outcome.witness, fresh.rejecting().first().copied());
            prop_assert_eq!(&dynamic.cached_verdict().unwrap(), &fresh, "step {}", step);
        }
    }
}
