//! The daemon's metric catalog (see `docs/OBSERVABILITY.md`).
//!
//! Request handling records into `static` metrics from [`lcp_obs`]:
//! one counter and one latency histogram per protocol op (indexed like
//! [`REQUEST_NAMES`]), queue/backpressure counters around the acceptor,
//! and drain timing around shutdown. The `metrics` op exports the whole
//! process registry — this catalog plus the engine and dynamic catalogs
//! the daemon's work drives — as Prometheus-style text.
//!
//! Like every other catalog in the workspace, these are write-only:
//! nothing in the serve path ever reads a metric, so instrumentation
//! cannot change a response byte.

use crate::protocol::REQUEST_NAMES;
use crate::table::TableStats;
use lcp_obs::{Counter, Gauge, Histogram, Registry};

/// Requests dispatched, one counter per op (indexed like
/// [`REQUEST_NAMES`]).
pub static REQUESTS: [Counter; REQUEST_NAMES.len()] =
    [const { Counter::new() }; REQUEST_NAMES.len()];
/// Request latency in nanoseconds (parse + dispatch, excluding socket
/// I/O), one histogram per op (indexed like [`REQUEST_NAMES`]).
pub static REQUEST_NS: [Histogram; REQUEST_NAMES.len()] =
    [const { Histogram::new() }; REQUEST_NAMES.len()];
/// Frames that failed to parse into any op (answered with a typed
/// error).
pub static BAD_REQUESTS: Counter = Counter::new();
/// Request dispatches that returned a typed protocol error.
pub static ERROR_RESPONSES: Counter = Counter::new();
/// Connections picked up and served by a worker.
pub static CONNECTIONS: Counter = Counter::new();
/// Accepted connections rejected with the typed busy error because the
/// waiting room was full.
pub static BUSY_REJECTIONS: Counter = Counter::new();
/// Connections sitting in the acceptor's waiting room right now.
pub static QUEUE_DEPTH: Gauge = Gauge::new();
/// Wall time of the last drain in milliseconds (shutdown flag observed
/// to all workers joined).
pub static DRAIN_MS: Gauge = Gauge::new();

/// Resident cells in the instance table (snapshot at export).
pub static RESIDENT_CELLS: Gauge = Gauge::new();
/// Cells loaded since the table was created (snapshot at export).
pub static TABLE_LOADS: Gauge = Gauge::new();
/// Cells evicted since the table was created (snapshot at export).
pub static TABLE_EVICTIONS: Gauge = Gauge::new();
/// Skeleton-cache hits (snapshot at export).
pub static SKELETON_HITS: Gauge = Gauge::new();
/// Skeleton-cache misses — i.e. skeleton (re)builds (snapshot at
/// export).
pub static SKELETON_MISSES: Gauge = Gauge::new();

/// Label strings of the per-op series, kept in lock step with
/// [`REQUEST_NAMES`] (registry labels must be `'static`; a test pins
/// the correspondence).
const OP_LABELS: [&str; REQUEST_NAMES.len()] = [
    "op=\"prepare\"",
    "op=\"verify\"",
    "op=\"tamper-probe\"",
    "op=\"stats\"",
    "op=\"metrics\"",
    "op=\"session-open\"",
    "op=\"mutate\"",
    "op=\"churn\"",
    "op=\"session-close\"",
    "op=\"shutdown\"",
];

/// The index of `op` in [`REQUEST_NAMES`] (present for every parsed
/// [`crate::protocol::Request`]).
pub(crate) fn op_index(op: &str) -> Option<usize> {
    REQUEST_NAMES.iter().position(|&name| name == op)
}

/// Copies a point-in-time [`TableStats`] into the export gauges. Called
/// by the `metrics` handler so the exported text reflects the table at
/// scrape time.
pub(crate) fn snapshot_table(stats: &TableStats) {
    let clamp = |v: usize| i64::try_from(v).unwrap_or(i64::MAX);
    RESIDENT_CELLS.set(clamp(stats.resident));
    TABLE_LOADS.set(clamp(stats.loads));
    TABLE_EVICTIONS.set(clamp(stats.evictions));
    SKELETON_HITS.set(clamp(stats.skeleton_hits));
    SKELETON_MISSES.set(clamp(stats.skeleton_misses));
}

/// Registers the serve catalog into `reg` (idempotent).
pub fn register(reg: &Registry) {
    for (i, labels) in OP_LABELS.iter().enumerate() {
        reg.counter(
            "lcp_serve_requests_total",
            labels,
            "requests dispatched by op",
            &REQUESTS[i],
        );
        reg.histogram(
            "lcp_serve_request_ns",
            labels,
            "request latency by op in nanoseconds (parse + dispatch)",
            &REQUEST_NS[i],
        );
    }
    reg.counter(
        "lcp_serve_bad_requests_total",
        "",
        "frames that failed to parse into any op",
        &BAD_REQUESTS,
    );
    reg.counter(
        "lcp_serve_error_responses_total",
        "",
        "dispatches that returned a typed protocol error",
        &ERROR_RESPONSES,
    );
    reg.counter(
        "lcp_serve_connections_total",
        "",
        "connections picked up and served by a worker",
        &CONNECTIONS,
    );
    reg.counter(
        "lcp_serve_busy_rejections_total",
        "",
        "connections rejected with the typed busy error",
        &BUSY_REJECTIONS,
    );
    reg.gauge(
        "lcp_serve_queue_depth",
        "",
        "connections waiting for a worker right now",
        &QUEUE_DEPTH,
    );
    reg.gauge(
        "lcp_serve_drain_ms",
        "",
        "wall time of the last drain in milliseconds",
        &DRAIN_MS,
    );
    reg.gauge(
        "lcp_serve_resident_cells",
        "",
        "resident cells in the instance table at export time",
        &RESIDENT_CELLS,
    );
    reg.gauge(
        "lcp_serve_table_loads",
        "",
        "cells loaded since the table was created",
        &TABLE_LOADS,
    );
    reg.gauge(
        "lcp_serve_table_evictions",
        "",
        "cells evicted since the table was created",
        &TABLE_EVICTIONS,
    );
    reg.gauge(
        "lcp_serve_skeleton_hits",
        "",
        "skeleton-cache hits at export time",
        &SKELETON_HITS,
    );
    reg.gauge(
        "lcp_serve_skeleton_misses",
        "",
        "skeleton-cache misses (skeleton builds) at export time",
        &SKELETON_MISSES,
    );
}

/// The process-wide registry with every catalog the daemon drives
/// registered: serve itself, the core engine/harness/batch/deadline
/// catalog, and the dynamic reverification catalog.
pub fn global_registry() -> &'static Registry {
    let reg = lcp_obs::global();
    lcp_core::metrics::register(reg);
    lcp_dynamic::metrics::register(reg);
    register(reg);
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_labels_mirror_request_names() {
        for (label, name) in OP_LABELS.iter().zip(REQUEST_NAMES) {
            assert_eq!(*label, format!("op={name:?}"));
        }
    }

    #[test]
    fn every_op_resolves_to_its_own_index() {
        for (i, name) in REQUEST_NAMES.iter().enumerate() {
            assert_eq!(op_index(name), Some(i));
        }
        assert_eq!(op_index("frobnicate"), None);
    }
}
