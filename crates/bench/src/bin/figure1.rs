//! Regenerates **Figure 1** (the §5.3 gluing construction) and runs the
//! §5/§6 lower-bound experiments:
//!
//! 1. prints the exact identifier pattern of the figure (`n = 10, r = 1,
//!    k = 2`, cycles `C(3,12)`, `C(3,17)`, `C(8,17)`, `C(8,12)`);
//! 2. runs the gluing attack against the 1-bit strawman (fooled) and the
//!    honest `Θ(log n)` schemes (survive), sweeping `n`;
//! 3. runs the §6.1/§6.2 join-collision attacks over proof-size budgets,
//!    locating the threshold where truncated universal encodings break;
//! 4. runs the §6.3 fooling attack on the 3-colouring gadgets.

use lcp_core::{Instance, Scheme};
use lcp_graph::Graph;
use lcp_lower_bounds::fooling::{fooling_attack, FoolingOutcome, GadgetLayout};
use lcp_lower_bounds::gluing::{cycle_ids, glue_cycles, GluingAttack, GluingOutcome};
use lcp_lower_bounds::join_collision::{join_collision_attack, rooted_tree_family, JoinOutcome};
use lcp_lower_bounds::strawman::{ParityLeader, TruncatedUniversal};
use lcp_schemes::cycles::OddCycle;
use lcp_schemes::leader::LeaderElection;
use rand::SeedableRng;

fn leader_at_a(g: Graph) -> Instance<bool> {
    let labels = (0..g.n()).map(|v| v == 0).collect();
    Instance::with_node_data(g, labels)
}

fn gluing_summary<N, E>(outcome: &GluingOutcome<N, E>) -> String {
    match outcome {
        GluingOutcome::Fooled(ce) => format!("FOOLED (forged {}-cycle accepted)", ce.n()),
        GluingOutcome::NoMonochromaticCycle { colors, pairs } => {
            format!("survived ({pairs} donors, {colors} colours)")
        }
        GluingOutcome::GluedInstanceIsYes => "glued instance stayed yes".into(),
        GluingOutcome::SchemeSurvived { rejecting } => {
            format!("survived (rejected at {} nodes)", rejecting.len())
        }
        GluingOutcome::ProverFailed => "prover failed".into(),
        GluingOutcome::HonestProofRejected { pair, node } => {
            format!("honest proof of C{pair:?} rejected at node {node}")
        }
    }
}

fn main() {
    println!("Figure 1 — gluing cycles together (§5.3)");
    println!("=========================================");
    println!("identifier patterns at n = 10 (the figure's example):");
    for (a, b) in [(3u64, 12u64), (3, 17), (8, 17), (8, 12)] {
        let ids: Vec<String> = cycle_ids(10, a, b).iter().map(|x| x.to_string()).collect();
        println!("  C({a},{b}): {}", ids.join(" "));
    }
    println!();

    println!("gluing attack vs the 1-bit parity-leader strawman (k = 2):");
    for n in [9usize, 11, 15, 21, 31] {
        let outcome = glue_cycles(&ParityLeader, &GluingAttack::new(n, 2), leader_at_a, None);
        println!("  n = {n:>3}: {}", gluing_summary(&outcome));
    }
    println!();

    println!("the same with k = 3 (a monochromatic 6-cycle glues three donors):");
    for n in [11usize, 15] {
        let outcome = glue_cycles(&ParityLeader, &GluingAttack::new(n, 3), leader_at_a, None);
        println!("  n = {n:>3}: {}", gluing_summary(&outcome));
    }
    println!();

    println!("the same attack vs the honest Θ(log n) schemes:");
    for n in [9usize, 15, 21] {
        let leader = glue_cycles(&LeaderElection, &GluingAttack::new(n, 2), leader_at_a, None);
        let odd = glue_cycles(
            &OddCycle,
            &GluingAttack::new(n, 2),
            Instance::unlabeled,
            None,
        );
        println!(
            "  n = {n:>3}: leader election: {}; odd n(G): {}",
            gluing_summary(&leader),
            gluing_summary(&odd)
        );
    }
    println!();

    println!("§6.2 — join-collision attack on fixpoint-free tree symmetry");
    println!("(rooted trees on 6 nodes; sweep the proof-size budget)");
    let family = rooted_tree_family(6, 1000).expect("enumeration in range");
    for budget in [16usize, 32, 48, 96, 512, 4096] {
        let scheme = TruncatedUniversal::new("fixpoint-free", budget, |g: &Graph| {
            lcp_graph::iso::fixpoint_free_automorphism(g).is_some()
        });
        let outcome = join_collision_attack(&scheme, &family);
        let line = match &outcome {
            JoinOutcome::Fooled(ce) => format!("FOOLED (hybrid on {} nodes accepted)", ce.n()),
            JoinOutcome::NoCollision {
                candidates,
                distinct_windows,
            } => format!("survived ({candidates} donors, {distinct_windows} windows)"),
            other => format!("{other:?}"),
        };
        println!("  budget = {budget:>5} bits: {line}");
    }
    let honest = lcp_schemes::tree_universal::tree_fixpoint_free();
    let outcome = join_collision_attack(&honest, &family);
    println!(
        "  honest Θ(n) scheme: {}",
        match outcome {
            JoinOutcome::NoCollision {
                candidates,
                distinct_windows,
            } => format!("survived ({candidates} donors, {distinct_windows} windows)"),
            other => format!("{other:?}"),
        }
    );
    println!();

    println!("§6.1 — join-collision attack on symmetric graphs");
    println!("(sampled 7-node asymmetric halves; sweep the budget)");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let family = lcp_lower_bounds::join_collision::asymmetric_family(7, 12, &mut rng)
        .expect("sampling in range");
    for budget in [32usize, 64, 512, 8192] {
        let scheme = TruncatedUniversal::new("symmetric", budget, lcp_graph::iso::is_symmetric);
        let outcome = join_collision_attack(&scheme, &family);
        let line = match &outcome {
            JoinOutcome::Fooled(ce) => format!("FOOLED (hybrid on {} nodes accepted)", ce.n()),
            JoinOutcome::NoCollision {
                candidates,
                distinct_windows,
            } => format!("survived ({candidates} donors, {distinct_windows} windows)"),
            other => format!("{other:?}"),
        };
        println!("  budget = {budget:>5} bits: {line}");
    }
    println!();

    println!("§6.3 — fooling-set attack on non-3-colourability");
    println!("(k = 1 gadget grid: 16 candidate sets A; wire-window collisions)");
    for budget in [64usize, 96, 2048] {
        let scheme = TruncatedUniversal::new("chromatic>3", budget, |g: &Graph| {
            !lcp_graph::coloring::is_k_colorable(g, 3)
        });
        let layout = GadgetLayout::for_radius(1, scheme.radius());
        let outcome = fooling_attack(&scheme, &layout, 16, 11);
        let line = match &outcome {
            FoolingOutcome::Fooled(ce) => {
                format!("FOOLED (3-colourable hybrid on {} nodes accepted)", ce.n())
            }
            FoolingOutcome::NoCollision {
                candidates,
                distinct_windows,
            } => format!("survived ({candidates} donors, {distinct_windows} windows)"),
            other => format!("{other:?}"),
        };
        println!("  budget = {budget:>5} bits: {line}");
    }
    let honest = lcp_schemes::universal::non_three_colorable();
    let layout = GadgetLayout::for_radius(1, honest.radius());
    let outcome = fooling_attack(&honest, &layout, 6, 13);
    println!(
        "  honest O(n²) scheme: {}",
        match outcome {
            FoolingOutcome::NoCollision {
                candidates,
                distinct_windows,
            } => format!("survived ({candidates} donors, {distinct_windows} windows)"),
            other => format!("{other:?}"),
        }
    );
}
