//! The builder / frozen split of the prepared-core representation, plus
//! the versioned on-disk artifact format (`docs/FORMAT.md`).
//!
//! # Why
//!
//! Every process that verifies proofs — campaign shards, nightly matrix
//! workers, the `lcp-serve` daemon — used to re-BFS every skeleton from
//! scratch on startup, even though the prepared data (CSR balls,
//! member/dependent tables, sorted edge labels) is already flat and
//! offset-indexed. This module makes the prepared core a *persistent
//! artifact*: a [`FrozenCore`] is one contiguous little-endian `u64`
//! word image whose sections are consumed in place, so a core can be
//! `mmap`ed from disk and served with **zero deserialization** of the
//! numeric sections (only the typed label pools are decoded on open).
//!
//! Following the rustfst vector/const FST exemplar, the representation
//! is split in two:
//!
//! * [`CoreBuilder`] — the mutable build/repair side: per-node skeleton
//!   buckets that can be rebuilt in place after topology churn (this is
//!   the engine substrate [`crate::engine::SkeletonStore`] wraps);
//! * [`FrozenCore`] — the immutable, borrow-only serving side: the word
//!   image plus decoded label pools, handing out `SkelView`s that
//!   borrow straight into the words.
//!
//! `CoreBuilder::freeze` and `FrozenCore::from_built` render byte-
//! identical word images for equal inputs (pinned by tests), so a core
//! rebuilt after churn and refrozen matches a fresh freeze of the
//! mutated instance — dynamic churn and frozen artifacts share one
//! invariant surface.
//!
//! # Safety
//!
//! The format is little-endian and word sections are reinterpreted as
//! `&[u32]` / `&[usize]` / `&[NodeId]` in place, so the crate requires a
//! little-endian 64-bit target (enforced at compile time below — both
//! CI targets qualify). Every slice handed out is bounds-validated once
//! at open/freeze time; a corrupted, truncated, or version-skewed file
//! is rejected by [`FrozenCore::open`] with a file + byte-offset error
//! ([`ArtifactError`]), never undefined behaviour.

use crate::instance::Instance;
use crate::view::{build_skeleton, BallScratch, SkelView, Skeleton};
use lcp_graph::NodeId;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};

#[cfg(feature = "parallel")]
use rayon::prelude::*;

#[cfg(target_endian = "big")]
compile_error!("lcp-core frozen artifacts require a little-endian target (docs/FORMAT.md)");

#[cfg(not(target_pointer_width = "64"))]
compile_error!("lcp-core frozen artifacts require a 64-bit target (adjacency words are usize)");

/// `b"LCPCORE1"` as a little-endian word — also serves as the
/// endianness probe: a byte-swapped reader sees garbage and rejects.
pub const MAGIC: u64 = u64::from_le_bytes(*b"LCPCORE1");

/// Bumped whenever the section layout changes incompatibly.
pub const FORMAT_VERSION: u64 = 1;

/// Words in the fixed header (see `docs/FORMAT.md` for the word map).
pub const HEADER_WORDS: usize = 16;

/// Header word index of the whole-file FNV checksum.
const CHECKSUM_WORD: usize = 15;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Interleaved lanes of the whole-file checksum. A single FNV chain is
/// latency-bound (every step waits on the previous multiply), which
/// would make the checksum the most expensive part of an `mmap` load;
/// eight independent lanes over `words[i % 8]` run at the multiplier's
/// throughput instead and are folded together at the end. Part of the
/// on-disk format (`docs/FORMAT.md`) — changing this orphans every
/// existing artifact.
const CHECKSUM_LANES: usize = 8;

/// Lane-interleaved FNV-1a over the word image with the checksum word
/// folded as zero: lane `k` absorbs words `k, k + 8, k + 16, …`, then
/// the lane digests are chained through one final FNV fold.
fn fnv_words(words: &[u64]) -> u64 {
    let mut lanes = [FNV_OFFSET; CHECKSUM_LANES];
    let mut chunks = words.chunks_exact(CHECKSUM_LANES);
    let mut base = 0usize;
    for chunk in &mut chunks {
        for k in 0..CHECKSUM_LANES {
            let x = if base + k == CHECKSUM_WORD {
                0
            } else {
                chunk[k]
            };
            lanes[k] = (lanes[k] ^ x).wrapping_mul(FNV_PRIME);
        }
        base += CHECKSUM_LANES;
    }
    for (k, &w) in chunks.remainder().iter().enumerate() {
        let x = if base + k == CHECKSUM_WORD { 0 } else { w };
        lanes[k] = (lanes[k] ^ x).wrapping_mul(FNV_PRIME);
    }
    let mut h = FNV_OFFSET;
    for lane in lanes {
        h = (h ^ lane).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Words needed for `k` packed `u32`s (two per word, low half first).
const fn w32(k: usize) -> usize {
    k.div_ceil(2)
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why an artifact file could not be opened or written.
///
/// Invalid files always name the file and the byte offset of the first
/// rejected datum, so a corrupted artifact is diagnosable from the
/// message alone.
#[derive(Debug)]
pub enum ArtifactError {
    /// The underlying filesystem operation failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// The file exists but its contents were rejected by validation.
    Invalid {
        /// The file involved.
        path: PathBuf,
        /// Byte offset of the first rejected datum.
        offset: u64,
        /// What was wrong there.
        detail: String,
    },
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io { path, source } => {
                write!(f, "artifact {}: {source}", path.display())
            }
            ArtifactError::Invalid {
                path,
                offset,
                detail,
            } => write!(
                f,
                "artifact {} invalid at byte {offset}: {detail}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io { source, .. } => Some(source),
            ArtifactError::Invalid { .. } => None,
        }
    }
}

fn io_err(path: &Path, source: std::io::Error) -> ArtifactError {
    ArtifactError::Io {
        path: path.to_path_buf(),
        source,
    }
}

fn invalid(path: &Path, word: usize, detail: impl Into<String>) -> ArtifactError {
    ArtifactError::Invalid {
        path: path.to_path_buf(),
        offset: (word as u64) * 8,
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------
// Portable label codec
// ---------------------------------------------------------------------

/// Word-level codec for node/edge label types, so labelled cores can be
/// persisted. Kept **off** the hot path on purpose: building, binding,
/// and evaluating require only `Clone`, and only
/// [`FrozenCore::save`] / [`FrozenCore::open`] (and the artifact store
/// that drives them) demand `PortableLabel`.
///
/// The encoding must be self-delimiting given the tag (decode knows how
/// many words to consume) and injective (equal encodings ⇔ equal
/// labels) — artifact fingerprints hash these words.
pub trait PortableLabel: Sized {
    /// Stable type tag recorded in the artifact header; a mismatch is a
    /// rejected open, so two types must never share a tag.
    const TAG: u64;

    /// Appends this label's words to `out`.
    fn encode(&self, out: &mut Vec<u64>);

    /// Decodes one label, consuming exactly the words [`Self::encode`]
    /// wrote; `None` on malformed input.
    fn decode(r: &mut WordReader<'_>) -> Option<Self>;
}

/// Sequential reader over a word section (the decode half of
/// [`PortableLabel`]).
#[derive(Debug)]
pub struct WordReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> WordReader<'a> {
    /// Reads `words` from the front.
    pub fn new(words: &'a [u64]) -> Self {
        WordReader { words, pos: 0 }
    }

    /// Words consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

/// One word at a time, front to back — `r.next()` is how label
/// decoders consume their encoding.
impl Iterator for WordReader<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let w = *self.words.get(self.pos)?;
        self.pos += 1;
        Some(w)
    }
}

impl<'a> WordReader<'a> {
    /// Reads `count` packed `u32`s (two per word, low half first).
    pub fn read_u32s(&mut self, count: usize) -> Option<Vec<u32>> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..w32(count) {
            let w = self.next()?;
            out.push(w as u32);
            if out.len() < count {
                out.push((w >> 32) as u32);
            }
        }
        // A padded high half must be zero, or two files with equal
        // content could differ in bytes.
        if count % 2 == 1 && out.len() == count {
            let last_word = self.words[self.pos - 1];
            if (last_word >> 32) != 0 {
                return None;
            }
        }
        Some(out)
    }
}

impl PortableLabel for () {
    const TAG: u64 = 1;
    fn encode(&self, _out: &mut Vec<u64>) {}
    fn decode(_r: &mut WordReader<'_>) -> Option<Self> {
        Some(())
    }
}

impl PortableLabel for bool {
    const TAG: u64 = 2;
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(u64::from(*self));
    }
    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        match r.next()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl PortableLabel for u8 {
    const TAG: u64 = 3;
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(u64::from(*self));
    }
    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        u8::try_from(r.next()?).ok()
    }
}

impl PortableLabel for u32 {
    const TAG: u64 = 4;
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(u64::from(*self));
    }
    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        u32::try_from(r.next()?).ok()
    }
}

impl PortableLabel for u64 {
    const TAG: u64 = 5;
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(*self);
    }
    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        r.next()
    }
}

impl PortableLabel for usize {
    const TAG: u64 = 6;
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(*self as u64);
    }
    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        usize::try_from(r.next()?).ok()
    }
}

// ---------------------------------------------------------------------
// Word storage: owned vector or mmap
// ---------------------------------------------------------------------

/// The backing storage of a [`FrozenCore`]'s word image.
enum Words {
    /// Built in process (or the read-to-`Vec` fallback load path).
    Owned(Vec<u64>),
    /// A read-only private file mapping (`munmap`ed on drop).
    #[cfg(unix)]
    Mapped { ptr: *const u64, len: usize },
}

// A Mapped pointer is a read-only private mapping: no aliasing writes
// exist, so sharing it across threads is sound.
unsafe impl Send for Words {}
unsafe impl Sync for Words {}

impl Words {
    #[inline]
    fn as_slice(&self) -> &[u64] {
        match self {
            Words::Owned(v) => v,
            #[cfg(unix)]
            Words::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

impl Drop for Words {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Words::Mapped { ptr, len } = *self {
            unsafe {
                sys::munmap(ptr as *mut std::ffi::c_void, len * 8);
            }
        }
    }
}

/// Raw `mmap(2)`/`munmap(2)` bindings — same approach as `lcp-serve`'s
/// `signal(2)` handler: the workspace vendors no libc crate, but std
/// already links the platform libc.
#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// Maps `bytes` of `file` read-only; `None` falls back to a plain read.
#[cfg(unix)]
fn map_file(file: &File, bytes: usize) -> Option<Words> {
    use std::os::unix::io::AsRawFd;
    if bytes == 0 {
        return None;
    }
    let ptr = unsafe {
        sys::mmap(
            std::ptr::null_mut(),
            bytes,
            sys::PROT_READ,
            sys::MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        )
    };
    if ptr as isize == -1 {
        return None;
    }
    // Page alignment (≥ 8) makes the u64 reinterpretation sound.
    Some(Words::Mapped {
        ptr: ptr.cast::<u64>(),
        len: bytes / 8,
    })
}

#[cfg(not(unix))]
fn map_file(_file: &File, _bytes: usize) -> Option<Words> {
    None
}

// ---------------------------------------------------------------------
// Section layout
// ---------------------------------------------------------------------

/// Resolved word offsets of every section, derived deterministically
/// from the header counts (see `docs/FORMAT.md`).
#[derive(Clone, Copy, Debug)]
struct Layout {
    radius: usize,
    n: usize,
    /// Total ball members across all skeletons (Σ|ball|).
    t: usize,
    /// Total adjacency entries across all skeletons.
    a: usize,
    member_off: usize,
    members: usize,
    dependent_off: usize,
    dependents: usize,
    centers: usize,
    skel_adj_off: usize,
    adj_off_local: usize,
    ids: usize,
    dist: usize,
    adj: usize,
    node_labels: usize,
    edge_labels: usize,
    total: usize,
}

impl Layout {
    /// Computes the layout; `None` on arithmetic overflow (a hostile
    /// header must not panic or wrap into accepting bogus bounds).
    fn new(radius: usize, n: usize, t: usize, a: usize, nlw: usize, elw: usize) -> Option<Layout> {
        let mut off = HEADER_WORDS;
        let mut sec = |len: usize| -> Option<usize> {
            let here = off;
            off = off.checked_add(len)?;
            Some(here)
        };
        let np1 = n.checked_add(1)?;
        let layout = Layout {
            radius,
            n,
            t,
            a,
            member_off: sec(w32(np1))?,
            members: sec(w32(t))?,
            dependent_off: sec(w32(np1))?,
            dependents: sec(t)?,
            centers: sec(w32(n))?,
            skel_adj_off: sec(w32(np1))?,
            adj_off_local: sec(w32(t.checked_add(n)?))?,
            ids: sec(t)?,
            dist: sec(w32(t))?,
            adj: sec(a)?,
            node_labels: sec(nlw)?,
            edge_labels: sec(elw)?,
            total: 0,
        };
        Some(Layout {
            total: off,
            ..layout
        })
    }
}

// ---------------------------------------------------------------------
// FrozenCore
// ---------------------------------------------------------------------

/// The immutable serving half of a prepared core: every node's view
/// skeleton plus the member/dependent locality tables, stored as one
/// contiguous little-endian word image (plus decoded label pools) with
/// no reference back to the instance it was built from.
///
/// A `FrozenCore` is what [`crate::engine::PreparedInstance`] binds
/// views from, what [`crate::engine::SkeletonCache`] shares across
/// cells, and what [`crate::artifact::ArtifactStore`] persists — the
/// engine, batch, dynamic, conformance, and serve layers consume it
/// through the same handle and are agnostic to whether it was built in
/// process, adopted from the cache, or mapped from an artifact file.
pub struct FrozenCore<N = (), E = ()> {
    words: Words,
    lay: Layout,
    /// Decoded node labels, one per ball member, in pool order
    /// (skeleton `v`'s slice is `member_off[v]..member_off[v+1]`).
    node_labels: Vec<N>,
    /// Per-skeleton offsets into `edge_pool` (`n + 1` entries).
    edge_off: Vec<u32>,
    /// Decoded edge labels in pool order, key-sorted per skeleton.
    edge_pool: Vec<((usize, usize), E)>,
}

impl<N, E> std::fmt::Debug for FrozenCore<N, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenCore")
            .field("n", &self.lay.n)
            .field("radius", &self.lay.radius)
            .field("words", &self.lay.total)
            .finish_non_exhaustive()
    }
}

impl<N, E> FrozenCore<N, E> {
    /// Number of nodes (`n(G)` at build time).
    pub fn n(&self) -> usize {
        self.lay.n
    }

    /// The preparation radius `r`.
    pub fn radius(&self) -> usize {
        self.lay.radius
    }

    /// The raw word image (header + sections; label sections absent on
    /// in-process freezes). Crate-visible for byte-identity tests.
    #[cfg(test)]
    pub(crate) fn words(&self) -> &[u64] {
        self.words.as_slice()
    }

    /// Reinterprets a packed-`u32` section in place.
    ///
    /// Soundness: `off`/`len` come from a [`Layout`] whose bounds were
    /// checked against the word count at construction; `u64` storage is
    /// 8-aligned, and the target is little-endian 64-bit (enforced by
    /// the compile-time guards above).
    #[inline]
    fn u32_sec(&self, off: usize, len: usize) -> &[u32] {
        let w = self.words.as_slice();
        debug_assert!(off + w32(len) <= w.len());
        unsafe { std::slice::from_raw_parts(w.as_ptr().add(off).cast::<u32>(), len) }
    }

    /// Reinterprets a `u64` section in place (same soundness argument).
    #[inline]
    fn u64_sec(&self, off: usize, len: usize) -> &[u64] {
        &self.words.as_slice()[off..off + len]
    }

    #[inline]
    fn member_off(&self) -> &[u32] {
        self.u32_sec(self.lay.member_off, self.lay.n + 1)
    }

    #[inline]
    fn members_sec(&self) -> &[u32] {
        self.u32_sec(self.lay.members, self.lay.t)
    }

    #[inline]
    fn dependent_off(&self) -> &[u32] {
        self.u32_sec(self.lay.dependent_off, self.lay.n + 1)
    }

    #[inline]
    fn dependents_packed(&self) -> &[u64] {
        self.u64_sec(self.lay.dependents, self.lay.t)
    }

    #[inline]
    fn centers(&self) -> &[u32] {
        self.u32_sec(self.lay.centers, self.lay.n)
    }

    #[inline]
    fn skel_adj_off(&self) -> &[u32] {
        self.u32_sec(self.lay.skel_adj_off, self.lay.n + 1)
    }

    #[inline]
    fn adj_off_local(&self) -> &[u32] {
        self.u32_sec(self.lay.adj_off_local, self.lay.t + self.lay.n)
    }

    #[inline]
    fn ids_sec(&self) -> &[NodeId] {
        let w = self.u64_sec(self.lay.ids, self.lay.t);
        // NodeId is #[repr(transparent)] over u64.
        unsafe { std::slice::from_raw_parts(w.as_ptr().cast::<NodeId>(), w.len()) }
    }

    #[inline]
    fn dist_sec(&self) -> &[u32] {
        self.u32_sec(self.lay.dist, self.lay.t)
    }

    #[inline]
    fn adj_sec(&self) -> &[usize] {
        let w = self.u64_sec(self.lay.adj, self.lay.a);
        // usize == u64 on the enforced 64-bit target.
        unsafe { std::slice::from_raw_parts(w.as_ptr().cast::<usize>(), w.len()) }
    }

    /// Global indices of node `v`'s ball members, in view-local order.
    #[inline]
    pub(crate) fn members_of(&self, v: usize) -> &[u32] {
        let off = self.member_off();
        &self.members_sec()[off[v] as usize..off[v + 1] as usize]
    }

    /// The `(owner, local)` pairs of views containing global node `v`.
    #[inline]
    pub(crate) fn dependents_of(&self, v: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        let off = self.dependent_off();
        self.dependents_packed()[off[v] as usize..off[v + 1] as usize]
            .iter()
            .map(|&p| ((p >> 32) as u32, p as u32))
    }

    /// Node `v`'s skeleton as a borrow-only [`SkelView`] straight into
    /// the word image — the zero-copy bind primitive.
    #[inline]
    pub(crate) fn skel_view(&self, v: usize) -> SkelView<'_, N, E> {
        let off = self.member_off();
        let (lo, hi) = (off[v] as usize, off[v + 1] as usize);
        let sa = self.skel_adj_off();
        let (alo, ahi) = (sa[v] as usize, sa[v + 1] as usize);
        SkelView {
            center: self.centers()[v] as usize,
            radius: self.lay.radius,
            ids: &self.ids_sec()[lo..hi],
            adj_off: &self.adj_off_local()[lo + v..hi + v + 1],
            adj: &self.adj_sec()[alo..ahi],
            dist: &self.dist_sec()[lo..hi],
            node_data: &self.node_labels[lo..hi],
            edge_labels: &self.edge_pool[self.edge_off[v] as usize..self.edge_off[v + 1] as usize],
        }
    }
}

/// Writes packed `u32`s (two per word, low half first) into a zeroed
/// word region starting at `sec`.
#[inline]
fn put_u32(words: &mut [u64], sec: usize, idx: usize, val: u32) {
    words[sec + idx / 2] |= u64::from(val) << ((idx % 2) * 32);
}

fn push_u32s(out: &mut Vec<u64>, vals: &[u32]) {
    for pair in vals.chunks(2) {
        let lo = u64::from(pair[0]);
        let hi = pair.get(1).map_or(0, |&v| u64::from(v));
        out.push(lo | (hi << 32));
    }
}

impl<N, E> FrozenCore<N, E> {
    /// Renders the word image from freshly built per-node skeletons —
    /// the one-shot freeze used by [`crate::engine::PreparedInstance`].
    ///
    /// Deterministic: equal inputs render byte-identical images
    /// (dependents are counting-sorted by member with owners ascending),
    /// which is what lets racing campaign shards write interchangeable
    /// artifact files.
    ///
    /// # Panics
    ///
    /// Panics if the core exceeds the format's `u32` offset range
    /// (Σ|ball| or Σ|adj| ≥ 2³²).
    pub(crate) fn from_built(radius: usize, built: Vec<(Skeleton<N, E>, Vec<u32>)>) -> Self {
        let n = built.len();
        let t: usize = built.iter().map(|(_, m)| m.len()).sum();
        let a: usize = built.iter().map(|(s, _)| s.adj.len()).sum();
        assert!(
            u32::try_from(t.max(a)).is_ok(),
            "core too large for the artifact format's u32 offsets"
        );
        let lay = Layout::new(radius, n, t, a, 0, 0).expect("artifact layout overflow");
        let mut words = vec![0u64; lay.total];

        // Dependents by counting sort: owners ascend within each member
        // bucket because owners are visited in ascending order.
        let mut degree = vec![0u32; n];
        for (_, ms) in &built {
            for &m in ms {
                degree[m as usize] += 1;
            }
        }
        let mut dep_cursor = vec![0u32; n];
        let mut acc = 0u32;
        for v in 0..n {
            put_u32(&mut words, lay.dependent_off, v, acc);
            dep_cursor[v] = acc;
            acc += degree[v];
        }
        put_u32(&mut words, lay.dependent_off, n, acc);

        let mut node_labels = Vec::with_capacity(t);
        let mut edge_off = Vec::with_capacity(n + 1);
        let mut edge_pool = Vec::new();
        let mut member_cursor = 0usize;
        let mut adj_cursor = 0usize;
        for (owner, (skel, ms)) in built.into_iter().enumerate() {
            debug_assert_eq!(skel.n(), ms.len());
            put_u32(&mut words, lay.member_off, owner, member_cursor as u32);
            put_u32(&mut words, lay.centers, owner, skel.center as u32);
            put_u32(&mut words, lay.skel_adj_off, owner, adj_cursor as u32);
            for (local, &m) in ms.iter().enumerate() {
                put_u32(&mut words, lay.members, member_cursor + local, m);
                let c = &mut dep_cursor[m as usize];
                words[lay.dependents + *c as usize] = ((owner as u64) << 32) | local as u64;
                *c += 1;
                words[lay.ids + member_cursor + local] = skel.ids[local].0;
                put_u32(
                    &mut words,
                    lay.dist,
                    member_cursor + local,
                    skel.dist[local],
                );
            }
            for (i, &o) in skel.adj_off.iter().enumerate() {
                put_u32(&mut words, lay.adj_off_local, member_cursor + owner + i, o);
            }
            for (i, &w) in skel.adj.iter().enumerate() {
                words[lay.adj + adj_cursor + i] = w as u64;
            }
            member_cursor += ms.len();
            adj_cursor += skel.adj.len();
            node_labels.extend(skel.node_data);
            edge_off.push(edge_pool.len() as u32);
            edge_pool.extend(skel.edge_labels);
        }
        put_u32(&mut words, lay.member_off, n, t as u32);
        put_u32(&mut words, lay.skel_adj_off, n, a as u32);
        edge_off.push(edge_pool.len() as u32);
        assert!(
            u32::try_from(edge_pool.len()).is_ok(),
            "edge-label pool too large for the artifact format"
        );

        words[0] = MAGIC;
        words[1] = FORMAT_VERSION;
        words[2] = HEADER_WORDS as u64;
        words[3] = radius as u64;
        words[4] = n as u64;
        words[5] = t as u64;
        words[6] = a as u64;
        words[7] = edge_pool.len() as u64;
        // Words 8–13 (label tags, label word counts, fingerprint) stay
        // zero until `save` patches them; word 14 is the numeric total.
        words[14] = lay.total as u64;

        FrozenCore {
            words: Words::Owned(words),
            lay,
            node_labels,
            edge_off,
            edge_pool,
        }
    }
}

impl<N: PortableLabel, E: PortableLabel> FrozenCore<N, E> {
    /// Renders the complete on-disk image: the numeric word sections
    /// verbatim, the label pools `PortableLabel`-encoded, and the header
    /// patched with tags, counts, `fingerprint`, and checksum.
    fn render_file(&self, fingerprint: (u64, u64)) -> Vec<u64> {
        let numeric_end = self.lay.node_labels;
        let mut out = Vec::with_capacity(numeric_end + self.node_labels.len() + 64);
        out.extend_from_slice(&self.words.as_slice()[..numeric_end]);
        let nl_start = out.len();
        for l in &self.node_labels {
            l.encode(&mut out);
        }
        let nlw = out.len() - nl_start;
        let el_start = out.len();
        push_u32s(&mut out, &self.edge_off);
        for ((u, w), e) in &self.edge_pool {
            out.push(((*u as u64) << 32) | *w as u64);
            e.encode(&mut out);
        }
        let elw = out.len() - el_start;
        out[8] = N::TAG;
        out[9] = E::TAG;
        out[10] = nlw as u64;
        out[11] = elw as u64;
        out[12] = fingerprint.0;
        out[13] = fingerprint.1;
        out[14] = out.len() as u64;
        out[CHECKSUM_WORD] = 0;
        out[CHECKSUM_WORD] = fnv_words(&out);
        out
    }

    /// Writes this core to `path` atomically (unique temp file in the
    /// same directory, then rename), embedding `fingerprint` — the
    /// `(structure, label)` pairing key [`FrozenCore::open`] re-checks.
    ///
    /// Deterministic: equal cores write byte-identical files, so racing
    /// shards renaming over each other are harmless.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] when the filesystem fails.
    pub fn save(&self, path: &Path, fingerprint: (u64, u64)) -> Result<(), ArtifactError> {
        let image = self.render_file(fingerprint);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp{}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        let write = || -> std::io::Result<()> {
            let mut f = std::io::BufWriter::new(File::create(&tmp)?);
            for &w in &image {
                f.write_all(&w.to_le_bytes())?;
            }
            f.into_inner()?.sync_all()?;
            std::fs::rename(&tmp, path)
        };
        write().map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            io_err(path, e)
        })
    }

    /// Opens an artifact file: `mmap`s it read-only (falling back to a
    /// plain read into a `Vec<u64>` when mapping is unavailable) and
    /// validates it structurally — magic, version, checksum, section
    /// bounds, offset monotonicity, index ranges, label decode — before
    /// any slice is served. When `expect` is given, the embedded
    /// fingerprint must match (the caller pairing an artifact with its
    /// instance).
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] when the file cannot be read;
    /// [`ArtifactError::Invalid`] (file + byte offset) when any check
    /// fails. A rejected file never yields a core — corrupted input is
    /// an error, never undefined behaviour.
    pub fn open(path: &Path, expect: Option<(u64, u64)>) -> Result<Self, ArtifactError> {
        let file = File::open(path).map_err(|e| io_err(path, e))?;
        let bytes = file.metadata().map_err(|e| io_err(path, e))?.len();
        if bytes % 8 != 0 {
            return Err(invalid(
                path,
                0,
                format!("file length {bytes} is not a multiple of 8"),
            ));
        }
        let bytes = usize::try_from(bytes)
            .map_err(|_| invalid(path, 0, "file too large for this address space"))?;
        let words = match map_file(&file, bytes) {
            Some(mapped) => mapped,
            None => {
                let raw = std::fs::read(path).map_err(|e| io_err(path, e))?;
                Words::Owned(
                    raw.chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                        .collect(),
                )
            }
        };
        Self::from_words(words, path, expect)
    }

    /// Validates a word image and assembles the core (the shared tail
    /// of both load paths).
    fn from_words(
        words: Words,
        path: &Path,
        expect: Option<(u64, u64)>,
    ) -> Result<Self, ArtifactError> {
        let w = words.as_slice();
        if w.len() < HEADER_WORDS {
            return Err(invalid(
                path,
                w.len(),
                format!("truncated header: {} of {HEADER_WORDS} words", w.len()),
            ));
        }
        if w[0] != MAGIC {
            return Err(invalid(
                path,
                0,
                format!("bad magic {:#018x} (not an lcp core artifact)", w[0]),
            ));
        }
        if w[1] != FORMAT_VERSION {
            return Err(invalid(
                path,
                1,
                format!(
                    "format version {} (this build reads {FORMAT_VERSION})",
                    w[1]
                ),
            ));
        }
        if w[2] != HEADER_WORDS as u64 {
            return Err(invalid(path, 2, format!("header word count {}", w[2])));
        }
        if w[14] != w.len() as u64 {
            return Err(invalid(
                path,
                14,
                format!("header says {} words, file has {}", w[14], w.len()),
            ));
        }
        let sum = fnv_words(w);
        if w[CHECKSUM_WORD] != sum {
            return Err(invalid(
                path,
                CHECKSUM_WORD,
                format!(
                    "checksum mismatch (stored {:#018x}, computed {sum:#018x})",
                    w[CHECKSUM_WORD]
                ),
            ));
        }
        if w[8] != N::TAG || w[9] != E::TAG {
            return Err(invalid(
                path,
                8,
                format!(
                    "label type tags ({}, {}) do not match the requested core type ({}, {})",
                    w[8],
                    w[9],
                    N::TAG,
                    E::TAG
                ),
            ));
        }
        let as_usize = |word: usize| -> Result<usize, ArtifactError> {
            usize::try_from(w[word]).map_err(|_| invalid(path, word, "count overflows usize"))
        };
        let radius = as_usize(3)?;
        let n = as_usize(4)?;
        let t = as_usize(5)?;
        let a = as_usize(6)?;
        let edge_count = as_usize(7)?;
        let nlw = as_usize(10)?;
        let elw = as_usize(11)?;
        let lay = Layout::new(radius, n, t, a, nlw, elw)
            .ok_or_else(|| invalid(path, 3, "section layout overflows"))?;
        if lay.total != w.len() {
            return Err(invalid(
                path,
                14,
                format!(
                    "sections need {} words, file has {} (truncated or padded)",
                    lay.total,
                    w.len()
                ),
            ));
        }
        if t > u32::MAX as usize || a > u32::MAX as usize || edge_count > u32::MAX as usize {
            return Err(invalid(path, 5, "counts exceed the format's u32 offsets"));
        }
        let core = FrozenCore {
            words,
            lay,
            node_labels: Vec::new(),
            edge_off: Vec::new(),
            edge_pool: Vec::new(),
        };
        core.validate_structure(path)?;
        let (node_labels, edge_off, edge_pool) = core.decode_labels(path, edge_count)?;
        if let Some(fp) = expect {
            let stored = (core.words.as_slice()[12], core.words.as_slice()[13]);
            if stored != fp {
                return Err(invalid(
                    path,
                    12,
                    format!(
                        "fingerprint {:#018x}:{:#018x} does not match the instance \
                         ({:#018x}:{:#018x})",
                        stored.0, stored.1, fp.0, fp.1
                    ),
                ));
            }
        }
        Ok(FrozenCore {
            node_labels,
            edge_off,
            edge_pool,
            ..core
        })
    }

    /// Structural validation of the numeric sections: every offset
    /// array is monotone and ends on its pool length, every index is in
    /// range, the dependent table is the exact inverse of the member
    /// table, and centers sit at distance 0 of their own ball.
    fn validate_structure(&self, path: &Path) -> Result<(), ArtifactError> {
        let lay = &self.lay;
        let (n, t, a) = (lay.n, lay.t, lay.a);
        let bad = |sec: usize, idx: usize, detail: String| invalid(path, sec + idx / 2, detail);

        let check_offsets = |sec: usize, off: &[u32], pool: usize, name: &str| {
            if off[0] != 0 {
                return Err(bad(sec, 0, format!("{name}[0] = {} (want 0)", off[0])));
            }
            for i in 1..off.len() {
                if off[i] < off[i - 1] {
                    return Err(bad(sec, i, format!("{name}[{i}] decreases")));
                }
            }
            if off[off.len() - 1] as usize != pool {
                return Err(bad(
                    sec,
                    off.len() - 1,
                    format!("{name} ends at {} (pool has {pool})", off[off.len() - 1]),
                ));
            }
            Ok(())
        };
        check_offsets(lay.member_off, self.member_off(), t, "member_off")?;
        check_offsets(lay.dependent_off, self.dependent_off(), t, "dependent_off")?;
        check_offsets(lay.skel_adj_off, self.skel_adj_off(), a, "skel_adj_off")?;

        let member_off = self.member_off();
        let members = self.members_sec();
        let dist = self.dist_sec();
        for v in 0..n {
            let (lo, hi) = (member_off[v] as usize, member_off[v + 1] as usize);
            if lo == hi {
                return Err(bad(
                    lay.member_off,
                    v,
                    format!("node {v} has an empty ball"),
                ));
            }
            // One fused pass per ball: membership range, strict order,
            // and distance bound (the offsets were just checked to
            // partition the pool, so this covers every `dist` entry).
            for i in lo..hi {
                if members[i] as usize >= n {
                    return Err(bad(
                        lay.members,
                        i,
                        format!("member {} out of range (n = {n})", members[i]),
                    ));
                }
                if i > lo && members[i] <= members[i - 1] {
                    return Err(bad(
                        lay.members,
                        i,
                        "ball members not strictly sorted".into(),
                    ));
                }
                if dist[i] as usize > lay.radius {
                    return Err(bad(
                        lay.dist,
                        i,
                        format!("distance {} exceeds radius {}", dist[i], lay.radius),
                    ));
                }
            }
            let c = self.centers()[v] as usize;
            if c >= hi - lo {
                return Err(bad(
                    lay.centers,
                    v,
                    format!("center {c} outside ball of size {}", hi - lo),
                ));
            }
            if members[lo + c] as usize != v {
                return Err(bad(
                    lay.centers,
                    v,
                    format!("center of node {v}'s ball is node {}", members[lo + c]),
                ));
            }
            if dist[lo + c] != 0 {
                return Err(bad(lay.dist, lo + c, "center at nonzero distance".into()));
            }
        }
        // Dependents: exact inverse of the member table.
        let dep_off = self.dependent_off();
        let deps = self.dependents_packed();
        for v in 0..n {
            for i in dep_off[v] as usize..dep_off[v + 1] as usize {
                let (owner, local) = ((deps[i] >> 32) as usize, deps[i] as u32 as usize);
                if owner >= n {
                    return Err(invalid(
                        path,
                        lay.dependents + i,
                        format!("dependent owner {owner} out of range"),
                    ));
                }
                let (lo, hi) = (member_off[owner] as usize, member_off[owner + 1] as usize);
                if local >= hi - lo || members[lo + local] as usize != v {
                    return Err(invalid(
                        path,
                        lay.dependents + i,
                        format!("dependent ({owner}, {local}) is not the inverse of member {v}"),
                    ));
                }
            }
        }
        // Per-skeleton local CSR offsets and adjacency indices.
        let sa = self.skel_adj_off();
        let aol = self.adj_off_local();
        let adj = self.adj_sec();
        for v in 0..n {
            let ball = (member_off[v + 1] - member_off[v]) as usize;
            let base = member_off[v] as usize + v;
            let local = &aol[base..base + ball + 1];
            let span = (sa[v + 1] - sa[v]) as usize;
            if local[0] != 0 || local[ball] as usize != span {
                return Err(bad(
                    lay.adj_off_local,
                    base,
                    format!("skeleton {v} adjacency offsets do not span {span}"),
                ));
            }
            for i in 1..=ball {
                if local[i] < local[i - 1] {
                    return Err(bad(
                        lay.adj_off_local,
                        base + i,
                        format!("skeleton {v} adjacency offsets decrease"),
                    ));
                }
            }
            for i in sa[v] as usize..sa[v + 1] as usize {
                if adj[i] >= ball {
                    return Err(invalid(
                        path,
                        lay.adj + i,
                        format!("adjacency index {} outside ball of size {ball}", adj[i]),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Decodes the label sections into typed pools, consuming exactly
    /// the advertised word counts.
    #[allow(clippy::type_complexity)]
    fn decode_labels(
        &self,
        path: &Path,
        edge_count: usize,
    ) -> Result<(Vec<N>, Vec<u32>, Vec<((usize, usize), E)>), ArtifactError> {
        let lay = &self.lay;
        let w = self.words.as_slice();
        let nl_words = &w[lay.node_labels..lay.node_labels + (lay.edge_labels - lay.node_labels)];
        let mut r = WordReader::new(nl_words);
        let mut node_labels = Vec::with_capacity(lay.t);
        for i in 0..lay.t {
            let at = lay.node_labels + r.consumed();
            node_labels.push(N::decode(&mut r).ok_or_else(|| {
                invalid(path, at, format!("node label {i} of {} malformed", lay.t))
            })?);
        }
        if r.consumed() != nl_words.len() {
            return Err(invalid(
                path,
                lay.node_labels + r.consumed(),
                "node label section has trailing words",
            ));
        }
        let el_words = &w[lay.edge_labels..lay.total];
        let mut r = WordReader::new(el_words);
        let edge_off = r
            .read_u32s(lay.n + 1)
            .ok_or_else(|| invalid(path, lay.edge_labels, "edge offset table truncated"))?;
        if edge_off[0] != 0 || edge_off[lay.n] as usize != edge_count {
            return Err(invalid(
                path,
                lay.edge_labels,
                format!("edge offsets do not span {edge_count} entries"),
            ));
        }
        if edge_off.windows(2).any(|p| p[1] < p[0]) {
            return Err(invalid(path, lay.edge_labels, "edge offsets decrease"));
        }
        let mut edge_pool = Vec::with_capacity(edge_count);
        let member_off = self.member_off();
        for v in 0..lay.n {
            let ball = (member_off[v + 1] - member_off[v]) as usize;
            for i in edge_off[v] as usize..edge_off[v + 1] as usize {
                let at = lay.edge_labels + r.consumed();
                let key = r
                    .next()
                    .ok_or_else(|| invalid(path, at, "edge label key truncated"))?;
                let (u, wn) = ((key >> 32) as usize, key as u32 as usize);
                if u >= wn || wn >= ball {
                    return Err(invalid(
                        path,
                        at,
                        format!("edge key ({u}, {wn}) invalid in ball of size {ball}"),
                    ));
                }
                if let Some(((pu, pw), _)) = edge_pool.get(i.wrapping_sub(1)) {
                    if i > edge_off[v] as usize && (*pu, *pw) >= (u, wn) {
                        return Err(invalid(path, at, "edge keys not strictly sorted"));
                    }
                }
                let label = E::decode(&mut r)
                    .ok_or_else(|| invalid(path, at, format!("edge label {i} malformed")))?;
                edge_pool.push(((u, wn), label));
            }
        }
        if r.consumed() != el_words.len() {
            return Err(invalid(
                path,
                lay.edge_labels + r.consumed(),
                "edge label section has trailing words",
            ));
        }
        Ok((node_labels, edge_off, edge_pool))
    }
}

// ---------------------------------------------------------------------
// Building
// ---------------------------------------------------------------------

/// Below this node count, the parallel build falls back to sequential
/// code: spawning workers costs more than the whole sweep.
#[cfg(feature = "parallel")]
const PAR_THRESHOLD: usize = 256;

/// Builds every node's skeleton for `(inst, radius)` — sequential.
#[cfg(not(feature = "parallel"))]
pub(crate) fn build_all<N: Clone, E: Clone>(
    inst: &Instance<N, E>,
    radius: usize,
) -> Vec<(Skeleton<N, E>, Vec<u32>)> {
    let mut scratch = BallScratch::new(inst.graph().n());
    (0..inst.n())
        .map(|v| build_skeleton(inst, v, radius, &mut scratch))
        .collect()
}

/// Builds every node's skeleton for `(inst, radius)`, fanning the
/// per-node BFS out across cores for large instances.
#[cfg(feature = "parallel")]
pub(crate) fn build_all<N: Clone + Send + Sync, E: Clone + Send + Sync>(
    inst: &Instance<N, E>,
    radius: usize,
) -> Vec<(Skeleton<N, E>, Vec<u32>)> {
    let n = inst.n();
    if n >= PAR_THRESHOLD {
        // One contiguous node range per worker, each reusing a single
        // O(n) scratch — not one scratch per node, which would make
        // preparation Θ(n²) in allocation alone.
        let workers = std::thread::available_parallelism().map_or(1, |w| w.get());
        let chunk = n.div_ceil(workers);
        let ranges: Vec<(usize, usize)> = (0..workers)
            .map(|i| (i * chunk, ((i + 1) * chunk).min(n)))
            .filter(|&(start, end)| start < end)
            .collect();
        ranges
            .into_par_iter()
            .map(|(start, end)| {
                let mut scratch = BallScratch::new(inst.graph().n());
                (start..end)
                    .map(|v| build_skeleton(inst, v, radius, &mut scratch))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .collect()
    } else {
        let mut scratch = BallScratch::new(inst.graph().n());
        (0..n)
            .map(|v| build_skeleton(inst, v, radius, &mut scratch))
            .collect()
    }
}

/// The mutable build/repair half of the core split: per-node skeleton
/// buckets plus the member/dependent tables, kept in repairable form so
/// topology churn rebuilds only its scope.
///
/// This is the engine substrate of [`crate::engine::SkeletonStore`]
/// (which keeps the stable public API); the builder itself adds the
/// round-trips: [`CoreBuilder::freeze`] renders the immutable serving
/// form and [`CoreBuilder::thaw`] reconstructs a builder from one, so a
/// churned store and a frozen artifact share one invariant surface.
pub struct CoreBuilder<N = (), E = ()> {
    radius: usize,
    skeletons: Vec<Skeleton<N, E>>,
    /// Global indices of each node's ball members, in view-local order.
    members: Vec<Vec<u32>>,
    /// For each global node `v`, the `(owner, local)` pairs of views
    /// containing `v`, sorted by owner.
    dependents: Vec<Vec<(u32, u32)>>,
    scratch: BallScratch,
}

impl<N, E> std::fmt::Debug for CoreBuilder<N, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreBuilder")
            .field("n", &self.skeletons.len())
            .field("radius", &self.radius)
            .finish_non_exhaustive()
    }
}

impl<N, E> CoreBuilder<N, E> {
    /// Number of nodes (`n(G)` at construction; mutations preserve it).
    pub fn n(&self) -> usize {
        self.skeletons.len()
    }

    /// The build radius `r`.
    pub fn radius(&self) -> usize {
        self.radius
    }
}

impl<N: Clone, E: Clone> CoreBuilder<N, E> {
    /// Builds the mutable core for `inst` at `radius`: one bounded BFS
    /// per node, paid once; later mutations repair only their scope.
    pub fn build(inst: &Instance<N, E>, radius: usize) -> Self {
        let n = inst.n();
        let mut scratch = BallScratch::new(inst.graph().n());
        let mut skeletons = Vec::with_capacity(n);
        let mut members = Vec::with_capacity(n);
        for v in 0..n {
            let (skel, ms) = build_skeleton(inst, v, radius, &mut scratch);
            skeletons.push(skel);
            members.push(ms);
        }
        let mut dependents: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for (owner, ms) in members.iter().enumerate() {
            for (local, &m) in ms.iter().enumerate() {
                dependents[m as usize].push((owner as u32, local as u32));
            }
        }
        CoreBuilder {
            radius,
            skeletons,
            members,
            dependents,
            scratch,
        }
    }

    /// Reconstructs a mutable builder from a frozen core — the thaw
    /// half of the round-trip, used when a dynamic session starts from
    /// a preloaded artifact.
    pub fn thaw(core: &FrozenCore<N, E>) -> Self {
        let n = core.n();
        let mut skeletons = Vec::with_capacity(n);
        let mut members = Vec::with_capacity(n);
        let mut dependents: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for v in 0..n {
            let sv = core.skel_view(v);
            skeletons.push(Skeleton {
                center: sv.center,
                radius: sv.radius,
                ids: sv.ids.to_vec(),
                adj_off: sv.adj_off.to_vec(),
                adj: sv.adj.to_vec(),
                dist: sv.dist.to_vec(),
                node_data: sv.node_data.to_vec(),
                edge_labels: sv.edge_labels.to_vec(),
            });
            members.push(core.members_of(v).to_vec());
            dependents[v] = core.dependents_of(v).collect();
        }
        CoreBuilder {
            radius: core.radius(),
            skeletons,
            members,
            dependents,
            scratch: BallScratch::new(n),
        }
    }

    /// Renders the immutable serving form. Byte-identical to
    /// `FrozenCore::from_built` over a fresh build of the same
    /// (current) topology — the refreeze invariant the round-trip tests
    /// pin.
    pub fn freeze(&self) -> FrozenCore<N, E> {
        let built: Vec<(Skeleton<N, E>, Vec<u32>)> = self
            .skeletons
            .iter()
            .cloned()
            .zip(self.members.iter().cloned())
            .collect();
        FrozenCore::from_built(self.radius, built)
    }

    /// Global indices of node `v`'s ball members, in view-local order.
    pub fn members_of(&self, v: usize) -> &[u32] {
        &self.members[v]
    }

    /// The `(owner, local)` pairs of views containing global node `v`.
    pub(crate) fn dependents_of(&self, v: usize) -> &[(u32, u32)] {
        &self.dependents[v]
    }

    /// Node `v`'s skeleton as a borrow-only view.
    #[inline]
    pub(crate) fn skel_view(&self, v: usize) -> SkelView<'_, N, E> {
        self.skeletons[v].as_view()
    }

    /// The scope of an edge mutation on `{u, v}` — see
    /// [`crate::engine::SkeletonStore::edge_scope`].
    pub fn edge_scope(&mut self, inst: &Instance<N, E>, u: usize, v: usize) -> Vec<usize> {
        self.scratch.ball_union(inst.graph(), &[u, v], self.radius)
    }

    /// Rebuilds the skeletons of `nodes` against the instance's current
    /// topology; returns the structurally changed subset — see
    /// [`crate::engine::SkeletonStore::rebuild`].
    pub fn rebuild(&mut self, inst: &Instance<N, E>, nodes: &[usize]) -> Vec<usize> {
        let mut changed = Vec::new();
        for &w in nodes {
            let (skel, ms) = build_skeleton(inst, w, self.radius, &mut self.scratch);
            let old = &self.skeletons[w];
            let structurally_equal = self.members[w] == ms
                && old.adj_off == skel.adj_off
                && old.adj == skel.adj
                && old.dist == skel.dist;
            if structurally_equal {
                continue;
            }
            // Unlink the stale membership, then link the new one.
            for &m in &self.members[w] {
                let deps = &mut self.dependents[m as usize];
                if let Ok(pos) = deps.binary_search_by_key(&(w as u32), |&(o, _)| o) {
                    deps.remove(pos);
                }
            }
            for (local, &m) in ms.iter().enumerate() {
                let deps = &mut self.dependents[m as usize];
                let entry = (w as u32, local as u32);
                match deps.binary_search_by_key(&(w as u32), |&(o, _)| o) {
                    Ok(pos) => deps[pos] = entry,
                    Err(pos) => deps.insert(pos, entry),
                }
            }
            self.skeletons[w] = skel;
            self.members[w] = ms;
            changed.push(w);
        }
        changed
    }

    /// Patches node `v`'s label through the dependency table — see
    /// [`crate::engine::SkeletonStore::set_node_label`].
    pub fn set_node_label(&mut self, v: usize, label: &N) -> Vec<usize> {
        let mut touched = Vec::with_capacity(self.dependents[v].len());
        for &(owner, local) in &self.dependents[v] {
            self.skeletons[owner as usize].node_data[local as usize] = label.clone();
            touched.push(owner as usize);
        }
        touched
    }

    /// Fault-injection hook — see
    /// [`crate::engine::SkeletonStore::corrupt_skeleton_for_tests`].
    #[doc(hidden)]
    pub fn corrupt_skeleton_for_tests(&mut self, v: usize) -> &'static str {
        let skel = &mut self.skeletons[v];
        if skel.adj.len() >= 2 && skel.adj.first() != skel.adj.last() {
            skel.adj.reverse();
            if let Some(d) = skel.dist.last_mut() {
                *d = d.wrapping_add(1);
            }
            "reversed CSR adjacency and bumped a cached distance"
        } else if let Some(d) = skel.dist.last_mut() {
            *d = d.wrapping_add(1);
            "bumped a cached distance"
        } else {
            "empty skeleton: nothing to corrupt"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_graph::generators;

    #[test]
    fn packed_u32_roundtrip() {
        let mut out = Vec::new();
        push_u32s(&mut out, &[1, 2, 3]);
        assert_eq!(out, vec![1 | (2 << 32), 3]);
        let mut r = WordReader::new(&out);
        assert_eq!(r.read_u32s(3), Some(vec![1, 2, 3]));
        assert_eq!(r.consumed(), 2);
    }

    #[test]
    fn padded_half_word_must_be_zero() {
        let words = vec![1 | (7u64 << 32)];
        let mut r = WordReader::new(&words);
        assert_eq!(r.read_u32s(1), None, "nonzero padding rejected");
    }

    #[test]
    fn label_codecs_roundtrip() {
        fn rt<L: PortableLabel + PartialEq + std::fmt::Debug>(l: L) {
            let mut out = Vec::new();
            l.encode(&mut out);
            let mut r = WordReader::new(&out);
            assert_eq!(L::decode(&mut r), Some(l));
            assert_eq!(r.consumed(), out.len());
        }
        rt(());
        rt(true);
        rt(false);
        rt(17u8);
        rt(123_456u32);
        rt(u64::MAX);
        rt(42usize);
        let mut r = WordReader::new(&[2]);
        assert_eq!(bool::decode(&mut r), None, "bool rejects non-0/1");
        let mut r = WordReader::new(&[256]);
        assert_eq!(u8::decode(&mut r), None, "u8 rejects overflow");
    }

    #[test]
    fn layout_overflow_is_none_not_panic() {
        assert!(Layout::new(2, usize::MAX, usize::MAX, usize::MAX, 0, 0).is_none());
    }

    #[test]
    fn builder_freeze_matches_one_shot_freeze() {
        let inst = Instance::unlabeled(generators::grid(3, 4));
        let one_shot = FrozenCore::<(), ()>::from_built(2, build_all(&inst, 2));
        let built = CoreBuilder::build(&inst, 2).freeze();
        assert_eq!(one_shot.words(), built.words(), "byte-identical images");
    }

    #[test]
    fn thaw_refreeze_is_identity() {
        let inst = Instance::unlabeled(generators::grid(3, 4));
        let frozen = CoreBuilder::<(), ()>::build(&inst, 2).freeze();
        let again = CoreBuilder::thaw(&frozen).freeze();
        assert_eq!(frozen.words(), again.words());
    }

    #[test]
    fn frozen_views_match_built_skeletons() {
        let inst = Instance::unlabeled(generators::grid(3, 4));
        let builder = CoreBuilder::<(), ()>::build(&inst, 2);
        let frozen = builder.freeze();
        for v in 0..inst.n() {
            assert_eq!(frozen.skel_view(v), builder.skel_view(v), "skeleton {v}");
            assert_eq!(frozen.members_of(v), builder.members_of(v));
            assert_eq!(
                frozen.dependents_of(v).collect::<Vec<_>>(),
                builder.dependents_of(v).to_vec()
            );
        }
    }

    #[test]
    fn save_open_roundtrip_and_rejections() {
        let inst = Instance::unlabeled(generators::grid(3, 4));
        let frozen = CoreBuilder::<(), ()>::build(&inst, 2).freeze();
        let dir = std::env::temp_dir().join(format!("lcp-frozen-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.lcpc");
        let fp = (0xabcd, 0x1234);
        frozen.save(&path, fp).unwrap();

        let opened = FrozenCore::<(), ()>::open(&path, Some(fp)).unwrap();
        for v in 0..inst.n() {
            assert_eq!(opened.skel_view(v), frozen.skel_view(v), "skeleton {v}");
        }

        // Wrong fingerprint expectation is rejected.
        assert!(FrozenCore::<(), ()>::open(&path, Some((1, 2))).is_err());

        // A flipped byte is a checksum error naming the file.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let bad = dir.join("flipped.lcpc");
        std::fs::write(&bad, &bytes).unwrap();
        let err = FrozenCore::<(), ()>::open(&bad, None).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // Truncation is rejected before any section is trusted.
        let bytes = std::fs::read(&path).unwrap();
        let cut = dir.join("cut.lcpc");
        std::fs::write(&cut, &bytes[..bytes.len() - 16]).unwrap();
        assert!(FrozenCore::<(), ()>::open(&cut, None).is_err());

        // Version skew (with a recomputed checksum) is a version error.
        let mut words: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        words[1] = FORMAT_VERSION + 1;
        words[CHECKSUM_WORD] = 0;
        words[CHECKSUM_WORD] = fnv_words(&words);
        let skew = dir.join("skew.lcpc");
        let out: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        std::fs::write(&skew, &out).unwrap();
        let err = FrozenCore::<(), ()>::open(&skew, None).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        assert!(err.to_string().contains("byte 8"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }
}
