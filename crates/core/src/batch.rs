//! Batched candidate evaluation under the search loops: up to 64
//! candidate proofs per word op.
//!
//! The exhaustive odometer and the adversarial bit-flip search of
//! [`crate::harness`] are the throughput ceiling of every soundness
//! sweep, and both spend their time on candidates that differ from a
//! predecessor at a single node. This module amortizes that work across
//! *blocks* of up to 64 candidates at once, on two complementary paths:
//!
//! * **Block odometer** (any scheme): the odometer's low `k` digit
//!   positions (chosen so `R^k ≤ 64`, `R` = strings per node) are
//!   enumerated as one 64-lane block. Each verifier that can see a low
//!   node gets a lazily-filled table of *block masks* — one `u64` whose
//!   bit `c` is the verifier's output on in-block candidate `c` — keyed
//!   by the mixed-radix signature of its high (block-invariant)
//!   members. A block is then decided by ANDing a handful of masks; the
//!   first violating candidate, if any, is `acc.trailing_zeros()`.
//!   Filling a mask costs exactly the scalar memo's `R^|ball|` verifier
//!   calls per owner (outputs are replicated over the low digits the
//!   owner cannot see, via a precomputed spread pattern), so batching
//!   never runs *more* verifiers than the scalar path — it removes the
//!   per-candidate loop overhead between them.
//! * **Bit-sliced kernels** (schemes with [`Scheme::supports_batch`]):
//!   candidates live transposed in a [`BatchArena`] — one `u64` holds
//!   the same proof-bit position of 64 candidates — and the scheme's
//!   [`Scheme::verify_batch`] folds lane words into an accept mask
//!   directly. The block odometer uses kernels to fill whole mask
//!   tables in one call, and the adversarial search uses them to score
//!   up to 64 pending bit-flips per evaluation sweep.
//!
//! **Determinism contract**: batching may never change a verdict, a
//! witness, or an RNG stream. The block odometer reproduces the scalar
//! enumeration order exactly (same first violating proof, same `tried`
//! counts, same [`CHECK_INTERVAL`] deadline grid); the batched
//! adversarial search pre-draws each chunk's random choices in stream
//! order, falls back to scalar re-scoring for any lane staled by an
//! earlier in-chunk commit, and rewinds the RNG on early exit so the
//! stream position matches the scalar loop bit for bit. The
//! `batch_equivalence` property tests pin both.
//!
//! Routing: [`BatchPolicy::Auto`] (the default everywhere) uses the
//! batched paths whenever the `batch` feature is compiled in *and* the
//! search shape fits (`2 ≤ R ≤ 64`, table budget, and — for the
//! adversarial path — a kernel scheme with an unbounded deadline);
//! everything else takes the unchanged scalar loops.
//! [`BatchPolicy::Scalar`] (`--no-batch` in the conformance CLI) forces
//! the scalar loops unconditionally.

use crate::arena::BatchArena;
use crate::bits::{AsBits, BitString};
use crate::deadline::{Deadline, CHECK_INTERVAL};
use crate::engine::PreparedInstance;
use crate::harness::{random_proof, refill_random, OutputMemo, Soundness, SoundnessError};
use crate::metrics;
use crate::proof::Proof;
use crate::scheme::Scheme;
use crate::view::SkelView;
use lcp_graph::{norm_edge, NodeId};
use rand::rngs::StdRng;
use rand::RngExt;

/// Whether the search loops may route through the batched layer.
///
/// `Auto` is the default everywhere; the scalar loops remain reachable
/// per call via `Scalar` (the conformance CLI's `--no-batch`), and
/// building `lcp-core` with `--no-default-features` makes `Auto` behave
/// as `Scalar` globally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Use the batched paths when compiled in and applicable; identical
    /// results either way.
    #[default]
    Auto,
    /// Force the scalar loops.
    Scalar,
}

/// Whether `policy` routes through the batched layer in this build.
pub(crate) fn enabled(policy: BatchPolicy) -> bool {
    cfg!(feature = "batch") && policy == BatchPolicy::Auto
}

/// A [`crate::View`] over 64 candidate proofs at once: the same cached
/// skeleton (topology, identifiers, labels), with proof bits read
/// lane-parallel from a [`BatchArena`] instead of one
/// [`crate::ProofArena`].
///
/// Handed to [`Scheme::verify_batch`] kernels by the batched search
/// loops and by
/// [`PreparedInstance::bind_batch`](crate::engine::PreparedInstance::bind_batch).
/// Topology accessors mirror [`crate::View`]; proof accessors return
/// 64-lane words (bit `i` — candidate `i`).
#[derive(Debug)]
pub struct BatchView<'a, N = (), E = ()> {
    skel: SkelView<'a, N, E>,
    arena: &'a BatchArena,
    members: &'a [u32],
}

// Manual Copy/Clone: the derives would demand `N: Copy`/`E: Copy`, but
// the fields are slices, copyable for any label type.
impl<N, E> Clone for BatchView<'_, N, E> {
    #[inline]
    fn clone(&self) -> Self {
        *self
    }
}
impl<N, E> Copy for BatchView<'_, N, E> {}

impl<'a, N, E> BatchView<'a, N, E> {
    /// Assembles a batch view from a cached flat skeleton and the
    /// transposed arena — the batched analogue of `View::bind_arena`.
    pub(crate) fn bind(
        skel: SkelView<'a, N, E>,
        arena: &'a BatchArena,
        members: &'a [u32],
    ) -> Self {
        debug_assert_eq!(skel.n(), members.len(), "one arena slot per view node");
        BatchView {
            skel,
            arena,
            members,
        }
    }

    /// The centre's index *within the view*.
    pub fn center(&self) -> usize {
        self.skel.center
    }

    /// The extraction radius `r`.
    pub fn radius(&self) -> usize {
        self.skel.radius
    }

    /// Number of nodes in the view.
    pub fn n(&self) -> usize {
        self.skel.n()
    }

    /// Iterates over view node indices.
    pub fn nodes(&self) -> std::ops::Range<usize> {
        0..self.n()
    }

    /// Identifier of view node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn id(&self, u: usize) -> NodeId {
        self.skel.ids[u]
    }

    /// All identifiers in view-index order.
    pub fn ids(&self) -> &[NodeId] {
        self.skel.ids
    }

    /// View index of the node with identifier `id`, if visible.
    pub fn index_of(&self, id: NodeId) -> Option<usize> {
        self.skel.ids.iter().position(|&x| x == id)
    }

    /// Distance from the centre (in the original graph, ≤ radius).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn dist(&self, u: usize) -> usize {
        self.skel.dist[u] as usize
    }

    /// Sorted neighbours of `u` within the view.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        self.skel.neighbors(u)
    }

    /// Degree of `u` within the view.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: usize) -> usize {
        self.neighbors(u).len()
    }

    /// Whether `{u, w}` is an edge of the view.
    pub fn has_edge(&self, u: usize, w: usize) -> bool {
        u < self.n() && w < self.n() && self.neighbors(u).binary_search(&w).is_ok()
    }

    /// The node label of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn node_label(&self, u: usize) -> &N {
        &self.skel.node_data[u]
    }

    /// The edge label of `{u, w}` within the view, if present.
    pub fn edge_label(&self, u: usize, w: usize) -> Option<&E> {
        let key = norm_edge(u, w);
        self.skel
            .edge_labels
            .binary_search_by(|(k, _)| k.cmp(&key))
            .ok()
            .map(|i| &self.skel.edge_labels[i].1)
    }

    /// Mask of the lanes carrying real candidates; kernel outputs
    /// outside it are ignored by callers.
    pub fn active(&self) -> u64 {
        self.arena.active()
    }

    /// Reserved proof bits per node per lane.
    pub fn cap(&self) -> usize {
        self.arena.cap()
    }

    /// Lane word of view node `u`'s proof bit `j`: bit `i` is candidate
    /// `i`'s bit (0 past that candidate's string length).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `j` is out of range.
    #[inline(always)]
    pub fn bit(&self, u: usize, j: usize) -> u64 {
        self.arena.bit(self.members[u] as usize, j)
    }

    /// Lanes whose proof string at view node `u` is longer than `j`
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `j` is out of range.
    #[inline(always)]
    pub fn has_bit(&self, u: usize, j: usize) -> u64 {
        self.arena.has_bit(self.members[u] as usize, j)
    }

    /// Lanes whose proof string at view node `u` has exactly `len`
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range or `len` exceeds the capacity.
    pub fn len_eq(&self, u: usize, len: usize) -> u64 {
        self.arena.len_eq(self.members[u] as usize, len)
    }

    /// Lanes where the proof strings at view nodes `u` and `w` differ
    /// (content or length) — AVX2-accelerated where available.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `w` is out of range.
    pub fn ne(&self, u: usize, w: usize) -> u64 {
        self.arena
            .ne(self.members[u] as usize, self.members[w] as usize)
    }
}

/// Byte budget for the per-owner block-mask tables, mirroring the
/// scalar memo's cap; shapes that outgrow it fall back to the scalar
/// odometer.
const TABLE_BYTE_CAP: usize = 1 << 22;

/// The smallest deadline-poll grid point the scalar odometer would hit
/// strictly after candidate `base` and within the next `block`
/// candidates — i.e. the unique multiple of [`CHECK_INTERVAL`] in
/// `(base, base + block]` (there is at most one: `block ≤ 64`).
fn first_poll_in(base: u64, block: u64) -> Option<u64> {
    let m = (base / CHECK_INTERVAL + 1) * CHECK_INTERVAL;
    (m <= base + block).then_some(m)
}

/// The batched exhaustive odometer. Returns `None` when the search
/// shape does not fit the block layout (caller falls back to the scalar
/// loop); otherwise the result is exactly what the scalar loop would
/// produce.
///
/// The caller has already asserted the no-instance, rejected oversized
/// spaces, handled `n == 0`, and built `strings` (shortest first).
pub(crate) fn exhaustive<S: Scheme>(
    scheme: &S,
    prep: &PreparedInstance<'_, S::Node, S::Edge>,
    max_bits: usize,
    strings: &[BitString],
    deadline: &Deadline,
) -> Option<Result<Soundness, SoundnessError>> {
    let n = prep.n();
    let r = strings.len();
    if !(2..=64).contains(&r) || n == 0 {
        return None;
    }
    // Split the odometer: the low k digit positions (r^k ≤ 64) form one
    // lane block; positions k..n stay a conventional high odometer.
    let mut k = 0usize;
    let mut block = 1usize;
    while k < n && block * r <= 64 {
        block *= r;
        k += 1;
    }
    let block_u64 = block as u64;
    let active: u64 = if block == 64 { !0 } else { (1u64 << block) - 1 };
    // In-block digit weights: candidate offset c has digit (c / r^p) % r
    // at low position p.
    let mut r_pow = vec![1usize; k];
    for p in 1..k {
        r_pow[p] = r_pow[p - 1] * r;
    }

    // Owners that can see a low node get mask tables; the rest are
    // block-invariant and tracked by a plain rejecting counter.
    let mut is_low_owner = vec![false; n];
    let mut low_owners: Vec<u32> = Vec::new();
    for w in 0..n {
        if prep.members_of(w).iter().any(|&m| (m as usize) < k) {
            is_low_owner[w] = true;
            low_owners.push(w as u32);
        }
    }
    // Flattened low/high member partitions per low owner, that owner's
    // table region, and its spread pattern (bits whose digits at the
    // owner's own low members are all 0 — the offsets over which one
    // verifier output replicates).
    let mut low_mem: Vec<u32> = Vec::new();
    let mut low_mem_off = vec![0usize];
    let mut high_mem: Vec<u32> = Vec::new();
    let mut high_mem_off = vec![0usize];
    let mut tbl_off = vec![0usize];
    let mut pattern: Vec<u64> = Vec::new();
    for &w in &low_owners {
        let mut tbl = 1usize;
        for &m in prep.members_of(w as usize) {
            if (m as usize) < k {
                low_mem.push(m);
            } else {
                high_mem.push(m);
                tbl = tbl.checked_mul(r)?;
            }
        }
        low_mem_off.push(low_mem.len());
        high_mem_off.push(high_mem.len());
        let total = tbl_off.last().unwrap().checked_add(tbl)?;
        if total > TABLE_BYTE_CAP / 8 {
            return None;
        }
        tbl_off.push(total);
        let own = &low_mem[low_mem_off[low_mem_off.len() - 2]..];
        let mut p = 0u64;
        'c: for c in 0..block {
            for &m in own {
                if !(c / r_pow[m as usize]).is_multiple_of(r) {
                    continue 'c;
                }
            }
            p |= 1u64 << c;
        }
        pattern.push(p);
    }
    let mut tables = vec![0u64; *tbl_off.last().unwrap()];
    let mut filled = vec![0u64; tables.len().div_ceil(64)];

    // High owners reuse the scalar loop's verifier-output memo (their
    // signatures range over high members only; low owners get size-0
    // entries that are never consulted).
    let mut memo = OutputMemo::try_new(
        (0..n).map(|v| {
            if is_low_owner[v] {
                0
            } else {
                prep.members_of(v).len()
            }
        }),
        r,
    );
    let mut proof = Proof::with_capacity(n, max_bits);
    let mut indices = vec![0usize; n];
    // Metric accumulators (`Cell`s shared by the closures below): the
    // block loop touches plain locals only, flushed once at each exit.
    let memo_hits = std::cell::Cell::new(0u64);
    let memo_misses = std::cell::Cell::new(0u64);
    let verifies = std::cell::Cell::new(0u64);
    let kernel_fills = std::cell::Cell::new(0u64);
    let scalar_fills = std::cell::Cell::new(0u64);
    let flush = |tried: u64| {
        metrics::EXHAUSTIVE_CANDIDATES.add(tried);
        metrics::BINDS.add(verifies.get());
        metrics::MEMO_HITS.add(memo_hits.get());
        metrics::MEMO_MISSES.add(memo_misses.get());
        metrics::MASK_FILLS_KERNEL.add(kernel_fills.get());
        metrics::MASK_FILLS_SCALAR.add(scalar_fills.get());
    };
    let check_high =
        |owner: usize, proof: &Proof, indices: &[usize], memo: &mut Option<OutputMemo>| -> bool {
            if let Some(m) = memo {
                let slot = m.slot(owner, prep.members_of(owner), indices);
                match m.table[slot] {
                    0 => {
                        let now = scheme.verify(&prep.bind(owner, proof));
                        m.table[slot] = 1 + now as u8;
                        memo_misses.set(memo_misses.get() + 1);
                        verifies.set(verifies.get() + 1);
                        now
                    }
                    cached => {
                        memo_hits.set(memo_hits.get() + 1);
                        cached == 2
                    }
                }
            } else {
                verifies.set(verifies.get() + 1);
                scheme.verify(&prep.bind(owner, proof))
            }
        };
    let mut high_out = vec![true; n];
    let mut reject_high = 0usize;
    for w in 0..n {
        if !is_low_owner[w] {
            let out = check_high(w, &proof, &indices, &mut memo);
            high_out[w] = out;
            if !out {
                reject_high += 1;
            }
        }
    }

    // Kernel schemes fill mask tables with one verify_batch call over a
    // transposed arena whose low-node lanes are seeded once, here: lane
    // c's string at low node p is strings[(c / r^p) % r] for the whole
    // enumeration.
    let mut arena = if scheme.supports_batch() {
        let mut a = BatchArena::new(n, max_bits);
        a.set_lanes(block);
        for p in 0..k {
            for c in 0..block {
                a.set_lane(c, p, strings[c / r_pow[p] % r].as_bits());
            }
        }
        Some(a)
    } else {
        None
    };

    // Block loop: `base` counts candidates fully enumerated before this
    // block, so in-block offset c is scalar candidate `base + 1 + c`.
    let mut base = 0u64;
    loop {
        if reject_high == 0 {
            let mut acc = active;
            for (li, &w) in low_owners.iter().enumerate() {
                let w = w as usize;
                let mut sig = 0usize;
                for &m in &high_mem[high_mem_off[li]..high_mem_off[li + 1]] {
                    sig = sig * r + indices[m as usize];
                }
                let slot = tbl_off[li] + sig;
                if filled[slot >> 6] & (1 << (slot & 63)) == 0 {
                    let mask = if let Some(a) = arena.as_mut() {
                        for &m in &high_mem[high_mem_off[li]..high_mem_off[li + 1]] {
                            a.broadcast(m as usize, strings[indices[m as usize]].as_bits());
                        }
                        kernel_fills.set(kernel_fills.get() + 1);
                        verifies.set(verifies.get() + 1);
                        scheme.verify_batch(&BatchView::bind(
                            prep.skel_view_of(w),
                            a,
                            prep.members_of(w),
                        )) & active
                    } else {
                        // Verify only the r^|own| combinations of the
                        // owner's own low digits; each output spreads
                        // over the digits the owner cannot see.
                        let own = &low_mem[low_mem_off[li]..low_mem_off[li + 1]];
                        let combos: usize = own.iter().fold(1, |a, _| a * r);
                        let mut mask = 0u64;
                        for combo in 0..combos {
                            let mut rem = combo;
                            let mut offset = 0usize;
                            for &p in own {
                                let d = rem % r;
                                rem /= r;
                                proof.set(p as usize, &strings[d]);
                                offset += d * r_pow[p as usize];
                            }
                            if scheme.verify(&prep.bind(w, &proof)) {
                                mask |= pattern[li] << offset;
                            }
                        }
                        scalar_fills.set(scalar_fills.get() + 1);
                        verifies.set(verifies.get() + combos as u64);
                        mask
                    };
                    tables[slot] = mask;
                    filled[slot >> 6] |= 1 << (slot & 63);
                }
                acc &= tables[slot];
                if acc == 0 {
                    break;
                }
            }
            if acc != 0 {
                // First violating candidate of the block — unless the
                // scalar loop's deadline poll grid fires strictly
                // before it.
                let c = acc.trailing_zeros() as u64;
                let t = base + 1 + c;
                if !deadline.is_unbounded() {
                    if let Some(m) = first_poll_in(base, block_u64) {
                        if m < t && deadline.expired() {
                            flush(m);
                            return Some(Err(SoundnessError::DeadlineExpired { tried: m }));
                        }
                    }
                }
                let mut rem = c as usize;
                for p in 0..k {
                    proof.set(p, &strings[rem % r]);
                    rem /= r;
                }
                flush(t);
                return Some(Ok(Soundness::Violated(proof)));
            }
        }
        if !deadline.is_unbounded() {
            if let Some(m) = first_poll_in(base, block_u64) {
                if deadline.expired() {
                    flush(m);
                    return Some(Err(SoundnessError::DeadlineExpired { tried: m }));
                }
            }
        }
        base += block_u64;
        // Advance the high odometer by one; overflow means the whole
        // space was enumerated.
        let mut pos = k;
        loop {
            if pos == n {
                flush(base);
                return Some(Ok(Soundness::Holds(base)));
            }
            indices[pos] += 1;
            let rolled = indices[pos] == r;
            if rolled {
                indices[pos] = 0;
            }
            proof.set(pos, &strings[indices[pos]]);
            for owner in prep.dependents(pos) {
                if is_low_owner[owner] {
                    continue;
                }
                let now = check_high(owner, &proof, &indices, &mut memo);
                match (high_out[owner], now) {
                    (true, false) => reject_high += 1,
                    (false, true) => reject_high -= 1,
                    _ => {}
                }
                high_out[owner] = now;
            }
            if !rolled {
                break;
            }
            pos += 1;
        }
    }
}

/// The batched adversarial bit-flip search. Returns `None` when the
/// shape does not fit (no kernel, zero size budget, bounded deadline) —
/// the caller falls back to the scalar loop — and `Some(result)`
/// otherwise, where `result` is bit-for-bit what the scalar loop would
/// return, including the RNG stream position on every exit path.
///
/// The caller has already asserted the no-instance and handled
/// `n == 0`.
pub(crate) fn adversarial<S: Scheme>(
    scheme: &S,
    prep: &PreparedInstance<'_, S::Node, S::Edge>,
    size_budget: usize,
    iterations: usize,
    rng: &mut StdRng,
    deadline: &Deadline,
) -> Option<Option<Proof>> {
    // A bounded deadline polls wall time every 256 iterations; chunked
    // evaluation would change *when* the poll happens, so those runs
    // stay scalar. With size_budget ≥ 1 every node's string stays at
    // exactly size_budget bits, which makes the scalar loop's draw
    // schedule state-independent — the property the pre-draw below
    // relies on.
    if !scheme.supports_batch() || size_budget == 0 || !deadline.is_unbounded() {
        return None;
    }
    let n = prep.n();
    let mut proof = random_proof(n, size_budget, rng);
    let mut outputs: Vec<bool> = (0..n)
        .map(|v| scheme.verify(&prep.bind(v, &proof)))
        .collect();
    let mut score = outputs.iter().filter(|&&b| b).count();

    let mut arena = BatchArena::new(n, size_budget);
    for v in 0..n {
        arena.broadcast(v, proof.get(v));
    }
    // Scratch preallocated once; the chunk loop allocates nothing.
    let mut draws_v: Vec<usize> = Vec::with_capacity(64);
    let mut draws_idx: Vec<usize> = Vec::with_capacity(64);
    let mut owner_mask = vec![0u64; n];
    let mut owner_in_chunk = vec![false; n];
    let mut owner_list: Vec<u32> = Vec::with_capacity(n);
    let mut dirty_owner = vec![false; n];
    let mut committed: Vec<u32> = Vec::with_capacity(64);
    let mut touched: Vec<(usize, bool)> = Vec::with_capacity(n);

    // Verifier work (scalar verifies + kernel sweeps), accumulated
    // locally and flushed with the step count only when the search exits.
    let mut verifies = n as u64;
    let mut iter = 0usize;
    while iter < iterations {
        if score == n {
            metrics::ADVERSARIAL_STEPS.add(iter as u64);
            metrics::BINDS.add(verifies);
            return Some(Some(proof));
        }
        if iter % 200 == 199 {
            // Restart, exactly as the scalar loop draws it; the whole
            // incumbent changed, so re-broadcast every node.
            refill_random(&mut proof, size_budget, rng);
            for (v, out) in outputs.iter_mut().enumerate() {
                *out = scheme.verify(&prep.bind(v, &proof));
            }
            verifies += n as u64;
            score = outputs.iter().filter(|&&b| b).count();
            for v in 0..n {
                arena.broadcast(v, proof.get(v));
            }
            committed.clear();
            iter += 1;
            continue;
        }
        // One chunk: up to 64 consecutive flip iterations, stopping
        // before the next restart boundary.
        let next_restart = iter + (199 - iter % 200);
        let chunk_end = iterations.min(next_restart).min(iter + 64);
        let m = chunk_end - iter;
        let checkpoint = rng.clone();
        draws_v.clear();
        draws_idx.clear();
        for _ in 0..m {
            // Same calls, same order, as the scalar loop's iterations
            // (node lengths are pinned at size_budget, see above).
            draws_v.push(rng.random_range(0..n));
            draws_idx.push(rng.random_range(0..size_budget));
        }
        // Bring lanes up to the incumbent (only nodes committed by the
        // previous chunk differ), then give lane j its pending flip.
        for &v in &committed {
            arena.broadcast(v as usize, proof.get(v as usize));
        }
        committed.clear();
        arena.set_lanes(m);
        for j in 0..m {
            arena.flip(j, draws_v[j], draws_idx[j]);
        }
        // Evaluate every owner any pending flip can reach, once.
        owner_list.clear();
        for j in 0..m {
            for owner in prep.dependents(draws_v[j]) {
                if !owner_in_chunk[owner] {
                    owner_in_chunk[owner] = true;
                    owner_list.push(owner as u32);
                }
            }
        }
        for &w in &owner_list {
            owner_mask[w as usize] = scheme.verify_batch(&prep.bind_batch(w as usize, &arena));
        }
        verifies += owner_list.len() as u64;
        // Sequential commit walk, preserving the scalar loop's
        // hill-climbing semantics. A lane whose owners were touched by
        // an earlier in-chunk commit is stale — its precomputed mask
        // bits assumed the chunk-start incumbent — and re-scores
        // through the scalar path instead.
        let mut exit_at: Option<usize> = None;
        for j in 0..m {
            let v = draws_v[j];
            let idx = draws_idx[j];
            let stale = prep.dependents(v).any(|w| dirty_owner[w]);
            let mut new_score = score;
            if stale {
                proof.flip(v, idx);
                touched.clear();
                for owner in prep.dependents(v) {
                    let now = scheme.verify(&prep.bind(owner, &proof));
                    match (outputs[owner], now) {
                        (true, false) => new_score -= 1,
                        (false, true) => new_score += 1,
                        _ => {}
                    }
                    touched.push((owner, now));
                }
                verifies += touched.len() as u64;
                if new_score >= score {
                    for &(owner, out) in &touched {
                        outputs[owner] = out;
                        dirty_owner[owner] = true;
                    }
                    score = new_score;
                    committed.push(v as u32);
                } else {
                    proof.flip(v, idx);
                }
            } else {
                for owner in prep.dependents(v) {
                    let now = owner_mask[owner] >> j & 1 == 1;
                    match (outputs[owner], now) {
                        (true, false) => new_score -= 1,
                        (false, true) => new_score += 1,
                        _ => {}
                    }
                }
                if new_score >= score {
                    proof.flip(v, idx);
                    for owner in prep.dependents(v) {
                        outputs[owner] = owner_mask[owner] >> j & 1 == 1;
                        dirty_owner[owner] = true;
                    }
                    score = new_score;
                    committed.push(v as u32);
                }
            }
            if score == n && j + 1 < m {
                exit_at = Some(j);
                break;
            }
        }
        if let Some(j) = exit_at {
            // The scalar loop would have exited at the top of iteration
            // iter + j + 1, having drawn only iterations iter..=iter+j:
            // rewind and replay that prefix so the stream position
            // matches exactly.
            *rng = checkpoint;
            for _ in 0..=j {
                let _ = rng.random_range(0..n);
                let _ = rng.random_range(0..size_budget);
            }
            metrics::ADVERSARIAL_STEPS.add((iter + j + 1) as u64);
            metrics::BINDS.add(verifies);
            return Some(Some(proof));
        }
        // Un-flip the lanes (XOR is its own inverse): the arena is back
        // at the chunk-start incumbent; nodes in `committed` are
        // re-broadcast at the next chunk.
        for j in 0..m {
            arena.flip(j, draws_v[j], draws_idx[j]);
        }
        for &w in &owner_list {
            owner_in_chunk[w as usize] = false;
            dirty_owner[w as usize] = false;
        }
        iter = chunk_end;
    }
    metrics::ADVERSARIAL_STEPS.add(iterations as u64);
    metrics::BINDS.add(verifies);
    Some((score == n).then_some(proof))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::prepare;
    use crate::harness::{
        adversarial_proof_search_policy, all_bitstrings_up_to, check_soundness_exhaustive_policy,
    };
    use crate::instance::Instance;
    use crate::view::View;
    use lcp_graph::generators;
    use rand::SeedableRng;

    /// The 1-bit bipartiteness scheme with a bit-sliced kernel.
    struct Bipartite;
    impl Scheme for Bipartite {
        type Node = ();
        type Edge = ();
        fn name(&self) -> String {
            "bipartite".into()
        }
        fn radius(&self) -> usize {
            1
        }
        fn holds(&self, inst: &Instance) -> bool {
            lcp_graph::traversal::is_bipartite(inst.graph())
        }
        fn prove(&self, inst: &Instance) -> Option<Proof> {
            let colors = lcp_graph::traversal::bipartition(inst.graph())?;
            Some(Proof::from_fn(inst.n(), |v| {
                BitString::from_bits([colors[v] == 1])
            }))
        }
        fn verify(&self, view: &View) -> bool {
            let c = view.center();
            let mine = view.proof(c).first();
            mine.is_some()
                && view
                    .neighbors(c)
                    .iter()
                    .all(|&u| view.proof(u).first().is_some_and(|b| Some(b) != mine))
        }
        fn supports_batch(&self) -> bool {
            true
        }
        fn verify_batch(&self, view: &BatchView) -> u64 {
            let c = view.center();
            let mut acc = view.has_bit(c, 0);
            for &u in view.neighbors(c) {
                acc &= view.has_bit(u, 0) & (view.bit(c, 0) ^ view.bit(u, 0));
            }
            acc
        }
    }

    /// Kernel-free unsound scheme: accepts iff every visible first bit
    /// is 1 (the violating all-"1" proof is last in odometer order).
    struct GulliblePath;
    impl Scheme for GulliblePath {
        type Node = ();
        type Edge = ();
        fn name(&self) -> String {
            "gullible-path".into()
        }
        fn radius(&self) -> usize {
            1
        }
        fn holds(&self, _: &Instance) -> bool {
            false
        }
        fn prove(&self, _: &Instance) -> Option<Proof> {
            None
        }
        fn verify(&self, view: &View) -> bool {
            view.nodes().all(|u| view.proof(u).first() == Some(true))
        }
    }

    fn run_both<S: Scheme>(
        scheme: &S,
        inst: &Instance<S::Node, S::Edge>,
        max_bits: usize,
    ) -> (
        Result<Soundness, SoundnessError>,
        Result<Soundness, SoundnessError>,
    )
    where
        S::Node: Clone + Send + Sync,
        S::Edge: Clone + Send + Sync,
    {
        let prep = prepare(scheme, inst);
        let auto = check_soundness_exhaustive_policy(
            scheme,
            &prep,
            max_bits,
            &Deadline::none(),
            BatchPolicy::Auto,
        );
        let scalar = check_soundness_exhaustive_policy(
            scheme,
            &prep,
            max_bits,
            &Deadline::none(),
            BatchPolicy::Scalar,
        );
        (auto, scalar)
    }

    #[test]
    fn block_odometer_agrees_on_holds_counts() {
        let inst = Instance::unlabeled(generators::cycle(5));
        let (auto, scalar) = run_both(&Bipartite, &inst, 1);
        assert_eq!(auto, scalar);
        assert_eq!(auto.unwrap(), Soundness::Holds(3u64.pow(5)));
    }

    #[test]
    fn block_odometer_finds_the_same_first_violation() {
        let inst = Instance::unlabeled(generators::path(4));
        let (auto, scalar) = run_both(&GulliblePath, &inst, 1);
        assert_eq!(auto, scalar);
        assert!(matches!(auto, Ok(Soundness::Violated(_))));
    }

    #[test]
    fn block_odometer_handles_two_bit_strings() {
        // r = 7 strings per node: a block is 7^k ≤ 64 candidates.
        let inst = Instance::unlabeled(generators::cycle(5));
        let (auto, scalar) = run_both(&Bipartite, &inst, 2);
        assert_eq!(auto, scalar);
        assert_eq!(auto.unwrap(), Soundness::Holds(7u64.pow(5)));
    }

    #[test]
    fn block_odometer_reproduces_the_deadline_grid() {
        use std::time::Duration;
        // 3^9 = 19683 candidates; the scalar loop trips its first poll
        // at candidate CHECK_INTERVAL = 16384, and so must the batch.
        let inst = Instance::unlabeled(generators::path(9));
        let prep = prepare(&GulliblePath, &inst);
        for policy in [BatchPolicy::Auto, BatchPolicy::Scalar] {
            let expired = Deadline::after(Duration::ZERO);
            let err = check_soundness_exhaustive_policy(&GulliblePath, &prep, 1, &expired, policy)
                .unwrap_err();
            assert_eq!(
                err,
                SoundnessError::DeadlineExpired {
                    tried: CHECK_INTERVAL
                },
                "{policy:?}"
            );
        }
    }

    #[test]
    fn block_odometer_reports_violations_that_precede_the_poll() {
        use std::time::Duration;
        let inst = Instance::unlabeled(generators::path(4));
        let prep = prepare(&GulliblePath, &inst);
        let expired = Deadline::after(Duration::ZERO);
        let got =
            check_soundness_exhaustive_policy(&GulliblePath, &prep, 1, &expired, BatchPolicy::Auto)
                .unwrap();
        assert!(matches!(got, Soundness::Violated(_)));
    }

    #[test]
    fn batched_adversarial_matches_scalar_stream_and_result() {
        // Bipartite has a kernel, so Auto takes the chunked path; the
        // incumbent, the result, and the RNG position must match the
        // scalar loop exactly.
        for n in [5usize, 6, 7] {
            let inst = Instance::unlabeled(generators::cycle(n));
            if lcp_graph::traversal::is_bipartite(inst.graph()) {
                continue;
            }
            let prep = prepare(&Bipartite, &inst);
            for seed in 0..4u64 {
                let mut rng_a = StdRng::seed_from_u64(seed);
                let mut rng_s = StdRng::seed_from_u64(seed);
                let a = adversarial_proof_search_policy(
                    &Bipartite,
                    &prep,
                    1,
                    450,
                    &mut rng_a,
                    &Deadline::none(),
                    BatchPolicy::Auto,
                );
                let s = adversarial_proof_search_policy(
                    &Bipartite,
                    &prep,
                    1,
                    450,
                    &mut rng_s,
                    &Deadline::none(),
                    BatchPolicy::Scalar,
                );
                assert_eq!(a, s, "n={n} seed={seed}");
                assert_eq!(
                    rng_a.random_range(0..u32::MAX),
                    rng_s.random_range(0..u32::MAX),
                    "RNG stream diverged: n={n} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn first_poll_grid_is_the_scalar_stride() {
        assert_eq!(first_poll_in(0, 64), None);
        assert_eq!(first_poll_in(CHECK_INTERVAL - 64, 64), Some(CHECK_INTERVAL));
        assert_eq!(first_poll_in(CHECK_INTERVAL - 1, 1), Some(CHECK_INTERVAL));
        assert_eq!(first_poll_in(CHECK_INTERVAL, 64), None);
        // The GulliblePath deadline test's geometry: base 16362, block
        // 27 covers candidates 16363..=16389 ∋ 16384.
        assert_eq!(first_poll_in(16_362, 27), Some(CHECK_INTERVAL));
    }

    #[test]
    fn oversized_string_tables_fall_back_to_scalar() {
        // r = 2^7 − 1 = 127 > 64 strings: exhaustive() must decline.
        let inst = Instance::unlabeled(generators::cycle(3));
        let prep = prepare(&GulliblePath, &inst);
        let strings = all_bitstrings_up_to(6).unwrap();
        assert!(exhaustive(&GulliblePath, &prep, 6, &strings, &Deadline::none()).is_none());
    }
}
