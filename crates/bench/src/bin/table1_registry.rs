//! Regenerates the Table 1 measurement sweep **from the scheme
//! registry** instead of hand-built instance lists: one row per
//! registered scheme, yes-instances drawn from its declared graph
//! families, sizes measured through the type-erased cells.
//!
//! `table1a` / `table1b` remain the curated, paper-faithful sweeps; this
//! bin demonstrates that the registry alone can regenerate the table —
//! every future scheme added to `lcp_schemes::registry` shows up here
//! (and in the conformance campaign) automatically.

use lcp_bench::{print_table, Row};
use lcp_core::harness::{classify_growth, SizePoint};
use lcp_schemes::registry::{self, CellRequest, Polarity};

fn main() {
    let seed = 7u64;
    let sizes = [8usize, 16, 32, 64];
    let mut rows = Vec::new();

    for entry in registry::all() {
        let mut points: Vec<SizePoint> = Vec::new();
        let mut complete = true;
        for &family in entry.families {
            for &n in &sizes {
                let req = CellRequest {
                    family,
                    n,
                    seed,
                    polarity: Polarity::Yes,
                };
                let Some(cell) = entry.build(&req) else {
                    continue;
                };
                if !cell.holds() {
                    continue; // a random family member landed on the no side
                }
                match cell.check_completeness() {
                    Ok(Some(bits)) => points.push(SizePoint { n: cell.n(), bits }),
                    _ => complete = false,
                }
            }
        }
        points.sort_by_key(|p| (p.n, p.bits));
        points.dedup();
        let (measured, class, verdict) = if !complete {
            (
                "COMPLETENESS FAILURE".into(),
                "-".to_string(),
                "✗".to_string(),
            )
        } else if points.is_empty() {
            ("(no yes-instances)".into(), "-".into(), "—".into())
        } else {
            let fit = classify_growth(&points);
            let measured = points
                .iter()
                .map(|p| format!("{}→{}", p.n, p.bits))
                .collect::<Vec<_>>()
                .join(" ");
            // Claims are upper bounds: measuring smaller is conformant
            // (GrowthClass orders by the asymptotic hierarchy).
            let ok = fit <= entry.claimed_growth;
            (
                measured,
                fit.to_string(),
                if ok { "✓" } else { "✗" }.to_string(),
            )
        };
        rows.push(Row {
            id: entry.paper_row.into(),
            what: entry.title.into(),
            family: entry.families.first().map_or("-", |f| f.name()).to_string(),
            paper: entry.claimed_bound.into(),
            measured,
            class,
            verdict,
        });
    }

    print_table(
        "Table 1 — regenerated from the scheme registry (honest proof sizes)",
        &rows,
    );
    println!(
        "note: sizes are capped per entry (registry max_n); the conformance campaign\n\
         (`cargo run -p lcp-conformance`) adds soundness and tamper checks per cell."
    );
}
