//! The LRU-bounded instance table: resident cells keyed by coordinates,
//! sharing one process-wide [`ArtifactSource`].
//!
//! Loading a cell is the expensive part of every request — registry
//! build, ground truth, one bounded BFS per node — so the table pays it
//! once per coordinate and hands out `Arc<DynScheme>` clones after
//! that. The skeleton core lives in the shared source (attached via
//! `DynScheme::with_source` and warmed by `prepare_skeletons`), which is
//! what makes a resident `verify` issue **zero** skeleton rebuilds: the
//! completeness sweep prepares through the source's cache tier and hits.
//! With `--preload <dir>` the source is a two-tier
//! [`ArtifactStore`](lcp_core::ArtifactStore), so even a *restarted*
//! daemon skips the BFS: cores come back by `mmap` from the artifact
//! files the previous process (or a campaign's `--warm-artifacts` pass)
//! left behind. Every load's [`CoreProvenance`] is tallied and reported
//! by the `stats` op.
//!
//! Eviction is the other half of residency: when the table exceeds its
//! capacity the least-recently-used cell is dropped *and* its skeleton
//! core is removed from the source's in-process tier
//! (`DynScheme::evict_skeletons` → `SkeletonCache::remove`; artifact
//! *files* are durable and never deleted), so a long-lived daemon's
//! memory is bounded by the capacity, not by the history of cells it
//! ever served.

use crate::protocol::{CellCoord, ProtoError, ERR_INAPPLICABLE, ERR_UNKNOWN_SCHEME};
use lcp_core::{ArtifactSource, CoreProvenance, DynScheme, SkeletonCache};
use lcp_schemes::registry::{self, CellRequest};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Point-in-time counters of an [`InstanceTable`] (the `stats` op).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableStats {
    /// Resident cells right now.
    pub resident: usize,
    /// The configured capacity.
    pub capacity: usize,
    /// Cells evicted since the table was created.
    pub evictions: usize,
    /// Cells loaded (registry build + skeleton warm) since creation.
    pub loads: usize,
    /// Cached skeleton preparations right now.
    pub skeleton_len: usize,
    /// Skeleton-cache lookups served from the cache.
    pub skeleton_hits: usize,
    /// Skeleton-cache lookups that had to build.
    pub skeleton_misses: usize,
    /// Cell loads whose skeleton core was built in-process.
    pub cores_built: usize,
    /// Cell loads whose core was adopted from the in-process cache.
    pub cores_cache_hits: usize,
    /// Cell loads whose core was mapped from an artifact file
    /// (`--preload`).
    pub cores_loaded: usize,
}

/// An LRU-bounded map from [`CellCoord`] to resident, skeleton-warmed
/// [`DynScheme`] cells.
pub struct InstanceTable {
    source: ArtifactSource,
    capacity: usize,
    /// LRU order: front = least recently used, back = most recent.
    entries: Mutex<Vec<(CellCoord, Arc<DynScheme>)>>,
    evictions: AtomicUsize,
    loads: AtomicUsize,
    cores_built: AtomicUsize,
    cores_cache_hits: AtomicUsize,
    cores_loaded: AtomicUsize,
}

impl std::fmt::Debug for InstanceTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("InstanceTable")
            .field("resident", &stats.resident)
            .field("capacity", &stats.capacity)
            .field("evictions", &stats.evictions)
            .finish_non_exhaustive()
    }
}

impl InstanceTable {
    /// An empty table bounded to `capacity` resident cells (minimum 1),
    /// sharing cores through an in-process cache only.
    pub fn new(capacity: usize) -> Self {
        Self::with_source(
            capacity,
            ArtifactSource::Cache(Arc::new(SkeletonCache::new())),
        )
    }

    /// An empty table preparing through an explicit [`ArtifactSource`]
    /// — the `--preload <dir>` path hands in a
    /// [`MappedDir`](ArtifactSource::MappedDir) so cores come back by
    /// `mmap` across daemon restarts.
    pub fn with_source(capacity: usize, source: ArtifactSource) -> Self {
        InstanceTable {
            source,
            capacity: capacity.max(1),
            entries: Mutex::new(Vec::new()),
            evictions: AtomicUsize::new(0),
            loads: AtomicUsize::new(0),
            cores_built: AtomicUsize::new(0),
            cores_cache_hits: AtomicUsize::new(0),
            cores_loaded: AtomicUsize::new(0),
        }
    }

    /// The in-process skeleton-cache tier every resident cell prepares
    /// through (`None` only for a `BuildFresh` source, which the daemon
    /// never configures).
    pub fn cache(&self) -> Option<&SkeletonCache> {
        self.source.cache()
    }

    /// Returns the resident cell at `coord`, loading (and LRU-evicting)
    /// as needed. The returned cell has its skeletons warm in
    /// [`Self::cache`].
    ///
    /// # Errors
    ///
    /// [`ERR_UNKNOWN_SCHEME`] for ids outside the registry and
    /// [`ERR_INAPPLICABLE`] when the builder cannot realize the
    /// requested `(family, polarity)`.
    pub fn get_or_load(&self, coord: &CellCoord) -> Result<Arc<DynScheme>, ProtoError> {
        if let Some(cell) = self.touch(coord) {
            return Ok(cell);
        }
        // Build outside the lock: loading a 10⁴-node cell takes
        // milliseconds and must not serialize unrelated requests. A
        // racing twin may insert first; the re-check below adopts it.
        let entry = registry::find(&coord.scheme).ok_or_else(|| {
            ProtoError::new(
                ERR_UNKNOWN_SCHEME,
                format!("no scheme {:?} in the registry", coord.scheme),
            )
        })?;
        let request = CellRequest {
            family: coord.family,
            n: coord.n,
            seed: coord.seed,
            polarity: coord.polarity,
        };
        let cell = entry
            .build(&request)
            .ok_or_else(|| {
                ProtoError::new(
                    ERR_INAPPLICABLE,
                    format!(
                        "scheme {:?} has no {} cell on family {:?}",
                        coord.scheme,
                        coord.polarity.name(),
                        coord.family.name()
                    ),
                )
            })?
            .with_source(self.source.clone());
        match cell.prepare_skeletons() {
            CoreProvenance::Built => &self.cores_built,
            CoreProvenance::CacheHit => &self.cores_cache_hits,
            CoreProvenance::ArtifactLoaded => &self.cores_loaded,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.loads.fetch_add(1, Ordering::Relaxed);
        let cell = Arc::new(cell);

        let evicted = {
            let mut entries = self.entries.lock().expect("table lock");
            if let Some(pos) = entries.iter().position(|(k, _)| k == coord) {
                // Racing twin won; adopt its cell (ours evaporates, and
                // its identical skeleton core was already cached).
                let (key, theirs) = entries.remove(pos);
                entries.push((key, Arc::clone(&theirs)));
                return Ok(theirs);
            }
            entries.push((coord.clone(), Arc::clone(&cell)));
            if entries.len() > self.capacity {
                Some(entries.remove(0))
            } else {
                None
            }
        };
        if let Some((_, old)) = evicted {
            // Outside the lock: eviction touches the skeleton cache's
            // own mutex and needs no table state.
            old.evict_skeletons();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(cell)
    }

    /// Looks `coord` up and refreshes its recency, without loading.
    fn touch(&self, coord: &CellCoord) -> Option<Arc<DynScheme>> {
        let mut entries = self.entries.lock().expect("table lock");
        let pos = entries.iter().position(|(k, _)| k == coord)?;
        let entry = entries.remove(pos);
        let cell = Arc::clone(&entry.1);
        entries.push(entry);
        Some(cell)
    }

    /// Current table + skeleton-cache counters.
    pub fn stats(&self) -> TableStats {
        let cache = self.source.cache();
        TableStats {
            resident: self.entries.lock().expect("table lock").len(),
            capacity: self.capacity,
            evictions: self.evictions.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            skeleton_len: cache.map_or(0, SkeletonCache::len),
            skeleton_hits: cache.map_or(0, SkeletonCache::hits),
            skeleton_misses: cache.map_or(0, SkeletonCache::misses),
            cores_built: self.cores_built.load(Ordering::Relaxed),
            cores_cache_hits: self.cores_cache_hits.load(Ordering::Relaxed),
            cores_loaded: self.cores_loaded.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_graph::families::GraphFamily;
    use lcp_schemes::registry::Polarity;

    fn coord(n: usize) -> CellCoord {
        CellCoord {
            scheme: "bipartite".into(),
            family: GraphFamily::Cycle,
            n,
            seed: 7,
            polarity: Polarity::Yes,
        }
    }

    #[test]
    fn loads_are_cached_and_skeletons_warm() {
        let table = InstanceTable::new(4);
        let a = table.get_or_load(&coord(16)).unwrap();
        assert!(a.holds());
        let stats = table.stats();
        assert_eq!((stats.resident, stats.loads), (1, 1));
        assert_eq!(stats.skeleton_misses, 1, "prepare_skeletons built once");

        // Resident verify: zero rebuilds, only hits.
        assert_eq!(a.check_completeness(), Ok(Some(1)));
        let b = table.get_or_load(&coord(16)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same resident cell");
        let stats = table.stats();
        assert_eq!((stats.loads, stats.skeleton_misses), (1, 1));
        assert!(stats.skeleton_hits >= 1);
    }

    #[test]
    fn eviction_is_lru_and_drops_skeletons() {
        let table = InstanceTable::new(2);
        table.get_or_load(&coord(8)).unwrap();
        table.get_or_load(&coord(10)).unwrap();
        // Touch 8 so 10 becomes the LRU victim.
        table.get_or_load(&coord(8)).unwrap();
        table.get_or_load(&coord(12)).unwrap();
        let stats = table.stats();
        assert_eq!((stats.resident, stats.evictions), (2, 1));
        assert_eq!(stats.skeleton_len, 2, "evicted cell left the cache too");

        // The evicted cell reloads (a fresh build, not a hit).
        table.get_or_load(&coord(10)).unwrap();
        let stats = table.stats();
        assert_eq!(stats.loads, 4);
        assert_eq!(stats.evictions, 2);
    }

    #[test]
    fn preloaded_tables_map_cores_instead_of_building() {
        use lcp_core::{ArtifactSource, ArtifactStore};

        let dir = std::env::temp_dir().join(format!("lcp-serve-preload-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let source =
            || ArtifactSource::MappedDir(Arc::new(ArtifactStore::open(&dir).expect("open store")));

        // First daemon lifetime: the core is built and persisted.
        let table = InstanceTable::with_source(4, source());
        table.get_or_load(&coord(16)).unwrap();
        let stats = table.stats();
        assert_eq!((stats.cores_built, stats.cores_loaded), (1, 0));

        // "Restarted" daemon over the same directory: mapped, not built.
        let table = InstanceTable::with_source(4, source());
        let cell = table.get_or_load(&coord(16)).unwrap();
        assert!(cell.holds());
        assert_eq!(cell.check_completeness(), Ok(Some(1)));
        let stats = table.stats();
        assert_eq!((stats.cores_built, stats.cores_loaded), (0, 1));
        assert_eq!(
            stats.skeleton_misses, 1,
            "a disk load still counts as one cache miss"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_cells_are_typed_errors() {
        let table = InstanceTable::new(2);
        let mut bad = coord(8);
        bad.scheme = "no-such-scheme".into();
        assert_eq!(
            table.get_or_load(&bad).unwrap_err().kind,
            ERR_UNKNOWN_SCHEME
        );
        let mut inapplicable = coord(8);
        inapplicable.polarity = Polarity::No;
        inapplicable.scheme = "eulerian".into();
        // Eulerian has no no-instance on cycles (cycles are Eulerian).
        assert_eq!(
            table.get_or_load(&inapplicable).unwrap_err().kind,
            ERR_INAPPLICABLE
        );
        assert_eq!(table.stats().resident, 0);
    }
}
