//! Verdict-for-verdict agreement between the socket session and the
//! in-process incremental engine: registry builders are deterministic,
//! so a server-side session over `(scheme, family, n, seed, polarity)`
//! and a local `DynamicInstance` over the same coordinates must produce
//! identical churn traces and identical per-mutation verdicts.

use lcp_core::json::Json;
use lcp_dynamic::churn::{run_churn, ChurnConfig};
use lcp_dynamic::{DynamicInstance, Mutation};
use lcp_graph::families::GraphFamily;
use lcp_schemes::registry::{self, CellRequest, Polarity};
use lcp_serve::protocol::parse_bits;
use lcp_serve::{CellCoord, Client, Server, ServerConfig, WireLabel, WireMutation};

fn coord(n: usize, seed: u64) -> CellCoord {
    CellCoord {
        scheme: "bipartite".into(),
        family: GraphFamily::Cycle,
        n,
        seed,
        polarity: Polarity::Yes,
    }
}

/// Builds the same cell the server will, in this process.
fn local_twin(coord: &CellCoord) -> DynamicInstance {
    let entry = registry::find(&coord.scheme).expect("scheme in registry");
    let cell = entry
        .build(&CellRequest {
            family: coord.family,
            n: coord.n,
            seed: coord.seed,
            polarity: coord.polarity,
        })
        .expect("cell applies");
    DynamicInstance::from_cell(cell.dynamic_cell())
}

fn opt_usize(doc: &Json, key: &str) -> Option<usize> {
    match doc.get(key) {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_usize()
                .unwrap_or_else(|| panic!("{key} not an integer")),
        ),
    }
}

fn num(doc: &Json, key: &str) -> usize {
    doc.get(key)
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("missing integer {key}"))
}

fn flag(doc: &Json, key: &str) -> bool {
    doc.get(key)
        .and_then(Json::as_bool)
        .unwrap_or_else(|| panic!("missing bool {key}"))
}

#[test]
fn socket_churn_agrees_with_in_process_run() {
    let (steps, check_every, churn_seed) = (48, 6, 21);
    let coord = coord(64, 7);

    let handle = Server::bind(ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let opened = client.session_open(&coord).expect("session-open");
    assert!(flag(&opened, "accepted"), "honest yes-cell starts accepted");

    let remote = client
        .churn(churn_seed, steps, check_every)
        .expect("server churn");
    client.session_close().expect("session-close");
    handle.stop().expect("clean drain");

    let mut twin = local_twin(&coord);
    let local = run_churn(&mut twin, &ChurnConfig::new(churn_seed), steps, check_every);

    assert_eq!(local.mismatches, 0, "incremental == full locally");
    assert_eq!(
        num(&remote, "mismatches"),
        0,
        "incremental == full remotely"
    );
    assert_eq!(num(&remote, "steps"), local.steps.len());
    assert_eq!(num(&remote, "checks"), local.checks);
    assert_eq!(num(&remote, "max_impact"), local.max_impact);
    assert_eq!(num(&remote, "total_reverified"), local.total_reverified);
    assert!(!flag(&remote, "timed_out"));

    let trace = remote
        .get("trace")
        .and_then(Json::as_array)
        .expect("churn trace");
    assert_eq!(trace.len(), local.steps.len());
    for (i, (entry, step)) in trace.iter().zip(&local.steps).enumerate() {
        assert_eq!(
            entry.get("kind").and_then(Json::as_str),
            Some(step.mutation.kind()),
            "step {i}: mutation kind"
        );
        assert_eq!(num(entry, "impact"), step.impact, "step {i}: impact");
        assert_eq!(
            num(entry, "reverified"),
            step.reverified,
            "step {i}: reverified"
        );
        assert_eq!(flag(entry, "accepted"), step.accepted, "step {i}: verdict");
        assert_eq!(
            opt_usize(entry, "witness"),
            step.witness,
            "step {i}: witness"
        );
        let matched = match entry.get("matched_full") {
            None | Some(Json::Null) => None,
            Some(v) => v.as_bool(),
        };
        assert_eq!(matched, step.matched_full, "step {i}: cross-check");
    }
}

#[test]
fn mutate_stream_tracks_a_local_twin() {
    let coord = coord(32, 11);
    let handle = Server::bind(ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.session_open(&coord).expect("session-open");

    let mut twin = local_twin(&coord);
    twin.reverify();

    let stream = [
        WireMutation::EdgeInsert(0, 2),
        WireMutation::ProofRewrite(5, parse_bits("1").unwrap()),
        WireMutation::NodeLabelChange(3, WireLabel::Unit),
        WireMutation::EdgeDelete(0, 2),
        WireMutation::ProofRewrite(5, parse_bits("0").unwrap()),
    ];
    for (i, wire) in stream.iter().enumerate() {
        let remote = client.mutate(wire).expect("mutate");
        let (mut impact, outcome) = match wire {
            WireMutation::EdgeInsert(u, v) => {
                let a = twin.apply_verified(&Mutation::EdgeInsert(*u, *v)).unwrap();
                (a.impact, a.outcome)
            }
            WireMutation::EdgeDelete(u, v) => {
                let a = twin.apply_verified(&Mutation::EdgeDelete(*u, *v)).unwrap();
                (a.impact, a.outcome)
            }
            WireMutation::ProofRewrite(v, bits) => {
                let a = twin
                    .apply_verified(&Mutation::ProofRewrite(*v, bits.clone()))
                    .unwrap();
                (a.impact, a.outcome)
            }
            WireMutation::NodeLabelChange(v, WireLabel::Unit) => {
                let impact = twin.set_node_label(*v, ()).unwrap();
                let outcome = twin.reverify();
                (impact, outcome)
            }
            WireMutation::NodeLabelChange(..) => unreachable!("bipartite nodes are unit-labeled"),
        };
        impact.sort_unstable();
        assert_eq!(
            remote.get("kind").and_then(Json::as_str),
            Some(wire.kind()),
            "mutation {i}: kind"
        );
        let remote_impact: Vec<usize> = remote
            .get("impact")
            .and_then(Json::as_array)
            .expect("impact array")
            .iter()
            .map(|v| v.as_usize().expect("impact node"))
            .collect();
        assert_eq!(remote_impact, impact, "mutation {i}: impact set");
        assert_eq!(
            flag(&remote, "accepted"),
            outcome.accepted,
            "mutation {i}: verdict"
        );
        assert_eq!(
            opt_usize(&remote, "witness"),
            outcome.witness,
            "mutation {i}: witness"
        );
        assert_eq!(
            num(&remote, "reverified"),
            outcome.reverified,
            "mutation {i}: work"
        );
    }

    // A refused mutation is a typed error on both sides, and the
    // session survives it.
    let refused = client
        .mutate(&WireMutation::EdgeDelete(0, 2))
        .expect_err("deleting an absent edge");
    assert_eq!(refused.kind(), Some("mutation"));
    assert!(twin.apply_verified(&Mutation::EdgeDelete(0, 2)).is_err());

    let closed = client.session_close().expect("session-close");
    assert_eq!(
        closed.get("mutations").and_then(Json::as_usize),
        Some(twin.log().len()),
        "server log length matches the twin's"
    );
    handle.stop().expect("clean drain");
}
