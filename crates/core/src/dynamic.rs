//! The type-erased scheme layer: one object-safe handle per
//! `(scheme, instance)` cell.
//!
//! [`Scheme`] has two associated types, so a heterogeneous collection —
//! the scheme registry, the conformance campaign's `(scheme, instance)`
//! matrix — cannot hold `&dyn Scheme` directly. [`DynScheme::seal`]
//! erases the types at the only moment they are all known (when the
//! typed instance is constructed): it moves the scheme *and* its
//! instance behind one `Arc` and exposes every harness operation as a
//! boxed closure. Each heavy operation (completeness, exhaustive
//! soundness, adversarial search, tamper probing) internally builds a
//! [`PreparedInstance`] and runs entirely on the cached engine, so
//! erasure costs one skeleton preparation per operation — never one per
//! candidate proof.
//!
//! ```
//! use lcp_core::dynamic::DynScheme;
//! use lcp_core::{Instance, Proof, Scheme, View};
//! use lcp_graph::generators;
//!
//! struct EvenDegrees;
//! impl Scheme for EvenDegrees {
//!     type Node = ();
//!     type Edge = ();
//!     fn name(&self) -> String { "even-degrees".into() }
//!     fn radius(&self) -> usize { 1 }
//!     fn holds(&self, inst: &Instance) -> bool {
//!         lcp_graph::euler::all_degrees_even(inst.graph())
//!     }
//!     fn prove(&self, inst: &Instance) -> Option<Proof> {
//!         self.holds(inst).then(|| Proof::empty(inst.n()))
//!     }
//!     fn verify(&self, view: &View) -> bool {
//!         view.degree(view.center()) % 2 == 0
//!     }
//! }
//!
//! // Cells of different Node/Edge types live in one collection.
//! let cells: Vec<DynScheme> = vec![
//!     DynScheme::seal(EvenDegrees, Instance::unlabeled(generators::cycle(6))),
//!     DynScheme::seal(EvenDegrees, Instance::unlabeled(generators::path(4))),
//! ];
//! assert!(cells[0].holds());
//! assert!(!cells[1].holds());
//! assert_eq!(cells[0].check_completeness(), Ok(Some(0)));
//! ```

use crate::artifact::{ArtifactSource, CoreProvenance};
use crate::batch::BatchPolicy;
use crate::bits::{AsBits, BitString};
use crate::deadline::Deadline;
use crate::engine::{PreparedInstance, SkeletonCache, SkeletonStore};
use crate::frozen::PortableLabel;
use crate::harness::{
    adversarial_proof_search_policy, check_instance_within, check_soundness_exhaustive_policy,
    CompletenessError, Soundness, SoundnessError,
};
use crate::instance::Instance;
use crate::proof::Proof;
use crate::scheme::{evaluate, evaluate_until_reject, Scheme, Verdict};
use lcp_graph::{Graph, GraphError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// Result of a seeded bit-flip tamper probe against the honest proof of
/// a yes-instance (see [`DynScheme::tamper_probe`]).
///
/// A flip that still fully accepts is *not* a soundness violation — the
/// instance is still a yes-instance and proofs need not be unique — but
/// the detection rate is a useful sensitivity signal, and the witness
/// node feeds the campaign report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TamperProbe {
    /// Single-bit flips attempted.
    pub trials: usize,
    /// Flips some node rejected.
    pub detected: usize,
    /// Flips every node still accepted.
    pub undetected: usize,
    /// A node that rejected a tampered proof, when any flip was detected.
    pub witness: Option<usize>,
}

/// Why a [`MutableCell`] mutation was refused. The cell is untouched
/// whenever a mutator returns this.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellMutationError {
    /// The underlying graph rejected the edge operation.
    Graph(GraphError),
    /// A node index was out of range for the cell.
    NodeOutOfRange(usize),
    /// [`MutableCell::set_node_label`] received a label of the wrong
    /// dynamic type for the sealed scheme's `Node` associated type.
    LabelType,
}

impl fmt::Display for CellMutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellMutationError::Graph(e) => write!(f, "{e}"),
            CellMutationError::NodeOutOfRange(v) => write!(f, "node index {v} out of range"),
            CellMutationError::LabelType => {
                write!(f, "label type mismatches the sealed scheme's node type")
            }
        }
    }
}

impl std::error::Error for CellMutationError {}

impl From<GraphError> for CellMutationError {
    fn from(e: GraphError) -> Self {
        CellMutationError::Graph(e)
    }
}

/// An object-safe, *mutable* `(scheme, instance, proof)` cell: the
/// type-erased substrate of dynamic-graph workloads (`lcp-dynamic`).
///
/// Where [`DynScheme`] freezes its instance behind an `Arc`, a mutable
/// cell owns a private copy of the instance and the current proof, plus
/// an engine [`SkeletonStore`] that it repairs after every mutation. Each
/// mutator returns the **impact set** — the view centres whose verifier
/// output can differ because of that mutation — which is exactly what a
/// dirty-set tracker needs to mark; the cell itself keeps no dirty state,
/// so callers are free to batch mutations between re-verifications.
///
/// Obtain one from [`DynScheme::dynamic_cell`] (registry/campaign path)
/// or [`seal_mutable`] (typed path).
pub trait MutableCell: Send {
    /// The sealed scheme's name.
    fn name(&self) -> String;
    /// The verifier's horizon `r`.
    fn radius(&self) -> usize;
    /// `n(G)` — fixed for the lifetime of the cell (edge churn only).
    fn n(&self) -> usize;
    /// The current topology (read-only; mutate through the cell).
    fn graph(&self) -> &Graph;
    /// The current proof (read-only; mutate through the cell).
    fn proof(&self) -> &Proof;
    /// Ground truth of the **current** instance, recomputed on demand
    /// (mutations routinely flip it).
    fn holds_now(&self) -> bool;
    /// Runs the sealed prover against the current instance.
    fn prove_now(&self) -> Option<Proof>;
    /// Inserts edge `{u, v}` and repairs the affected skeletons.
    ///
    /// Returns the centres whose views structurally changed, ascending.
    ///
    /// # Errors
    ///
    /// Out-of-range indices, self-loops, and duplicate edges are refused
    /// and leave the cell untouched.
    fn insert_edge(&mut self, u: usize, v: usize) -> Result<Vec<usize>, CellMutationError>;
    /// Removes edge `{u, v}` (dropping any edge label) and repairs the
    /// affected skeletons.
    ///
    /// Returns the centres whose views structurally changed, ascending.
    ///
    /// # Errors
    ///
    /// Out-of-range indices and absent edges are refused and leave the
    /// cell untouched.
    fn remove_edge(&mut self, u: usize, v: usize) -> Result<Vec<usize>, CellMutationError>;
    /// Replaces node `v`'s proof string.
    ///
    /// Returns the centres whose balls contain `v` — empty when the new
    /// bits equal the old ones (a no-op rewrite changes no output).
    ///
    /// # Errors
    ///
    /// Refuses out-of-range nodes.
    fn rewrite_proof(
        &mut self,
        v: usize,
        bits: &BitString,
    ) -> Result<Vec<usize>, CellMutationError>;
    /// Replaces node `v`'s input label. The label is passed type-erased;
    /// the cell downcasts it to the sealed scheme's `Node` type.
    ///
    /// Returns the centres whose balls contain `v`.
    ///
    /// # Errors
    ///
    /// Refuses out-of-range nodes and mismatched label types.
    fn set_node_label(
        &mut self,
        v: usize,
        label: Box<dyn Any>,
    ) -> Result<Vec<usize>, CellMutationError>;
    /// Runs the verifier at one node against the cached (repaired)
    /// skeletons and the current proof.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    fn verify(&self, v: usize) -> bool;
    /// From-scratch reference: prepares the current instance anew and
    /// evaluates every node — what incremental re-verification must
    /// agree with.
    fn evaluate_full(&self) -> Verdict;
}

/// The typed implementation behind [`MutableCell`]: a shared `(scheme,
/// seed instance)` cell plus privately owned mutable state.
struct TypedCell<S: Scheme> {
    cell: Arc<(S, Instance<S::Node, S::Edge>)>,
    inst: Instance<S::Node, S::Edge>,
    proof: Proof,
    store: SkeletonStore<S::Node, S::Edge>,
}

impl<S> TypedCell<S>
where
    S: Scheme + Send + Sync,
    S::Node: Clone + Send + Sync + 'static,
    S::Edge: Clone + Send + Sync + 'static,
{
    fn from_arc(cell: Arc<(S, Instance<S::Node, S::Edge>)>, proof: Option<Proof>) -> Self {
        let inst = cell.1.clone();
        let proof = proof.unwrap_or_else(|| {
            cell.0
                .prove(&inst)
                .unwrap_or_else(|| Proof::empty(inst.n()))
        });
        assert_eq!(proof.n(), inst.n(), "proof must label every node");
        let store = SkeletonStore::new(&inst, cell.0.radius());
        TypedCell {
            cell,
            inst,
            proof,
            store,
        }
    }

    /// Like [`Self::from_arc`], but the initial skeleton store comes
    /// from `source`'s shared tiers (cache hit or mapped artifact) via
    /// [`SkeletonStore::from_frozen`] — churn cold starts skip the BFS
    /// whenever a frozen core is already available.
    fn from_source(
        cell: Arc<(S, Instance<S::Node, S::Edge>)>,
        proof: Option<Proof>,
        source: &ArtifactSource,
    ) -> Self
    where
        S::Node: PartialEq + PortableLabel,
        S::Edge: PartialEq + PortableLabel,
    {
        if matches!(source, ArtifactSource::BuildFresh) {
            // No shared tier: build per-node buckets directly instead of
            // freezing a flat core only to thaw it again.
            return TypedCell::from_arc(cell, proof);
        }
        let inst = cell.1.clone();
        let proof = proof.unwrap_or_else(|| {
            cell.0
                .prove(&inst)
                .unwrap_or_else(|| Proof::empty(inst.n()))
        });
        assert_eq!(proof.n(), inst.n(), "proof must label every node");
        let (prep, _) = source.prepare(&inst, cell.0.radius());
        let store = SkeletonStore::from_frozen(prep.core());
        drop(prep);
        TypedCell {
            cell,
            inst,
            proof,
            store,
        }
    }

    fn check_node(&self, v: usize) -> Result<(), CellMutationError> {
        if v < self.inst.n() {
            Ok(())
        } else {
            Err(CellMutationError::NodeOutOfRange(v))
        }
    }
}

impl<S> MutableCell for TypedCell<S>
where
    S: Scheme + Send + Sync,
    S::Node: Clone + Send + Sync + 'static,
    S::Edge: Clone + Send + Sync + 'static,
{
    fn name(&self) -> String {
        self.cell.0.name()
    }

    fn radius(&self) -> usize {
        self.cell.0.radius()
    }

    fn n(&self) -> usize {
        self.inst.n()
    }

    fn graph(&self) -> &Graph {
        self.inst.graph()
    }

    fn proof(&self) -> &Proof {
        &self.proof
    }

    fn holds_now(&self) -> bool {
        self.cell.0.holds(&self.inst)
    }

    fn prove_now(&self) -> Option<Proof> {
        self.cell.0.prove(&self.inst)
    }

    fn insert_edge(&mut self, u: usize, v: usize) -> Result<Vec<usize>, CellMutationError> {
        self.inst.insert_edge(u, v)?;
        // Scope while the edge exists — here, after insertion.
        let scope = self.store.edge_scope(&self.inst, u, v);
        Ok(self.store.rebuild(&self.inst, &scope))
    }

    fn remove_edge(&mut self, u: usize, v: usize) -> Result<Vec<usize>, CellMutationError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if !self.inst.graph().has_edge(u, v) {
            return Err(
                GraphError::UnknownEdge(self.inst.graph().id(u), self.inst.graph().id(v)).into(),
            );
        }
        // Scope while the edge exists — here, before removal.
        let scope = self.store.edge_scope(&self.inst, u, v);
        self.inst.remove_edge(u, v)?;
        Ok(self.store.rebuild(&self.inst, &scope))
    }

    fn rewrite_proof(
        &mut self,
        v: usize,
        bits: &BitString,
    ) -> Result<Vec<usize>, CellMutationError> {
        self.check_node(v)?;
        if self.proof.get(v) == bits.as_bits() {
            return Ok(Vec::new());
        }
        self.proof.set(v, bits);
        Ok(self.store.dependents(v).collect())
    }

    fn set_node_label(
        &mut self,
        v: usize,
        label: Box<dyn Any>,
    ) -> Result<Vec<usize>, CellMutationError> {
        self.check_node(v)?;
        let label = *label
            .downcast::<S::Node>()
            .map_err(|_| CellMutationError::LabelType)?;
        let touched = self.store.set_node_label(v, &label);
        self.inst.set_node_label(v, label);
        Ok(touched)
    }

    fn verify(&self, v: usize) -> bool {
        self.cell.0.verify(&self.store.bind(v, &self.proof))
    }

    fn evaluate_full(&self) -> Verdict {
        let prep = PreparedInstance::new(&self.inst, self.cell.0.radius());
        prep.evaluate_seq(&self.cell.0, &self.proof)
    }
}

/// Seals `scheme` and `inst` into a [`MutableCell`] — the typed entry
/// point for dynamic-graph workloads.
///
/// The cell starts from `proof`, or (when `None`) from the honest proof
/// of `inst` if the prover certifies it, else the empty proof.
///
/// # Panics
///
/// Panics if an explicit `proof` labels a different number of nodes.
pub fn seal_mutable<S>(
    scheme: S,
    inst: Instance<S::Node, S::Edge>,
    proof: Option<Proof>,
) -> Box<dyn MutableCell>
where
    S: Scheme + Send + Sync + 'static,
    S::Node: Clone + Send + Sync + 'static,
    S::Edge: Clone + Send + Sync + 'static,
{
    Box::new(TypedCell::from_arc(Arc::new((scheme, inst)), proof))
}

/// A type-erased `(scheme, instance)` cell: every associated-type-bound
/// [`Scheme`] operation re-exposed behind boxed closures over the shared
/// cell, plus engine-backed harness checks.
///
/// Build one with [`DynScheme::seal`]; collections of `DynScheme` are the
/// currency of the scheme registry and the conformance campaign.
pub struct DynScheme {
    name: String,
    radius: usize,
    n: usize,
    holds: bool,
    /// Where engine-backed operations get their prepared cores
    /// ([`Self::with_source`]); [`ArtifactSource::BuildFresh`] by
    /// default.
    source: ArtifactSource,
    /// Wall budget the engine-backed checks poll, when attached
    /// ([`Self::with_deadline`]); unbounded by default.
    deadline: Deadline,
    /// Routing policy for the batched evaluation layer
    /// ([`Self::with_batch`]); `Auto` by default.
    batch: BatchPolicy,
    prove: Box<dyn Fn() -> Option<Proof> + Send + Sync>,
    evaluate: Box<dyn Fn(&Proof) -> Verdict + Send + Sync>,
    until_reject: Box<dyn Fn(&Proof) -> Option<usize> + Send + Sync>,
    completeness: Box<
        dyn Fn(&ArtifactSource, &Deadline) -> Result<Option<usize>, CompletenessError>
            + Send
            + Sync,
    >,
    soundness: Box<
        dyn Fn(usize, &ArtifactSource, &Deadline, BatchPolicy) -> Result<Soundness, SoundnessError>
            + Send
            + Sync,
    >,
    adversarial: Box<
        dyn Fn(usize, usize, u64, &ArtifactSource, &Deadline, BatchPolicy) -> Option<Proof>
            + Send
            + Sync,
    >,
    tamper: Box<dyn Fn(usize, u64, &ArtifactSource) -> Option<TamperProbe> + Send + Sync>,
    dynamic: Box<dyn Fn(&ArtifactSource) -> Box<dyn MutableCell> + Send + Sync>,
    prepare: Box<dyn Fn(&ArtifactSource) -> CoreProvenance + Send + Sync>,
    evict: Box<dyn Fn(&ArtifactSource) -> bool + Send + Sync>,
}

/// Prepares `inst` through the attached source — the single dispatch
/// point of every engine-backed `DynScheme` op.
fn prep_for<'i, N, E>(
    inst: &'i Instance<N, E>,
    radius: usize,
    source: &ArtifactSource,
) -> PreparedInstance<'i, N, E>
where
    N: Clone + PartialEq + Send + Sync + PortableLabel + 'static,
    E: Clone + PartialEq + Send + Sync + PortableLabel + 'static,
{
    source.prepare(inst, radius).0
}

impl fmt::Debug for DynScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DynScheme")
            .field("name", &self.name)
            .field("radius", &self.radius)
            .field("n", &self.n)
            .field("holds", &self.holds)
            .finish()
    }
}

impl DynScheme {
    /// Seals `scheme` together with one concrete `inst`, erasing the
    /// associated types.
    ///
    /// The `Send + Sync + 'static` bounds are required in both feature
    /// configurations on purpose (additive features — see
    /// [`crate::engine::prepare`]); every scheme in this workspace
    /// satisfies them.
    pub fn seal<S>(scheme: S, inst: Instance<S::Node, S::Edge>) -> DynScheme
    where
        S: Scheme + Send + Sync + 'static,
        S::Node: Clone + PartialEq + Send + Sync + PortableLabel + 'static,
        S::Edge: Clone + PartialEq + Send + Sync + PortableLabel + 'static,
    {
        let name = scheme.name();
        let radius = scheme.radius();
        let n = inst.n();
        let holds = scheme.holds(&inst);
        let cell = Arc::new((scheme, inst));

        let c = Arc::clone(&cell);
        let prove = Box::new(move || c.0.prove(&c.1));
        let c = Arc::clone(&cell);
        let eval = Box::new(move |proof: &Proof| evaluate(&c.0, &c.1, proof));
        let c = Arc::clone(&cell);
        let until_reject = Box::new(move |proof: &Proof| evaluate_until_reject(&c.0, &c.1, proof));
        let c = Arc::clone(&cell);
        let completeness = Box::new(move |source: &ArtifactSource, deadline: &Deadline| {
            let prep = prep_for(&c.1, c.0.radius(), source);
            check_instance_within(&c.0, &prep, deadline)
        });
        let c = Arc::clone(&cell);
        let soundness = Box::new(
            move |max_bits: usize,
                  source: &ArtifactSource,
                  deadline: &Deadline,
                  policy: BatchPolicy| {
                let prep = prep_for(&c.1, c.0.radius(), source);
                check_soundness_exhaustive_policy(&c.0, &prep, max_bits, deadline, policy)
            },
        );
        let c = Arc::clone(&cell);
        let adversarial = Box::new(
            move |budget: usize,
                  iterations: usize,
                  seed: u64,
                  source: &ArtifactSource,
                  deadline: &Deadline,
                  policy: BatchPolicy| {
                let prep = prep_for(&c.1, c.0.radius(), source);
                let mut rng = StdRng::seed_from_u64(seed);
                adversarial_proof_search_policy(
                    &c.0, &prep, budget, iterations, &mut rng, deadline, policy,
                )
            },
        );
        let c = Arc::clone(&cell);
        let tamper = Box::new(move |trials: usize, seed: u64, source: &ArtifactSource| {
            tamper_probe(&c.0, &c.1, trials, seed, source)
        });
        let c = Arc::clone(&cell);
        let dynamic = Box::new(move |source: &ArtifactSource| {
            Box::new(TypedCell::from_source(Arc::clone(&c), None, source)) as Box<dyn MutableCell>
        });
        let c = Arc::clone(&cell);
        let prepare = Box::new(move |source: &ArtifactSource| source.prepare(&c.1, c.0.radius()).1);
        let c = Arc::clone(&cell);
        let evict = Box::new(move |source: &ArtifactSource| source.evict(&c.1, c.0.radius()));

        DynScheme {
            name,
            radius,
            n,
            holds,
            source: ArtifactSource::BuildFresh,
            deadline: Deadline::none(),
            batch: BatchPolicy::default(),
            prove,
            evaluate: eval,
            until_reject,
            completeness,
            soundness,
            adversarial,
            tamper,
            dynamic,
            prepare,
            evict,
        }
    }

    /// Attaches an [`ArtifactSource`]: every subsequent engine-backed
    /// operation (completeness, soundness, adversarial search, tamper
    /// probing, dynamic-cell cold starts) prepares the sealed instance
    /// through it — an in-process cache, a two-tier artifact store, or
    /// neither.
    ///
    /// Results are identical across sources (pinned by the cache- and
    /// artifact-equivalence tests) — only the preparation work is
    /// shared.
    pub fn with_source(mut self, source: ArtifactSource) -> DynScheme {
        self.source = source;
        self
    }

    /// Attaches a shared [`SkeletonCache`], so cells sealed over equal
    /// instances share one skeleton build.
    ///
    /// Shim kept for existing callers: equivalent to
    /// `with_source(ArtifactSource::Cache(cache))`.
    pub fn with_cache(self, cache: Arc<SkeletonCache>) -> DynScheme {
        self.with_source(ArtifactSource::Cache(cache))
    }

    /// Attaches a wall budget: every subsequent engine-backed check
    /// (completeness, exhaustive soundness, adversarial search) polls
    /// `deadline` and degrades to a deadline error / early `None` when it
    /// expires. The default is [`Deadline::none`], under which every
    /// operation behaves exactly as before the budget machinery existed.
    pub fn with_deadline(mut self, deadline: Deadline) -> DynScheme {
        self.deadline = deadline;
        self
    }

    /// Sets the [`BatchPolicy`] for the engine-backed search checks
    /// (exhaustive soundness, adversarial search). The default is
    /// [`BatchPolicy::Auto`]; `Scalar` is the campaign's `--no-batch`
    /// escape hatch. Results are identical either way — only the
    /// evaluation strategy changes.
    pub fn with_batch(mut self, policy: BatchPolicy) -> DynScheme {
        self.batch = policy;
        self
    }

    /// The sealed scheme's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The verifier's horizon `r`.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// `n(G)` of the sealed instance.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Ground truth of the sealed instance (computed once at seal time).
    pub fn holds(&self) -> bool {
        self.holds
    }

    /// Runs the sealed prover.
    pub fn prove(&self) -> Option<Proof> {
        (self.prove)()
    }

    /// Runs the verifier at every node (reference executor).
    pub fn evaluate(&self, proof: &Proof) -> Verdict {
        (self.evaluate)(proof)
    }

    /// First rejecting node, or `None` when every node accepts.
    pub fn evaluate_until_reject(&self, proof: &Proof) -> Option<usize> {
        (self.until_reject)(proof)
    }

    /// Single-instance completeness check on the cached engine
    /// ([`crate::harness::check_instance`]).
    pub fn check_completeness(&self) -> Result<Option<usize>, CompletenessError> {
        self.check_completeness_within(&self.deadline)
    }

    /// [`Self::check_completeness`] under an explicit per-call `deadline`
    /// instead of the attached one.
    ///
    /// [`Self::with_deadline`] consumes the cell, which is the right
    /// shape for batch campaigns but not for a resident service where one
    /// shared `Arc<DynScheme>` must serve many requests, each with its
    /// own budget — this is the request-scoped entry point.
    pub fn check_completeness_within(
        &self,
        deadline: &Deadline,
    ) -> Result<Option<usize>, CompletenessError> {
        (self.completeness)(&self.source, deadline)
    }

    /// Exhaustive soundness check on the cached engine.
    ///
    /// # Panics
    ///
    /// Panics if the sealed instance is a yes-instance (mirrors
    /// [`crate::harness::check_soundness_exhaustive`]).
    pub fn check_soundness_exhaustive(&self, max_bits: usize) -> Result<Soundness, SoundnessError> {
        self.check_soundness_exhaustive_within(max_bits, &self.deadline)
    }

    /// [`Self::check_soundness_exhaustive`] under an explicit per-call
    /// `deadline` (see [`Self::check_completeness_within`] for why).
    ///
    /// # Panics
    ///
    /// Panics if the sealed instance is a yes-instance.
    pub fn check_soundness_exhaustive_within(
        &self,
        max_bits: usize,
        deadline: &Deadline,
    ) -> Result<Soundness, SoundnessError> {
        (self.soundness)(max_bits, &self.source, deadline, self.batch)
    }

    /// Seeded adversarial proof search on the cached engine; `Some` is a
    /// soundness violation within the size budget.
    ///
    /// # Panics
    ///
    /// Panics if the sealed instance is a yes-instance (mirrors
    /// [`crate::harness::adversarial_proof_search`]).
    pub fn adversarial_search(
        &self,
        size_budget: usize,
        iterations: usize,
        seed: u64,
    ) -> Option<Proof> {
        self.adversarial_search_within(size_budget, iterations, seed, &self.deadline)
    }

    /// [`Self::adversarial_search`] under an explicit per-call `deadline`
    /// (see [`Self::check_completeness_within`] for why).
    ///
    /// # Panics
    ///
    /// Panics if the sealed instance is a yes-instance.
    pub fn adversarial_search_within(
        &self,
        size_budget: usize,
        iterations: usize,
        seed: u64,
        deadline: &Deadline,
    ) -> Option<Proof> {
        (self.adversarial)(
            size_budget,
            iterations,
            seed,
            &self.source,
            deadline,
            self.batch,
        )
    }

    /// Eagerly prepares the sealed instance's skeletons through the
    /// attached [`ArtifactSource`], warming its in-process tier so that
    /// later engine-backed operations hit instead of building, and
    /// reports where the core came from.
    ///
    /// This is how a resident service front-loads the one BFS a cell
    /// ever needs: `prepare` once at load time, then every `verify` and
    /// `tamper-probe` on the resident cell reuses the cached core
    /// (observable through [`SkeletonCache::hits`] and the returned
    /// [`CoreProvenance`]). With the default [`ArtifactSource::
    /// BuildFresh`] the preparation is built and immediately dropped.
    pub fn prepare_skeletons(&self) -> CoreProvenance {
        (self.prepare)(&self.source)
    }

    /// Drops this cell's skeleton core from the attached source's
    /// in-process tier, reporting whether anything was evicted.
    ///
    /// The counterpart of [`Self::prepare_skeletons`]: an instance table
    /// evicting this cell calls it so the shared cache does not pin the
    /// core forever. `false` when the source has no in-process tier or
    /// the core was never cached (or already evicted). Artifact *files*
    /// are never deleted.
    pub fn evict_skeletons(&self) -> bool {
        (self.evict)(&self.source)
    }

    /// Seeded single-bit tamper probe against the honest proof.
    ///
    /// Returns `None` when there is nothing to probe: the prover refused,
    /// or the honest proof is not fully accepted (a completeness failure,
    /// reported by [`Self::check_completeness`] instead).
    pub fn tamper_probe(&self, trials: usize, seed: u64) -> Option<TamperProbe> {
        (self.tamper)(trials, seed, &self.source)
    }

    /// Opens a fresh [`MutableCell`] over a private copy of the sealed
    /// instance — the entry point of churn workloads on registry cells.
    ///
    /// The cell starts from the honest proof when the prover certifies
    /// the sealed instance, else from the empty proof; mutations to the
    /// cell never affect this `DynScheme` or sibling cells. The cell's
    /// initial skeleton store thaws from the attached source's frozen
    /// core when one is available.
    pub fn dynamic_cell(&self) -> Box<dyn MutableCell> {
        (self.dynamic)(&self.source)
    }
}

/// Engine-backed tamper probe: flip one random bit of the honest proof
/// in its arena per trial, re-verify only the views containing the
/// flipped node, and flip the bit back — zero allocations per trial.
fn tamper_probe<S>(
    scheme: &S,
    inst: &Instance<S::Node, S::Edge>,
    trials: usize,
    seed: u64,
    source: &ArtifactSource,
) -> Option<TamperProbe>
where
    S: Scheme,
    S::Node: Clone + PartialEq + Send + Sync + PortableLabel + 'static,
    S::Edge: Clone + PartialEq + Send + Sync + PortableLabel + 'static,
{
    let mut proof = scheme.prove(inst)?;
    let prep = prep_for(inst, scheme.radius(), source);
    if (0..prep.n()).any(|v| !scheme.verify(&prep.bind(v, &proof))) {
        return None; // honest proof rejected — that is a completeness failure
    }
    let flippable: Vec<usize> = (0..prep.n())
        .filter(|&v| !proof.get(v).is_empty())
        .collect();
    let mut probe = TamperProbe::default();
    if flippable.is_empty() {
        return Some(probe); // LCP(0): no bits to tamper with
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..trials {
        let v = flippable[rng.random_range(0..flippable.len())];
        let idx = rng.random_range(0..proof.get(v).len());
        proof.flip(v, idx);
        match prep
            .dependents(v)
            .find(|&o| !scheme.verify(&prep.bind(o, &proof)))
        {
            Some(w) => {
                probe.detected += 1;
                if probe.witness.is_none() {
                    probe.witness = Some(w);
                }
            }
            None => probe.undetected += 1,
        }
        probe.trials += 1;
        proof.flip(v, idx);
    }
    Some(probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitString;
    use crate::view::View;
    use lcp_graph::generators;

    /// The 1-bit bipartiteness scheme (the harness guinea pig again).
    struct Bipartite;
    impl Scheme for Bipartite {
        type Node = ();
        type Edge = ();
        fn name(&self) -> String {
            "bipartite".into()
        }
        fn radius(&self) -> usize {
            1
        }
        fn holds(&self, inst: &Instance) -> bool {
            lcp_graph::traversal::is_bipartite(inst.graph())
        }
        fn prove(&self, inst: &Instance) -> Option<Proof> {
            let colors = lcp_graph::traversal::bipartition(inst.graph())?;
            Some(Proof::from_fn(inst.n(), |v| {
                BitString::from_bits([colors[v] == 1])
            }))
        }
        fn verify(&self, view: &View) -> bool {
            let c = view.center();
            let mine = view.proof(c).first();
            mine.is_some()
                && view
                    .neighbors(c)
                    .iter()
                    .all(|&u| view.proof(u).first().is_some_and(|b| Some(b) != mine))
        }
    }

    #[test]
    fn sealed_cell_matches_direct_calls() {
        let inst = Instance::unlabeled(generators::cycle(6));
        let dyn_cell = DynScheme::seal(Bipartite, Instance::unlabeled(generators::cycle(6)));
        assert_eq!(dyn_cell.name(), "bipartite");
        assert_eq!(dyn_cell.radius(), 1);
        assert_eq!(dyn_cell.n(), 6);
        assert!(dyn_cell.holds());
        let proof = dyn_cell.prove().expect("even cycle provable");
        assert_eq!(proof, Bipartite.prove(&inst).unwrap());
        assert!(dyn_cell.evaluate(&proof).accepted());
        assert_eq!(dyn_cell.evaluate_until_reject(&proof), None);
        assert_eq!(dyn_cell.check_completeness(), Ok(Some(1)));
    }

    #[test]
    fn sealed_soundness_checks_agree_with_harness() {
        let dyn_cell = DynScheme::seal(Bipartite, Instance::unlabeled(generators::cycle(5)));
        assert!(!dyn_cell.holds());
        match dyn_cell.check_soundness_exhaustive(1).unwrap() {
            Soundness::Holds(tried) => assert_eq!(tried, 3u64.pow(5)),
            Soundness::Violated(p) => panic!("odd cycle certified bipartite by {p:?}"),
        }
        assert!(dyn_cell.adversarial_search(1, 400, 9).is_none());
    }

    #[test]
    fn adversarial_seed_is_reproducible() {
        /// Deliberately unsound: accepts iff the centre holds bit 1.
        struct Gullible;
        impl Scheme for Gullible {
            type Node = ();
            type Edge = ();
            fn name(&self) -> String {
                "gullible".into()
            }
            fn radius(&self) -> usize {
                0
            }
            fn holds(&self, _: &Instance) -> bool {
                false
            }
            fn prove(&self, _: &Instance) -> Option<Proof> {
                None
            }
            fn verify(&self, view: &View) -> bool {
                view.proof(view.center()).first() == Some(true)
            }
        }
        let cell = DynScheme::seal(Gullible, Instance::unlabeled(generators::cycle(6)));
        let a = cell.adversarial_search(1, 2000, 42).expect("breakable");
        let b = cell.adversarial_search(1, 2000, 42).expect("breakable");
        assert_eq!(a, b, "same seed, same forged proof");
    }

    #[test]
    fn tamper_probe_detects_flips_on_rigid_proofs() {
        let cell = DynScheme::seal(Bipartite, Instance::unlabeled(generators::cycle(8)));
        let probe = cell.tamper_probe(16, 3).expect("yes-instance probes");
        assert_eq!(probe.trials, 16);
        // Flipping any single colour bit breaks both adjacent constraints.
        assert_eq!(probe.detected, 16);
        assert_eq!(probe.undetected, 0);
        assert!(probe.witness.is_some());
        // Seeded: byte-identical reruns.
        assert_eq!(probe, cell.tamper_probe(16, 3).unwrap());
    }

    #[test]
    fn tamper_probe_handles_empty_proofs_and_no_instances() {
        /// Proofless scheme (LCP(0)).
        struct Trivial;
        impl Scheme for Trivial {
            type Node = ();
            type Edge = ();
            fn name(&self) -> String {
                "trivial".into()
            }
            fn radius(&self) -> usize {
                0
            }
            fn holds(&self, _: &Instance) -> bool {
                true
            }
            fn prove(&self, inst: &Instance) -> Option<Proof> {
                Some(Proof::empty(inst.n()))
            }
            fn verify(&self, _: &View) -> bool {
                true
            }
        }
        let cell = DynScheme::seal(Trivial, Instance::unlabeled(generators::path(4)));
        let probe = cell.tamper_probe(8, 0).unwrap();
        assert_eq!((probe.trials, probe.detected), (0, 0));

        let no = DynScheme::seal(Bipartite, Instance::unlabeled(generators::cycle(5)));
        assert!(
            no.tamper_probe(8, 0).is_none(),
            "prover refuses no-instances"
        );
    }

    #[test]
    fn attached_deadlines_bound_the_sealed_checks() {
        use std::time::Duration;
        let make = || DynScheme::seal(Bipartite, Instance::unlabeled(generators::cycle(6)));
        // Unbounded (default): unchanged results.
        assert_eq!(make().check_completeness(), Ok(Some(1)));
        // Expired: the sweep degrades to a budget error, deterministically.
        let cell = make().with_deadline(Deadline::after(Duration::ZERO));
        assert_eq!(
            cell.check_completeness(),
            Err(CompletenessError::DeadlineExpired)
        );
        // A generous budget behaves like no budget at all.
        let cell = make().with_deadline(Deadline::after(Duration::from_secs(3600)));
        assert_eq!(cell.check_completeness(), Ok(Some(1)));
    }

    #[test]
    fn prepare_and_evict_manage_the_shared_cache() {
        let cache = Arc::new(SkeletonCache::new());
        let cell = DynScheme::seal(Bipartite, Instance::unlabeled(generators::cycle(6)))
            .with_cache(Arc::clone(&cache));
        assert!(!cell.evict_skeletons(), "nothing cached yet");
        assert_eq!(cell.prepare_skeletons(), CoreProvenance::Built);
        assert_eq!((cache.len(), cache.misses()), (1, 1));
        assert_eq!(cell.prepare_skeletons(), CoreProvenance::CacheHit);
        assert_eq!(cache.hits(), 1, "second preparation hits");
        assert_eq!(cell.check_completeness(), Ok(Some(1)));
        assert_eq!(cache.misses(), 1, "resident check rebuilds nothing");
        assert!(cell.evict_skeletons());
        assert!(!cell.evict_skeletons(), "already evicted");
        assert!(cache.is_empty());
        // Without a cache both calls are harmless no-ops.
        let free = DynScheme::seal(Bipartite, Instance::unlabeled(generators::cycle(6)));
        assert_eq!(free.prepare_skeletons(), CoreProvenance::Built);
        assert!(!free.evict_skeletons());
    }

    #[test]
    fn artifact_sources_back_sealed_cells() {
        use crate::artifact::ArtifactStore;
        let dir = std::env::temp_dir().join(format!("lcp-dyn-artifact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(ArtifactStore::open(&dir).unwrap());
        let seal = || {
            DynScheme::seal(Bipartite, Instance::unlabeled(generators::cycle(6)))
                .with_source(ArtifactSource::MappedDir(Arc::clone(&store)))
        };

        let cell = seal();
        assert_eq!(cell.prepare_skeletons(), CoreProvenance::Built);
        assert_eq!(cell.prepare_skeletons(), CoreProvenance::CacheHit);
        assert_eq!(cell.check_completeness(), Ok(Some(1)));
        assert!(cell.evict_skeletons());
        // Evicted from memory, but the artifact file remains: the next
        // preparation maps it instead of re-running the BFS.
        assert_eq!(cell.prepare_skeletons(), CoreProvenance::ArtifactLoaded);

        // A dynamic cell thawed from the mapped core behaves exactly
        // like one built fresh.
        let mut dynamic = cell.dynamic_cell();
        assert!((0..6).all(|v| dynamic.verify(v)));
        let impact = dynamic.insert_edge(0, 2).unwrap();
        assert_eq!(impact, vec![0, 1, 2]);
        let full = dynamic.evaluate_full();
        for v in 0..6 {
            assert_eq!(dynamic.verify(v), full.outputs()[v], "node {v}");
        }

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn request_scoped_deadlines_leave_the_attached_one_alone() {
        let cell = DynScheme::seal(Bipartite, Instance::unlabeled(generators::cycle(6)));
        let expired = Deadline::manual();
        expired.cancel();
        assert_eq!(
            cell.check_completeness_within(&expired),
            Err(CompletenessError::DeadlineExpired)
        );
        assert_eq!(
            cell.check_completeness(),
            Ok(Some(1)),
            "attached (unbounded) deadline unaffected by the request budget"
        );
        let no = DynScheme::seal(Bipartite, Instance::unlabeled(generators::cycle(5)));
        assert!(
            no.adversarial_search_within(1, 50, 7, &expired).is_none(),
            "expired request budget degrades the search to None"
        );
    }

    #[test]
    fn mutable_cell_tracks_edge_and_proof_churn() {
        let cell = DynScheme::seal(Bipartite, Instance::unlabeled(generators::cycle(6)));
        let mut dynamic = cell.dynamic_cell();
        assert_eq!(dynamic.n(), 6);
        assert!(dynamic.holds_now());
        // Starts from the honest proof: everything accepts.
        assert!((0..6).all(|v| dynamic.verify(v)));
        assert!(dynamic.evaluate_full().accepted());

        // A chord closing a triangle flips ground truth. The impact set
        // is *exact*: at radius 1 the changed views are the chord's
        // endpoints plus node 1, whose ball contains both ends and so
        // gains the newly visible edge — nodes 3, 4, 5 see nothing.
        let impact = dynamic.insert_edge(0, 2).unwrap();
        assert_eq!(impact, vec![0, 1, 2]);
        assert!(!dynamic.holds_now());
        let full = dynamic.evaluate_full();
        for v in 0..6 {
            assert_eq!(dynamic.verify(v), full.outputs()[v], "node {v}");
        }

        // Removing the chord restores the original cell exactly.
        let impact = dynamic.remove_edge(0, 2).unwrap();
        assert!(!impact.is_empty());
        assert!(dynamic.holds_now());
        assert!((0..6).all(|v| dynamic.verify(v)));

        // Proof rewrites dirty the radius-1 ball; a no-op rewrite none.
        let old = dynamic.proof().get(2).to_bitstring();
        assert_eq!(dynamic.rewrite_proof(2, &old).unwrap(), Vec::<usize>::new());
        let flipped = BitString::from_bits(old.iter().map(|b| !b));
        assert_eq!(dynamic.rewrite_proof(2, &flipped).unwrap(), vec![1, 2, 3]);
        assert!(!dynamic.verify(2), "flipped colour breaks the constraint");

        // Errors leave the cell untouched.
        assert!(dynamic.insert_edge(0, 1).is_err(), "duplicate edge");
        assert!(dynamic.remove_edge(0, 2).is_err(), "already removed");
        assert!(dynamic.rewrite_proof(9, &old).is_err(), "out of range");
        assert_eq!(dynamic.graph().m(), 6);

        // The sealed parent cell never observed any of this.
        assert!(cell.holds());
        assert_eq!(cell.check_completeness(), Ok(Some(1)));
    }

    #[test]
    fn mutable_cell_label_changes_are_typed() {
        struct ParityOfLabels;
        impl Scheme for ParityOfLabels {
            type Node = u8;
            type Edge = ();
            fn name(&self) -> String {
                "label-parity".into()
            }
            fn radius(&self) -> usize {
                1
            }
            fn holds(&self, _: &Instance<u8>) -> bool {
                true
            }
            fn prove(&self, inst: &Instance<u8>) -> Option<Proof> {
                Some(Proof::empty(inst.n()))
            }
            fn verify(&self, view: &View<u8>) -> bool {
                view.nodes()
                    .map(|u| *view.node_label(u) as usize)
                    .sum::<usize>()
                    .is_multiple_of(2)
            }
        }
        let g = generators::path(5);
        let inst = Instance::with_node_data(g, vec![0u8, 0, 0, 0, 0]);
        let mut cell = crate::dynamic::seal_mutable(ParityOfLabels, inst, None);
        assert!((0..5).all(|v| cell.verify(v)));
        let touched = cell.set_node_label(2, Box::new(1u8)).unwrap();
        assert_eq!(touched, vec![1, 2, 3]);
        for v in touched {
            assert!(!cell.verify(v), "odd sum visible at node {v}");
        }
        let full = cell.evaluate_full();
        assert_eq!(full.rejecting(), vec![1, 2, 3]);
        // Wrong label type is refused, right type accepted again.
        assert_eq!(
            cell.set_node_label(2, Box::new("nope")).unwrap_err(),
            CellMutationError::LabelType
        );
        cell.set_node_label(2, Box::new(0u8)).unwrap();
        assert!(cell.evaluate_full().accepted());
    }

    #[test]
    fn labelled_schemes_seal_too() {
        struct LeaderIsLabelled;
        impl Scheme for LeaderIsLabelled {
            type Node = bool;
            type Edge = ();
            fn name(&self) -> String {
                "leader-labelled".into()
            }
            fn radius(&self) -> usize {
                0
            }
            fn holds(&self, inst: &Instance<bool>) -> bool {
                inst.node_labels().iter().filter(|&&l| l).count() == 1
            }
            fn prove(&self, inst: &Instance<bool>) -> Option<Proof> {
                self.holds(inst).then(|| Proof::empty(inst.n()))
            }
            fn verify(&self, _: &View<bool>) -> bool {
                true
            }
        }
        let g = generators::path(3);
        let cell = DynScheme::seal(
            LeaderIsLabelled,
            Instance::with_node_data(g, vec![false, true, false]),
        );
        assert!(cell.holds());
        assert_eq!(cell.check_completeness(), Ok(Some(0)));
    }
}
