//! Criterion micro-benches: prover and verifier cost for representative
//! schemes across the hierarchy levels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcp_core::{evaluate, Instance, Scheme};
use lcp_graph::generators;
use lcp_schemes::bipartite::Bipartite;
use lcp_schemes::chromatic::NonBipartite;
use lcp_schemes::leader::LeaderElection;
use lcp_schemes::universal::prime_order;
use std::hint::black_box;

fn bench_provers(c: &mut Criterion) {
    let mut group = c.benchmark_group("prove");
    for n in [32usize, 128, 512] {
        let even = Instance::unlabeled(generators::cycle(n));
        group.bench_with_input(BenchmarkId::new("bipartite", n), &even, |b, inst| {
            b.iter(|| Bipartite.prove(black_box(inst)))
        });
        let odd = Instance::unlabeled(generators::cycle(n + 1));
        group.bench_with_input(BenchmarkId::new("chromatic>2", n + 1), &odd, |b, inst| {
            b.iter(|| NonBipartite.prove(black_box(inst)))
        });
        let leader: Instance<bool> =
            Instance::with_node_data(generators::cycle(n), (0..n).map(|v| v == 0).collect());
        group.bench_with_input(
            BenchmarkId::new("leader-election", n),
            &leader,
            |b, inst| b.iter(|| LeaderElection.prove(black_box(inst))),
        );
    }
    // The universal O(n²) prover, at smaller sizes.
    let uni = prime_order();
    for n in [11usize, 23, 47] {
        let inst = Instance::unlabeled(generators::cycle(n));
        group.bench_with_input(BenchmarkId::new("universal", n), &inst, |b, inst| {
            b.iter(|| uni.prove(black_box(inst)))
        });
    }
    group.finish();
}

fn bench_verifiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify-all-nodes");
    for n in [32usize, 128, 512] {
        let inst = Instance::unlabeled(generators::cycle(n));
        let proof = Bipartite.prove(&inst).expect("even cycle");
        group.bench_with_input(
            BenchmarkId::new("bipartite", n),
            &(inst, proof),
            |b, (inst, proof)| b.iter(|| evaluate(&Bipartite, black_box(inst), black_box(proof))),
        );
        let odd = Instance::unlabeled(generators::cycle(n + 1));
        let oproof = NonBipartite.prove(&odd).expect("odd cycle");
        group.bench_with_input(
            BenchmarkId::new("chromatic>2", n + 1),
            &(odd, oproof),
            |b, (inst, proof)| {
                b.iter(|| evaluate(&NonBipartite, black_box(inst), black_box(proof)))
            },
        );
    }
    group.finish();
}

fn bench_simulator_ablation(c: &mut Criterion) {
    // Ablation: centralized view extraction vs full message passing.
    let mut group = c.benchmark_group("executor-ablation");
    let n = 128;
    let inst = Instance::unlabeled(generators::cycle(n));
    let proof = Bipartite.prove(&inst).expect("even cycle");
    group.bench_function("centralized", |b| {
        b.iter(|| evaluate(&Bipartite, black_box(&inst), black_box(&proof)))
    });
    group.bench_function("message-passing", |b| {
        b.iter(|| lcp_sim::run_distributed(&Bipartite, black_box(&inst), black_box(&proof)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_provers,
    bench_verifiers,
    bench_simulator_ablation
);
criterion_main!(benches);
