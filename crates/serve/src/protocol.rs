//! The `lcp-serve` wire protocol: length-prefixed JSON frames and the
//! typed request surface.
//!
//! A frame is a 4-byte big-endian length followed by that many bytes of
//! UTF-8 JSON ([`read_frame`] / [`write_frame`]); both directions use
//! the same framing. Requests are objects with an `"op"` field drawn
//! from [`REQUEST_NAMES`]; responses carry `"ok": true` plus
//! op-specific fields, or `"ok": false` with an `"error"` kind from the
//! `ERR_*` constants and a human-readable `"detail"`. The full format,
//! with an example per request, lives in `docs/PROTOCOL.md` — kept
//! honest by the `protocol_doc_sync` test, which asserts the documented
//! names and [`REQUEST_NAMES`] are the same set.
//!
//! Everything here parses with [`lcp_core::json`] and renders by hand —
//! no serialization framework, so the daemon builds offline like the
//! rest of the workspace.

use lcp_core::json::{escape, Json};
use lcp_core::BitString;
use lcp_graph::families::GraphFamily;
use lcp_schemes::registry::Polarity;
use std::io::{self, Read, Write};

/// Upper bound on a frame payload (16 MiB): large enough for a long
/// churn trace, small enough that a corrupt length prefix cannot ask
/// the peer to allocate gigabytes.
pub const MAX_FRAME: usize = 16 << 20;

/// Every request name the dispatch table accepts, in documentation
/// order. `docs/PROTOCOL.md` documents exactly this set (pinned by the
/// doc-sync test).
pub const REQUEST_NAMES: [&str; 10] = [
    "prepare",
    "verify",
    "tamper-probe",
    "stats",
    "metrics",
    "session-open",
    "mutate",
    "churn",
    "session-close",
    "shutdown",
];

/// Error kind: a frame that is not valid JSON or not a request object.
pub const ERR_BAD_REQUEST: &str = "bad-request";
/// Error kind: the `"op"` is not in [`REQUEST_NAMES`].
pub const ERR_UNKNOWN_OP: &str = "unknown-op";
/// Error kind: the scheme id is not in the registry.
pub const ERR_UNKNOWN_SCHEME: &str = "unknown-scheme";
/// Error kind: the graph family name did not parse.
pub const ERR_UNKNOWN_FAMILY: &str = "unknown-family";
/// Error kind: the builder cannot realize this `(family, polarity)`.
pub const ERR_INAPPLICABLE: &str = "inapplicable";
/// Error kind: worker pool and waiting room are full — retry later.
/// Written by the acceptor itself, so a saturated server answers
/// immediately instead of hanging the client.
pub const ERR_BUSY: &str = "busy";
/// Error kind: the per-request `budget_ms` expired before a verdict.
pub const ERR_DEADLINE: &str = "deadline";
/// Error kind: a session request arrived on a connection without one.
pub const ERR_NO_SESSION: &str = "no-session";
/// Error kind: `session-open` on a connection that already has one.
pub const ERR_SESSION_ACTIVE: &str = "session-active";
/// Error kind: the cell refused a mutation (the instance is untouched).
pub const ERR_MUTATION: &str = "mutation";
/// Error kind: a `node-label-change` label type does not match the
/// sealed scheme's node type (the instance is untouched).
pub const ERR_LABEL_TYPE: &str = "label-type";

/// A protocol-level failure: an error kind (one of the `ERR_*`
/// constants) plus a human-readable detail string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable error kind, one of the `ERR_*` constants.
    pub kind: &'static str,
    /// Human-readable detail (never parsed by clients).
    pub detail: String,
}

impl ProtoError {
    /// Builds an error with the given kind and detail.
    pub fn new(kind: &'static str, detail: impl Into<String>) -> Self {
        ProtoError {
            kind,
            detail: detail.into(),
        }
    }

    /// Renders the `{"ok":false,...}` response payload.
    pub fn render(&self) -> String {
        format!(
            "{{\"ok\":false,\"error\":{},\"detail\":{}}}",
            escape(self.kind),
            escape(&self.detail)
        )
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

impl std::error::Error for ProtoError {}

/// The coordinates of one registry cell — the addressing scheme shared
/// with the conformance campaign (see `lcp_schemes::registry`): equal
/// coordinates name equal instances in every process.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CellCoord {
    /// Registry scheme id (`lcp_schemes::registry::find`).
    pub scheme: String,
    /// Graph family to draw the instance from.
    pub family: GraphFamily,
    /// Requested size (builders may round; read the real size off the
    /// response).
    pub n: usize,
    /// Seed of the family's RNG stream.
    pub seed: u64,
    /// Which side of the matrix to build.
    pub polarity: Polarity,
}

impl CellCoord {
    /// Renders the coordinate fields (no braces) for request payloads.
    pub fn render_fields(&self) -> String {
        format!(
            "\"scheme\":{},\"family\":{},\"n\":{},\"seed\":{},\"polarity\":{}",
            escape(&self.scheme),
            escape(self.family.name()),
            self.n,
            self.seed,
            escape(self.polarity.name())
        )
    }

    fn parse(doc: &Json) -> Result<CellCoord, ProtoError> {
        let scheme = str_field(doc, "scheme")?.to_string();
        let family_name = str_field(doc, "family")?;
        let family = GraphFamily::parse(family_name).ok_or_else(|| {
            ProtoError::new(
                ERR_UNKNOWN_FAMILY,
                format!("unknown family {family_name:?}"),
            )
        })?;
        let polarity = match str_field(doc, "polarity")? {
            "yes" => Polarity::Yes,
            "no" => Polarity::No,
            other => {
                return Err(ProtoError::new(
                    ERR_BAD_REQUEST,
                    format!("polarity must be \"yes\" or \"no\", got {other:?}"),
                ))
            }
        };
        Ok(CellCoord {
            scheme,
            family,
            n: usize_field(doc, "n")?,
            seed: u64_field(doc, "seed")?,
            polarity,
        })
    }
}

/// A node input label crossing the wire, tagged with its concrete type.
///
/// Only the label types that appear on wire-addressable schemes are
/// representable; cells whose node type is richer (e.g. `StMark`)
/// refuse wire label changes with [`ERR_LABEL_TYPE`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireLabel {
    /// The unit label of unlabeled instances.
    Unit,
    /// A boolean label.
    Bool(bool),
    /// A `u8` label.
    U8(u8),
    /// A `u64` label.
    U64(u64),
}

impl WireLabel {
    fn render(&self) -> String {
        match self {
            WireLabel::Unit => "{\"type\":\"unit\"}".to_string(),
            WireLabel::Bool(b) => format!("{{\"type\":\"bool\",\"value\":{b}}}"),
            WireLabel::U8(x) => format!("{{\"type\":\"u8\",\"value\":{x}}}"),
            WireLabel::U64(x) => format!("{{\"type\":\"u64\",\"value\":{x}}}"),
        }
    }

    fn parse(doc: &Json) -> Result<WireLabel, ProtoError> {
        match str_field(doc, "type")? {
            "unit" => Ok(WireLabel::Unit),
            "bool" => Ok(WireLabel::Bool(
                doc.get("value").and_then(Json::as_bool).ok_or_else(|| {
                    ProtoError::new(ERR_BAD_REQUEST, "bool label needs a boolean \"value\"")
                })?,
            )),
            "u8" => {
                let v = u64_field(doc, "value")?;
                u8::try_from(v).map(WireLabel::U8).map_err(|_| {
                    ProtoError::new(ERR_BAD_REQUEST, format!("u8 label out of range: {v}"))
                })
            }
            "u64" => Ok(WireLabel::U64(u64_field(doc, "value")?)),
            other => Err(ProtoError::new(
                ERR_BAD_REQUEST,
                format!("unsupported label type {other:?}"),
            )),
        }
    }
}

/// One mutation crossing the wire — the four churn events of
/// `lcp_dynamic::Mutation`, with label values made explicit (the in-
/// process `Mutation::NodeLabelChange` records only the node).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireMutation {
    /// Insert edge `{u, v}`.
    EdgeInsert(usize, usize),
    /// Delete edge `{u, v}`.
    EdgeDelete(usize, usize),
    /// Replace node `v`'s proof string with the given bits.
    ProofRewrite(usize, BitString),
    /// Replace node `v`'s input label.
    NodeLabelChange(usize, WireLabel),
}

impl WireMutation {
    /// The stable kind name (same vocabulary as `Mutation::kind`).
    pub fn kind(&self) -> &'static str {
        match self {
            WireMutation::EdgeInsert(..) => "edge-insert",
            WireMutation::EdgeDelete(..) => "edge-delete",
            WireMutation::ProofRewrite(..) => "proof-rewrite",
            WireMutation::NodeLabelChange(..) => "node-label-change",
        }
    }

    /// Renders the mutation fields (no braces) for a `mutate` payload.
    pub fn render_fields(&self) -> String {
        match self {
            WireMutation::EdgeInsert(u, v) | WireMutation::EdgeDelete(u, v) => {
                format!("\"kind\":{},\"u\":{u},\"v\":{v}", escape(self.kind()))
            }
            WireMutation::ProofRewrite(v, bits) => format!(
                "\"kind\":\"proof-rewrite\",\"v\":{v},\"bits\":{}",
                escape(&render_bits(bits))
            ),
            WireMutation::NodeLabelChange(v, label) => format!(
                "\"kind\":\"node-label-change\",\"v\":{v},\"label\":{}",
                label.render()
            ),
        }
    }

    fn parse(doc: &Json) -> Result<WireMutation, ProtoError> {
        match str_field(doc, "kind")? {
            "edge-insert" => Ok(WireMutation::EdgeInsert(
                usize_field(doc, "u")?,
                usize_field(doc, "v")?,
            )),
            "edge-delete" => Ok(WireMutation::EdgeDelete(
                usize_field(doc, "u")?,
                usize_field(doc, "v")?,
            )),
            "proof-rewrite" => Ok(WireMutation::ProofRewrite(
                usize_field(doc, "v")?,
                parse_bits(str_field(doc, "bits")?)?,
            )),
            "node-label-change" => {
                let label = doc.get("label").ok_or_else(|| {
                    ProtoError::new(ERR_BAD_REQUEST, "node-label-change needs a \"label\"")
                })?;
                Ok(WireMutation::NodeLabelChange(
                    usize_field(doc, "v")?,
                    WireLabel::parse(label)?,
                ))
            }
            other => Err(ProtoError::new(
                ERR_BAD_REQUEST,
                format!("unknown mutation kind {other:?}"),
            )),
        }
    }
}

/// Renders a proof string as `'0'`/`'1'` characters, index order.
pub fn render_bits(bits: &BitString) -> String {
    bits.iter().map(|b| if b { '1' } else { '0' }).collect()
}

/// Parses a `'0'`/`'1'` string into a proof string.
pub fn parse_bits(s: &str) -> Result<BitString, ProtoError> {
    let mut bits = Vec::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '0' => bits.push(false),
            '1' => bits.push(true),
            _ => {
                return Err(ProtoError::new(
                    ERR_BAD_REQUEST,
                    format!("proof bits must be '0'/'1', got {c:?}"),
                ))
            }
        }
    }
    Ok(BitString::from_bits(bits))
}

/// One parsed request — the serve dispatch table. Every variant's op
/// name is listed in [`REQUEST_NAMES`].
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Materialize a cell into the instance table and warm its
    /// skeletons.
    Prepare(CellCoord),
    /// Full verdict on a resident cell: completeness sweep on
    /// yes-instances, seeded soundness probe on no-instances.
    Verify {
        /// The cell to verify.
        coord: CellCoord,
        /// Optional wall budget in milliseconds.
        budget_ms: Option<u64>,
        /// Adversarial iterations on no-instances (default 256).
        iterations: usize,
        /// Adversarial per-node proof-size budget in bits (default 2).
        size_budget: usize,
        /// Seed of the adversarial search (default 0).
        seed: u64,
    },
    /// Seeded single-bit tamper probe against the honest proof.
    TamperProbe {
        /// The cell to probe.
        coord: CellCoord,
        /// Single-bit flips to attempt.
        trials: usize,
        /// Seed of the flip stream.
        seed: u64,
    },
    /// Instance-table and skeleton-cache counters.
    Stats,
    /// Prometheus-style text export of the daemon's whole metric
    /// registry (per-op latencies, queue depth, plus the engine and
    /// dynamic catalogs).
    Metrics,
    /// Open a churn session over a private copy of a resident cell.
    SessionOpen(CellCoord),
    /// Apply one mutation to the session and re-verify incrementally.
    Mutate(WireMutation),
    /// Run a seeded churn stream inside the session, one incremental
    /// verdict per step.
    Churn {
        /// Seed of the mutation stream.
        seed: u64,
        /// Mutations to apply.
        steps: usize,
        /// Cross-check against full evaluation every this many steps
        /// (`0` = final step only).
        check_every: usize,
        /// Optional wall budget in milliseconds.
        budget_ms: Option<u64>,
    },
    /// Drop the connection's session.
    SessionClose,
    /// Ask the daemon to drain and exit.
    Shutdown,
}

impl Request {
    /// The request's op name as listed in [`REQUEST_NAMES`].
    pub fn op(&self) -> &'static str {
        match self {
            Request::Prepare(_) => "prepare",
            Request::Verify { .. } => "verify",
            Request::TamperProbe { .. } => "tamper-probe",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::SessionOpen(_) => "session-open",
            Request::Mutate(_) => "mutate",
            Request::Churn { .. } => "churn",
            Request::SessionClose => "session-close",
            Request::Shutdown => "shutdown",
        }
    }

    /// Parses one frame payload into a request.
    ///
    /// # Errors
    ///
    /// [`ERR_BAD_REQUEST`] for malformed JSON or missing fields,
    /// [`ERR_UNKNOWN_OP`] for an op outside [`REQUEST_NAMES`], and the
    /// coordinate errors of [`CellCoord`].
    pub fn parse(payload: &str) -> Result<Request, ProtoError> {
        let doc = Json::parse(payload)
            .map_err(|e| ProtoError::new(ERR_BAD_REQUEST, format!("invalid JSON: {e}")))?;
        match str_field(&doc, "op")? {
            "prepare" => Ok(Request::Prepare(CellCoord::parse(&doc)?)),
            "verify" => Ok(Request::Verify {
                coord: CellCoord::parse(&doc)?,
                budget_ms: opt_u64_field(&doc, "budget_ms")?,
                iterations: opt_usize_field(&doc, "iterations")?.unwrap_or(256),
                size_budget: opt_usize_field(&doc, "size_budget")?.unwrap_or(2),
                seed: opt_u64_field(&doc, "seed")?.unwrap_or(0),
            }),
            "tamper-probe" => Ok(Request::TamperProbe {
                coord: CellCoord::parse(&doc)?,
                trials: opt_usize_field(&doc, "trials")?.unwrap_or(64),
                seed: opt_u64_field(&doc, "seed")?.unwrap_or(0),
            }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "session-open" => Ok(Request::SessionOpen(CellCoord::parse(&doc)?)),
            "mutate" => Ok(Request::Mutate(WireMutation::parse(&doc)?)),
            "churn" => Ok(Request::Churn {
                seed: opt_u64_field(&doc, "seed")?.unwrap_or(0),
                steps: opt_usize_field(&doc, "steps")?.unwrap_or(64),
                check_every: opt_usize_field(&doc, "check_every")?.unwrap_or(0),
                budget_ms: opt_u64_field(&doc, "budget_ms")?,
            }),
            "session-close" => Ok(Request::SessionClose),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtoError::new(
                ERR_UNKNOWN_OP,
                format!("unknown op {other:?}"),
            )),
        }
    }
}

fn str_field<'j>(doc: &'j Json, key: &str) -> Result<&'j str, ProtoError> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::new(ERR_BAD_REQUEST, format!("missing string field {key:?}")))
}

fn u64_field(doc: &Json, key: &str) -> Result<u64, ProtoError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtoError::new(ERR_BAD_REQUEST, format!("missing integer field {key:?}")))
}

fn usize_field(doc: &Json, key: &str) -> Result<usize, ProtoError> {
    doc.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| ProtoError::new(ERR_BAD_REQUEST, format!("missing integer field {key:?}")))
}

fn opt_u64_field(doc: &Json, key: &str) -> Result<Option<u64>, ProtoError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            ProtoError::new(ERR_BAD_REQUEST, format!("field {key:?} must be an integer"))
        }),
    }
}

fn opt_usize_field(doc: &Json, key: &str) -> Result<Option<usize>, ProtoError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_usize().map(Some).ok_or_else(|| {
            ProtoError::new(ERR_BAD_REQUEST, format!("field {key:?} must be an integer"))
        }),
    }
}

/// Writes one frame: 4-byte big-endian length, then the UTF-8 payload.
///
/// # Errors
///
/// Propagates I/O errors; payloads over [`MAX_FRAME`] are refused with
/// [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one frame, returning `Ok(None)` on a clean close: EOF at a
/// frame boundary, or `should_stop` turning true while no frame bytes
/// have arrived (the server's drain poll — readers without timeouts can
/// pass `&|| false`).
///
/// Read timeouts (`WouldBlock`/`TimedOut`) at a frame boundary re-poll
/// `should_stop`; once any byte of a frame has arrived the frame is
/// read to completion regardless, so an in-flight request survives a
/// shutdown signal and gets its response.
///
/// # Errors
///
/// EOF inside a frame is [`io::ErrorKind::UnexpectedEof`]; a length
/// prefix over [`MAX_FRAME`] or a non-UTF-8 payload is
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl Read, should_stop: &dyn Fn() -> bool) -> io::Result<Option<String>> {
    let mut header = [0u8; 4];
    if read_full(r, &mut header, true, should_stop)?.is_none() {
        return Ok(None);
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    if read_full(r, &mut payload, false, should_stop)?.is_none() {
        return Err(io::ErrorKind::UnexpectedEof.into());
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8"))
}

/// Fills `buf` completely. `Ok(None)` only when `at_boundary` and the
/// connection closed (or `should_stop` fired) before any byte arrived.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
    should_stop: &dyn Fn() -> bool,
) -> io::Result<Option<()>> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if at_boundary && filled == 0 {
                    Ok(None)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if at_boundary && filled == 0 && should_stop() {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Some(()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\":\"stats\"}").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = io::Cursor::new(buf);
        let never = || false;
        assert_eq!(
            read_frame(&mut r, &never).unwrap().as_deref(),
            Some("{\"op\":\"stats\"}")
        );
        assert_eq!(read_frame(&mut r, &never).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r, &never).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\":\"stats\"}").unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = io::Cursor::new(buf);
        let err = read_frame(&mut r, &|| false).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        let mut oversized = io::Cursor::new((MAX_FRAME as u32 + 1).to_be_bytes().to_vec());
        let err = read_frame(&mut oversized, &|| false).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn every_listed_op_parses_into_the_dispatch_table() {
        let coord =
            "\"scheme\":\"bipartite\",\"family\":\"cycle\",\"n\":8,\"seed\":1,\"polarity\":\"yes\"";
        let minimal: Vec<String> = vec![
            format!("{{\"op\":\"prepare\",{coord}}}"),
            format!("{{\"op\":\"verify\",{coord}}}"),
            format!("{{\"op\":\"tamper-probe\",{coord}}}"),
            "{\"op\":\"stats\"}".into(),
            "{\"op\":\"metrics\"}".into(),
            format!("{{\"op\":\"session-open\",{coord}}}"),
            "{\"op\":\"mutate\",\"kind\":\"edge-insert\",\"u\":0,\"v\":2}".into(),
            "{\"op\":\"churn\",\"seed\":7,\"steps\":4,\"check_every\":2}".into(),
            "{\"op\":\"session-close\"}".into(),
            "{\"op\":\"shutdown\"}".into(),
        ];
        assert_eq!(minimal.len(), REQUEST_NAMES.len());
        for (payload, name) in minimal.iter().zip(REQUEST_NAMES) {
            let req = Request::parse(payload).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(req.op(), name);
        }
        assert_eq!(
            Request::parse("{\"op\":\"frobnicate\"}").unwrap_err().kind,
            ERR_UNKNOWN_OP
        );
    }

    #[test]
    fn mutations_and_labels_round_trip() {
        let cases = [
            WireMutation::EdgeInsert(3, 9),
            WireMutation::EdgeDelete(0, 1),
            WireMutation::ProofRewrite(4, parse_bits("0110").unwrap()),
            WireMutation::NodeLabelChange(2, WireLabel::Unit),
            WireMutation::NodeLabelChange(2, WireLabel::Bool(true)),
            WireMutation::NodeLabelChange(5, WireLabel::U8(255)),
            WireMutation::NodeLabelChange(5, WireLabel::U64(u64::MAX)),
        ];
        for m in cases {
            let payload = format!("{{\"op\":\"mutate\",{}}}", m.render_fields());
            match Request::parse(&payload).unwrap() {
                Request::Mutate(parsed) => assert_eq!(parsed, m),
                other => panic!("parsed {other:?}"),
            }
        }
        assert_eq!(
            render_bits(&parse_bits("10011").unwrap()),
            "10011",
            "bit strings round-trip"
        );
    }
}
