//! Bit strings, borrowed bit slices, word-level primitives, and
//! bit-level codecs.
//!
//! Proof sizes in the LCP model are measured in *bits per node*, so the
//! encodings matter: a scheme claiming `O(log n)` bits must actually emit
//! them. [`BitWriter`] / [`BitReader`] provide fixed-width fields and
//! Elias-γ codes; verifiers treat any decode failure as a rejection.
//!
//! Storage is word-packed throughout: an owned [`BitString`] and a
//! borrowed [`ProofRef`] both address bits inside `u64` lanes (bit `i`
//! lives at `words[i / 64] >> (i % 64) & 1`), so copying or comparing a
//! proof string is a handful of word operations rather than a per-bit
//! loop. [`ProofRef`] is the currency of the whole verification stack:
//! views hand it to verifiers, [`crate::arena::ProofArena`] hands it to
//! views, and [`BitReader`] decodes from it directly.

use std::error::Error;
use std::fmt;

/// Number of words needed to hold `len` bits.
#[inline]
pub(crate) fn words_for(len: usize) -> usize {
    len.div_ceil(64)
}

/// Reads bit `pos` of a word-packed slice.
///
/// # Panics
///
/// Panics if `pos / 64` is out of range for `words`.
#[inline(always)]
pub(crate) fn word_get(words: &[u64], pos: usize) -> bool {
    words[pos >> 6] >> (pos & 63) & 1 == 1
}

/// Compares the first `len` bits of two word-packed slices, ignoring any
/// trailing garbage in the final partial word.
#[inline]
pub(crate) fn word_eq(a: &[u64], b: &[u64], len: usize) -> bool {
    let full = len / 64;
    if a[..full] != b[..full] {
        return false;
    }
    let tail = len & 63;
    tail == 0 || (a[full] ^ b[full]) & ((1u64 << tail) - 1) == 0
}

/// The low `n` bits set (`n ≤ 64`).
#[inline(always)]
fn low_mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Up to 64 bits starting at bit `pos`, in storage order (bit `i` of the
/// result is bit `pos + i` of the slice), zero-padded past the end.
#[inline(always)]
fn peek_chunk(words: &[u64], pos: usize) -> u64 {
    let wi = pos >> 6;
    let off = pos & 63;
    let lo = words.get(wi).copied().unwrap_or(0) >> off;
    if off == 0 {
        lo
    } else {
        lo | words.get(wi + 1).copied().unwrap_or(0) << (64 - off)
    }
}

/// A finite binary string, the value a proof assigns to one node (§2.1).
///
/// Bits are addressed in write order (index 0 first). The empty string
/// `ε` is the size-0 proof. Bits are packed into `u64` words; every bit
/// at position ≥ `len` is kept zero so the derived equality, hashing,
/// and ordering see only the logical content.
///
/// ```
/// use lcp_core::BitString;
///
/// let s = BitString::from_bits([true, false, true]);
/// assert_eq!(s.len(), 3);
/// assert_eq!(s.get(1), Some(false));
/// assert_eq!(format!("{s:?}"), "bits\"101\"");
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitString {
    words: Vec<u64>,
    len: usize,
}

impl BitString {
    /// The empty bit string `ε`.
    pub fn new() -> Self {
        BitString::default()
    }

    /// Builds a bit string from booleans.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut s = BitString::new();
        for b in bits {
            s.push(b);
        }
        s
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether this is the empty string.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `index`, if in range.
    pub fn get(&self, index: usize) -> Option<bool> {
        (index < self.len).then(|| word_get(&self.words, index))
    }

    /// The first bit, if any. Handy for 1-bit proofs.
    pub fn first(&self) -> Option<bool> {
        self.get(0)
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if bit {
            self.words[self.len >> 6] |= 1 << (self.len & 63);
        }
        self.len += 1;
    }

    /// Iterates over the bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(|i| word_get(&self.words, i))
    }

    /// Flips the bit at `index`; used by the adversarial proof mutator.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn flip(&mut self, index: usize) {
        assert!(index < self.len, "bit index {index} out of range");
        self.words[index >> 6] ^= 1 << (index & 63);
    }

    /// The backing words; bit `i` is `words()[i / 64] >> (i % 64) & 1`,
    /// and bits at positions ≥ [`Self::len`] are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.as_bits(), f)
    }
}

impl FromIterator<bool> for BitString {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitString::from_bits(iter)
    }
}

/// A borrowed, word-packed bit slice: the view a verifier gets of one
/// node's proof string.
///
/// A `ProofRef` never owns its bits — it points into a [`BitString`] or
/// into a [`crate::arena::ProofArena`] slot — so handing proofs to
/// verifiers costs no allocation and no copying. It is `Copy`;
/// comparisons, [`Self::iter`], and [`BitReader`] all mask any garbage
/// beyond [`Self::len`] in the final partial word, so a slice into a
/// partially overwritten arena slot still reads exactly its logical
/// bits.
///
/// ```
/// use lcp_core::{AsBits, BitString};
///
/// let s = BitString::from_bits([true, false, true]);
/// let r = s.as_bits();
/// assert_eq!(r.len(), 3);
/// assert_eq!(r.get(2), Some(true));
/// assert_eq!(r.to_bitstring(), s);
/// ```
#[derive(Clone, Copy)]
pub struct ProofRef<'a> {
    words: &'a [u64],
    len: usize,
}

impl<'a> ProofRef<'a> {
    /// The empty bit slice `ε`.
    pub const EMPTY: ProofRef<'static> = ProofRef { words: &[], len: 0 };

    /// Wraps `len` bits of a word-packed slice.
    ///
    /// # Panics
    ///
    /// Panics if `words` holds fewer than `len` bits.
    pub fn from_words(words: &'a [u64], len: usize) -> Self {
        assert!(words.len() >= words_for(len), "slice shorter than len");
        ProofRef {
            words: &words[..words_for(len)],
            len,
        }
    }

    /// Crate-internal unchecked-by-release constructor for callers that
    /// already sized the slice (the arena's slot reads).
    #[inline(always)]
    pub(crate) fn raw(words: &'a [u64], len: usize) -> Self {
        debug_assert!(words.len() >= words_for(len), "slice shorter than len");
        ProofRef { words, len }
    }

    /// Number of bits.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether this is the empty string.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `index`, if in range.
    #[inline(always)]
    pub fn get(&self, index: usize) -> Option<bool> {
        (index < self.len).then(|| word_get(self.words, index))
    }

    /// The first bit, if any. Handy for 1-bit proofs.
    #[inline(always)]
    pub fn first(&self) -> Option<bool> {
        self.get(0)
    }

    /// Iterates over the bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + 'a {
        let words = self.words;
        (0..self.len).map(move |i| word_get(words, i))
    }

    /// The backing words (the final word may carry garbage past
    /// [`Self::len`]).
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Copies the bits into an owned [`BitString`].
    pub fn to_bitstring(&self) -> BitString {
        let mut words = self.words.to_vec();
        let tail = self.len & 63;
        if tail != 0 {
            // Re-establish the BitString invariant: trailing bits zero.
            *words.last_mut().expect("tail implies a word") &= (1u64 << tail) - 1;
        }
        BitString {
            words,
            len: self.len,
        }
    }
}

impl PartialEq for ProofRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && word_eq(self.words, other.words, self.len)
    }
}

impl Eq for ProofRef<'_> {}

impl PartialEq<BitString> for ProofRef<'_> {
    fn eq(&self, other: &BitString) -> bool {
        *self == other.as_bits()
    }
}

impl PartialEq<ProofRef<'_>> for BitString {
    fn eq(&self, other: &ProofRef<'_>) -> bool {
        self.as_bits() == *other
    }
}

impl fmt::Debug for ProofRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bits\"")?;
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        write!(f, "\"")
    }
}

impl<'a> From<&'a BitString> for ProofRef<'a> {
    fn from(s: &'a BitString) -> Self {
        ProofRef {
            words: &s.words,
            len: s.len,
        }
    }
}

/// Anything that exposes its bits as a borrowed [`ProofRef`].
///
/// Lets APIs like [`crate::Proof::set`] accept owned [`BitString`]s,
/// borrowed `&BitString`s, and [`ProofRef`]s interchangeably.
pub trait AsBits {
    /// A borrowed view of the bits.
    fn as_bits(&self) -> ProofRef<'_>;
}

impl AsBits for BitString {
    fn as_bits(&self) -> ProofRef<'_> {
        self.into()
    }
}

impl AsBits for ProofRef<'_> {
    fn as_bits(&self) -> ProofRef<'_> {
        *self
    }
}

impl<T: AsBits + ?Sized> AsBits for &T {
    fn as_bits(&self) -> ProofRef<'_> {
        (**self).as_bits()
    }
}

/// Errors raised while decoding a bit string.
///
/// A verifier that hits a codec error on a proof must reject: a malformed
/// proof is an invalid proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The reader ran past the end of the string.
    OutOfBits,
    /// A γ-coded value had an implausible length prefix.
    Malformed,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::OutOfBits => write!(f, "ran out of bits while decoding"),
            CodecError::Malformed => write!(f, "malformed variable-length code"),
        }
    }
}

impl Error for CodecError {}

/// Incremental writer producing a [`BitString`].
///
/// ```
/// use lcp_core::{BitWriter, BitReader};
///
/// # fn main() -> Result<(), lcp_core::CodecError> {
/// let mut w = BitWriter::new();
/// w.write_u64(5, 3);
/// w.write_bit(true);
/// let s = w.finish();
/// assert_eq!(s.len(), 4);
///
/// let mut r = BitReader::new(&s);
/// assert_eq!(r.read_u64(3)?, 5);
/// assert!(r.read_bit()?);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    out: BitString,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends one bit.
    pub fn write_bit(&mut self, bit: bool) -> &mut Self {
        self.out.push(bit);
        self
    }

    /// Appends `width` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `width` bits or `width > 64`.
    pub fn write_u64(&mut self, value: u64, width: u32) -> &mut Self {
        assert!(width <= 64, "width {width} exceeds u64");
        assert!(
            width == 64 || value < 1u64 << width,
            "value {value} does not fit in {width} bits"
        );
        for i in (0..width).rev() {
            self.out.push(value >> i & 1 == 1);
        }
        self
    }

    /// Appends `value` in Elias-γ code (self-delimiting; codes `v ≥ 0` by
    /// shifting to `v + 1`). Costs `2⌊log₂(v+1)⌋ + 1` bits.
    pub fn write_gamma(&mut self, value: u64) -> &mut Self {
        let v = value + 1;
        let k = v.ilog2();
        for _ in 0..k {
            self.out.push(false);
        }
        self.write_u64(v, k + 1);
        self
    }

    /// Consumes the writer, returning the accumulated string.
    pub fn finish(self) -> BitString {
        self.out
    }

    /// Bits written so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

/// Sequential reader over any word-packed bit source (a `&`[`BitString`]
/// or a [`ProofRef`] straight out of a view or arena); see [`BitWriter`]
/// for a round-trip example.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    src: ProofRef<'a>,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Starts reading `src` from the first bit.
    pub fn new(src: impl Into<ProofRef<'a>>) -> Self {
        BitReader {
            src: src.into(),
            pos: 0,
        }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// [`CodecError::OutOfBits`] at end of string.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        if self.pos >= self.src.len() {
            return Err(CodecError::OutOfBits);
        }
        let b = word_get(self.src.words(), self.pos);
        self.pos += 1;
        Ok(b)
    }

    /// Reads `width` bits as an MSB-first integer — one word-level
    /// extraction, not a per-bit loop.
    ///
    /// # Errors
    ///
    /// [`CodecError::OutOfBits`] if fewer than `width` bits remain.
    pub fn read_u64(&mut self, width: u32) -> Result<u64, CodecError> {
        assert!(width <= 64, "width {width} exceeds u64");
        if self.remaining() < width as usize {
            self.pos = self.src.len();
            return Err(CodecError::OutOfBits);
        }
        if width == 0 {
            return Ok(0);
        }
        // The chunk holds the bits in storage order (first-written bit
        // lowest); MSB-first means the first-written bit is the highest.
        let chunk = peek_chunk(self.src.words(), self.pos) & low_mask(width as usize);
        self.pos += width as usize;
        Ok(chunk.reverse_bits() >> (64 - width))
    }

    /// Reads an Elias-γ coded value (inverse of [`BitWriter::write_gamma`]).
    ///
    /// The zero-run scan stays bit-by-bit (γ prefixes in proofs are a
    /// few bits — chunked scanning costs more than it saves), but the
    /// payload rides the word-level [`Self::read_u64`].
    ///
    /// # Errors
    ///
    /// [`CodecError::OutOfBits`] / [`CodecError::Malformed`] on truncated
    /// or absurd prefixes.
    pub fn read_gamma(&mut self) -> Result<u64, CodecError> {
        let mut k = 0u32;
        while !self.read_bit()? {
            k += 1;
            if k > 64 {
                return Err(CodecError::Malformed);
            }
        }
        // k payload bits, MSB-first under the implicit leading 1. A
        // hostile k = 64 overflows the implicit leading 1 out of u64
        // range; the only value it could ever round-trip is already
        // representable with k = 63, so reject the all-zero payload
        // (whose decoded value would underflow the `+1` shift) as
        // malformed instead of wrapping.
        let payload = self.read_u64(k)?;
        let v = if k == 64 {
            payload
        } else {
            (1u64 << k) | payload
        };
        v.checked_sub(1).ok_or(CodecError::Malformed)
    }

    /// Bits not yet consumed.
    pub fn remaining(&self) -> usize {
        self.src.len() - self.pos
    }

    /// Whether every bit has been consumed.
    ///
    /// Strict verifiers check this: trailing garbage makes a proof
    /// malformed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string() {
        let s = BitString::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.get(0), None);
        assert_eq!(s.first(), None);
        assert_eq!(format!("{s:?}"), "bits\"\"");
    }

    #[test]
    fn push_and_get() {
        let mut s = BitString::new();
        for i in 0..20 {
            s.push(i % 3 == 0);
        }
        assert_eq!(s.len(), 20);
        for i in 0..20 {
            assert_eq!(s.get(i), Some(i % 3 == 0), "bit {i}");
        }
        assert_eq!(s.get(20), None);
    }

    #[test]
    fn from_iterator_and_iter_roundtrip() {
        let bits = vec![true, true, false, true, false];
        let s: BitString = bits.iter().copied().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), bits);
    }

    #[test]
    fn flip_toggles() {
        let mut s = BitString::from_bits([false, false]);
        s.flip(1);
        assert_eq!(s.get(1), Some(true));
        s.flip(1);
        assert_eq!(s.get(1), Some(false));
    }

    #[test]
    fn fixed_width_roundtrip() {
        for value in [0u64, 1, 5, 255, 1 << 20, u64::MAX] {
            let width = if value == u64::MAX {
                64
            } else {
                64.min(value.max(1).ilog2() + 1)
            };
            let mut w = BitWriter::new();
            w.write_u64(value, width);
            let s = w.finish();
            assert_eq!(s.len() as u32, width);
            let mut r = BitReader::new(&s);
            assert_eq!(r.read_u64(width).unwrap(), value);
            assert!(r.is_exhausted());
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflowing_width_panics() {
        BitWriter::new().write_u64(8, 3);
    }

    #[test]
    fn gamma_roundtrip() {
        let mut w = BitWriter::new();
        for v in 0..100u64 {
            w.write_gamma(v);
        }
        w.write_gamma(u64::MAX - 1);
        let s = w.finish();
        let mut r = BitReader::new(&s);
        for v in 0..100u64 {
            assert_eq!(r.read_gamma().unwrap(), v);
        }
        assert_eq!(r.read_gamma().unwrap(), u64::MAX - 1);
        assert!(r.is_exhausted());
    }

    #[test]
    fn gamma_length_matches_formula() {
        for v in [0u64, 1, 2, 3, 7, 8, 100] {
            let mut w = BitWriter::new();
            w.write_gamma(v);
            assert_eq!(w.len() as u32, 2 * (v + 1).ilog2() + 1, "v = {v}");
        }
    }

    #[test]
    fn out_of_bits_errors() {
        let s = BitString::from_bits([true]);
        let mut r = BitReader::new(&s);
        assert!(r.read_bit().is_ok());
        assert_eq!(r.read_bit(), Err(CodecError::OutOfBits));
        let mut r2 = BitReader::new(&s);
        assert_eq!(r2.read_u64(2), Err(CodecError::OutOfBits));
    }

    #[test]
    fn truncated_gamma_errors() {
        // A single 0 bit promises at least one more bit.
        let s = BitString::from_bits([false]);
        assert_eq!(BitReader::new(&s).read_gamma(), Err(CodecError::OutOfBits));
    }

    #[test]
    fn hostile_gamma_prefixes_reject_without_panicking() {
        // 65 zeros: an absurd length prefix.
        let s = BitString::from_bits((0..66).map(|i| i == 65));
        assert_eq!(BitReader::new(&s).read_gamma(), Err(CodecError::Malformed));
        // 64 zeros, a 1, then an all-zero 64-bit payload: the implicit
        // leading 1 overflows u64 and the decoded value would underflow
        // — must reject, not wrap (release) or panic (debug).
        let s = BitString::from_bits((0..129).map(|i| i == 64));
        assert_eq!(BitReader::new(&s).read_gamma(), Err(CodecError::Malformed));
        // Same prefix with a nonzero payload still decodes (to the
        // payload minus one, the historical wrapping value).
        let s = BitString::from_bits((0..129).map(|i| i == 64 || i == 128));
        assert_eq!(BitReader::new(&s).read_gamma(), Ok(0));
    }

    #[test]
    fn mixed_payload_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bit(true)
            .write_u64(42, 7)
            .write_gamma(9)
            .write_bit(false);
        let s = w.finish();
        let mut r = BitReader::new(&s);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_u64(7).unwrap(), 42);
        assert_eq!(r.read_gamma().unwrap(), 9);
        assert!(!r.read_bit().unwrap());
        assert!(r.is_exhausted());
    }

    #[test]
    fn ordering_is_total_and_consistent() {
        // The derived order is unspecified but must be a total order usable
        // as a map key; equal strings compare equal.
        let a = BitString::from_bits([false, true]);
        let b = BitString::from_bits([false, true]);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_ne!(a, BitString::from_bits([true, false]));
    }
}
