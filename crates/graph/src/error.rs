use crate::NodeId;
use std::error::Error;
use std::fmt;

/// Errors produced while constructing or mutating graphs.
///
/// All graphs in this workspace are *simple*: no self-loops, no parallel
/// edges, and identifiers are unique. Constructors validate their input
/// (C-VALIDATE) and report violations through this type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The identifier is already present in the graph.
    DuplicateNode(NodeId),
    /// The identifier does not name a node of the graph.
    UnknownNode(NodeId),
    /// An internal index was out of range for the graph.
    IndexOutOfRange(usize),
    /// The edge joins a node to itself; simple graphs forbid self-loops.
    SelfLoop(NodeId),
    /// The edge is already present in the graph.
    DuplicateEdge(NodeId, NodeId),
    /// The edge is not present in the graph (removal of a non-edge).
    UnknownEdge(NodeId, NodeId),
    /// A constructor received parameters outside its domain
    /// (e.g. a cycle on fewer than 3 nodes).
    InvalidConstruction(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateNode(id) => write!(f, "duplicate node identifier {id}"),
            GraphError::UnknownNode(id) => write!(f, "unknown node identifier {id}"),
            GraphError::IndexOutOfRange(i) => write!(f, "node index {i} out of range"),
            GraphError::SelfLoop(id) => write!(f, "self-loop at node {id}"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge {{{a}, {b}}}"),
            GraphError::UnknownEdge(a, b) => write!(f, "unknown edge {{{a}, {b}}}"),
            GraphError::InvalidConstruction(msg) => write!(f, "invalid construction: {msg}"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let msgs = [
            GraphError::DuplicateNode(NodeId(3)).to_string(),
            GraphError::UnknownNode(NodeId(9)).to_string(),
            GraphError::IndexOutOfRange(4).to_string(),
            GraphError::SelfLoop(NodeId(1)).to_string(),
            GraphError::DuplicateEdge(NodeId(1), NodeId(2)).to_string(),
            GraphError::InvalidConstruction("cycle needs >= 3 nodes".into()).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<GraphError>();
    }
}
