//! `bench_diff` — CI guard for the engine throughput snapshot.
//!
//! ```text
//! bench_diff <fresh BENCH_engine.json> <committed BENCH_engine.json> [--max-regression 0.25]
//! ```
//!
//! Compares the *relative* speedup (engine vs the naive executor,
//! measured in the same run on the same machine) of a freshly produced
//! snapshot against the committed reference. Wall-clock seconds are not
//! comparable across machines, but the speedup ratio is — a refactor
//! that costs the engine 25% of its advantage fails the job regardless
//! of runner hardware.
//!
//! Exit codes: `0` ok, `1` usage/parse error, `2` regression.

use std::process::exit;

/// Minimal extractor for the flat one-level BENCH json: finds `"key":
/// <number>` and parses the number (no string values contain keys).
fn field(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

struct Snapshot {
    proofs: f64,
    naive_seconds: f64,
    engine_seconds: f64,
}

fn load(path: &str) -> Result<Snapshot, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let get = |key: &str| field(&json, key).ok_or_else(|| format!("{path}: missing \"{key}\""));
    Ok(Snapshot {
        proofs: get("proofs")?,
        naive_seconds: get("naive_seconds")?,
        engine_seconds: get("engine_seconds")?,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_regression = 0.25f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--max-regression" {
            let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                eprintln!("--max-regression needs a fraction (e.g. 0.25)");
                exit(1);
            };
            max_regression = v;
        } else {
            paths.push(a.clone());
        }
    }
    let [fresh_path, committed_path] = paths.as_slice() else {
        eprintln!("usage: bench_diff <fresh.json> <committed.json> [--max-regression 0.25]");
        exit(1);
    };
    let (fresh, committed) = match (load(fresh_path), load(committed_path)) {
        (Ok(f), Ok(c)) => (f, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            exit(1);
        }
    };

    // Machine-normalized throughput: candidates per second relative to
    // the naive executor measured in the same run.
    let fresh_speedup = fresh.naive_seconds / fresh.engine_seconds;
    let committed_speedup = committed.naive_seconds / committed.engine_seconds;
    let ratio = fresh_speedup / committed_speedup;
    println!(
        "engine throughput: fresh {:.0} proofs/s ({:.1}x naive), committed {:.1}x naive, ratio {:.2}",
        fresh.proofs / fresh.engine_seconds,
        fresh_speedup,
        committed_speedup,
        ratio,
    );
    if ratio < 1.0 - max_regression {
        eprintln!(
            "FAIL: engine speedup regressed by {:.0}% (allowed {:.0}%)",
            (1.0 - ratio) * 100.0,
            max_regression * 100.0
        );
        exit(2);
    }
    println!(
        "ok: within the {:.0}% regression budget",
        max_regression * 100.0
    );
}
