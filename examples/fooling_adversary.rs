//! The §5.3 gluing adversary, live (Figure 1).
//!
//! A 1-bit leader-election certificate looks plausible: parity gradients,
//! local defect rules, sound on many instances. This example runs the
//! paper's cycle-gluing construction against it and prints the forged
//! two-leader cycle that every node accepts — then runs the same attack
//! against the honest `Θ(log n)` scheme and watches it fail.
//!
//! ```sh
//! cargo run --example fooling_adversary
//! ```

use lcp::core::Instance;
use lcp::graph::Graph;
use lcp::lower_bounds::gluing::{glue_cycles, GluingAttack, GluingOutcome};
use lcp::lower_bounds::strawman::ParityLeader;
use lcp::schemes::leader::LeaderElection;

fn leader_at_a(g: Graph) -> Instance<bool> {
    let labels = (0..g.n()).map(|v| v == 0).collect();
    Instance::with_node_data(g, labels)
}

fn main() {
    let attack = GluingAttack::new(11, 2);

    println!("=== attacking the 1-bit parity-leader scheme ===");
    match glue_cycles(&ParityLeader, &attack, leader_at_a, None) {
        GluingOutcome::Fooled(ce) => {
            let leaders: Vec<_> = ce
                .instance
                .node_labels()
                .iter()
                .enumerate()
                .filter(|(_, &l)| l)
                .map(|(v, _)| ce.instance.graph().id(v))
                .collect();
            println!(
                "FOOLED: glued {}-cycle with {} leaders (ids {:?}) accepted by all {} nodes",
                ce.n(),
                leaders.len(),
                leaders,
                ce.n(),
            );
            let ids: Vec<String> = ce
                .instance
                .graph()
                .ids()
                .iter()
                .map(|id| id.to_string())
                .collect();
            println!("forged identifier cycle: {}", ids.join(" – "));
        }
        other => println!("unexpected: {other:?}"),
    }

    println!();
    println!("=== the same attack against the Θ(log n) scheme ===");
    match glue_cycles(&LeaderElection, &attack, leader_at_a, None) {
        GluingOutcome::NoMonochromaticCycle { colors, pairs } => println!(
            "SURVIVED: {pairs} donor cycles produced {colors} distinct proof colours — \
             no monochromatic 4-cycle to glue (the Ω(log n) bound in action)"
        ),
        other => println!("unexpected: {other:?}"),
    }
}
