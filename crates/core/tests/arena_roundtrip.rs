//! Property tests: `BitString ↔ ProofArena` slots round-trip exactly.
//!
//! The arena packs every node's bits into shared `u64` words, so the
//! dangerous lengths are the word boundaries (63/64/65) and the
//! shrink-then-read case where a slot's final word still carries stale
//! bits from a longer previous value. Random walks over slot writes must
//! always read back the logical bits, bit for bit.

use lcp_core::{AsBits, BitString, Proof, ProofArena};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A random bit string of the given length, derived from a seed.
fn bitstring(len: usize, seed: u64) -> BitString {
    let mut rng = StdRng::seed_from_u64(seed);
    BitString::from_bits((0..len).map(|_| rng.random_bool(0.5)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn slot_roundtrips_any_length(len in 0usize..200, seed in any::<u64>()) {
        let s = bitstring(len, seed);
        let arena = ProofArena::from_strings(std::slice::from_ref(&s));
        prop_assert_eq!(arena.get(0).to_bitstring(), s.clone());
        prop_assert_eq!(arena.get(0), s.as_bits());
        prop_assert_eq!(arena.len_of(0), len);
    }

    #[test]
    fn random_walk_of_writes_reads_back_exactly(
        n in 1usize..6,
        writes in 1usize..24,
        seed in any::<u64>(),
    ) {
        // Mirror every arena write in a Vec<BitString> and compare after
        // each step: overwrite shorter, longer, empty — all shapes.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arena = ProofArena::with_capacity(n, 8);
        let mut shadow = vec![BitString::new(); n];
        for step in 0..writes {
            let v = rng.random_range(0..n);
            let len = rng.random_range(0..130usize);
            let s = bitstring(len, seed ^ (step as u64) << 7);
            arena.set(v, s.as_bits());
            shadow[v] = s;
            for u in 0..n {
                prop_assert_eq!(
                    arena.get(u).to_bitstring(),
                    shadow[u].clone(),
                    "slot {} drifted after writing slot {}", u, v
                );
            }
        }
        prop_assert_eq!(arena.size(), shadow.iter().map(BitString::len).max().unwrap());
        prop_assert_eq!(arena.total_bits(), shadow.iter().map(BitString::len).sum::<usize>());
    }

    #[test]
    fn proof_matches_its_string_form(lens in prop::collection::vec(0usize..100, 0..8), seed in any::<u64>()) {
        let strings: Vec<BitString> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| bitstring(len, seed ^ i as u64))
            .collect();
        let packed = Proof::from_strings(strings.clone());
        let rebuilt = Proof::from_fn(strings.len(), |v| strings[v].clone());
        prop_assert_eq!(&packed, &rebuilt);
        for (v, s) in strings.iter().enumerate() {
            prop_assert_eq!(packed.get(v).to_bitstring(), s.clone());
        }
    }
}

#[test]
fn word_boundary_lengths_roundtrip() {
    // The explicit boundary cases: lengths that end exactly at, one
    // short of, and one past a 64-bit lane.
    for len in [0, 1, 62, 63, 64, 65, 126, 127, 128, 129] {
        let s = bitstring(len, 0x1234 + len as u64);
        let mut arena = ProofArena::with_capacity(2, 129);
        arena.set(1, s.as_bits());
        assert_eq!(arena.get(1).to_bitstring(), s, "len {len}");
        assert_eq!(
            arena.get(1).iter().collect::<Vec<_>>(),
            s.iter().collect::<Vec<_>>(),
            "len {len}"
        );
        // Shrink to a boundary-1 length and confirm stale bits masked.
        let shorter = bitstring(len.saturating_sub(1), 0x9876 + len as u64);
        arena.set(1, shorter.as_bits());
        assert_eq!(arena.get(1).to_bitstring(), shorter, "shrunk from {len}");
    }
}

#[test]
fn equality_and_flips_across_boundaries() {
    let s = bitstring(65, 42);
    let mut arena = ProofArena::from_strings(std::slice::from_ref(&s));
    assert_eq!(arena.get(0), s.as_bits());
    arena.flip(0, 64); // the first bit of the second word
    assert_ne!(arena.get(0), s.as_bits());
    arena.flip(0, 64);
    assert_eq!(arena.get(0), s.as_bits());
}
