//! Criterion benches for the lower-bound attacks: how expensive is it to
//! forge a counterexample (or to fail trying)?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcp_core::Instance;
use lcp_graph::Graph;
use lcp_lower_bounds::gluing::{glue_cycles, GluingAttack};
use lcp_lower_bounds::join_collision::{join_collision_attack, rooted_tree_family};
use lcp_lower_bounds::strawman::{ParityLeader, TruncatedUniversal};
use lcp_schemes::leader::LeaderElection;
use std::hint::black_box;

fn leader_at_a(g: Graph) -> Instance<bool> {
    let labels = (0..g.n()).map(|v| v == 0).collect();
    Instance::with_node_data(g, labels)
}

fn bench_gluing(c: &mut Criterion) {
    let mut group = c.benchmark_group("gluing-attack");
    group.sample_size(10);
    for n in [9usize, 15] {
        group.bench_with_input(BenchmarkId::new("fools-strawman", n), &n, |b, &n| {
            b.iter(|| {
                glue_cycles(
                    &ParityLeader,
                    &GluingAttack::new(black_box(n), 2),
                    leader_at_a,
                    None,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("survived-by-honest", n), &n, |b, &n| {
            b.iter(|| {
                glue_cycles(
                    &LeaderElection,
                    &GluingAttack::new(black_box(n), 2),
                    leader_at_a,
                    None,
                )
            })
        });
    }
    group.finish();
}

fn bench_join_collision(c: &mut Criterion) {
    let mut group = c.benchmark_group("join-collision-attack");
    group.sample_size(10);
    let family = rooted_tree_family(6, 1000).expect("enumeration in range");
    group.bench_function("trees-k6-budget48", |b| {
        let scheme = TruncatedUniversal::new("fixpoint-free", 48, |g: &Graph| {
            lcp_graph::iso::fixpoint_free_automorphism(g).is_some()
        });
        b.iter(|| join_collision_attack(&scheme, black_box(&family)))
    });
    group.finish();
}

criterion_group!(benches, bench_gluing, bench_join_collision);
criterion_main!(benches);
