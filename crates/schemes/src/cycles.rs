//! Schemes on the **cycle family** (promise: the input graph is a single
//! cycle): parity of `n(G)` and maximum matchings.
//!
//! These rows are the paper's running examples for the `LCP(O(1))` vs
//! `LogLCP` separation: *even* `n` needs one bit (a 2-colouring), *odd*
//! `n` needs `Θ(log n)` (a counting spanning tree), and the gluing attack
//! of §5.3 shows both lower bounds — see `lcp-lower-bounds`.

use lcp_core::components::CountingTreeCert;
use lcp_core::{BitReader, BitString, BitWriter, Instance, Proof, ProofRef, Scheme, View};
use lcp_graph::traversal;

/// Whether the graph is a single cycle.
fn is_cycle(g: &lcp_graph::Graph) -> bool {
    g.n() >= 3 && g.nodes().all(|u| g.degree(u) == 2) && traversal::is_connected(g)
}

/// "Even `n(G)` on cycles": 1 bit per node, a proper 2-colouring.
///
/// A cycle is 2-colourable iff its length is even, so the colouring *is*
/// the parity certificate (Table 1(a), `LCP(O(1))`). Every verifier also
/// checks the family promise it can see locally (degree 2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvenCycle;

impl Scheme for EvenCycle {
    type Node = ();
    type Edge = ();

    fn name(&self) -> String {
        "even-cycle".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance) -> bool {
        is_cycle(inst.graph()) && inst.n() % 2 == 0
    }

    fn prove(&self, inst: &Instance) -> Option<Proof> {
        if !is_cycle(inst.graph()) {
            return None;
        }
        let colors = traversal::bipartition(inst.graph())?;
        Some(Proof::from_fn(inst.n(), |v| {
            BitString::from_bits([colors[v] == 1])
        }))
    }

    fn verify(&self, view: &View) -> bool {
        let c = view.center();
        if view.degree(c) != 2 {
            return false; // family promise violated visibly
        }
        let Some(mine) = view.proof(c).first() else {
            return false;
        };
        view.neighbors(c)
            .iter()
            .all(|&u| view.proof(u).first().is_some_and(|b| b != mine))
    }
}

/// "Odd `n(G)` on cycles": `Θ(log n)` bits — a counting spanning-tree
/// certificate whose agreed node count must be odd.
///
/// The §5.3 gluing attack shows `o(log n)` bits cannot do this; the bench
/// harness runs that attack against truncated variants of this very
/// scheme.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OddCycle;

impl Scheme for OddCycle {
    type Node = ();
    type Edge = ();

    fn name(&self) -> String {
        "odd-cycle".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance) -> bool {
        is_cycle(inst.graph()) && inst.n() % 2 == 1
    }

    fn prove(&self, inst: &Instance) -> Option<Proof> {
        self.holds(inst).then(|| {
            let tree = lcp_graph::spanning::bfs_spanning_tree(inst.graph(), 0);
            let certs = CountingTreeCert::prove(inst.graph(), &tree);
            Proof::from_fn(inst.n(), |v| {
                let mut w = BitWriter::new();
                certs[v].encode(&mut w);
                w.finish()
            })
        })
    }

    fn verify(&self, view: &View) -> bool {
        if view.degree(view.center()) != 2 {
            return false;
        }
        let certs = |u: usize| {
            let mut r = BitReader::new(view.proof(u));
            let c = CountingTreeCert::decode(&mut r).ok()?;
            r.is_exhausted().then_some(c)
        };
        if !CountingTreeCert::verify_at_center(view, certs) {
            return false;
        }
        let mine = certs(view.center()).expect("decoded by the counting check");
        mine.n_claim % 2 == 1
    }
}

/// Maximum matching on cycles (Table 1(b), `Θ(log n)`): the labelled
/// edges must form a matching of size `⌊n/2⌋`.
///
/// Certificate: a counting tree extended with a second counter — the
/// number of *unmatched* nodes in each subtree. The root checks that the
/// total equals `n mod 2` (0 unmatched nodes on even cycles, exactly 1 on
/// odd ones), which characterizes maximum matchings on cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaxMatchingCycle;

#[derive(Clone, Copy, Debug)]
struct MmCert {
    count: CountingTreeCert,
    unmatched_subtree: u64,
}

fn decode_mm(proof: ProofRef<'_>) -> Option<MmCert> {
    let mut r = BitReader::new(proof);
    let count = CountingTreeCert::decode(&mut r).ok()?;
    let unmatched_subtree = r.read_gamma().ok()?;
    r.is_exhausted().then_some(MmCert {
        count,
        unmatched_subtree,
    })
}

impl Scheme for MaxMatchingCycle {
    type Node = ();
    type Edge = ();

    fn name(&self) -> String {
        "max-matching-cycle".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance) -> bool {
        let g = inst.graph();
        if !is_cycle(g) {
            return false;
        }
        let m = inst.labelled_edges();
        lcp_graph::matching::is_matching(g, &m) && m.len() == g.n() / 2
    }

    fn prove(&self, inst: &Instance) -> Option<Proof> {
        if !self.holds(inst) {
            return None;
        }
        let g = inst.graph();
        let covered: Vec<bool> = g
            .nodes()
            .map(|v| {
                g.neighbors(v)
                    .iter()
                    .any(|&u| inst.edge_label(v, u).is_some())
            })
            .collect();
        let tree = lcp_graph::spanning::bfs_spanning_tree(g, 0);
        let counts = CountingTreeCert::prove(g, &tree);
        // Unmatched-node counters: aggregate up the tree.
        let sizes = tree.subtree_sizes();
        let _ = sizes;
        let mut unmatched = vec![0u64; g.n()];
        let mut order: Vec<usize> = g.nodes().collect();
        order.sort_by_key(|&v| std::cmp::Reverse(tree.depth(v)));
        for v in order {
            unmatched[v] += u64::from(!covered[v]);
            if let Some(p) = tree.parent(v) {
                unmatched[p] += unmatched[v];
            }
        }
        Some(Proof::from_fn(g.n(), |v| {
            let mut w = BitWriter::new();
            counts[v].encode(&mut w);
            w.write_gamma(unmatched[v]);
            w.finish()
        }))
    }

    fn verify(&self, view: &View) -> bool {
        let c = view.center();
        if view.degree(c) != 2 {
            return false;
        }
        // Matching validity at the centre: at most one incident labelled
        // edge.
        let incident = view
            .neighbors(c)
            .iter()
            .filter(|&&u| view.edge_label(c, u).is_some())
            .count();
        if incident > 1 {
            return false;
        }
        let certs = |u: usize| decode_mm(view.proof(u));
        if !CountingTreeCert::verify_at_center(view, |u| certs(u).map(|m| m.count)) {
            return false;
        }
        let mine = certs(c).expect("decoded");
        // Counting equation for the unmatched counter.
        let my_id = view.id(c).0;
        let mut child_sum = 0u64;
        for &u in view.neighbors(c) {
            let Some(cu) = certs(u) else {
                return false;
            };
            if cu.count.tree.parent_id == my_id && cu.count.tree.dist == mine.count.tree.dist + 1 {
                child_sum += cu.unmatched_subtree;
            }
        }
        if mine.unmatched_subtree != u64::from(incident == 0) + child_sum {
            return false;
        }
        // Root decides optimality: unmatched total must be n mod 2.
        if mine.count.tree.dist == 0 && mine.unmatched_subtree != mine.count.n_claim % 2 {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::evaluate;
    use lcp_core::harness::{
        check_completeness, check_soundness_exhaustive, classify_growth, measure_sizes,
        GrowthClass, Soundness,
    };
    use lcp_graph::generators;

    #[test]
    fn parity_schemes_complete() {
        let evens: Vec<Instance> = (2..8)
            .map(|k| Instance::unlabeled(generators::cycle(2 * k)))
            .collect();
        let sizes = check_completeness(
            &EvenCycle,
            &lcp_core::engine::prepare_sweep(&EvenCycle, &evens),
        )
        .unwrap();
        assert!(sizes.iter().all(|&s| s == 1));

        let odds: Vec<Instance> = (1..7)
            .map(|k| Instance::unlabeled(generators::cycle(2 * k + 3)))
            .collect();
        check_completeness(
            &OddCycle,
            &lcp_core::engine::prepare_sweep(&OddCycle, &odds),
        )
        .unwrap();
    }

    #[test]
    fn parity_size_separation() {
        // Even: constant; odd: logarithmic — the Table 1(a) separation.
        let evens: Vec<Instance> = [8usize, 32, 128, 512]
            .iter()
            .map(|&n| Instance::unlabeled(generators::cycle(n)))
            .collect();
        assert_eq!(
            classify_growth(&measure_sizes(
                &EvenCycle,
                &lcp_core::engine::prepare_sweep(&EvenCycle, &evens)
            )),
            GrowthClass::Constant
        );
        let odds: Vec<Instance> = [9usize, 17, 33, 65, 129, 257, 513]
            .iter()
            .map(|&n| Instance::unlabeled(generators::cycle(n)))
            .collect();
        assert_eq!(
            classify_growth(&measure_sizes(
                &OddCycle,
                &lcp_core::engine::prepare_sweep(&OddCycle, &odds)
            )),
            GrowthClass::Logarithmic
        );
    }

    #[test]
    fn odd_cycle_rejects_even_cycles_exhaustively() {
        let inst = Instance::unlabeled(generators::cycle(4));
        let c5 = Instance::unlabeled(generators::cycle(5));
        match check_soundness_exhaustive(&EvenCycle, &lcp_core::engine::prepare(&EvenCycle, &c5), 1)
            .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("C5 certified even by {p:?}"),
        }
        // OddCycle on C4: certificates don't fit in 2 bits, so this mainly
        // smoke-tests the harness; the real lower bound is the §5.3 attack.
        match check_soundness_exhaustive(&OddCycle, &lcp_core::engine::prepare(&OddCycle, &inst), 2)
            .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("C4 certified odd by {p:?}"),
        }
    }

    fn alternating_matching(n: usize) -> Vec<(usize, usize)> {
        (0..n / 2).map(|i| (2 * i, 2 * i + 1)).collect()
    }

    #[test]
    fn maximum_matchings_on_cycles_certified() {
        for n in [6usize, 7, 10, 11] {
            let g = generators::cycle(n);
            let inst = Instance::unlabeled(g).with_edge_set(alternating_matching(n));
            assert!(MaxMatchingCycle.holds(&inst), "n = {n}");
            let proof = MaxMatchingCycle.prove(&inst).unwrap();
            assert!(
                evaluate(&MaxMatchingCycle, &inst, &proof).accepted(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn submaximal_matching_rejected() {
        // C6 with only two matched edges (max is 3).
        let g = generators::cycle(6);
        let inst = Instance::unlabeled(g).with_edge_set([(0, 1), (3, 4)]);
        assert!(!MaxMatchingCycle.holds(&inst));
        assert!(MaxMatchingCycle.prove(&inst).is_none());
        match check_soundness_exhaustive(
            &MaxMatchingCycle,
            &lcp_core::engine::prepare(&MaxMatchingCycle, &inst),
            2,
        )
        .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("submaximal matching certified by {p:?}"),
        }
    }

    #[test]
    fn invalid_matching_rejected_locally() {
        // Two adjacent matched edges share node 1.
        let g = generators::cycle(5);
        let inst = Instance::unlabeled(g).with_edge_set([(0, 1), (1, 2)]);
        assert!(!MaxMatchingCycle.holds(&inst));
        let fake = Proof::empty(5);
        let verdict = evaluate(&MaxMatchingCycle, &inst, &fake);
        assert!(verdict.rejecting().contains(&1));
    }

    #[test]
    fn non_cycles_are_outside_the_family() {
        let inst = Instance::unlabeled(generators::path(5));
        assert!(!EvenCycle.holds(&inst));
        assert!(EvenCycle.prove(&inst).is_none());
        assert!(!OddCycle.holds(&inst));
        // The degree check also fires at verification time.
        let verdict = evaluate(&EvenCycle, &inst, &Proof::empty(5));
        assert!(!verdict.accepted());
    }
}
