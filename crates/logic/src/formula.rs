//! Formula ASTs: local first-order matrices and monadic Σ¹₁ sentences.

/// A first-order formula over graphs with free monadic relation symbols
/// `X₀ … X_{k−1}`, *local around the designated variable `y`*.
///
/// Variable numbering convention (Schwentick–Barthelmann normal form):
///
/// * variable `0` is `x` — the existentially quantified global witness
///   node (may lie outside the local view);
/// * variable `1` is `y` — the node being checked (the view centre);
/// * variables `2, 3, …` are introduced by [`LocalFormula::ExistsNear`] /
///   [`LocalFormula::ForallNear`], which quantify over nodes within a
///   fixed distance of `y`.
///
/// Locality: every quantifier is radius-bounded around `y`, so the whole
/// matrix is determined by the radius-[`LocalFormula::radius_bound`] view
/// of `y`. Atoms mentioning `x` evaluate to *false* when `x` is outside
/// that view — sentences in genuine local normal form never depend on
/// such invisible atoms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LocalFormula {
    /// Constant truth.
    True,
    /// Constant falsehood.
    False,
    /// `adj(vᵢ, vⱼ)` — the two bound nodes are adjacent.
    Adj(usize, usize),
    /// `vᵢ = vⱼ`.
    Eq(usize, usize),
    /// `X_r(vᵢ)` — node `vᵢ` is in relation `r`.
    InSet(usize, usize),
    /// Negation.
    Not(Box<LocalFormula>),
    /// Finite conjunction (empty = true).
    And(Vec<LocalFormula>),
    /// Finite disjunction (empty = false).
    Or(Vec<LocalFormula>),
    /// `∃z (dist(z, y) ≤ radius ∧ body)`; `z` gets the next variable index.
    ExistsNear {
        /// Distance bound from `y`.
        radius: usize,
        /// Body with one more bound variable.
        body: Box<LocalFormula>,
    },
    /// `∀z (dist(z, y) ≤ radius → body)`; `z` gets the next variable index.
    ForallNear {
        /// Distance bound from `y`.
        radius: usize,
        /// Body with one more bound variable.
        body: Box<LocalFormula>,
    },
}

impl LocalFormula {
    /// Convenience: `¬self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> LocalFormula {
        LocalFormula::Not(Box::new(self))
    }

    /// The smallest view radius around `y` that determines the formula:
    /// the maximum quantifier depth-sum plus 1 (atoms `adj` reach one step
    /// beyond their deepest variable).
    pub fn radius_bound(&self) -> usize {
        match self {
            LocalFormula::True | LocalFormula::False => 0,
            LocalFormula::Adj(_, _) => 1,
            LocalFormula::Eq(_, _) | LocalFormula::InSet(_, _) => 0,
            LocalFormula::Not(f) => f.radius_bound(),
            LocalFormula::And(fs) | LocalFormula::Or(fs) => {
                fs.iter().map(LocalFormula::radius_bound).max().unwrap_or(0)
            }
            LocalFormula::ExistsNear { radius, body }
            | LocalFormula::ForallNear { radius, body } => radius + body.radius_bound(),
        }
    }

    /// Number of bound variables the formula expects *beyond* `x` and `y`
    /// at top level (0 when used as a Σ¹₁ matrix).
    pub fn max_relation(&self) -> Option<usize> {
        match self {
            LocalFormula::InSet(_, r) => Some(*r),
            LocalFormula::Not(f) => f.max_relation(),
            LocalFormula::And(fs) | LocalFormula::Or(fs) => {
                fs.iter().filter_map(LocalFormula::max_relation).max()
            }
            LocalFormula::ExistsNear { body, .. } | LocalFormula::ForallNear { body, .. } => {
                body.max_relation()
            }
            _ => None,
        }
    }
}

/// A monadic Σ¹₁ sentence in local normal form:
/// `∃X₀ … ∃X_{k−1} ∃x ∀y : matrix(X₀, …, X_{k−1}, x, y)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sigma11 {
    /// Human-readable name (used by harness reports).
    pub name: String,
    /// Number `k` of existential monadic relations.
    pub relations: usize,
    /// The first-order matrix `φ`, local around `y`.
    pub matrix: LocalFormula,
}

impl Sigma11 {
    /// Builds a sentence, validating that the matrix does not mention
    /// relations beyond `relations`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix references relation `X_r` with `r ≥ relations`.
    pub fn new(name: impl Into<String>, relations: usize, matrix: LocalFormula) -> Self {
        if let Some(max) = matrix.max_relation() {
            assert!(
                max < relations,
                "matrix references X_{max} but only {relations} relations are quantified"
            );
        }
        Sigma11 {
            name: name.into(),
            relations,
            matrix,
        }
    }

    /// View radius a verifier needs to evaluate the matrix at `y`.
    pub fn verifier_radius(&self) -> usize {
        // +1: the evaluation also needs y's incident edges for Adj(0/1, ·)
        // atoms and the spanning-tree certificate check.
        self.matrix.radius_bound().max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_bound_composes() {
        use LocalFormula::*;
        assert_eq!(True.radius_bound(), 0);
        assert_eq!(Adj(0, 1).radius_bound(), 1);
        let f = ExistsNear {
            radius: 2,
            body: Box::new(Adj(1, 2)),
        };
        assert_eq!(f.radius_bound(), 3);
        let nested = ForallNear {
            radius: 1,
            body: Box::new(ExistsNear {
                radius: 1,
                body: Box::new(Eq(2, 3)),
            }),
        };
        assert_eq!(nested.radius_bound(), 2);
    }

    #[test]
    fn max_relation_found() {
        use LocalFormula::*;
        let f = And(vec![InSet(1, 0), Or(vec![InSet(1, 2)])]);
        assert_eq!(f.max_relation(), Some(2));
        assert_eq!(True.max_relation(), None);
    }

    #[test]
    #[should_panic(expected = "matrix references X_2")]
    fn sentence_validates_relation_count() {
        let _ = Sigma11::new("bad", 2, LocalFormula::InSet(1, 2));
    }

    #[test]
    fn verifier_radius_at_least_one() {
        let s = Sigma11::new("triv", 0, LocalFormula::True);
        assert_eq!(s.verifier_radius(), 1);
    }
}
