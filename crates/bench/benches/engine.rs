//! Cached engine vs naive per-proof `View::extract`, and the batched
//! block odometer vs both: the comparisons that justify
//! `lcp_core::engine` and `lcp_core::batch`.
//!
//! Workload (the acceptance workload for the engine): exhaustive
//! soundness of the `Θ(log n)` non-bipartiteness scheme on the cycle
//! `C₈` (a no-instance: `χ(C₈) = 2`) over **every** proof of ≤ 2 bits
//! per node — `7⁸ = 5 764 801` candidate proofs.
//!
//! * `naive` re-extracts all 8 views (BFS + allocation) for every
//!   candidate — the pre-engine behaviour, reproduced locally below;
//! * `engine` binds the 8 cached skeletons once and then re-binds only
//!   the odometer-changed node, re-running only the ≤ 3 affected
//!   verifiers per candidate (`BatchPolicy::Scalar`);
//! * `batch` enumerates 49 candidates per block (`7² ≤ 64`) through
//!   the block odometer's per-owner mask tables, deciding a whole
//!   block with a handful of `u64` ANDs (`BatchPolicy::Auto`, the
//!   library default).
//!
//! Besides the criterion timings, the bench prints the measured
//! speedups and records a machine-readable snapshot in
//! `BENCH_engine.json` (see README § Benchmarks) with both the `engine`
//! and `batch` series. Run with `-- --test` for a smoke pass on a
//! reduced workload.

use criterion::{criterion_group, criterion_main, Criterion};
use lcp_core::engine::prepare;
use lcp_core::harness::{all_bitstrings_up_to, check_soundness_exhaustive_policy, Soundness};
use lcp_core::{evaluate, BatchPolicy, Deadline, Instance, Proof, Scheme};
use lcp_graph::generators;
use lcp_schemes::chromatic::NonBipartite;
use std::hint::black_box;
use std::time::Instant;

/// The pre-engine exhaustive check: one full `Proof` materialization and
/// one `View::extract`-per-node sweep for every candidate.
fn naive_exhaustive<S: Scheme>(
    scheme: &S,
    inst: &Instance<S::Node, S::Edge>,
    max_bits: usize,
) -> Soundness {
    let n = inst.n();
    let strings = all_bitstrings_up_to(max_bits).expect("bench workloads stay in budget");
    let mut indices = vec![0usize; n];
    let mut tried = 0u64;
    loop {
        let proof = Proof::from_strings(indices.iter().map(|&i| strings[i].clone()).collect());
        tried += 1;
        if evaluate(scheme, inst, &proof).accepted() {
            return Soundness::Violated(proof);
        }
        let mut pos = 0;
        loop {
            if pos == n {
                return Soundness::Holds(tried);
            }
            indices[pos] += 1;
            if indices[pos] < strings.len() {
                break;
            }
            indices[pos] = 0;
            pos += 1;
        }
    }
}

/// One cached-engine exhaustive run under an explicit batch policy.
fn engine_exhaustive(inst: &Instance, max_bits: usize, policy: BatchPolicy) -> Soundness {
    let prep = prepare(&NonBipartite, inst);
    check_soundness_exhaustive_policy(&NonBipartite, &prep, max_bits, &Deadline::none(), policy)
        .unwrap()
}

fn workload(c: &Criterion) -> (usize, usize) {
    // Smoke mode exercises the same code on a workload that finishes in
    // milliseconds; the real comparison is n = 8, max_bits = 2.
    if c.is_test_mode() {
        (8, 1)
    } else {
        (8, 2)
    }
}

fn bench_exhaustive(c: &mut Criterion) {
    let (n, max_bits) = workload(c);
    let inst = Instance::unlabeled(generators::cycle(n));
    let mut group = c.benchmark_group(format!("exhaustive-c{n}-b{max_bits}"));
    group.sample_size(1);
    group.bench_function("batch", |b| {
        b.iter(|| engine_exhaustive(black_box(&inst), max_bits, BatchPolicy::Auto))
    });
    group.bench_function("engine", |b| {
        b.iter(|| engine_exhaustive(black_box(&inst), max_bits, BatchPolicy::Scalar))
    });
    group.bench_function("naive", |b| {
        b.iter(|| naive_exhaustive(&NonBipartite, black_box(&inst), max_bits))
    });
    group.finish();
}

fn bench_speedup_snapshot(c: &mut Criterion) {
    // Honour name filters even though this stage times work directly
    // (e.g. `cargo bench --bench engine -- naive` skips the snapshot).
    if !c.filter_matches("speedup-snapshot") {
        return;
    }
    let (n, max_bits) = workload(c);
    let inst = Instance::unlabeled(generators::cycle(n));

    // The engine and batch sides finish in well under a second, so a
    // single sample is at the mercy of scheduler noise — CI diffs these
    // numbers, so take the best of three (the naive side runs tens of
    // seconds and is comparatively stable; one sample suffices).
    let reps = if c.is_test_mode() { 1 } else { 3 };
    let timed = |policy: BatchPolicy| {
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..reps {
            let t = Instant::now();
            let out = engine_exhaustive(&inst, max_bits, policy);
            best = best.min(t.elapsed().as_secs_f64());
            result = Some(out);
        }
        (best, result.expect("at least one run"))
    };
    let (engine_s, engine_result) = timed(BatchPolicy::Scalar);
    let (batch_s, batch_result) = timed(BatchPolicy::Auto);

    let t = Instant::now();
    let naive_result = naive_exhaustive(&NonBipartite, &inst, max_bits);
    let naive_s = t.elapsed().as_secs_f64();

    assert_eq!(engine_result, naive_result, "executors must agree");
    assert_eq!(batch_result, naive_result, "batched executor must agree");
    let speedup = naive_s / engine_s;
    let batch_speedup = naive_s / batch_s;
    let Soundness::Holds(tried) = engine_result else {
        panic!("C{n} must be sound for chromatic>2");
    };
    println!(
        "engine-vs-naive: {tried} proofs on C{n} (max_bits = {max_bits}): \
         naive {naive_s:.3}s, engine {engine_s:.3}s ({speedup:.1}x), \
         batch {batch_s:.3}s ({batch_speedup:.1}x, {:.1}x over engine)",
        engine_s / batch_s
    );
    if !c.is_test_mode() {
        let json = format!(
            "{{\n  \"bench\": \"engine-vs-naive-exhaustive\",\n  \"graph\": \"cycle\",\n  \
             \"n\": {n},\n  \"max_bits\": {max_bits},\n  \"proofs\": {tried},\n  \
             \"naive_seconds\": {naive_s:.4},\n  \"engine_seconds\": {engine_s:.4},\n  \
             \"speedup\": {speedup:.2},\n  \"batch_seconds\": {batch_s:.4},\n  \
             \"batch_speedup\": {batch_speedup:.2}\n}}\n"
        );
        // Default to an untracked location so casual bench runs don't
        // dirty the committed reference snapshot; opt in to refreshing
        // the tracked BENCH_engine.json with LCP_BENCH_SNAPSHOT=1.
        // Paths are anchored to the workspace root regardless of the
        // bench binary's working directory.
        let path = if std::env::var_os("LCP_BENCH_SNAPSHOT").is_some_and(|v| v == "1") {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json")
        } else {
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../target/BENCH_engine.json"
            )
        };
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("could not write {path}: {e}");
        } else {
            println!("snapshot written to {path}");
        }
    }
}

criterion_group!(benches, bench_exhaustive, bench_speedup_snapshot);
criterion_main!(benches);
