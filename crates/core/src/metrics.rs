//! The engine/harness/batch metric catalog (see `docs/OBSERVABILITY.md`).
//!
//! Every metric is a `static` from [`lcp_obs`], incremented behind
//! cheap relaxed atomics — hot loops accumulate in locals and flush one
//! `add` at their exit, so the per-candidate steady state stays exactly
//! as allocation- and contention-free as before instrumentation
//! (`tests/alloc_probe.rs` pins this). Nothing in the engine ever
//! *reads* a metric: observability is write-only and cannot perturb
//! verdicts, RNG streams, or report bytes.
//!
//! [`register`] publishes the catalog into a [`lcp_obs::Registry`]
//! (idempotently); exporters call it before rendering.

use lcp_obs::{Counter, Histogram, Registry};

/// `PreparedInstance` skeleton builds (one per `(instance, radius)`).
pub static PREPARES: Counter = Counter::new();
/// Wall time of each skeleton build, nanoseconds.
pub static PREPARE_NS: Histogram = Histogram::new();
/// Whole-instance verifier sweeps (`evaluate` / `evaluate_seq`).
pub static EVALUATE_SWEEPS: Counter = Counter::new();
/// Wall time of each whole-instance sweep, nanoseconds.
pub static EVALUATE_NS: Histogram = Histogram::new();
/// View bindings performed by the sweeps and search loops (aggregated
/// at loop exits, never per candidate).
pub static BINDS: Counter = Counter::new();

/// `SkeletonCache` lookups that reused a cached CSR build.
pub static SKELETON_CACHE_HITS: Counter = Counter::new();
/// `SkeletonCache` lookups that built (and inserted) a fresh skeleton.
pub static SKELETON_CACHE_MISSES: Counter = Counter::new();

/// Frozen cores served from on-disk artifact files (mmap or read).
pub static ARTIFACT_LOADS: Counter = Counter::new();
/// Frozen cores rendered and persisted as artifact files.
pub static ARTIFACT_WRITES: Counter = Counter::new();
/// Artifact files rejected by validation (corrupt, truncated, version-
/// or fingerprint-skewed) and rebuilt from scratch.
pub static ARTIFACT_REJECTS: Counter = Counter::new();

/// Candidate proofs enumerated by the exhaustive odometers (scalar and
/// block), counted at search exit.
pub static EXHAUSTIVE_CANDIDATES: Counter = Counter::new();
/// Bit-flip iterations executed by the adversarial searches, counted at
/// search exit.
pub static ADVERSARIAL_STEPS: Counter = Counter::new();
/// `OutputMemo` lookups answered from the memo table.
pub static MEMO_HITS: Counter = Counter::new();
/// `OutputMemo` lookups that ran the verifier and filled a slot.
pub static MEMO_MISSES: Counter = Counter::new();

/// Exhaustive searches routed through the 64-lane block odometer.
pub static EXHAUSTIVE_BATCHED: Counter = Counter::new();
/// Exhaustive searches that ran the scalar odometer (policy `Scalar`,
/// feature off, or a shape the block layout declined).
pub static EXHAUSTIVE_SCALAR: Counter = Counter::new();
/// Adversarial searches routed through the chunked 64-lane path.
pub static ADVERSARIAL_BATCHED: Counter = Counter::new();
/// Adversarial searches that ran the scalar bit-flip loop.
pub static ADVERSARIAL_SCALAR: Counter = Counter::new();
/// Block-odometer mask-table slots filled by one `verify_batch` kernel
/// call.
pub static MASK_FILLS_KERNEL: Counter = Counter::new();
/// Block-odometer mask-table slots filled by spread scalar verifier
/// calls (kernel-free schemes).
pub static MASK_FILLS_SCALAR: Counter = Counter::new();

/// Bounded-deadline wall-clock checks actually performed (the strided
/// `expired()` reads; unbounded tokens never count).
pub static DEADLINE_POLLS: Counter = Counter::new();
/// Deadlines observed expired (once per token, however often it is
/// re-polled afterwards).
pub static DEADLINE_EXPIRATIONS: Counter = Counter::new();

/// Registers the whole core catalog into `reg` (idempotent).
pub fn register(reg: &Registry) {
    reg.counter(
        "lcp_engine_prepares_total",
        "",
        "PreparedInstance skeleton builds",
        &PREPARES,
    );
    reg.histogram(
        "lcp_engine_prepare_ns",
        "",
        "skeleton build wall time in nanoseconds",
        &PREPARE_NS,
    );
    reg.counter(
        "lcp_engine_evaluate_sweeps_total",
        "",
        "whole-instance verifier sweeps",
        &EVALUATE_SWEEPS,
    );
    reg.histogram(
        "lcp_engine_evaluate_ns",
        "",
        "whole-instance sweep wall time in nanoseconds",
        &EVALUATE_NS,
    );
    reg.counter(
        "lcp_engine_binds_total",
        "",
        "view bindings, aggregated at loop exits",
        &BINDS,
    );
    reg.counter(
        "lcp_engine_skeleton_cache_total",
        "outcome=\"hit\"",
        "SkeletonCache lookups by outcome",
        &SKELETON_CACHE_HITS,
    );
    reg.counter(
        "lcp_engine_skeleton_cache_total",
        "outcome=\"miss\"",
        "SkeletonCache lookups by outcome",
        &SKELETON_CACHE_MISSES,
    );
    reg.counter(
        "lcp_engine_artifact_loads_total",
        "",
        "frozen cores served from on-disk artifact files",
        &ARTIFACT_LOADS,
    );
    reg.counter(
        "lcp_engine_artifact_writes_total",
        "",
        "frozen cores persisted as artifact files",
        &ARTIFACT_WRITES,
    );
    reg.counter(
        "lcp_engine_artifact_rejects_total",
        "",
        "artifact files rejected by validation and rebuilt",
        &ARTIFACT_REJECTS,
    );
    reg.counter(
        "lcp_harness_exhaustive_candidates_total",
        "",
        "candidate proofs enumerated by the exhaustive searches",
        &EXHAUSTIVE_CANDIDATES,
    );
    reg.counter(
        "lcp_harness_adversarial_steps_total",
        "",
        "bit-flip iterations executed by the adversarial searches",
        &ADVERSARIAL_STEPS,
    );
    reg.counter(
        "lcp_harness_memo_total",
        "outcome=\"hit\"",
        "OutputMemo lookups by outcome",
        &MEMO_HITS,
    );
    reg.counter(
        "lcp_harness_memo_total",
        "outcome=\"miss\"",
        "OutputMemo lookups by outcome",
        &MEMO_MISSES,
    );
    reg.counter(
        "lcp_batch_exhaustive_routed_total",
        "path=\"batched\"",
        "exhaustive searches by routing decision",
        &EXHAUSTIVE_BATCHED,
    );
    reg.counter(
        "lcp_batch_exhaustive_routed_total",
        "path=\"scalar\"",
        "exhaustive searches by routing decision",
        &EXHAUSTIVE_SCALAR,
    );
    reg.counter(
        "lcp_batch_adversarial_routed_total",
        "path=\"batched\"",
        "adversarial searches by routing decision",
        &ADVERSARIAL_BATCHED,
    );
    reg.counter(
        "lcp_batch_adversarial_routed_total",
        "path=\"scalar\"",
        "adversarial searches by routing decision",
        &ADVERSARIAL_SCALAR,
    );
    reg.counter(
        "lcp_batch_mask_fills_total",
        "path=\"kernel\"",
        "block-odometer mask-table fills by path",
        &MASK_FILLS_KERNEL,
    );
    reg.counter(
        "lcp_batch_mask_fills_total",
        "path=\"scalar\"",
        "block-odometer mask-table fills by path",
        &MASK_FILLS_SCALAR,
    );
    reg.counter(
        "lcp_deadline_polls_total",
        "",
        "bounded-deadline wall-clock checks performed",
        &DEADLINE_POLLS,
    );
    reg.counter(
        "lcp_deadline_expirations_total",
        "",
        "deadline tokens observed expired (once per token)",
        &DEADLINE_EXPIRATIONS,
    );
}
