use std::fmt;

/// A node identifier in the LCP model.
///
/// The paper assumes `V(G) ⊆ {1, 2, …, poly(n(G))}`, i.e. identifiers are
/// small natural numbers with `O(log n)` bits (§2). Identifiers are *not*
/// internal indices: a graph on `n` nodes may carry identifiers far larger
/// than `n`, and algorithms must behave identically under identifier
/// re-assignment (graph properties are closed under re-assignment, §2.2).
///
/// ```
/// use lcp_graph::NodeId;
///
/// let v = NodeId(42);
/// assert_eq!(v.bits(), 6);
/// assert_eq!(format!("{v}"), "42");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)] // `&[u64]` ↔ `&[NodeId]` reinterpretation (frozen artifacts)
pub struct NodeId(pub u64);

impl NodeId {
    /// Number of bits needed to write this identifier in binary.
    ///
    /// Used when measuring proof sizes: schemes that embed identifiers in
    /// proofs pay `bits()` bits for them, which is `O(log n)` under the
    /// model's identifier-size assumption.
    ///
    /// `NodeId(0)` is defined to take 1 bit.
    pub fn bits(self) -> u32 {
        u64::max(self.0, 1).ilog2() + 1
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u64 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_of_small_ids() {
        assert_eq!(NodeId(0).bits(), 1);
        assert_eq!(NodeId(1).bits(), 1);
        assert_eq!(NodeId(2).bits(), 2);
        assert_eq!(NodeId(3).bits(), 2);
        assert_eq!(NodeId(4).bits(), 3);
        assert_eq!(NodeId(255).bits(), 8);
        assert_eq!(NodeId(256).bits(), 9);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(3) < NodeId(10));
        assert_eq!(NodeId::from(7u64), NodeId(7));
        assert_eq!(u64::from(NodeId(7)), 7);
    }

    #[test]
    fn display_is_raw_number() {
        assert_eq!(NodeId(123).to_string(), "123");
    }
}
