//! Certified leader election in a mesh network (§5.1, Table 1(b)).
//!
//! A network elects a leader and attaches a spanning-tree certificate of
//! `Θ(log n)` bits per node. The verifier then runs as a *1-round
//! distributed algorithm* (via the LOCAL-model simulator), and any
//! attempt to smuggle in a second leader is detected.
//!
//! ```sh
//! cargo run --example leader_election
//! ```

use lcp::core::{Instance, Scheme};
use lcp::graph::generators;
use lcp::schemes::leader::LeaderElection;
use lcp::sim::run_distributed;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let g = generators::random_connected(40, 25, &mut rng);
    let n = g.n();

    // The network elects node 17 (say, by smallest identifier rule).
    let labels: Vec<bool> = (0..n).map(|v| v == 17).collect();
    let inst = Instance::with_node_data(g, labels);

    let proof = LeaderElection.prove(&inst).expect("one leader, connected");
    println!(
        "n = {n}, certificate size = {} bits per node (≈ log n + tree fields)",
        proof.size()
    );

    // Run the verifier as a real message-passing protocol.
    let (verdict, stats) = run_distributed(&LeaderElection, &inst, &proof);
    println!(
        "distributed run: {} rounds, {} messages, accepted = {}",
        stats.rounds,
        stats.messages,
        verdict.accepted()
    );
    assert!(verdict.accepted());

    // A byzantine node declares itself a second leader (input corruption).
    let mut labels2: Vec<bool> = (0..n).map(|v| v == 17).collect();
    labels2[3] = true;
    let two_leaders = Instance::with_node_data(inst.graph().clone(), labels2);
    let (verdict, _) = run_distributed(&LeaderElection, &two_leaders, &proof);
    println!(
        "two-leader network rejected by nodes {:?}",
        verdict.rejecting()
    );
    assert!(!verdict.accepted());

    // The certificate also cannot be re-rooted: tamper the proof instead.
    let mut forged = proof.clone();
    forged.set(3, proof.get(17));
    let (verdict, _) = run_distributed(&LeaderElection, &inst, &forged);
    println!(
        "re-rooted certificate rejected by nodes {:?}",
        verdict.rejecting()
    );
    assert!(!verdict.accepted());
}
