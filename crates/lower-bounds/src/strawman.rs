//! Honest-but-undersized schemes for the attacks to break.
//!
//! Each strawman is *complete* (yes-instances get accepted proofs) and
//! enforces real local consistency — it is the best one can do at its
//! proof size, and exactly the kind of scheme the paper's lower bounds
//! rule out. The attacks in this crate break them; the genuine
//! `Θ(log n)` / `Θ(n)` / `Θ(n²)` schemes of `lcp-schemes` survive the
//! same attacks.

use lcp_core::{BitReader, BitString, BitWriter, Instance, Proof, Scheme, View};
use lcp_graph::Graph;

/// A 1-bit leader-election scheme: the proof is the parity of the
/// distance to the leader along the cycle.
///
/// Local rule: non-leaders must have no same-parity neighbour; the leader
/// absorbs the parity defect (one same-parity neighbour on odd cycles,
/// two on even ones). On a *single* cycle with two leaders of odd length
/// this is even sound — but it cannot count leaders globally, and the
/// §5.3 gluing of two single-leader cycles produces a two-leader cycle
/// that every node accepts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParityLeader;

impl Scheme for ParityLeader {
    type Node = bool;
    type Edge = ();

    fn name(&self) -> String {
        "strawman:parity-leader".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance<bool>) -> bool {
        let g = inst.graph();
        g.n() >= 3
            && g.nodes().all(|u| g.degree(u) == 2)
            && lcp_graph::traversal::is_connected(g)
            && inst.node_labels().iter().filter(|&&l| l).count() == 1
    }

    fn prove(&self, inst: &Instance<bool>) -> Option<Proof> {
        if !self.holds(inst) {
            return None;
        }
        let g = inst.graph();
        let leader = inst
            .node_labels()
            .iter()
            .position(|&l| l)
            .expect("holds() checked");
        // Walk the cycle in one orientation starting at the leader; the
        // proof bit is a parity along that walk, arranged so every
        // same-parity ("defect") edge is incident to the leader: on odd
        // cycles the wrap edge, on even cycles both leader edges.
        let mut order = vec![leader];
        let mut prev = leader;
        let mut cur = g.neighbors(leader)[0];
        while cur != leader {
            order.push(cur);
            let next = *g
                .neighbors(cur)
                .iter()
                .find(|&&w| w != prev)
                .expect("degree 2");
            prev = cur;
            cur = next;
        }
        let n = g.n();
        let mut parity = vec![false; n];
        for (i, &v) in order.iter().enumerate() {
            parity[v] = if n % 2 == 1 {
                i % 2 == 1
            } else {
                i > 0 && (i - 1) % 2 == 1
            };
        }
        Some(Proof::from_fn(n, |v| BitString::from_bits([parity[v]])))
    }

    fn verify(&self, view: &View<bool>) -> bool {
        let c = view.center();
        if view.degree(c) != 2 {
            return false;
        }
        let Some(mine) = view.proof(c).first() else {
            return false;
        };
        let same_parity: Vec<usize> = view
            .neighbors(c)
            .iter()
            .copied()
            .filter(|&u| view.proof(u).first() == Some(mine))
            .collect();
        if *view.node_label(c) {
            // The leader absorbs the parity defect.
            !same_parity.is_empty()
        } else {
            // Non-leaders may share parity only with a leader.
            same_parity.iter().all(|&u| *view.node_label(u))
        }
    }
}

/// The universal `O(n²)` scheme truncated to a byte budget: the honest
/// encoding is cut to `budget` bits.
///
/// The verifier still demands exact neighbour agreement on the string and
/// — when the string parses as a complete encoding — performs the full
/// row-and-decide check. Beyond the budget it can only check agreement,
/// which is precisely the regime where the §6.1 pigeonhole finds two
/// graph families sharing a window and splices them.
pub struct TruncatedUniversal<F> {
    /// Maximum proof bits per node.
    pub budget: usize,
    name: String,
    decide: F,
}

impl<F> TruncatedUniversal<F>
where
    F: Fn(&Graph) -> bool,
{
    /// Builds the truncated scheme for a property decided by `decide`.
    pub fn new(name: impl Into<String>, budget: usize, decide: F) -> Self {
        TruncatedUniversal {
            budget,
            name: name.into(),
            decide,
        }
    }

    fn encode(&self, g: &Graph) -> BitString {
        // Same layout as the real universal scheme: γ(n), sorted γ(ids),
        // then the adjacency upper triangle — truncated to the budget.
        let mut ids: Vec<_> = g.ids().to_vec();
        ids.sort_unstable();
        let pos: std::collections::HashMap<_, usize> =
            ids.iter().enumerate().map(|(i, &d)| (d, i)).collect();
        let n = g.n();
        let mut w = BitWriter::new();
        w.write_gamma(n as u64);
        for &id in &ids {
            w.write_gamma(id.0);
        }
        let mut matrix = vec![false; n * n];
        for (u, v) in g.edges() {
            let (i, j) = (pos[&g.id(u)], pos[&g.id(v)]);
            matrix[i * n + j] = true;
            matrix[j * n + i] = true;
        }
        for i in 0..n {
            for j in (i + 1)..n {
                w.write_bit(matrix[i * n + j]);
            }
        }
        let full = w.finish();
        BitString::from_bits(full.iter().take(self.budget))
    }
}

impl<F> Scheme for TruncatedUniversal<F>
where
    F: Fn(&Graph) -> bool,
{
    type Node = ();
    type Edge = ();

    fn name(&self) -> String {
        format!(
            "strawman:truncated-universal[{}b]:{}",
            self.budget, self.name
        )
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance) -> bool {
        inst.n() > 0
            && lcp_graph::traversal::is_connected(inst.graph())
            && (self.decide)(inst.graph())
    }

    fn prove(&self, inst: &Instance) -> Option<Proof> {
        if !self.holds(inst) {
            return None;
        }
        let enc = self.encode(inst.graph());
        Some(Proof::from_fn(inst.n(), |_| enc.clone()))
    }

    fn verify(&self, view: &View) -> bool {
        let c = view.center();
        let mine = view.proof(c);
        if mine.len() > self.budget {
            return false;
        }
        if view.neighbors(c).iter().any(|&u| view.proof(u) != mine) {
            return false;
        }
        // Attempt a full decode; if the encoding is complete, be strict.
        if let Some(decoded) = decode_full(mine) {
            let Some(me) = decoded.index_of(view.id(c)) else {
                return false;
            };
            let mut claimed: Vec<_> = decoded
                .neighbors(me)
                .iter()
                .map(|&u| decoded.id(u))
                .collect();
            claimed.sort_unstable();
            let mut actual: Vec<_> = view.neighbors(c).iter().map(|&u| view.id(u)).collect();
            actual.sort_unstable();
            return claimed == actual && (self.decide)(&decoded);
        }
        // Truncated: agreement is all we can check.
        true
    }
}

fn decode_full(s: lcp_core::ProofRef<'_>) -> Option<Graph> {
    let mut r = BitReader::new(s);
    let n = r.read_gamma().ok()? as usize;
    if n > 10_000 {
        return None;
    }
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(lcp_graph::NodeId(r.read_gamma().ok()?));
    }
    if !ids.windows(2).all(|w| w[0] < w[1]) {
        return None;
    }
    let mut g = Graph::from_ids(ids).ok()?;
    for i in 0..n {
        for j in (i + 1)..n {
            if r.read_bit().ok()? {
                g.add_edge(i, j).ok()?;
            }
        }
    }
    r.is_exhausted().then_some(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::evaluate;
    use lcp_core::harness::check_completeness;
    use lcp_graph::generators;

    fn leader_cycle(n: usize, leader: usize) -> Instance<bool> {
        let g = generators::cycle(n);
        Instance::with_node_data(g, (0..n).map(|v| v == leader).collect())
    }

    #[test]
    fn parity_leader_is_complete_on_cycles() {
        let instances: Vec<Instance<bool>> = (5..12).map(|n| leader_cycle(n, n / 3)).collect();
        let sizes = check_completeness(
            &ParityLeader,
            &lcp_core::engine::prepare_sweep(&ParityLeader, &instances),
        )
        .unwrap();
        assert!(sizes.iter().all(|&s| s == 1), "O(1) bits");
    }

    #[test]
    fn parity_leader_rejects_leaderless_odd_cycles() {
        // With no leader there is nowhere to park the parity defect that
        // an odd cycle forces, so every proof fails somewhere.
        let g = generators::cycle(7);
        let inst = Instance::with_node_data(g, vec![false; 7]);
        assert!(!ParityLeader.holds(&inst));
        use lcp_core::harness::{check_soundness_exhaustive, Soundness};
        match check_soundness_exhaustive(
            &ParityLeader,
            &lcp_core::engine::prepare(&ParityLeader, &inst),
            1,
        )
        .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("leaderless C7 certified by {p:?}"),
        }
    }

    #[test]
    fn truncated_universal_is_complete() {
        let scheme = TruncatedUniversal::new("symmetric", 64, lcp_graph::iso::is_symmetric);
        let instances: Vec<Instance> = vec![
            Instance::unlabeled(generators::cycle(6)),
            Instance::unlabeled(generators::complete(4)),
            Instance::unlabeled(generators::star(3)),
        ];
        check_completeness(
            &scheme,
            &lcp_core::engine::prepare_sweep(&scheme, &instances),
        )
        .unwrap();
    }

    #[test]
    fn truncated_universal_is_strict_below_budget() {
        // With a large budget it behaves exactly like the real scheme.
        let scheme = TruncatedUniversal::new("symmetric", 4096, lcp_graph::iso::is_symmetric);
        // Asymmetric spider: no proof should work (encoding decodes fully).
        let mut g = Graph::with_contiguous_ids(7);
        for (u, v) in [(0, 1), (0, 2), (2, 3), (0, 4), (4, 5), (5, 6)] {
            g.add_edge(u, v).unwrap();
        }
        let inst = Instance::unlabeled(g);
        assert!(!scheme.holds(&inst));
        // The honest encoding of the instance itself decodes and decide()
        // fails, so even the "best" forged agreement string is rejected
        // if complete; a truncated-looking string is the only hope, and
        // that is exactly what the join attack exploits at scale.
        let enc = scheme.encode(inst.graph());
        let proof = Proof::from_fn(7, |_| enc.clone());
        assert!(!evaluate(&scheme, &inst, &proof).accepted());
    }
}
