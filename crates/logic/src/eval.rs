//! Evaluation of local formulas, both on full graphs (ground truth) and
//! on extracted views (what the verifier does).

use crate::formula::LocalFormula;
use lcp_core::View;
use lcp_graph::{traversal, Graph};

/// Variable environment: `env[0] = x` (possibly invisible), `env[1] = y`,
/// then bound variables. `None` means "outside the local view".
type Env = Vec<Option<usize>>;

fn eval_rec<F, D, Q>(
    f: &LocalFormula,
    env: &mut Env,
    adj: &impl Fn(usize, usize) -> bool,
    rel: &F,
    dist_from_y: &D,
    domain: &Q,
) -> bool
where
    F: Fn(usize, usize) -> bool,
    D: Fn(usize) -> Option<usize>,
    Q: Fn() -> Vec<usize>,
{
    match f {
        LocalFormula::True => true,
        LocalFormula::False => false,
        LocalFormula::Adj(i, j) => match (env[*i], env[*j]) {
            (Some(u), Some(w)) => u != w && adj(u, w),
            _ => false,
        },
        LocalFormula::Eq(i, j) => {
            if i == j {
                return true;
            }
            match (env[*i], env[*j]) {
                (Some(u), Some(w)) => u == w,
                _ => false,
            }
        }
        LocalFormula::InSet(i, r) => env[*i].is_some_and(|u| rel(u, *r)),
        LocalFormula::Not(g) => !eval_rec(g, env, adj, rel, dist_from_y, domain),
        LocalFormula::And(fs) => fs
            .iter()
            .all(|g| eval_rec(g, env, adj, rel, dist_from_y, domain)),
        LocalFormula::Or(fs) => fs
            .iter()
            .any(|g| eval_rec(g, env, adj, rel, dist_from_y, domain)),
        LocalFormula::ExistsNear { radius, body } => {
            let nodes = domain();
            nodes.iter().any(|&z| {
                if dist_from_y(z).is_none_or(|d| d > *radius) {
                    return false;
                }
                env.push(Some(z));
                let ok = eval_rec(body, env, adj, rel, dist_from_y, domain);
                env.pop();
                ok
            })
        }
        LocalFormula::ForallNear { radius, body } => {
            let nodes = domain();
            nodes.iter().all(|&z| {
                if dist_from_y(z).is_none_or(|d| d > *radius) {
                    return true;
                }
                env.push(Some(z));
                let ok = eval_rec(body, env, adj, rel, dist_from_y, domain);
                env.pop();
                ok
            })
        }
    }
}

/// Evaluates a matrix at one view, with `y :=` the view centre.
///
/// `x` is the view index of the global witness if visible, `None`
/// otherwise; `relations(u, r)` answers `X_r(u)` for view nodes.
pub fn evaluate_at<N, E, F>(
    matrix: &LocalFormula,
    view: &View<N, E>,
    x: Option<usize>,
    relations: F,
) -> bool
where
    F: Fn(usize, usize) -> bool,
{
    let mut env: Env = vec![x, Some(view.center())];
    let nodes: Vec<usize> = view.nodes().collect();
    eval_rec(
        matrix,
        &mut env,
        &|u, w| view.has_edge(u, w),
        &relations,
        &|u| Some(view.dist(u)),
        &|| nodes.clone(),
    )
}

/// Ground truth: evaluates `∀y : matrix(X, x, y)` on a whole graph with
/// explicit relations (`relations[r][v]`) and witness node `x`.
pub fn evaluate_global(
    matrix: &LocalFormula,
    g: &Graph,
    x: usize,
    relations: &[Vec<bool>],
) -> bool {
    let nodes: Vec<usize> = g.nodes().collect();
    g.nodes().all(|y| {
        let dist = traversal::bfs_distances(g, y);
        let mut env: Env = vec![Some(x), Some(y)];
        eval_rec(
            matrix,
            &mut env,
            &|u, w| g.has_edge(u, w),
            &|u, r| relations[r][u],
            &|u| dist[u],
            &|| nodes.clone(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::LocalFormula::*;
    use lcp_core::{Instance, Proof};
    use lcp_graph::generators;

    #[test]
    fn adjacency_atoms() {
        let g = generators::path(3);
        // ∀y: ∃z near 1: adj(y, z) — every node has a neighbour.
        let f = ExistsNear {
            radius: 1,
            body: Box::new(Adj(1, 2)),
        };
        assert!(evaluate_global(&f, &g, 0, &[]));
        // A lone node fails it.
        let lonely = lcp_graph::Graph::with_contiguous_ids(1);
        assert!(!evaluate_global(&f, &lonely, 0, &[]));
    }

    #[test]
    fn relation_atoms() {
        let g = generators::path(3);
        // ∀y: X₀(y)
        let f = InSet(1, 0);
        assert!(evaluate_global(&f, &g, 0, &[vec![true; 3]]));
        assert!(!evaluate_global(&f, &g, 0, &[vec![true, false, true]]));
    }

    #[test]
    fn witness_variable_usable() {
        let g = generators::path(3);
        // ∀y: y = x ∨ adj(x, y) — witness dominates the graph (true for
        // the middle node of P3 only).
        let f = Or(vec![
            Eq(0, 1),
            ExistsNear {
                radius: 1,
                body: Box::new(And(vec![Eq(2, 0), Adj(1, 2)])),
            },
        ]);
        assert!(evaluate_global(&f, &g, 1, &[]));
        assert!(!evaluate_global(&f, &g, 0, &[]));
    }

    #[test]
    fn view_and_global_evaluation_agree() {
        // Property checked per-y: "y has a neighbour in X₀".
        let f = ExistsNear {
            radius: 1,
            body: Box::new(And(vec![Adj(1, 2), InSet(2, 0)])),
        };
        let g = generators::cycle(6);
        let relations = [vec![true, false, false, true, false, false]];
        let inst = Instance::unlabeled(g.clone());
        let proof = Proof::empty(6);
        for y in g.nodes() {
            let view = View::extract(&inst, &proof, y, 2);
            let local = evaluate_at(&f, &view, None, |u, r| {
                let orig = g.index_of(view.id(u)).unwrap();
                relations[r][orig]
            });
            // Global semantics for this particular y.
            let dist = lcp_graph::traversal::bfs_distances(&g, y);
            let nodes: Vec<usize> = g.nodes().collect();
            let mut env = vec![None, Some(y)];
            let global = super::eval_rec(
                &f,
                &mut env,
                &|u, w| g.has_edge(u, w),
                &|u, r| relations[r][u],
                &|u| dist[u],
                &|| nodes.clone(),
            );
            assert_eq!(local, global, "disagreement at y = {y}");
        }
    }

    #[test]
    fn invisible_witness_atoms_are_false() {
        let g = generators::path(5);
        let inst = Instance::unlabeled(g);
        let proof = Proof::empty(5);
        let view = View::extract(&inst, &proof, 0, 1);
        // x invisible: adj(x, y) and x = y are false, X(x) is false.
        assert!(!evaluate_at(&Adj(0, 1), &view, None, |_, _| true));
        assert!(!evaluate_at(&Eq(0, 1), &view, None, |_, _| true));
        assert!(!evaluate_at(&InSet(0, 0), &view, None, |_, _| true));
        // But ¬(x = y) is true.
        assert!(evaluate_at(&Eq(0, 1).not(), &view, None, |_, _| true));
    }

    #[test]
    fn nested_quantifiers() {
        // "y lies on a triangle": ∃z₁∃z₂ near 1: adj(y,z₁) ∧ adj(y,z₂) ∧ adj(z₁,z₂).
        let f = ExistsNear {
            radius: 1,
            body: Box::new(ExistsNear {
                radius: 1,
                body: Box::new(And(vec![Adj(1, 2), Adj(1, 3), Adj(2, 3)])),
            }),
        };
        assert!(evaluate_global(&f, &generators::complete(4), 0, &[]));
        assert!(!evaluate_global(&f, &generators::cycle(5), 0, &[]));
    }
}
