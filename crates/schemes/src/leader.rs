//! Leader election (§5.1, Table 1(b)): `Θ(log n)` on connected graphs.

use lcp_core::components::TreeCert;
use lcp_core::{BitReader, BitWriter, Instance, Proof, Scheme, View};
use lcp_graph::traversal;

/// The leader-election verification scheme: the input labels mark
/// leaders (`true`); the solution is correct iff exactly one node is
/// marked. The proof is a spanning-tree certificate rooted at the leader,
/// and each node checks `leader ⟺ dist = 0`.
///
/// This is a *strong* scheme in the §7.2 sense: whatever node the
/// adversary marks, the prover can root the tree there.
///
/// Family promise: connected graphs (Table 1(b) row "leader election,
/// conn."); §5.4's gluing attack shows the matching `Ω(log n)` bound.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LeaderElection;

impl Scheme for LeaderElection {
    type Node = bool;
    type Edge = ();

    fn name(&self) -> String {
        "leader-election".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance<bool>) -> bool {
        traversal::is_connected(inst.graph())
            && inst.node_labels().iter().filter(|&&l| l).count() == 1
    }

    fn prove(&self, inst: &Instance<bool>) -> Option<Proof> {
        if !traversal::is_connected(inst.graph()) {
            return None;
        }
        let mut leaders = inst.node_labels().iter().enumerate().filter(|(_, &l)| l);
        let (leader, _) = leaders.next()?;
        if leaders.next().is_some() {
            return None;
        }
        let tree = lcp_graph::spanning::bfs_spanning_tree(inst.graph(), leader);
        let certs = TreeCert::prove(inst.graph(), &tree);
        Some(Proof::from_fn(inst.n(), |v| {
            let mut w = BitWriter::new();
            certs[v].encode(&mut w);
            w.finish()
        }))
    }

    fn verify(&self, view: &View<bool>) -> bool {
        let certs = |u: usize| {
            let mut r = BitReader::new(view.proof(u));
            let c = TreeCert::decode(&mut r).ok()?;
            r.is_exhausted().then_some(c)
        };
        if !TreeCert::verify_at_center(view, certs) {
            return false;
        }
        let c = view.center();
        let mine = certs(c).expect("decoded by the tree check");
        *view.node_label(c) == (mine.dist == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::evaluate;
    use lcp_core::harness::{
        adversarial_proof_search, check_completeness, check_soundness_exhaustive, classify_growth,
        measure_sizes, GrowthClass, Soundness,
    };
    use lcp_graph::generators;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn with_leader(g: lcp_graph::Graph, leader: usize) -> Instance<bool> {
        let labels = (0..g.n()).map(|v| v == leader).collect();
        Instance::with_node_data(g, labels)
    }

    #[test]
    fn any_leader_choice_is_certifiable() {
        // Strong scheme: the adversary picks the leader, the prover copes.
        let mut rng = StdRng::seed_from_u64(10);
        let mut instances = Vec::new();
        for _ in 0..8 {
            let g = generators::random_connected(10, 6, &mut rng);
            let leader = rng.random_range(0..g.n());
            instances.push(with_leader(g, leader));
        }
        check_completeness(
            &LeaderElection,
            &lcp_core::engine::prepare_sweep(&LeaderElection, &instances),
        )
        .unwrap();
    }

    #[test]
    fn proof_size_logarithmic() {
        let instances: Vec<Instance<bool>> = [8usize, 16, 32, 64, 128, 256]
            .iter()
            .map(|&n| with_leader(generators::cycle(n), n / 2))
            .collect();
        let points = measure_sizes(
            &LeaderElection,
            &lcp_core::engine::prepare_sweep(&LeaderElection, &instances),
        );
        assert_eq!(classify_growth(&points), GrowthClass::Logarithmic);
    }

    #[test]
    fn two_leaders_rejected() {
        let g = generators::cycle(4);
        let labels = vec![true, false, true, false];
        let inst = Instance::with_node_data(g, labels);
        assert!(!LeaderElection.holds(&inst));
        assert!(LeaderElection.prove(&inst).is_none());
        match check_soundness_exhaustive(
            &LeaderElection,
            &lcp_core::engine::prepare(&LeaderElection, &inst),
            2,
        )
        .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("two leaders certified by {p:?}"),
        }
    }

    #[test]
    fn zero_leaders_resist_forgery() {
        let g = generators::cycle(8);
        let inst = Instance::with_node_data(g, vec![false; 8]);
        assert!(!LeaderElection.holds(&inst));
        let mut rng = StdRng::seed_from_u64(11);
        assert!(adversarial_proof_search(
            &LeaderElection,
            &lcp_core::engine::prepare(&LeaderElection, &inst),
            8,
            600,
            &mut rng
        )
        .is_none());
    }

    #[test]
    fn leader_must_be_the_root() {
        let inst = with_leader(generators::path(5), 2);
        let proof = LeaderElection.prove(&inst).unwrap();
        assert!(evaluate(&LeaderElection, &inst, &proof).accepted());
        // Re-rooting the tree at a non-leader makes the leader check fail.
        let tree = lcp_graph::spanning::bfs_spanning_tree(inst.graph(), 0);
        let certs = TreeCert::prove(inst.graph(), &tree);
        let wrong = Proof::from_fn(5, |v| {
            let mut w = BitWriter::new();
            certs[v].encode(&mut w);
            w.finish()
        });
        assert!(!evaluate(&LeaderElection, &inst, &wrong).accepted());
    }
}
