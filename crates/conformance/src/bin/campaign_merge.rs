//! `campaign_merge` — fan-in for sharded conformance campaigns.
//!
//! ```text
//! lcp-campaign --shard 0/4 --seed 7 --no-timing --json shard-0.json
//! ...
//! campaign_merge shard-*.json --json report.json
//! ```
//!
//! Merges the `--shard i/N` reports of one campaign (static or
//! `--churn`, detected automatically) back into the whole-matrix report,
//! re-checking the global invariants on the way: a complete,
//! duplicate-free shard set over one configuration, gapless coordinate
//! coverage, per-shard summaries consistent with their cells. The merged
//! JSON is byte-identical to what the unsharded run would have written
//! with `--no-timing`.
//!
//! Exit codes: `0` green, `1` usage/validation error, `2` the merged
//! campaign has conformance failures.

use lcp_conformance::merge::{merge_reports, Merged};

const USAGE: &str = "\
campaign_merge — merge --shard i/N campaign reports into the whole-matrix report

USAGE:
    campaign_merge <shard.json>... [--json <path>]

OPTIONS:
    --json <path>   write the merged report ('-' for stdout) [default: -]
    --help          this text

All shards of the campaign must be given (a missing or duplicate shard is
an error), and they must agree on seed, profile, and mode.
";

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut out = "-".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(v) => out = v,
                None => {
                    eprintln!("error: --json requires a value\n\n{USAGE}");
                    std::process::exit(1);
                }
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other if other.starts_with("--") => {
                eprintln!("error: unknown argument '{other}'\n\n{USAGE}");
                std::process::exit(1);
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() {
        eprintln!("error: no shard reports given\n\n{USAGE}");
        std::process::exit(1);
    }

    let inputs: Vec<(String, String)> = paths
        .iter()
        .map(|p| match std::fs::read_to_string(p) {
            Ok(text) => (p.clone(), text),
            Err(e) => {
                eprintln!("error: cannot read {p}: {e}");
                std::process::exit(1);
            }
        })
        .collect();

    let merged = match merge_reports(&inputs) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    let mode = match &merged {
        Merged::Static(_) => "static",
        Merged::Churn(_) => "churn",
    };
    println!(
        "merged {} {mode} shards: {} cells (seed {})",
        inputs.len(),
        merged.cell_count(),
        merged.seed()
    );
    for f in merged.failures() {
        eprintln!("FAIL: {f}");
    }
    if !merged.ok() {
        eprintln!(
            "merged campaign has failures — replay locally with \
             `cargo run -p lcp-conformance --release -- --seed {}`",
            merged.seed()
        );
    }

    let json = merged.to_json();
    if out == "-" {
        print!("{json}");
    } else if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    } else {
        println!("merged report written to {out}");
    }

    std::process::exit(if merged.ok() { 0 } else { 2 });
}
