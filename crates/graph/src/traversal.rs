//! Breadth- and depth-first traversal, components, bipartitions, and cycle
//! finders.
//!
//! These are the workhorse routines behind most provers: shortest-path
//! markings (§4.1), spanning-tree certificates (§5.1), odd-cycle witnesses
//! for non-bipartiteness (§5.1), and the even-cycle search that makes the
//! Bondy–Simonovits step of the gluing attack (§5.3) constructive.

use crate::Graph;
use std::collections::VecDeque;

/// BFS distances from `s`; `None` marks unreachable nodes.
///
/// # Panics
///
/// Panics if `s` is out of range.
pub fn bfs_distances(g: &Graph, s: usize) -> Vec<Option<usize>> {
    bfs_with_parents(g, s).0
}

/// BFS distances and parent pointers (`parent[s] = None`).
///
/// Parents follow the sorted-adjacency order, so the BFS tree is
/// deterministic.
///
/// # Panics
///
/// Panics if `s` is out of range.
pub fn bfs_with_parents(g: &Graph, s: usize) -> (Vec<Option<usize>>, Vec<Option<usize>>) {
    assert!(s < g.n(), "BFS source {s} out of range");
    let mut dist = vec![None; g.n()];
    let mut parent = vec![None; g.n()];
    let mut queue = VecDeque::from([s]);
    dist[s] = Some(0);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued nodes have distances");
        for &v in g.neighbors(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    (dist, parent)
}

/// A shortest `s`–`t` path as a node-index sequence, or `None` if `t` is
/// unreachable.
///
/// # Panics
///
/// Panics if `s` or `t` is out of range.
pub fn shortest_path(g: &Graph, s: usize, t: usize) -> Option<Vec<usize>> {
    assert!(t < g.n(), "path target {t} out of range");
    let (dist, parent) = bfs_with_parents(g, s);
    dist[t]?;
    let mut path = vec![t];
    let mut cur = t;
    while let Some(p) = parent[cur] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    Some(path)
}

/// Component identifier for each node; identifiers are dense, in order of
/// the lowest-index node of each component.
pub fn connected_components(g: &Graph) -> Vec<usize> {
    let mut comp = vec![usize::MAX; g.n()];
    let mut next = 0;
    for s in g.nodes() {
        if comp[s] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::from([s]);
        comp[s] = next;
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v] == usize::MAX {
                    comp[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Number of connected components (0 for the empty graph).
pub fn component_count(g: &Graph) -> usize {
    connected_components(g).iter().max().map_or(0, |&c| c + 1)
}

/// Whether the graph is connected. The empty graph counts as connected.
pub fn is_connected(g: &Graph) -> bool {
    component_count(g) <= 1
}

/// A proper 2-colouring (`0`/`1` per node), or `None` if the graph is not
/// bipartite.
///
/// Every component is coloured starting from its lowest-index node, which
/// receives colour `0`.
pub fn bipartition(g: &Graph) -> Option<Vec<u8>> {
    let mut color = vec![u8::MAX; g.n()];
    for s in g.nodes() {
        if color[s] != u8::MAX {
            continue;
        }
        color[s] = 0;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if color[v] == u8::MAX {
                    color[v] = 1 - color[u];
                    queue.push_back(v);
                } else if color[v] == color[u] {
                    return None;
                }
            }
        }
    }
    Some(color)
}

/// Whether the graph is bipartite (equivalently, has no odd cycle).
pub fn is_bipartite(g: &Graph) -> bool {
    bipartition(g).is_some()
}

/// Finds a simple odd cycle, returned as a node-index sequence without
/// repeating the endpoint, or `None` if the graph is bipartite.
///
/// The witness comes from a same-layer BFS edge: if `{u, v}` joins two
/// nodes at equal BFS depth, the tree paths to their lowest common
/// ancestor plus the edge itself close a simple cycle of odd length.
pub fn find_odd_cycle(g: &Graph) -> Option<Vec<usize>> {
    let comp = connected_components(g);
    let mut seen_comp = vec![false; g.n()];
    for s in g.nodes() {
        if seen_comp[comp[s]] {
            continue;
        }
        seen_comp[comp[s]] = true;
        let (dist, parent) = bfs_with_parents(g, s);
        for (u, v) in g.edges() {
            if comp[u] != comp[s] {
                continue;
            }
            let (du, dv) = (
                dist[u].expect("same component"),
                dist[v].expect("same component"),
            );
            if du != dv {
                continue;
            }
            // Walk both endpoints up to their lowest common ancestor.
            let mut up_u = vec![u];
            let mut up_v = vec![v];
            let (mut cu, mut cv) = (u, v);
            while cu != cv {
                cu = parent[cu].expect("non-root nodes have parents");
                cv = parent[cv].expect("non-root nodes have parents");
                up_u.push(cu);
                up_v.push(cv);
            }
            // up_u ends at the LCA; drop the duplicate from the v side.
            up_v.pop();
            up_v.reverse();
            up_u.extend(up_v);
            debug_assert_eq!(up_u.len() % 2, 1, "same-layer edge closes an odd cycle");
            return Some(up_u);
        }
    }
    None
}

/// The ball `V[v, r]`: all nodes within distance `r` of `v`, sorted by
/// index.
///
/// This is exactly the node set of the paper's local view `G[v, r]` (§2.1).
///
/// # Panics
///
/// Panics if `v` is out of range.
pub fn ball(g: &Graph, v: usize, r: usize) -> Vec<usize> {
    assert!(v < g.n(), "ball center {v} out of range");
    let mut dist = vec![usize::MAX; g.n()];
    let mut queue = VecDeque::from([v]);
    dist[v] = 0;
    let mut members = vec![v];
    while let Some(u) = queue.pop_front() {
        if dist[u] == r {
            continue;
        }
        for &w in g.neighbors(u) {
            if dist[w] == usize::MAX {
                dist[w] = dist[u] + 1;
                members.push(w);
                queue.push_back(w);
            }
        }
    }
    members.sort_unstable();
    members
}

/// Discovery and finishing times of a depth-first traversal, as used by the
/// §7.1 translation from the port-numbering model to unique identifiers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DfsTimes {
    /// Discovery time of each node (1-based), `usize::MAX` if unreached.
    pub discovery: Vec<usize>,
    /// Finishing time of each node (1-based), `usize::MAX` if unreached.
    pub finish: Vec<usize>,
    /// DFS-tree parent of each node (`None` for the root and unreached nodes).
    pub parent: Vec<Option<usize>>,
}

/// Runs a deterministic DFS from `root`, assigning discovery/finish times
/// from a single shared clock (as in CLRS); neighbours are explored in
/// sorted order.
///
/// Only the component of `root` is traversed.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn dfs_times(g: &Graph, root: usize) -> DfsTimes {
    assert!(root < g.n(), "DFS root {root} out of range");
    let mut t = DfsTimes {
        discovery: vec![usize::MAX; g.n()],
        finish: vec![usize::MAX; g.n()],
        parent: vec![None; g.n()],
    };
    let mut clock = 0usize;
    // Iterative DFS: stack holds (node, position in its adjacency list).
    let mut stack = vec![(root, 0usize)];
    clock += 1;
    t.discovery[root] = clock;
    while let Some(&mut (u, ref mut pos)) = stack.last_mut() {
        let nbrs = g.neighbors(u);
        if *pos < nbrs.len() {
            let v = nbrs[*pos];
            *pos += 1;
            if t.discovery[v] == usize::MAX {
                t.parent[v] = Some(u);
                clock += 1;
                t.discovery[v] = clock;
                stack.push((v, 0));
            }
        } else {
            clock += 1;
            t.finish[u] = clock;
            stack.pop();
        }
    }
    t
}

/// Searches for a simple cycle of exactly `len` nodes, returning it as a
/// node-index sequence (endpoint not repeated).
///
/// This implements the constructive side of the Bondy–Simonovits step in
/// the gluing attack (§5.3): the theorem guarantees a `2k`-cycle inside any
/// sufficiently dense monochromatic subgraph, and this routine digs it out.
/// The search is a depth-first enumeration capped at `step_budget`
/// expansions, so it may return `None` either because no such cycle exists
/// or because the budget ran out; callers distinguish the two via
/// [`CycleSearch`].
pub fn find_cycle_of_length(g: &Graph, len: usize, step_budget: usize) -> CycleSearch {
    if len < 3 || g.n() < len {
        return CycleSearch::Absent;
    }
    let mut budget = step_budget;
    let mut on_path = vec![false; g.n()];
    // Anchor the cycle at its minimum-index vertex to avoid re-discovering
    // rotations and reflections of the same cycle.
    for s in g.nodes() {
        if g.degree(s) < 2 {
            continue;
        }
        let mut path = vec![s];
        on_path[s] = true;
        if dfs_cycle(g, s, len, &mut path, &mut on_path, &mut budget) {
            return CycleSearch::Found(path);
        }
        on_path[s] = false;
        if budget == 0 {
            return CycleSearch::BudgetExhausted;
        }
    }
    CycleSearch::Absent
}

/// Outcome of [`find_cycle_of_length`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CycleSearch {
    /// A cycle of the requested length, as a node-index sequence.
    Found(Vec<usize>),
    /// The exhaustive search finished without finding a cycle.
    Absent,
    /// The step budget ran out before the search was exhaustive.
    BudgetExhausted,
}

impl CycleSearch {
    /// The found cycle, if any.
    pub fn cycle(self) -> Option<Vec<usize>> {
        match self {
            CycleSearch::Found(c) => Some(c),
            _ => None,
        }
    }
}

fn dfs_cycle(
    g: &Graph,
    anchor: usize,
    len: usize,
    path: &mut Vec<usize>,
    on_path: &mut [bool],
    budget: &mut usize,
) -> bool {
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    let u = *path.last().expect("path never empty");
    if path.len() == len {
        return g.has_edge(u, anchor);
    }
    for &v in g.neighbors(u) {
        // Only the anchor may have a smaller index than path nodes.
        if v <= anchor || on_path[v] {
            continue;
        }
        path.push(v);
        on_path[v] = true;
        if dfs_cycle(g, anchor, len, path, on_path, budget) {
            return true;
        }
        on_path[v] = false;
        path.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::NodeId;

    fn path5() -> Graph {
        Graph::path_with_ids((1..=5).map(NodeId)).unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path5();
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let mut g = path5();
        g.add_node(NodeId(99)).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[5], None);
    }

    #[test]
    fn shortest_path_endpoints() {
        let g = generators::cycle(6);
        let p = shortest_path(&g, 0, 3).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p[0], 0);
        assert_eq!(p[3], 3);
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn shortest_path_none_when_disconnected() {
        let mut g = path5();
        g.add_node(NodeId(99)).unwrap();
        assert_eq!(shortest_path(&g, 0, 5), None);
    }

    #[test]
    fn components_of_two_triangles() {
        let g = crate::ops::disjoint_union(
            &generators::cycle(3),
            &crate::ops::shift_ids(&generators::cycle(3), 10),
        )
        .unwrap();
        let comp = connected_components(&g);
        assert_eq!(comp, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(component_count(&g), 2);
        assert!(!is_connected(&g));
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&Graph::new()));
        assert_eq!(component_count(&Graph::new()), 0);
    }

    #[test]
    fn even_cycle_is_bipartite_odd_is_not() {
        assert!(is_bipartite(&generators::cycle(8)));
        assert!(!is_bipartite(&generators::cycle(7)));
    }

    #[test]
    fn bipartition_is_proper() {
        let g = generators::complete_bipartite(3, 4);
        let c = bipartition(&g).unwrap();
        for (u, v) in g.edges() {
            assert_ne!(c[u], c[v]);
        }
    }

    #[test]
    fn odd_cycle_witness_is_an_odd_cycle() {
        let g = generators::cycle(9);
        let cyc = find_odd_cycle(&g).unwrap();
        assert_eq!(cyc.len() % 2, 1);
        assert!(cyc.len() >= 3);
        for i in 0..cyc.len() {
            assert!(g.has_edge(cyc[i], cyc[(i + 1) % cyc.len()]));
        }
        // Simple: no repeated nodes.
        let mut sorted = cyc.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), cyc.len());
    }

    #[test]
    fn odd_cycle_in_petersen_like_graph() {
        // A triangle hanging off a long even cycle.
        let mut g = generators::cycle(8);
        let a = g.add_node(NodeId(100)).unwrap();
        g.add_edge(0, a).unwrap();
        g.add_edge(1, a).unwrap();
        let cyc = find_odd_cycle(&g).unwrap();
        assert_eq!(cyc.len() % 2, 1);
        for i in 0..cyc.len() {
            assert!(g.has_edge(cyc[i], cyc[(i + 1) % cyc.len()]));
        }
    }

    #[test]
    fn no_odd_cycle_in_bipartite() {
        assert_eq!(find_odd_cycle(&generators::complete_bipartite(3, 3)), None);
        assert_eq!(find_odd_cycle(&generators::cycle(10)), None);
    }

    #[test]
    fn ball_radius_grows() {
        let g = generators::cycle(10);
        assert_eq!(ball(&g, 0, 0), vec![0]);
        assert_eq!(ball(&g, 0, 1), vec![0, 1, 9]);
        assert_eq!(ball(&g, 0, 2), vec![0, 1, 2, 8, 9]);
        assert_eq!(ball(&g, 0, 10).len(), 10);
    }

    #[test]
    fn dfs_times_form_nested_intervals() {
        let g = generators::complete(4);
        let t = dfs_times(&g, 0);
        // All nodes reached, times are a permutation of 1..=2n.
        let mut all: Vec<usize> = t.discovery.iter().chain(t.finish.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (1..=8).collect::<Vec<_>>());
        // Parent intervals strictly contain child intervals.
        for v in g.nodes() {
            if let Some(p) = t.parent[v] {
                assert!(t.discovery[p] < t.discovery[v]);
                assert!(t.finish[v] < t.finish[p]);
            }
        }
    }

    #[test]
    fn find_exact_cycles() {
        let g = generators::cycle(6);
        assert!(matches!(
            find_cycle_of_length(&g, 6, 10_000),
            CycleSearch::Found(_)
        ));
        assert_eq!(find_cycle_of_length(&g, 4, 10_000), CycleSearch::Absent);
        let k33 = generators::complete_bipartite(3, 3);
        let c = find_cycle_of_length(&k33, 4, 10_000).cycle().unwrap();
        assert_eq!(c.len(), 4);
        for i in 0..4 {
            assert!(k33.has_edge(c[i], c[(i + 1) % 4]));
        }
        assert!(matches!(
            find_cycle_of_length(&k33, 6, 100_000),
            CycleSearch::Found(_)
        ));
        // Odd cycles do not exist in bipartite graphs.
        assert_eq!(find_cycle_of_length(&k33, 5, 100_000), CycleSearch::Absent);
    }

    #[test]
    fn cycle_search_budget_reported() {
        let g = generators::complete(12);
        assert_eq!(
            find_cycle_of_length(&g, 12, 1),
            CycleSearch::BudgetExhausted
        );
    }

    #[test]
    fn cycle_search_trivial_cases() {
        assert_eq!(
            find_cycle_of_length(&generators::cycle(3), 2, 100),
            CycleSearch::Absent
        );
        assert_eq!(
            find_cycle_of_length(&generators::cycle(3), 4, 100),
            CycleSearch::Absent
        );
    }
}
