//! # `lcp-graph` — the graph substrate of the LCP reproduction
//!
//! This crate provides the graph model on which the locally-checkable-proof
//! machinery of Göös & Suomela, *Locally Checkable Proofs* (PODC 2011) runs,
//! together with every classical graph algorithm the paper's constructions
//! depend on.
//!
//! Unlike general-purpose graph crates, node **identifiers are first-class**:
//! the LCP model assumes `V(G) ⊆ {1, 2, …, poly(n)}` and several of the
//! paper's constructions manipulate identifiers directly (identifier-pattern
//! cycles `C(a, b)` in §5.3, shifted canonical copies `C(G, i)` in §6.1, DFS
//! interval identifiers in §7.1). A [`Graph`] therefore stores an explicit
//! [`NodeId`] per vertex, and all algorithms are stable under identifier
//! re-assignment.
//!
//! ## Module map
//!
//! * [`graph`] / [`digraph`] — simple undirected / directed graphs.
//! * [`generators`] — deterministic and seeded random instance families.
//! * [`traversal`] — BFS/DFS, components, bipartitions, odd/even cycles.
//! * [`spanning`] — spanning trees and forests, rooted-tree utilities.
//! * [`matching`] — maximal & maximum matching, König covers, LP duals.
//! * [`menger`] — vertex-disjoint `s`–`t` paths and minimum separators.
//! * [`coloring`] — greedy, DSATUR, exact chromatic number, k-colourability.
//! * [`iso`] — canonical forms, isomorphism, automorphisms.
//! * [`tree`] — AHU codes, tree automorphisms, rooted-tree enumeration.
//! * [`enumerate`] — exhaustive small-graph enumeration up to isomorphism.
//! * [`line_graph`] — Beineke's forbidden subgraphs and `L(G)`.
//! * [`euler`] — Eulerian-graph tests.
//! * [`ops`] — disjoint union, relabelling, the `⊙` join of §6.1.
//!
//! ## Example
//!
//! ```
//! use lcp_graph::{Graph, NodeId};
//! use lcp_graph::traversal::bfs_distances;
//!
//! # fn main() -> Result<(), lcp_graph::GraphError> {
//! let g = Graph::cycle_with_ids((1..=5).map(NodeId))?;
//! let d = bfs_distances(&g, 0);
//! assert_eq!(d[2], Some(2));
//! # Ok(())
//! # }
//! ```

pub mod coloring;
pub mod digraph;
pub mod enumerate;
pub mod euler;
pub mod families;
pub mod generators;
pub mod graph;
pub mod hamilton;
pub mod iso;
pub mod line_graph;
pub mod matching;
pub mod menger;
pub mod ops;
pub mod spanning;
pub mod traversal;
pub mod tree;

mod error;
mod id;

pub use digraph::DiGraph;
pub use error::GraphError;
pub use graph::Graph;
pub use id::NodeId;

/// Normalizes an undirected edge on internal indices so that the smaller
/// endpoint comes first.
///
/// Edge-keyed maps throughout the workspace use this normal form.
///
/// ```
/// assert_eq!(lcp_graph::norm_edge(4, 1), (1, 4));
/// ```
pub fn norm_edge(u: usize, v: usize) -> (usize, usize) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}
