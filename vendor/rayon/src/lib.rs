//! Offline drop-in subset of `rayon`'s parallel-iterator API.
//!
//! The build environment has no registry access, so the narrow slice of
//! rayon this workspace uses (`par_iter()` / `into_par_iter()` → `map` →
//! `collect`) is implemented here over `std::thread::scope`, behind the
//! same paths (`rayon::prelude::*`). Work is split into one contiguous
//! chunk per available core; results are reassembled in input order, so
//! `collect::<Vec<_>>()` is order-stable exactly like real rayon's
//! indexed collect. Swap the path dependency for the real crate once a
//! registry is reachable; call sites need no changes.

use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads: one per available core.
fn threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every item on a scoped thread pool, preserving order.
fn par_apply<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items.into_iter();
    loop {
        let c: Vec<T> = items.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

/// A parallel iterator: a materialized item list plus a deferred `map`
/// pipeline that runs on the pool at `collect` time.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Materializes all results, running the pipeline in parallel.
    fn run(self) -> Vec<Self::Item>;

    /// Maps every item through `f` (in parallel at `collect` time).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Collects into `C` preserving input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_vec(self.run())
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send + 'a;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Iterates `&self` in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Collection types buildable from an ordered parallel result.
pub trait FromParallelIterator<T> {
    /// Builds the collection from the ordered results.
    fn from_par_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(items: Vec<T>) -> Self {
        items
    }
}

/// The base parallel iterator: an eagerly materialized item list.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// A deferred parallel map stage.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;
    fn run(self) -> Vec<R> {
        par_apply(self.base.run(), &self.f)
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = IntoParIter<usize>;
    fn into_par_iter(self) -> IntoParIter<usize> {
        IntoParIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = IntoParIter<&'a T>;
    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = IntoParIter<&'a T>;
    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..257).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares.len(), 257);
        assert_eq!(squares[16], 256);
    }

    #[test]
    fn chained_maps() {
        let out: Vec<String> = vec![1, 2, 3]
            .into_par_iter()
            .map(|x| x + 1)
            .map(|x| x.to_string())
            .collect();
        assert_eq!(out, vec!["2", "3", "4"]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
