//! Matchings: validity/maximality predicates, maximum bipartite matching,
//! König vertex covers, and maximum-weight bipartite matching with
//! LP-optimal dual certificates.
//!
//! The duals are the point: §2.3 of the paper turns an optimal dual vector
//! into a locally checkable proof of matching optimality (1 bit for the
//! unweighted König cover, `O(log W)` bits for the weighted duals). The
//! algorithms here therefore return the certificates, not just the
//! matchings.

use crate::{norm_edge, Graph};
use std::collections::BTreeMap;

/// Edge weights keyed by normalized index pairs (see [`norm_edge`]).
pub type EdgeWeightMap = BTreeMap<(usize, usize), u64>;

/// Whether `edges` is a matching in `g`: every pair is an edge of `g`, and
/// no node is covered twice.
pub fn is_matching(g: &Graph, edges: &[(usize, usize)]) -> bool {
    let mut used = vec![false; g.n()];
    for &(u, v) in edges {
        if u >= g.n() || v >= g.n() || !g.has_edge(u, v) {
            return false;
        }
        if used[u] || used[v] {
            return false;
        }
        used[u] = true;
        used[v] = true;
    }
    true
}

/// Whether `edges` is a *maximal* matching: a matching that no edge of `g`
/// can extend.
pub fn is_maximal_matching(g: &Graph, edges: &[(usize, usize)]) -> bool {
    if !is_matching(g, edges) {
        return false;
    }
    let mut used = vec![false; g.n()];
    for &(u, v) in edges {
        used[u] = true;
        used[v] = true;
    }
    g.edges().all(|(u, v)| used[u] || used[v])
}

/// Greedy maximal matching in sorted edge order (deterministic).
pub fn greedy_maximal_matching(g: &Graph) -> Vec<(usize, usize)> {
    let mut used = vec![false; g.n()];
    let mut out = Vec::new();
    for (u, v) in g.edges() {
        if !used[u] && !used[v] {
            used[u] = true;
            used[v] = true;
            out.push((u, v));
        }
    }
    out
}

/// A bipartite matching as a mate table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BipartiteMatching {
    /// `mate[u]` is the matched partner of `u`, if any.
    pub mate: Vec<Option<usize>>,
}

impl BipartiteMatching {
    /// Number of matched edges.
    pub fn size(&self) -> usize {
        self.mate.iter().flatten().count() / 2
    }

    /// The matched edges as normalized index pairs.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.mate
            .iter()
            .enumerate()
            .filter_map(|(u, &m)| m.filter(|&v| u < v).map(|v| (u, v)))
            .collect()
    }
}

/// Maximum-cardinality matching in a bipartite graph via augmenting paths
/// (Kuhn's algorithm).
///
/// `side[u] ∈ {0, 1}` must be a proper 2-colouring of `g`.
///
/// # Panics
///
/// Panics (in debug builds) if `side` is not a proper 2-colouring.
pub fn maximum_bipartite_matching(g: &Graph, side: &[u8]) -> BipartiteMatching {
    debug_assert!(
        g.edges().all(|(u, v)| side[u] != side[v]),
        "side must 2-colour g"
    );
    let mut mate: Vec<Option<usize>> = vec![None; g.n()];
    let lefts: Vec<usize> = g.nodes().filter(|&u| side[u] == 0).collect();
    for &root in &lefts {
        let mut visited = vec![false; g.n()];
        try_augment(g, root, &mut mate, &mut visited);
    }
    BipartiteMatching { mate }
}

fn try_augment(g: &Graph, u: usize, mate: &mut [Option<usize>], visited: &mut [bool]) -> bool {
    for &v in g.neighbors(u) {
        if visited[v] {
            continue;
        }
        visited[v] = true;
        let free = match mate[v] {
            None => true,
            Some(w) => try_augment(g, w, mate, visited),
        };
        if free {
            mate[u] = Some(v);
            mate[v] = Some(u);
            return true;
        }
    }
    false
}

/// Minimum vertex cover of a bipartite graph from a maximum matching, by
/// König's construction.
///
/// Returns a boolean membership vector; `|C| = |M|` always holds, which is
/// exactly the equality the §2.3 certificate exploits.
pub fn koenig_vertex_cover(g: &Graph, side: &[u8], matching: &BipartiteMatching) -> Vec<bool> {
    let n = g.n();
    // Z = unmatched left nodes plus everything reachable from them by
    // alternating paths (non-matching edges left→right, matching edges
    // right→left).
    let mut in_z = vec![false; n];
    let mut queue: Vec<usize> = g
        .nodes()
        .filter(|&u| side[u] == 0 && matching.mate[u].is_none())
        .collect();
    for &u in &queue {
        in_z[u] = true;
    }
    while let Some(u) = queue.pop() {
        if side[u] == 0 {
            for &v in g.neighbors(u) {
                if !in_z[v] && matching.mate[u] != Some(v) {
                    in_z[v] = true;
                    queue.push(v);
                }
            }
        } else if let Some(w) = matching.mate[u] {
            if !in_z[w] {
                in_z[w] = true;
                queue.push(w);
            }
        }
    }
    // C = (L \ Z) ∪ (R ∩ Z).
    g.nodes()
        .map(|u| (side[u] == 0 && !in_z[u]) || (side[u] == 1 && in_z[u]))
        .collect()
}

/// Whether `cover` hits every edge of `g`.
pub fn is_vertex_cover(g: &Graph, cover: &[bool]) -> bool {
    g.edges().all(|(u, v)| cover[u] || cover[v])
}

/// A maximum-weight bipartite matching together with an optimal dual
/// solution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedMatching {
    /// `mate[u]` is the matched partner of `u`, if any.
    pub mate: Vec<Option<usize>>,
    /// Integral optimal duals `y_v ∈ {0, …, W}` of the fractional matching
    /// LP (§2.3): `y_u + y_v ≥ w_{uv}` for every edge, with complementary
    /// slackness against the returned matching.
    pub duals: Vec<u64>,
    /// Total weight of the matching.
    pub weight: u64,
}

impl WeightedMatching {
    /// The matched edges as normalized index pairs.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.mate
            .iter()
            .enumerate()
            .filter_map(|(u, &m)| m.filter(|&v| u < v).map(|v| (u, v)))
            .collect()
    }
}

/// Maximum-weight matching in a bipartite graph with nonnegative integer
/// weights, via the primal–dual (Hungarian-tree) method.
///
/// The matching maximizes total weight over *all* matchings (it need not
/// be perfect or maximum-cardinality). Missing entries in `weights`
/// default to 0. The returned duals satisfy, as the algorithm's invariant:
///
/// * feasibility: `y_u + y_v ≥ w_{uv}` on every edge, `y ≥ 0`;
/// * tightness: `y_u + y_v = w_{uv}` on every matched edge;
/// * slackness: `y_v > 0` only on matched nodes.
///
/// Together these certify optimality by LP duality, which is precisely the
/// content of the `O(log W)` scheme of §2.3.
///
/// # Panics
///
/// Panics (in debug builds) if `side` is not a proper 2-colouring of `g`.
pub fn max_weight_bipartite_matching(
    g: &Graph,
    side: &[u8],
    weights: &EdgeWeightMap,
) -> WeightedMatching {
    debug_assert!(
        g.edges().all(|(u, v)| side[u] != side[v]),
        "side must 2-colour g"
    );
    let n = g.n();
    let w =
        |u: usize, v: usize| -> i64 { weights.get(&norm_edge(u, v)).copied().unwrap_or(0) as i64 };
    let mut y: Vec<i64> = vec![0; n];
    // Left duals start at each node's largest incident weight: feasible,
    // and every heaviest edge starts tight.
    for u in g.nodes().filter(|&u| side[u] == 0) {
        y[u] = g.neighbors(u).iter().map(|&v| w(u, v)).max().unwrap_or(0);
    }
    let mut mate: Vec<Option<usize>> = vec![None; n];

    for root in g.nodes().filter(|&u| side[u] == 0) {
        if mate[root].is_some() || y[root] == 0 {
            continue;
        }
        // Grow a Hungarian tree of tight edges from `root` until it either
        // reaches a free right node (augment), or some left node's dual
        // hits 0 (that node can stay unmatched: "augment to null").
        let mut in_left = vec![false; n]; // S
        let mut in_right = vec![false; n]; // T
        let mut back: Vec<Option<usize>> = vec![None; n]; // alternating-path parent
        in_left[root] = true;
        loop {
            // Scan for a tight edge from S to a right node outside T.
            let mut advanced = false;
            let members: Vec<usize> = g.nodes().filter(|&u| in_left[u]).collect();
            'scan: for u in members {
                for &v in g.neighbors(u) {
                    if in_right[v] || y[u] + y[v] != w(u, v) {
                        continue;
                    }
                    in_right[v] = true;
                    back[v] = Some(u);
                    match mate[v] {
                        None => {
                            augment(&mut mate, &back, v);
                            break 'scan;
                        }
                        Some(next_left) => {
                            in_left[next_left] = true;
                            back[next_left] = Some(v);
                            advanced = true;
                        }
                    }
                }
            }
            if mate[root].is_some() {
                break;
            }
            if advanced {
                continue;
            }
            // No tight edge available: lower S-duals and raise T-duals by δ.
            let mut delta = i64::MAX;
            for u in g.nodes().filter(|&u| in_left[u]) {
                delta = delta.min(y[u]); // slack to the virtual null vertex
                for &v in g.neighbors(u) {
                    if !in_right[v] {
                        delta = delta.min(y[u] + y[v] - w(u, v));
                    }
                }
            }
            debug_assert!(delta >= 0, "dual feasibility must hold");
            for x in g.nodes() {
                if in_left[x] {
                    y[x] -= delta;
                } else if in_right[x] {
                    y[x] += delta;
                }
            }
            // A left node at dual 0 may stay unmatched: flip the
            // alternating path from it back to the root ("match to null").
            if let Some(z) = g.nodes().find(|&u| in_left[u] && y[u] == 0) {
                retire(&mut mate, &back, z);
                break;
            }
        }
    }

    let weight = mate
        .iter()
        .enumerate()
        .filter_map(|(u, &m)| m.filter(|&v| u < v).map(|v| w(u, v)))
        .sum::<i64>() as u64;
    WeightedMatching {
        mate,
        duals: y.into_iter().map(|x| x.max(0) as u64).collect(),
        weight,
    }
}

/// Flips the alternating path ending at free right node `v`.
fn augment(mate: &mut [Option<usize>], back: &[Option<usize>], mut v: usize) {
    loop {
        let u = back[v].expect("right tree nodes have parents");
        let prev = mate[u];
        mate[u] = Some(v);
        mate[v] = Some(u);
        match prev {
            None => break,
            Some(pv) => v = pv,
        }
    }
}

/// Flips the alternating path from left node `z` (whose dual reached 0)
/// back to the tree root, leaving `z` unmatched — the "augment to the
/// virtual null vertex" step.
///
/// Tree invariants: for a non-root left node `u`, `back[u]` is the right
/// node currently matched to `u`; for a right node `v`, `back[v]` is the
/// left node that reached `v` through a tight non-matching edge.
fn retire(mate: &mut [Option<usize>], back: &[Option<usize>], z: usize) {
    let mut left = z;
    while let Some(v) = back[left] {
        let u = back[v].expect("right tree nodes have left parents");
        let u_prev = mate[u];
        mate[v] = Some(u);
        mate[u] = Some(v);
        match u_prev {
            None => break, // u was the unmatched root
            Some(_) => left = u,
        }
    }
    // z's old partner (if any) has been re-matched above; disconnect z.
    if let Some(v) = mate[z] {
        if mate[v] != Some(z) {
            mate[z] = None;
        }
    }
}

/// Exhaustive maximum-cardinality matching size; exponential, for ground
/// truth on small graphs only.
pub fn maximum_matching_bruteforce(g: &Graph) -> usize {
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let mut used = vec![false; g.n()];
    fn rec(edges: &[(usize, usize)], i: usize, used: &mut [bool]) -> usize {
        if i == edges.len() {
            return 0;
        }
        let skip = rec(edges, i + 1, used);
        let (u, v) = edges[i];
        if used[u] || used[v] {
            return skip;
        }
        used[u] = true;
        used[v] = true;
        let take = 1 + rec(edges, i + 1, used);
        used[u] = false;
        used[v] = false;
        skip.max(take)
    }
    rec(&edges, 0, &mut used)
}

/// Exhaustive maximum-weight matching value; exponential, for ground truth
/// on small graphs only.
pub fn max_weight_matching_bruteforce(g: &Graph, weights: &EdgeWeightMap) -> u64 {
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let mut used = vec![false; g.n()];
    fn rec(edges: &[(usize, usize)], weights: &EdgeWeightMap, i: usize, used: &mut [bool]) -> u64 {
        if i == edges.len() {
            return 0;
        }
        let skip = rec(edges, weights, i + 1, used);
        let (u, v) = edges[i];
        if used[u] || used[v] {
            return skip;
        }
        used[u] = true;
        used[v] = true;
        let w = weights.get(&norm_edge(u, v)).copied().unwrap_or(0);
        let take = w + rec(edges, weights, i + 1, used);
        used[u] = false;
        used[v] = false;
        skip.max(take)
    }
    rec(&edges, weights, 0, &mut used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal::bipartition;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn matching_predicates() {
        let g = generators::path(4); // edges (0,1),(1,2),(2,3)
        assert!(is_matching(&g, &[(0, 1), (2, 3)]));
        assert!(!is_matching(&g, &[(0, 1), (1, 2)])); // shares node 1
        assert!(!is_matching(&g, &[(0, 2)])); // not an edge
        assert!(is_maximal_matching(&g, &[(1, 2)]));
        assert!(!is_maximal_matching(&g, &[(0, 1)])); // (2,3) extends it
    }

    #[test]
    fn greedy_is_maximal() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let g = generators::gnp(12, 0.3, &mut rng);
            let m = greedy_maximal_matching(&g);
            assert!(is_maximal_matching(&g, &m));
        }
    }

    #[test]
    fn kuhn_on_complete_bipartite() {
        let g = generators::complete_bipartite(3, 5);
        let side = bipartition(&g).unwrap();
        let m = maximum_bipartite_matching(&g, &side);
        assert_eq!(m.size(), 3);
        assert!(is_matching(&g, &m.edges()));
    }

    #[test]
    fn kuhn_matches_bruteforce_on_random_bipartite() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let g = generators::random_bipartite(5, 5, 0.4, &mut rng);
            let side = bipartition(&g).unwrap();
            let m = maximum_bipartite_matching(&g, &side);
            assert_eq!(m.size(), maximum_matching_bruteforce(&g));
        }
    }

    #[test]
    fn koenig_cover_has_matching_size() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let g = generators::random_bipartite(6, 6, 0.35, &mut rng);
            let side = bipartition(&g).unwrap();
            let m = maximum_bipartite_matching(&g, &side);
            let cover = koenig_vertex_cover(&g, &side, &m);
            assert!(is_vertex_cover(&g, &cover));
            assert_eq!(cover.iter().filter(|&&b| b).count(), m.size());
        }
    }

    #[test]
    fn koenig_cover_on_edgeless_graph_is_empty() {
        let g = Graph::with_contiguous_ids(4);
        let side = vec![0, 0, 1, 1];
        let m = maximum_bipartite_matching(&g, &side);
        let cover = koenig_vertex_cover(&g, &side, &m);
        assert!(cover.iter().all(|&b| !b));
    }

    fn random_weights(g: &Graph, max_w: u64, rng: &mut StdRng) -> EdgeWeightMap {
        g.edges()
            .map(|(u, v)| ((u, v), rng.random_range(0..=max_w)))
            .collect()
    }

    fn check_duality(g: &Graph, weights: &EdgeWeightMap, sol: &WeightedMatching) {
        // Feasibility on every edge.
        for (u, v) in g.edges() {
            let w = weights.get(&norm_edge(u, v)).copied().unwrap_or(0);
            assert!(
                sol.duals[u] + sol.duals[v] >= w,
                "dual infeasible on edge ({u},{v})"
            );
        }
        // Tightness on matched edges.
        for (u, v) in sol.edges() {
            let w = weights.get(&norm_edge(u, v)).copied().unwrap_or(0);
            assert_eq!(sol.duals[u] + sol.duals[v], w, "matched edge not tight");
        }
        // Positive duals only on matched nodes.
        for u in g.nodes() {
            if sol.duals[u] > 0 {
                assert!(sol.mate[u].is_some(), "free node {u} has positive dual");
            }
        }
    }

    #[test]
    fn weighted_matching_matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(8);
        for round in 0..30 {
            let g = generators::random_bipartite(5, 5, 0.5, &mut rng);
            let side = bipartition(&g).unwrap();
            let weights = random_weights(&g, 10, &mut rng);
            let sol = max_weight_bipartite_matching(&g, &side, &weights);
            let best = max_weight_matching_bruteforce(&g, &weights);
            assert_eq!(sol.weight, best, "round {round}");
            assert!(is_matching(&g, &sol.edges()));
            check_duality(&g, &weights, &sol);
        }
    }

    #[test]
    fn weighted_matching_prefers_heavy_edge() {
        // Path a-b-c: picking the middle edge with weight 5 beats both ends.
        let g = generators::path(3);
        let side = bipartition(&g).unwrap();
        let mut weights = EdgeWeightMap::new();
        weights.insert((0, 1), 2);
        weights.insert((1, 2), 5);
        let sol = max_weight_bipartite_matching(&g, &side, &weights);
        assert_eq!(sol.weight, 5);
        assert_eq!(sol.edges(), vec![(1, 2)]);
        check_duality(&g, &weights, &sol);
    }

    #[test]
    fn weighted_matching_can_leave_nodes_unmatched() {
        // Star with all weights 0: empty matching is optimal, all duals 0.
        let g = generators::star(3);
        let side = bipartition(&g).unwrap();
        let weights = EdgeWeightMap::new();
        let sol = max_weight_bipartite_matching(&g, &side, &weights);
        assert_eq!(sol.weight, 0);
        assert!(sol.duals.iter().all(|&y| y == 0));
        check_duality(&g, &weights, &sol);
    }

    #[test]
    fn weighted_matching_duals_bounded_by_max_weight() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..10 {
            let g = generators::random_bipartite(6, 4, 0.6, &mut rng);
            let side = bipartition(&g).unwrap();
            let weights = random_weights(&g, 7, &mut rng);
            let sol = max_weight_bipartite_matching(&g, &side, &weights);
            assert!(sol.duals.iter().all(|&y| y <= 7));
            check_duality(&g, &weights, &sol);
        }
    }

    #[test]
    fn bruteforce_on_cycle() {
        assert_eq!(maximum_matching_bruteforce(&generators::cycle(6)), 3);
        assert_eq!(maximum_matching_bruteforce(&generators::cycle(7)), 3);
    }
}
