//! `lcp-campaign` — the conformance-campaign CLI.
//!
//! ```text
//! cargo run -p lcp-conformance --release -- --profile smoke --seed 7 --json report.json
//! cargo run -p lcp-conformance --release -- --churn --seed 7 --json churn.json
//! ```
//!
//! Exit codes: `0` green, `1` usage error, `2` conformance failures
//! (static check failures, incremental-vs-full mismatches in `--churn`
//! mode, or unhandled faults under `--inject-faults`), `3` no failures
//! but some cells crashed or timed out (`2` takes precedence).
//!
//! ## Cell coordinates and seed derivation
//!
//! The campaign matrix is addressed by **cell coordinates**
//! `(scheme id, family, n, polarity)` — the same vocabulary the serve
//! daemon (`crates/serve`) and the churn engine use. Every cell derives
//! its private RNG stream as `cell_seed(campaign seed, coordinates)`
//! (FNV-1a over the stable scheme *id* — never its registry position —
//! then splitmix64 rounds over the remaining coordinates), so:
//!
//! * cells never share an RNG stream: running one cell alone (via the
//!   `--scheme`/`--family`/`--sizes` filters) replays exactly the bits
//!   it saw inside the full sweep;
//! * `--shard i/N` partitions the same enumeration order without
//!   perturbing any cell, so the union of shard reports is
//!   byte-identical to the unsharded run;
//! * `--resume` can skip completed cells and still produce a report
//!   byte-identical to an uninterrupted one.
//!
//! See `docs/ARCHITECTURE.md` § "Where determinism is enforced".

use lcp_conformance::checkpoint::{run_campaign_checkpointed, run_churn_campaign_checkpointed};
use lcp_conformance::churn::{default_steps, run_churn_campaign, ChurnReport};
use lcp_conformance::{run_campaign, CampaignConfig, CellStatus, Profile, Report, Shard};
use lcp_graph::families::GraphFamily;

const USAGE: &str = "\
lcp-campaign — sweep every registered scheme across a seeded family matrix

USAGE:
    lcp-campaign [OPTIONS]

OPTIONS:
    --profile <smoke|full>   preset sizes and budgets        [default: smoke]
    --seed <u64>             campaign seed                   [default: 7]
    --sizes <a,b,c>          override instance sizes
    --scheme <id>            run one registry entry only
    --family <name>          run one graph family only
    --tamper-trials <n>      bit-flip probes per yes cell
    --adversarial-iters <n>  hill-climb steps per no cell
    --shard <i/N>            run only the cells of shard i out of N; the
                             union of all N reports is byte-identical to
                             the unsharded run (merge with campaign_merge)
    --churn                  dynamic mode: churn every cell with seeded
                             mutations, checking incremental reverify
                             against from-scratch evaluation
    --churn-steps <n>        mutations per churn cell        [default: per profile]
    --cell-budget-ms <n>     wall budget per cell; over-budget cells
                             report timed_out instead of hanging the shard
    --no-batch               force the scalar search loops instead of the
                             batched (64-candidates-per-word) evaluation
                             layer; reports are byte-identical either way
    --artifact-dir <dir>     persist frozen skeleton cores to <dir> and mmap
                             them back on later runs (see docs/FORMAT.md);
                             reports are byte-identical either way
    --warm-artifacts         build + persist every matrix cell's core into
                             --artifact-dir, then exit (shard filter is
                             ignored: one pass serves all shards)
    --checkpoint <path>      append one JSON line per completed cell, so a
                             killed shard can be resumed
    --resume <path>          skip cells recorded in a prior checkpoint of
                             the same configuration; the resumed report is
                             byte-identical to an uninterrupted run
    --inject-faults          run the seeded fault-injection plan (lcp-faults)
                             instead of a campaign; exit 2 if any injected
                             fault is neither detected nor repaired
    --json <path>            write the JSON report ('-' for stdout)
    --bench-out <path>       write per-cell sizes/timings (BENCH-style JSON)
    --metrics-out <path>     write the observability sidecar (per-cell phase
                             timings plus every process counter/histogram);
                             a separate artifact — report.json, checkpoints,
                             and RNG streams are byte-identical either way
    --no-timing              omit wall-clock fields from the JSON
    --list                   list registry entries and exit
    --quiet                  suppress the per-scheme table
    --help                   this text

EXIT CODES:
    0  green   1  usage error   2  failures / unhandled faults
    3  no failures, but some cells crashed or timed out
";

struct Args {
    config: CampaignConfig,
    churn: bool,
    warm_artifacts: bool,
    churn_steps: Option<usize>,
    checkpoint: Option<String>,
    resume: Option<String>,
    inject_faults: bool,
    json: Option<String>,
    bench_out: Option<String>,
    metrics_out: Option<String>,
    include_timing: bool,
    list: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut profile = Profile::Smoke;
    let mut seed = 7u64;
    let mut sizes: Option<Vec<usize>> = None;
    let mut scheme = None;
    let mut family = None;
    let mut tamper = None;
    let mut adversarial = None;
    let mut shard = None;
    let mut churn = false;
    let mut warm_artifacts = false;
    let mut artifact_dir = None;
    let mut churn_steps = None;
    let mut cell_budget_ms = None;
    let mut batch = true;
    let mut checkpoint = None;
    let mut resume = None;
    let mut inject_faults = false;
    let mut json = None;
    let mut bench_out = None;
    let mut metrics_out = None;
    let mut include_timing = true;
    let mut list = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--profile" => {
                let v = value("--profile")?;
                profile = Profile::parse(&v).ok_or_else(|| format!("unknown profile '{v}'"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--sizes" => {
                let v = value("--sizes")?;
                let parsed: Result<Vec<usize>, _> = v.split(',').map(str::parse).collect();
                sizes = Some(parsed.map_err(|_| format!("bad sizes '{v}'"))?);
            }
            "--scheme" => scheme = Some(value("--scheme")?),
            "--family" => {
                let v = value("--family")?;
                family =
                    Some(GraphFamily::parse(&v).ok_or_else(|| format!("unknown family '{v}'"))?);
            }
            "--tamper-trials" => {
                let v = value("--tamper-trials")?;
                tamper = Some(v.parse().map_err(|_| format!("bad count '{v}'"))?);
            }
            "--adversarial-iters" => {
                let v = value("--adversarial-iters")?;
                adversarial = Some(v.parse().map_err(|_| format!("bad count '{v}'"))?);
            }
            "--shard" => {
                let v = value("--shard")?;
                shard = Some(
                    Shard::parse(&v).ok_or_else(|| format!("bad shard '{v}' (want i/N, i < N)"))?,
                );
            }
            "--churn" => churn = true,
            "--churn-steps" => {
                let v = value("--churn-steps")?;
                churn_steps = Some(v.parse().map_err(|_| format!("bad count '{v}'"))?);
            }
            "--cell-budget-ms" => {
                let v = value("--cell-budget-ms")?;
                cell_budget_ms = Some(v.parse().map_err(|_| format!("bad budget '{v}'"))?);
            }
            "--no-batch" => batch = false,
            "--artifact-dir" => {
                artifact_dir = Some(std::path::PathBuf::from(value("--artifact-dir")?));
            }
            "--warm-artifacts" => warm_artifacts = true,
            "--checkpoint" => checkpoint = Some(value("--checkpoint")?),
            "--resume" => resume = Some(value("--resume")?),
            "--inject-faults" => inject_faults = true,
            "--json" => json = Some(value("--json")?),
            "--bench-out" => bench_out = Some(value("--bench-out")?),
            "--metrics-out" => metrics_out = Some(value("--metrics-out")?),
            "--no-timing" => include_timing = false,
            "--list" => list = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }

    let mut config = CampaignConfig::for_profile(profile, seed);
    if let Some(s) = sizes {
        config.sizes = s;
    }
    if let Some(t) = tamper {
        config.tamper_trials = t;
    }
    if let Some(a) = adversarial {
        config.adversarial_iterations = a;
    }
    config.scheme_filter = scheme;
    config.family_filter = family;
    config.shard = shard;
    config.cell_budget_ms = cell_budget_ms;
    config.batch = batch;
    config.artifact_dir = artifact_dir;
    if warm_artifacts && config.artifact_dir.is_none() {
        return Err("--warm-artifacts requires --artifact-dir".into());
    }
    Ok(Args {
        config,
        churn,
        warm_artifacts,
        churn_steps,
        checkpoint,
        resume,
        inject_faults,
        json,
        bench_out,
        metrics_out,
        include_timing,
        list,
        quiet,
    })
}

/// Writes the `--metrics-out` sidecar (`'-'` for stdout); shared by the
/// static and churn paths. Returns false on an unwritable path.
fn write_metrics_sidecar(path: &str, json: &str) -> bool {
    if path == "-" {
        print!("{json}");
    } else if let Err(e) = std::fs::write(path, json) {
        eprintln!("error: cannot write {path}: {e}");
        return false;
    } else {
        println!("metrics sidecar written to {path}");
    }
    true
}

/// `2` for failures, `3` for crashed/timed-out-only, `0` otherwise.
fn exit_code(ok: bool, unresolved: usize) -> i32 {
    if !ok {
        2
    } else if unresolved > 0 {
        3
    } else {
        0
    }
}

/// `--inject-faults` mode: run the standard seeded fault plan and
/// report which injected faults the stack detected or repaired.
fn run_fault_mode(args: &Args) -> i32 {
    let report = lcp_faults::run_standard_plan(args.config.seed);
    if !args.quiet {
        println!(
            "{:<20} {:<28} {:>8} {:>8}",
            "fault", "site", "detected", "repaired"
        );
        println!("{}", "-".repeat(70));
        for o in &report.outcomes {
            println!(
                "{:<20} {:<28} {:>8} {:>8}",
                o.kind.name(),
                o.site,
                o.detected,
                o.repaired
            );
        }
        println!();
    }
    println!(
        "fault injection: {} faults — {} unhandled (seed {})",
        report.outcomes.len(),
        report.unhandled().len(),
        report.seed,
    );
    for o in report.unhandled() {
        eprintln!("UNHANDLED: {} at {}: {}", o.kind.name(), o.site, o.detail);
    }
    if let Some(path) = &args.json {
        let json = report.to_json();
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            return 1;
        } else {
            println!("fault report written to {path}");
        }
    }
    i32::from(!report.all_handled()) * 2
}

fn print_churn_table(report: &ChurnReport) {
    println!(
        "{:<32} {:<10} {:>4} {:>5} {:>6} {:>8} {:>9}  incr/full ms",
        "scheme", "family", "n", "steps", "checks", "miss", "work ‰"
    );
    println!("{}", "-".repeat(100));
    for c in report.cells.iter().filter(|c| !c.skipped) {
        println!(
            "{:<32} {:<10} {:>4} {:>5} {:>6} {:>8} {:>9}  {}/{}",
            c.scheme,
            c.family.name(),
            c.n,
            c.steps,
            c.checks,
            c.mismatches,
            c.reverified_permille,
            c.incremental_ms,
            c.full_ms,
        );
    }
    println!();
}

fn run_churn_mode(args: &Args) -> i32 {
    let steps = args
        .churn_steps
        .unwrap_or_else(|| default_steps(args.config.profile));
    let report = if args.checkpoint.is_some() || args.resume.is_some() {
        match run_churn_campaign_checkpointed(
            &args.config,
            steps,
            args.checkpoint.as_deref(),
            args.resume.as_deref(),
        ) {
            Ok((report, resumed)) => {
                if resumed > 0 {
                    println!(
                        "resumed {resumed} cells from {}",
                        args.resume.as_deref().unwrap_or("?")
                    );
                }
                report
            }
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        }
    } else {
        run_churn_campaign(&args.config, steps)
    };
    if !args.quiet {
        print_churn_table(&report);
    }
    let shard_note = report
        .shard
        .map_or_else(String::new, |s| format!(", shard {s}"));
    let unresolved = report.unresolved();
    let unresolved_note = if unresolved > 0 {
        format!(", {unresolved} crashed/timed out")
    } else {
        String::new()
    };
    println!(
        "churn campaign: {} cells ({} ran) × {} mutations — {} mismatches{} ({} ms, seed {}{})",
        report.cells.len(),
        report.ran(),
        report.steps,
        report.mismatches(),
        unresolved_note,
        report.wall_ms,
        report.seed,
        shard_note,
    );
    for f in report.failures() {
        eprintln!("FAIL: {f}");
    }
    if let Some(path) = &args.json {
        let json = report.to_json(args.include_timing);
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            return 1;
        } else {
            println!("churn report written to {path}");
        }
    }
    // Like the static campaign, --bench-out is the always-timed
    // per-cell perf series.
    if let Some(path) = &args.bench_out {
        let json = report.to_bench_json();
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            return 1;
        } else {
            println!("bench series written to {path}");
        }
    }
    if let Some(path) = &args.metrics_out {
        if !write_metrics_sidecar(path, &lcp_conformance::metrics::churn_sidecar(&report)) {
            return 1;
        }
    }
    exit_code(report.ok(), report.unresolved())
}

fn print_table(report: &Report) {
    println!(
        "{:<32} {:<10} {:>4} {:>4} {:>4}  {:<12} {:<12} ok",
        "scheme", "row", "pass", "fail", "skip", "claimed", "measured"
    );
    println!("{}", "-".repeat(92));
    for s in &report.schemes {
        let count = |st: CellStatus| s.cells.iter().filter(|c| c.status == st).count();
        println!(
            "{:<32} {:<10} {:>4} {:>4} {:>4}  {:<12} {:<12} {}",
            s.id,
            s.paper_row,
            count(CellStatus::Pass),
            count(CellStatus::Fail),
            count(CellStatus::Skip),
            s.claimed_bound,
            s.measured_growth
                .map_or_else(|| "(small n)".into(), |g| g.to_string()),
            match s.bound_ok {
                Some(true) => "✓",
                Some(false) => "✗",
                None => "—",
            }
        );
    }
    println!();
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(1);
        }
    };

    // A typo'd --scheme would otherwise run a 0-cell campaign that
    // reports green — fail loudly instead, like --family parsing does.
    if let Some(id) = &args.config.scheme_filter {
        if !lcp_conformance::campaign_registry()
            .iter()
            .any(|e| e.id == *id)
        {
            eprintln!("error: unknown scheme '{id}' (see --list for registry ids)");
            std::process::exit(1);
        }
    }

    if args.list {
        for e in lcp_conformance::campaign_registry() {
            let families: Vec<&str> = e.families.iter().map(|f| f.name()).collect();
            println!(
                "{:<32} {:<10} {:<14} r={} families={}",
                e.id,
                e.paper_row,
                e.claimed_bound,
                e.radius,
                families.join(",")
            );
        }
        return;
    }

    if args.inject_faults {
        std::process::exit(run_fault_mode(&args));
    }

    if args.warm_artifacts {
        let dir = args.config.artifact_dir.clone().unwrap_or_default();
        let s = lcp_conformance::warm_artifacts(&args.config);
        println!(
            "warmed {}: {} cores built, {} deduplicated in-process, {} already on disk, \
             {} cells inapplicable",
            dir.display(),
            s.built,
            s.cache_hits,
            s.loaded,
            s.skipped,
        );
        return;
    }

    if args.churn {
        std::process::exit(run_churn_mode(&args));
    }

    let report = if args.checkpoint.is_some() || args.resume.is_some() {
        match run_campaign_checkpointed(
            &args.config,
            args.checkpoint.as_deref(),
            args.resume.as_deref(),
        ) {
            Ok((report, resumed)) => {
                if resumed > 0 {
                    println!(
                        "resumed {resumed} cells from {}",
                        args.resume.as_deref().unwrap_or("?")
                    );
                }
                report
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        run_campaign(&args.config)
    };

    if !args.quiet {
        print_table(&report);
    }
    let shard_note = report
        .shard
        .map_or_else(String::new, |s| format!(", shard {s}"));
    let unresolved = report.unresolved();
    let unresolved_note = if unresolved > 0 {
        format!(", {unresolved} crashed/timed out")
    } else {
        String::new()
    };
    println!(
        "campaign: {} cells — {} passed, {} failed, {} inapplicable{} \
         ({} ms, seed {}{}, skeleton cache {} hits / {} builds)",
        report.cell_count(),
        report.count(CellStatus::Pass),
        report.count(CellStatus::Fail),
        report.count(CellStatus::Skip),
        unresolved_note,
        report.wall_ms,
        report.seed,
        shard_note,
        report.cache_hits,
        report.cache_misses,
    );
    for f in report.failures() {
        eprintln!("FAIL: {f}");
    }

    if let Some(path) = &args.json {
        let json = report.to_json(args.include_timing);
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        } else {
            println!("report written to {path}");
        }
    }

    // The BENCH-style artifact always carries timings — it is the
    // perf-history series, not the diffable conformance report.
    if let Some(path) = &args.bench_out {
        let json = report.to_bench_json();
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        } else {
            println!("bench series written to {path}");
        }
    }

    if let Some(path) = &args.metrics_out {
        if !write_metrics_sidecar(path, &lcp_conformance::metrics::static_sidecar(&report)) {
            std::process::exit(1);
        }
    }

    std::process::exit(exit_code(report.ok(), report.unresolved()));
}
