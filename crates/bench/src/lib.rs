//! # `lcp-bench` — the Table 1 / Figure 1 harness
//!
//! Binaries:
//!
//! * `table1a` — regenerates Table 1(a): local proof complexity of graph
//!   *properties*, measured as honest proof sizes over instance sweeps
//!   and classified into the hierarchy levels.
//! * `table1b` — regenerates Table 1(b): graph *problems*.
//! * `figure1` — regenerates Figure 1 and the §5.3/§6 lower-bound
//!   experiments: the exact `C(3,12)`-style identifier patterns, plus the
//!   gluing / join-collision / fooling attacks run against undersized
//!   strawmen (fooled) and the honest schemes (survive).
//!
//! The criterion benches (`benches/`) measure prover/verifier throughput
//! and attack cost.

pub mod trend;

use lcp_core::engine::prepare_sweep;
use lcp_core::harness::{check_completeness, classify_growth, measure_sizes, GrowthClass};
use lcp_core::{Instance, Scheme};

/// One printed row of a Table-1-style report.
#[derive(Clone, Debug)]
pub struct Row {
    /// Experiment id (e.g. "T1a.7").
    pub id: String,
    /// Property / problem name.
    pub what: String,
    /// Graph family.
    pub family: String,
    /// The paper's bound (the "Proof size s" column).
    pub paper: String,
    /// Measured proof sizes over the sweep, rendered compactly.
    pub measured: String,
    /// Fitted growth class.
    pub class: String,
    /// ✓ when measured shape matches the paper's bound.
    pub verdict: String,
}

/// Prints rows in the paper's table layout.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("{title}");
    println!("{}", "=".repeat(title.len()));
    println!(
        "{:<7} {:<34} {:<9} {:<14} {:<30} {:<10} ok",
        "id", "property / problem", "family", "paper", "measured bits per node", "fit"
    );
    println!("{}", "-".repeat(112));
    for r in rows {
        println!(
            "{:<7} {:<34} {:<9} {:<14} {:<30} {:<10} {}",
            r.id, r.what, r.family, r.paper, r.measured, r.class, r.verdict
        );
    }
    println!();
}

/// Runs one scheme over a sweep: checks completeness, measures sizes,
/// classifies growth, and renders a [`Row`].
///
/// `expected` is the growth class the paper predicts; the verdict column
/// reports the comparison.
#[allow(clippy::too_many_arguments)]
pub fn run_row<S>(
    id: &str,
    what: &str,
    family: &str,
    paper: &str,
    scheme: &S,
    instances: &[Instance<S::Node, S::Edge>],
    expected: GrowthClass,
) -> Row
where
    S: Scheme + Sync,
    S::Node: Send + Sync,
    S::Edge: Send + Sync,
{
    // One engine preparation per instance, shared by the completeness
    // sweep and the size measurements.
    let prepared = prepare_sweep(scheme, instances);
    if let Err(f) = check_completeness(scheme, &prepared) {
        return Row {
            id: id.into(),
            what: what.into(),
            family: family.into(),
            paper: paper.into(),
            measured: format!("COMPLETENESS FAILURE: {}", f.reason),
            class: "-".into(),
            verdict: "✗".into(),
        };
    }
    let points = measure_sizes(scheme, &prepared);
    let class = classify_growth(&points);
    let measured = points
        .iter()
        .map(|p| format!("{}→{}", p.n, p.bits))
        .collect::<Vec<_>>()
        .join(" ");
    Row {
        id: id.into(),
        what: what.into(),
        family: family.into(),
        paper: paper.into(),
        measured,
        class: class.to_string(),
        verdict: if class == expected { "✓" } else { "✗" }.into(),
    }
}

/// Renders a row from raw `(parameter, bits)` pairs — for rows whose
/// sweep parameter is not `n` (e.g. `k` or `W`).
pub fn param_row(
    id: &str,
    what: &str,
    family: &str,
    paper: &str,
    param_name: &str,
    pairs: &[(usize, usize)],
    ok: bool,
) -> Row {
    let measured = pairs
        .iter()
        .map(|(p, b)| format!("{param_name}={p}→{b}"))
        .collect::<Vec<_>>()
        .join(" ");
    Row {
        id: id.into(),
        what: what.into(),
        family: family.into(),
        paper: paper.into(),
        measured,
        class: format!("grows with {param_name}"),
        verdict: if ok { "✓" } else { "✗" }.into(),
    }
}
